package approxsort_test

// Hot-path microbenchmarks behind BENCH_core.json (DESIGN.md §13). These
// measure the simulation core itself — the table sampler, the accounted
// Get/Set path, a full refine run, and one sortd job — at the sizes the
// roadmap tracks (n=20k backend-grid cell, n=100k sortd job). They use
// only public package APIs so the same file benchmarks any revision of
// the internals; scripts/profile.sh drives them under pprof.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/experiments"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/server"
	"approxsort/internal/sorts"
)

// BenchmarkCoreTableWriteWord is the table-write microbench: one accounted
// MLC word write per iteration, mixed values, single shared RNG stream.
func BenchmarkCoreTableWriteWord(b *testing.B) {
	tab := mlc.CachedTable(mlc.Approximate(0.055), 0, mlc.CalibrationSeed)
	r := rng.New(benchSeed)
	var sinkIters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, iters := tab.WriteWord(r, uint32(i)*2654435761)
		sinkIters += iters
	}
	b.ReportMetric(float64(sinkIters)/float64(b.N), "iters/word")
}

// BenchmarkCoreApproxSet measures the fully accounted store path
// (model sampling + accounting) with no sink attached.
func BenchmarkCoreApproxSet(b *testing.B) {
	sp := mem.NewApproxSpaceAt(0.055, benchSeed)
	w := sp.Alloc(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Set(i&4095, uint32(i))
	}
	if sp.Stats().Writes != b.N {
		b.Fatal("write accounting drifted")
	}
}

// BenchmarkCoreApproxGet measures the accounted load path.
func BenchmarkCoreApproxGet(b *testing.B) {
	sp := mem.NewApproxSpaceAt(0.055, benchSeed)
	w := sp.Alloc(4096)
	for i := 0; i < 4096; i++ {
		w.Set(i, uint32(i))
	}
	b.ResetTimer()
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc += w.Get(i & 4095)
	}
	_ = acc
}

func benchCoreRefine(b *testing.B, alg sorts.Algorithm, n int) {
	keys := dataset.Uniform(n, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.Refine(alg, 0.055, keys, benchSeed+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !row.Sorted {
			b.Fatal("unsorted output")
		}
	}
}

// BenchmarkCoreRefine20k is the BENCH_backend.json grid-cell size.
func BenchmarkCoreRefine20k(b *testing.B) { benchCoreRefine(b, sorts.Quicksort{}, 20000) }

// BenchmarkCoreRefineMSD20k is the same grid cell under 6-bit MSD radix —
// the algorithm whose queue-bucket passes the bulk access path rewrites.
func BenchmarkCoreRefineMSD20k(b *testing.B) { benchCoreRefine(b, sorts.MSD{Bits: 6}, 20000) }

// BenchmarkCoreRefine100k is the BENCH_sortd.json job size.
func BenchmarkCoreRefine100k(b *testing.B) { benchCoreRefine(b, sorts.Quicksort{}, 100000) }

// BenchmarkCoreSortdJob runs one hybrid n=100k sortd job end to end
// through the HTTP handler — the quantity BENCH_sortd.json reports as
// p50 job latency.
func BenchmarkCoreSortdJob(b *testing.B) {
	srv := server.New(server.Config{Workers: 1, MaxN: 100000})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	body := fmt.Sprintf(
		`{"dataset":{"kind":"uniform","n":100000,"seed":%d},"algorithm":"auto","mode":"hybrid","t":0.055,"seed":%d}`,
		benchSeed, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/sort?wait=1", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("POST /v1/sort: HTTP %d", resp.StatusCode)
		}
		var job server.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if job.Status != server.StatusDone {
			b.Fatalf("job status %q: %s", job.Status, job.Error)
		}
	}
}
