package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultishSmall(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5000", "-alg", "quicksort"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"approx-refine: Quicksort",
		"approx preparation",
		"refine 3: merge",
		"fully sorted: true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithPlanAndExactLIS(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "20000", "-alg", "msd", "-bits", "3", "-plan", "-exactlis"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "planner (pilot") || !strings.Contains(s, "verdict:") {
		t.Errorf("planner output missing:\n%s", s)
	}
	if !strings.Contains(s, "fully sorted: true") {
		t.Error("exact-LIS run not sorted")
	}
}

func TestRunDistributions(t *testing.T) {
	for _, dist := range []string{"sorted", "reverse", "zipf", "fewdistinct"} {
		var out strings.Builder
		if err := run([]string{"-n", "2000", "-dist", dist, "-alg", "histlsd"}, &out); err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if !strings.Contains(out.String(), "fully sorted: true") {
			t.Errorf("%s: not sorted", dist)
		}
	}
}

func TestRunExternal(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-external", "-n", "50000", "-runsize", "6000", "-fanin", "3",
		"-alg", "msd", "-T", "0.07", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"external approx-refine: 6-bit MSD over 50000 uniform keys",
		"replacement formation",
		"merge:",
		"output verified: sorted stream, 50000 records conserved",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunExternalAutoplanToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sorted.raw")
	var out strings.Builder
	err := run([]string{
		"-external", "-autoplan", "-n", "30000", "-runsize", "4000",
		"-dist", "zipf", "-T", "0.07", "-o", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "planner (M=") {
		t.Errorf("autoplan output missing planner line:\n%s", out.String())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 4*30000 {
		t.Errorf("output file is %d bytes, want %d", fi.Size(), 4*30000)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "bogosort"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-dist", "nope"}, &out); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("zero -n accepted")
	}
}
