// Command approxsort is the demonstration CLI: it sorts a dataset with the
// approx-refine mechanism on hybrid precise/approximate memory and prints
// the full per-stage report — the quickest way to see the paper's pipeline
// end to end. With -plan it first consults the Section 4.3 cost-model
// planner and reports whether the hybrid execution is predicted to win.
//
// With -external the input is streamed through the out-of-core pipeline
// instead: replacement-selection run formation on the hybrid memory
// system, spill to disk, and a write-limited k-way merge, with every run
// and the merged output audited by internal/verify. -autoplan consults
// the (M, B, ω) external planner for the run size, fan-in and formation
// verdict.
//
// Usage:
//
//	go run ./cmd/approxsort [-n N] [-T 0.055] [-alg msd] [-bits 6]
//	                        [-dist uniform|sorted|reverse|zipf|fewdistinct]
//	                        [-exactlis] [-plan]
//	go run ./cmd/approxsort -external [-runsize M] [-fanin K] [-formation replacement|chunk]
//	                        [-refine-at-merge] [-autoplan] [-o sorted.raw]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/histsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
	"approxsort/internal/stats"
	"approxsort/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("approxsort: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("approxsort", flag.ContinueOnError)
	fs.SetOutput(stdout)
	n := fs.Int("n", 1000000, "number of records")
	t := fs.Float64("T", 0.055, "approximate-memory target half-width (0.025=precise .. 0.125=no guard band)")
	algName := fs.String("alg", "msd", "quicksort|mergesort|lsd|msd|onesweep-lsd|histlsd|histmsd")
	bits := fs.Int("bits", 0, "radix digit width (0 = the algorithm's default: 6 for lsd/msd, 8 for onesweep-lsd)")
	dist := fs.String("dist", "uniform", "key distribution: uniform|sorted|reverse|zipf|fewdistinct")
	seed := fs.Uint64("seed", 1, "RNG seed")
	exactLIS := fs.Bool("exactlis", false, "use the exact-LIS refine variant (ablation)")
	plan := fs.Bool("plan", false, "consult the Section 4.3 planner before sorting")
	external := fs.Bool("external", false, "sort out-of-core: stream the dataset through extsort instead of materializing it")
	runSize := fs.Int("runsize", 1<<20, "external: in-memory run budget M in records")
	fanIn := fs.Int("fanin", 16, "external: merge fan-in cap")
	formation := fs.String("formation", "replacement", "external: run formation, replacement|chunk")
	refineAtMerge := fs.Bool("refine-at-merge", false, "external: defer each run's refine merge into the k-way merge")
	autoplan := fs.Bool("autoplan", false, "external: let the (M, B, ω) planner pick run size, fan-in and formation mode")
	outPath := fs.String("o", "", "external: write the sorted stream to this file (default: discard after verification)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	// The registry owns the algorithm roster; only the histogram
	// variants — deliberately unregistered ablation tools — are resolved
	// here by hand.
	histBits := *bits
	if histBits == 0 {
		histBits = 6
	}
	var alg sorts.Algorithm
	switch *algName {
	case "histlsd":
		alg = histsort.HistLSD{Bits: histBits}
	case "histmsd":
		alg = histsort.HistMSD{Bits: histBits}
	default:
		var err error
		if alg, err = sorts.New(*algName, *bits); err != nil {
			return err
		}
	}

	if *external {
		return runExternal(stdout, alg, extConfig{
			n: *n, t: *t, dist: *dist, seed: *seed,
			runSize: *runSize, fanIn: *fanIn, formation: *formation,
			refineAtMerge: *refineAtMerge, autoplan: *autoplan, out: *outPath,
		})
	}

	var keys []uint32
	switch *dist {
	case "uniform":
		keys = dataset.Uniform(*n, *seed)
	case "sorted":
		keys = dataset.Sorted(*n)
	case "reverse":
		keys = dataset.Reverse(*n)
	case "zipf":
		keys = dataset.Zipf(*n, 1024, 1.2, *seed)
	case "fewdistinct":
		keys = dataset.FewDistinct(*n, 16, *seed)
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}

	cfg := core.Config{
		Algorithm:         alg,
		T:                 *t,
		Seed:              *seed,
		MeasureSortedness: true,
		ExactLIS:          *exactLIS,
	}

	if *plan {
		p, err := core.Planner{Config: cfg}.Plan(keys)
		if err != nil {
			fmt.Fprintf(stdout, "planner unavailable (%v); proceeding with hybrid run\n\n", err)
		} else {
			fmt.Fprintf(stdout, "planner (pilot %d records): p(t)=%.3f, predicted Rem~=%d, predicted WR=%.2f%%\n",
				p.PilotSize, p.P, p.PredictedRem, 100*p.PredictedWR)
			if p.UseHybrid {
				fmt.Fprint(stdout, "verdict: approx-refine should beat the precise-only sort\n\n")
			} else {
				fmt.Fprint(stdout, "verdict: precise-only sorting predicted cheaper; running hybrid anyway for the report\n\n")
			}
		}
	}

	res, err := core.Run(keys, cfg)
	if err != nil {
		return err
	}
	r := res.Report

	fmt.Fprintf(stdout, "approx-refine: %s over %d %s keys at T=%.3f\n\n", r.Algorithm, r.N, *dist, *t)
	tab := stats.NewTable("stage", "approx writes", "approx ns", "precise writes", "precise ns")
	addStage := func(name string, b core.StageBreakdown) {
		tab.AddRow(name, b.Approx.Writes, b.Approx.WriteNanos, b.Precise.Writes, b.Precise.WriteNanos)
	}
	addStage("approx preparation", r.Prep)
	addStage("approx stage (sort)", r.ApproxSort)
	addStage("refine 1: find LIS~/REM", r.RefineFind)
	addStage("refine 2: sort REMID", r.RefineSort)
	addStage("refine 3: merge", r.RefineMerge)
	if err := tab.Write(stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\npost-approx sortedness: Rem=%d (%.2f%%), Rem~=%d (%.2f%%), error rate %.3f%%\n",
		r.PostApproxRem, 100*float64(r.PostApproxRem)/float64(maxInt(r.N, 1)),
		r.RemTilde, 100*r.RemTildeRatio(), 100*r.PostApproxErrorRate)
	fmt.Fprintf(stdout, "total write latency: hybrid %.3f ms vs precise-only %.3f ms\n",
		r.Total().WriteNanos()/1e6, r.Baseline.WriteNanos/1e6)
	fmt.Fprintf(stdout, "write reduction (Eq. 2): %.2f%%   access-time reduction: %.2f%%\n",
		100*r.WriteReduction(), 100*r.AccessTimeReduction())
	fmt.Fprintf(stdout, "output precise and fully sorted: %v\n", r.Sorted)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type extConfig struct {
	n             int
	t             float64
	dist          string
	seed          uint64
	runSize       int
	fanIn         int
	formation     string
	refineAtMerge bool
	autoplan      bool
	out           string
}

// runExternal streams the dataset through the out-of-core pipeline and
// prints the external sort's report.
func runExternal(stdout io.Writer, alg sorts.Algorithm, ec extConfig) error {
	src, err := dataset.StreamSpec{Kind: ec.dist, N: ec.n, Seed: ec.seed}.Stream()
	if err != nil {
		return err
	}
	b := memmodel.MustGet(memmodel.PCMMLC)
	pt, err := b.Normalize(memmodel.Point{Backend: b.Name(), Params: map[string]float64{"t": ec.t}})
	if err != nil {
		return err
	}

	var out io.Writer = io.Discard
	if ec.out != "" {
		f, err := os.Create(ec.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	sc := verify.NewStreamChecker(out)

	st, err := extsort.SortStream(src, sc, extsort.Config{
		Core: core.Config{
			Algorithm: alg,
			NewSpace:  func(s uint64) core.Space { return b.NewApprox(pt, s) },
			Seed:      ec.seed,
		},
		RunSize:       ec.runSize,
		FanIn:         ec.fanIn,
		Formation:     ec.formation,
		RefineAtMerge: ec.refineAtMerge,
		AutoPlan:      ec.autoplan,
		TotalRecords:  int64(ec.n),
		Omega:         memmodel.WriteCostRatio(b, pt),
		Verifier:      verify.Auditor{ID: b.Identities(pt)},
	})
	if err != nil {
		return err
	}
	if err := sc.Finish(st.Records); err != nil {
		return err
	}
	if err := verify.CheckExtsortStats(st).Err(); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "external approx-refine: %s over %d %s keys at T=%.3f\n\n",
		alg.Name(), st.Records, ec.dist, ec.t)
	if st.Plan != nil {
		e := st.Plan
		fmt.Fprintf(stdout, "planner (M=%d, B=%d, ω=%.2f): hybrid=%v refine-at-merge=%v run size %d, fan-in %d\n",
			e.MemBudget, e.Block, e.Omega, e.UseHybrid, e.RefineAtMerge, e.RunSize, e.FanIn)
		fmt.Fprintf(stdout, "predicted writes: formation %.0f + merge %.0f = %.0f (precise-only plan: %.0f)\n\n",
			e.FormationWrites, e.MergeWrites, e.TotalWrites, e.PreciseWrites)
	}
	fmt.Fprintf(stdout, "runs: %d (mean length %.0f records, %.2f×M via %s formation)\n",
		st.Runs, st.MeanRunLength(), st.MeanRunLength()/float64(maxInt(st.RunSize, 1)), st.Formation)
	fmt.Fprintf(stdout, "merge: %d passes at fan-in %d, %d staged precise writes (%.3f ms)\n",
		st.MergePasses, st.FanIn, st.MergeWrites, st.MergeWriteNanos/1e6)
	fmt.Fprintf(stdout, "refine remainders: Rem~ total %d (%.2f%% of input)\n",
		st.RemTildeTotal, 100*float64(st.RemTildeTotal)/float64(maxInt(int(st.Records), 1)))
	fmt.Fprintf(stdout, "formation write latency: %.3f ms   disk: %d bytes written, high-water %d\n",
		st.HybridWriteNanos/1e6, st.DiskBytesWritten, st.DiskHighWater)
	fmt.Fprintf(stdout, "output verified: sorted stream, %d records conserved, per-run audits passed\n", st.Records)
	return nil
}
