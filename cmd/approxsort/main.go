// Command approxsort is the demonstration CLI: it sorts a dataset with the
// approx-refine mechanism on hybrid precise/approximate memory and prints
// the full per-stage report — the quickest way to see the paper's pipeline
// end to end. With -plan it first consults the Section 4.3 cost-model
// planner and reports whether the hybrid execution is predicted to win.
//
// Usage:
//
//	go run ./cmd/approxsort [-n N] [-T 0.055] [-alg msd] [-bits 6]
//	                        [-dist uniform|sorted|reverse|zipf|fewdistinct]
//	                        [-exactlis] [-plan]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/histsort"
	"approxsort/internal/sorts"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("approxsort: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("approxsort", flag.ContinueOnError)
	fs.SetOutput(stdout)
	n := fs.Int("n", 1000000, "number of records")
	t := fs.Float64("T", 0.055, "approximate-memory target half-width (0.025=precise .. 0.125=no guard band)")
	algName := fs.String("alg", "msd", "quicksort|mergesort|lsd|msd|histlsd|histmsd")
	bits := fs.Int("bits", 6, "radix digit width")
	dist := fs.String("dist", "uniform", "key distribution: uniform|sorted|reverse|zipf|fewdistinct")
	seed := fs.Uint64("seed", 1, "RNG seed")
	exactLIS := fs.Bool("exactlis", false, "use the exact-LIS refine variant (ablation)")
	plan := fs.Bool("plan", false, "consult the Section 4.3 planner before sorting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	var alg sorts.Algorithm
	switch *algName {
	case "quicksort":
		alg = sorts.Quicksort{}
	case "mergesort":
		alg = sorts.Mergesort{}
	case "lsd":
		alg = sorts.LSD{Bits: *bits}
	case "msd":
		alg = sorts.MSD{Bits: *bits}
	case "histlsd":
		alg = histsort.HistLSD{Bits: *bits}
	case "histmsd":
		alg = histsort.HistMSD{Bits: *bits}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	var keys []uint32
	switch *dist {
	case "uniform":
		keys = dataset.Uniform(*n, *seed)
	case "sorted":
		keys = dataset.Sorted(*n)
	case "reverse":
		keys = dataset.Reverse(*n)
	case "zipf":
		keys = dataset.Zipf(*n, 1024, 1.2, *seed)
	case "fewdistinct":
		keys = dataset.FewDistinct(*n, 16, *seed)
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}

	cfg := core.Config{
		Algorithm:         alg,
		T:                 *t,
		Seed:              *seed,
		MeasureSortedness: true,
		ExactLIS:          *exactLIS,
	}

	if *plan {
		p, err := core.Planner{Config: cfg}.Plan(keys)
		if err != nil {
			fmt.Fprintf(stdout, "planner unavailable (%v); proceeding with hybrid run\n\n", err)
		} else {
			fmt.Fprintf(stdout, "planner (pilot %d records): p(t)=%.3f, predicted Rem~=%d, predicted WR=%.2f%%\n",
				p.PilotSize, p.P, p.PredictedRem, 100*p.PredictedWR)
			if p.UseHybrid {
				fmt.Fprint(stdout, "verdict: approx-refine should beat the precise-only sort\n\n")
			} else {
				fmt.Fprint(stdout, "verdict: precise-only sorting predicted cheaper; running hybrid anyway for the report\n\n")
			}
		}
	}

	res, err := core.Run(keys, cfg)
	if err != nil {
		return err
	}
	r := res.Report

	fmt.Fprintf(stdout, "approx-refine: %s over %d %s keys at T=%.3f\n\n", r.Algorithm, r.N, *dist, *t)
	tab := stats.NewTable("stage", "approx writes", "approx ns", "precise writes", "precise ns")
	addStage := func(name string, b core.StageBreakdown) {
		tab.AddRow(name, b.Approx.Writes, b.Approx.WriteNanos, b.Precise.Writes, b.Precise.WriteNanos)
	}
	addStage("approx preparation", r.Prep)
	addStage("approx stage (sort)", r.ApproxSort)
	addStage("refine 1: find LIS~/REM", r.RefineFind)
	addStage("refine 2: sort REMID", r.RefineSort)
	addStage("refine 3: merge", r.RefineMerge)
	if err := tab.Write(stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\npost-approx sortedness: Rem=%d (%.2f%%), Rem~=%d (%.2f%%), error rate %.3f%%\n",
		r.PostApproxRem, 100*float64(r.PostApproxRem)/float64(maxInt(r.N, 1)),
		r.RemTilde, 100*r.RemTildeRatio(), 100*r.PostApproxErrorRate)
	fmt.Fprintf(stdout, "total write latency: hybrid %.3f ms vs precise-only %.3f ms\n",
		r.Total().WriteNanos()/1e6, r.Baseline.WriteNanos/1e6)
	fmt.Fprintf(stdout, "write reduction (Eq. 2): %.2f%%   access-time reduction: %.2f%%\n",
		100*r.WriteReduction(), 100*r.AccessTimeReduction())
	fmt.Fprintf(stdout, "output precise and fully sorted: %v\n", r.Sorted)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
