// Command spinstudy regenerates the Appendix A evaluation on approximate
// spintronic memory (after Ranjan et al.):
//
//	-fig 12  Rem ratio after sorting in approximate spintronic memory
//	         only, per per-write energy-saving operating point
//	-fig 13  total write-energy saving under approx-refine
//	-fig 14  write-energy breakdown (approx vs refine) at the 33% point,
//	         normalized to 3-bit LSD's approx energy
//
// Usage:
//
//	go run ./cmd/spinstudy -fig 12 [-n N] [-seed S] [-csv]
//
// Note: the paper's Figure 13/14 x-axis labels (50/66/80/95%) disagree
// with the Appendix A text (5/20/33/50% savings at 1e-7..1e-4 error); this
// harness follows the text. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"approxsort/internal/experiments"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinstudy: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spinstudy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	fig := fs.Int("fig", 0, "figure to regenerate: 12, 13 or 14")
	n := fs.Int("n", 100000, "number of records (paper: 16M)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (<=0: one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	switch *fig {
	case 12:
		algs := []sorts.Algorithm{sorts.LSD{Bits: 6}, sorts.MSD{Bits: 6}, sorts.Quicksort{}, sorts.Mergesort{}}
		fmt.Fprintf(stdout, "Figure 12: Rem ratio after sorting %d keys in approximate spintronic memory\n\n", *n)
		rows, err := experiments.Fig12(algs, spintronic.Presets(), *n, *seed, *workers)
		if err != nil {
			return err
		}
		tab := stats.NewTable("algorithm", "saving/write", "bitErrProb", "remRatio", "errorRate")
		for _, r := range rows {
			tab.AddRow(r.Algorithm, r.Saving, r.BitErrorProb, r.RemRatio, r.ErrorRate)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper: nearly sorted at 5% saving; mergesort collapses first; at 50%")
		fmt.Fprintln(stdout, "saving (1e-4/bit) outputs degrade sharply.")
		return nil
	case 13:
		algs := experiments.StudyAlgorithms()
		fmt.Fprintf(stdout, "Figure 13: write-energy saving under approx-refine (%d records)\n\n", *n)
		rows, err := experiments.Fig13(algs, spintronic.Presets(), *n, *seed, *workers)
		if err != nil {
			return err
		}
		tab := stats.NewTable("algorithm", "saving/write", "energySaving", "Rem~/n", "sorted")
		for _, r := range rows {
			tab.AddRow(r.Algorithm, r.Saving, r.EnergySaving, r.RemTildeRatio, r.Sorted)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper (16M): best at 20-33% per-write saving; radix up to 13.4%,")
		fmt.Fprintln(stdout, "quicksort up to 7.5%, mergesort never positive.")
		return nil
	case 14:
		algs := experiments.StudyAlgorithms()
		cfg := spintronic.Presets()[2] // the 33% operating point
		fmt.Fprintf(stdout, "Figure 14: write-energy breakdown at %.0f%% saving/write (%d records),\n",
			cfg.Saving*100, *n)
		fmt.Fprintf(stdout, "normalized to 3-bit LSD's approx energy\n\n")
		// The generic backend-parameterized sweep, called directly: the
		// same rows Fig13 wraps (its seed schedule is keyed by the point's
		// coordinates, so the values match the wrapper bit-for-bit).
		rows, err := experiments.RefineGrid(algs, []memmodel.Point{memmodel.Spintronic(cfg)}, *n, *seed, *workers)
		if err != nil {
			return err
		}
		var norm float64
		for _, r := range rows {
			if r.Algorithm == "3-bit LSD" {
				norm = r.ApproxEnergy
			}
		}
		if norm == 0 {
			return fmt.Errorf("3-bit LSD row missing for normalization")
		}
		tab := stats.NewTable("algorithm", "approx (norm)", "refine (norm)", "total (norm)", "refine share")
		for _, r := range rows {
			total := r.ApproxEnergy + r.RefineEnergy
			tab.AddRow(r.Algorithm, r.ApproxEnergy/norm, r.RefineEnergy/norm, total/norm,
				r.RefineEnergy/total)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper: refine energy mostly negligible except mergesort.")
		return nil
	default:
		return fmt.Errorf("choose one of: -fig 12, -fig 13, -fig 14")
	}
}

func emit(tab *stats.Table, w io.Writer, csv bool) error {
	if csv {
		return tab.WriteCSV(w)
	}
	return tab.Write(w)
}
