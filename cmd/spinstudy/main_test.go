package main

import (
	"strings"
	"testing"
)

func TestRunFig12(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "12", "-n", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 12", "saving/write", "Mergesort", "1.00e-07"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig13(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "13", "-n", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "energySaving") {
		t.Error("energy column missing")
	}
	if strings.Contains(out.String(), "false") {
		t.Error("an approx-refine row reports unsorted output")
	}
}

func TestRunFig14(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "14", "-n", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "33% saving/write") {
		t.Error("operating point missing from header")
	}
	if !strings.Contains(s, "3-bit LSD  1.0000") {
		t.Errorf("normalization row wrong:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no figure selected but no error")
	}
	if err := run([]string{"-fig", "12", "-n", "0"}, &out); err == nil {
		t.Error("zero -n accepted")
	}
}
