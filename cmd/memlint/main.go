// Command memlint runs the repository's static-analysis suite
// (internal/analysis): the ten compile-time guards for the simulator's
// determinism, accounting, verification and service-concurrency
// invariants.
//
// Two modes share the same analyzers and the same cross-package facts:
//
// Standalone, over go list patterns (run from anywhere in the module),
// analyzing all matched packages in dependency order so facts flow from
// importees to importers:
//
//	go run ./cmd/memlint ./...
//	memlint -floatord=false ./internal/...
//	memlint -json ./... > findings.json
//	memlint -sarif ./... > memlint.sarif
//	memlint -baseline scripts/lint_baseline.json ./...
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full,
// -flags, and per-package *.cfg invocations), with facts serialized
// through the .vetx files the go command shuttles between units:
//
//	go build -o "$(go env GOPATH)/bin/memlint" ./cmd/memlint
//	go vet -vettool=$(which memlint) ./...
//
// Each analyzer has a boolean flag of the same name to toggle it; all
// are on by default. -json and -sarif write machine-readable findings
// to stdout (SARIF 2.1.0 for CI annotation). -baseline compares the
// per-analyzer finding counts against a committed baseline and fails
// only on regressions — the ratchet: counts may fall, never rise —
// while -update-baseline rewrites the file to the current counts.
// Exit status is 2 when diagnostics were reported (or the baseline was
// exceeded), 1 on operational errors, 0 on a clean run.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"approxsort/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("memlint", flag.ContinueOnError)
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	jsonOut := fs.Bool("json", false, "write findings as JSON to stdout")
	sarifOut := fs.Bool("sarif", false, "write findings as SARIF 2.1.0 to stdout")
	baselinePath := fs.String("baseline", "", "compare finding counts against this baseline file; fail only on regressions")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite -baseline to the current finding counts")
	// The go command probes vet tools with `-V=full` (version/cache key)
	// and `-flags` (supported flags) before the per-package runs; both
	// are handled before normal flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return 0
		case "-flags", "--flags":
			printFlags(fs)
			return 0
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], active)
	}
	return runStandalone(rest, active, &outputConfig{
		json:           *jsonOut,
		sarif:          *sarifOut,
		baselinePath:   *baselinePath,
		updateBaseline: *updateBaseline,
	})
}

// printVersion implements the `-V=full` probe: the go command uses the
// line as the tool's cache key, so it includes a content hash of the
// binary — rebuilding memlint invalidates stale vet results.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("memlint version devel buildID=%x\n", h.Sum(nil)[:12])
}

// printFlags implements the `-flags` probe go vet uses to validate
// user-supplied flags against the tool.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name     string
		Bool     bool
		Usage    string
		DefValue string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "V=full" {
			return
		}
		flags = append(flags, jsonFlag{f.Name, true, f.Usage, f.DefValue})
	})
	data, _ := json.Marshal(flags)
	fmt.Println(string(data))
}

// runStandalone loads packages via go list from the enclosing module
// and analyzes them as one dependency-ordered suite, so cross-package
// facts flow exactly as under go vet.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, out *outputConfig) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	units, err := analysis.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	diags, err := analysis.RunSuite(units, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	return emit(diags, analyzers, root, out)
}
