package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"approxsort/internal/analysis"
)

// vetConfig is the JSON configuration the go command writes for each
// package when a vet tool runs (the unitchecker protocol): the files of
// one compilation unit plus the import resolution and export data of
// everything it depends on.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single compilation unit described by a vet
// .cfg file. Exit codes follow vet's convention: 0 clean, 1 operational
// failure, 2 diagnostics reported.
func runVetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "memlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts file regardless; this suite
	// defines no facts, so a placeholder suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("memlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
	}
	// Dependency-only visits exist to produce facts; nothing to do.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	})
	unit, err := analysis.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(unit, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
