package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"approxsort/internal/analysis"
)

// vetConfig is the JSON configuration the go command writes for each
// package when a vet tool runs (the unitchecker protocol): the files of
// one compilation unit plus the import resolution, export data and
// serialized analyzer facts (.vetx) of everything it depends on.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single compilation unit described by a vet
// .cfg file: it decodes the fact files of every dependency, runs the
// analyzers (even for VetxOnly dependency visits — those exist exactly
// to produce facts), writes this unit's accumulated facts to
// VetxOutput, and reports diagnostics only for requested (non-VetxOnly)
// units. Exit codes follow vet's convention: 0 clean, 1 operational
// failure, 2 diagnostics reported.
func runVetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "memlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Import facts from every dependency's vetx file, in sorted order
	// for determinism. Placeholder files from older memlint builds
	// decode to nothing.
	facts := analysis.NewFactStore()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for _, p := range cfg.PackageVetx { //nolint:detrand // paths are sorted before use on the next line
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue // missing dep facts degrade to intra-package analysis
		}
		if err := facts.DecodeFacts(b, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	})
	unit, err := analysis.TypeCheck(fset, vetBasePkgPath(cfg.ImportPath), cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	diags, err := analysis.RunUnit(unit, analyzers, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}

	// The go command requires the facts file regardless of content; it
	// carries this unit's facts (plus its deps', so transitive imports
	// resolve without re-reading the whole graph) to importers.
	if cfg.VetxOutput != "" {
		enc, err := facts.EncodeFacts()
		if err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
	}
	// Dependency-only visits exist to produce facts; their diagnostics
	// belong to their own requested runs.
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetBasePkgPath strips the " [foo.test]" variant suffix so path-scoped
// analyzers see one identity for a package and its test recompilation.
func vetBasePkgPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
