package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"approxsort/internal/analysis"
)

// outputConfig selects how runStandalone renders its findings and
// whether they are judged against a committed baseline.
type outputConfig struct {
	json           bool
	sarif          bool
	baselinePath   string
	updateBaseline bool
}

// emit renders diagnostics in the selected format and computes the exit
// code: 2 when findings were reported (or the baseline regressed), 0
// otherwise. Paths in machine-readable output are module-relative so
// CI annotations and committed baselines are host-independent.
func emit(diags []analysis.Diagnostic, analyzers []*analysis.Analyzer, root string, out *outputConfig) int {
	switch {
	case out.json:
		if err := writeJSON(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
	case out.sarif:
		if err := writeSARIF(os.Stdout, diags, analyzers, root); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}

	if out.baselinePath != "" {
		return judgeBaseline(diags, out)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// relPath makes file module-relative (slash-separated) when it lies
// under root.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []analysis.Diagnostic, root string) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings})
}

// SARIF 2.1.0 subset: enough for GitHub code-scanning upload and PR
// annotation. One run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w *os.File, diags []analysis.Diagnostic, analyzers []*analysis.Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "memlint", InformationURI: "https://example.invalid/approxsort/DESIGN.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// baselineFile is the committed ratchet state: per-analyzer finding
// counts. The repository is expected to hold every count at zero; the
// baseline exists so a future justified exemption can land explicitly
// and then only shrink.
type baselineFile struct {
	Total      int            `json:"total"`
	ByAnalyzer map[string]int `json:"by_analyzer"`
}

// judgeBaseline compares current counts against the baseline and
// applies the ratchet: any analyzer exceeding its recorded count fails;
// counts below the baseline invite (or, with -update-baseline, apply)
// a tightening rewrite.
func judgeBaseline(diags []analysis.Diagnostic, out *outputConfig) int {
	current := baselineFile{ByAnalyzer: map[string]int{}}
	for _, d := range diags {
		current.Total++
		current.ByAnalyzer[d.Analyzer]++
	}

	if out.updateBaseline {
		data, err := json.MarshalIndent(orderedBaseline(current), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
		if err := os.WriteFile(out.baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "memlint:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "memlint: baseline %s updated: %d finding(s)\n", out.baselinePath, current.Total)
		return 0
	}

	data, err := os.ReadFile(out.baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memlint:", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "memlint: parsing baseline %s: %v\n", out.baselinePath, err)
		return 1
	}

	names := make([]string, 0, len(current.ByAnalyzer))
	for name := range current.ByAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := false
	for _, name := range names {
		if cur, was := current.ByAnalyzer[name], base.ByAnalyzer[name]; cur > was {
			regressed = true
			fmt.Fprintf(os.Stderr, "memlint: ratchet: %s has %d finding(s), baseline allows %d\n", name, cur, was)
		}
	}
	if regressed {
		return 2
	}
	if current.Total < base.Total {
		fmt.Fprintf(os.Stderr, "memlint: ratchet: findings fell %d -> %d; tighten with -update-baseline\n", base.Total, current.Total)
	}
	return 0
}

// orderedBaseline returns a marshal-stable copy (encoding/json sorts
// map keys, so the struct is already deterministic; this exists to
// normalize a nil map).
func orderedBaseline(b baselineFile) baselineFile {
	if b.ByAnalyzer == nil {
		b.ByAnalyzer = map[string]int{}
	}
	return b
}
