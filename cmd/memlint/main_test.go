package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMemlint compiles the binary once per test run.
func buildMemlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/memlint: %v\n%s", err, out)
	}
	return bin
}

// badModule writes a throwaway module with a known detrand violation.
func badModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"bad.go": `package scratch

import "time"

// Stamp reads the wall clock: the canonical detrand violation.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestStandaloneFlagsKnownBad runs `memlint ./...` over the bad module:
// it must exit 2 and name the analyzer and the offending call.
func TestStandaloneFlagsKnownBad(t *testing.T) {
	bin := buildMemlint(t)
	dir := badModule(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want exit status 2\nstderr: %s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "[detrand]") || !strings.Contains(out, "time.Now") {
		t.Errorf("diagnostics missing detrand finding:\n%s", out)
	}
}

// TestStandaloneCleanModule checks the zero-exit path.
func TestStandaloneCleanModule(t *testing.T) {
	bin := buildMemlint(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module scratch\n\ngo 1.22\n",
		"good.go": "package scratch\n\n// Add is deterministic.\nfunc Add(a, b int) int { return a + b }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean module: %v\n%s", err, out)
	}
}

// TestVetToolProtocol drives the binary through `go vet -vettool`, the
// unitchecker path: -V=full, -flags, and per-package .cfg invocations.
func TestVetToolProtocol(t *testing.T) {
	bin := buildMemlint(t)
	dir := badModule(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a known-bad module\n%s", out.String())
	}
	if !strings.Contains(out.String(), "time.Now") {
		t.Errorf("vet output missing the detrand finding:\n%s", out.String())
	}
}

// TestVersionProbe checks the -V=full handshake go vet uses as a cache
// key: it must print one line and exit 0.
func TestVersionProbe(t *testing.T) {
	bin := buildMemlint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	s := strings.TrimSpace(string(out))
	if !strings.HasPrefix(s, "memlint version") || strings.Count(s, "\n") != 0 {
		t.Errorf("-V=full output = %q, want single 'memlint version ...' line", s)
	}
}
