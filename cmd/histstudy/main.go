// Command histstudy regenerates the Appendix B evaluation (Figure 15):
// approx-refine write reduction vs T for the histogram-based LSD/MSD
// radix sorts (after Polychroniou and Ross), which write each record once
// per pass instead of twice.
//
// Usage:
//
//	go run ./cmd/histstudy [-n N] [-seed S] [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"approxsort/internal/experiments"
	"approxsort/internal/mlc"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histstudy: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("histstudy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	n := fs.Int("n", 100000, "number of records (paper: 16M)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (<=0: one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	fmt.Fprintf(stdout, "Figure 15: approx-refine write reduction, histogram-based radix (%d records)\n\n", *n)
	rows, err := experiments.Fig15(mlc.StandardTs(false), *n, *seed, *workers)
	if err != nil {
		return err
	}
	tab := stats.NewTable("algorithm", "T", "WR measured", "Rem~/n", "sorted")
	for _, r := range rows {
		tab.AddRow(r.Algorithm, r.T, r.WriteReduction, r.RemTildeRatio, r.Sorted)
	}
	if csvErr := func() error {
		if *csv {
			return tab.WriteCSV(stdout)
		}
		return tab.Write(stdout)
	}(); csvErr != nil {
		return csvErr
	}
	fmt.Fprintln(stdout, "\nPaper: peaks at T=0.055-0.06; ~10% for 3-bit, ~5% for 6-bit - smaller")
	fmt.Fprintln(stdout, "than queue-bucket radix because the baseline already writes half as much.")
	return nil
}
