package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 15", "3-bit hist-LSD", "6-bit hist-MSD", "WR measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "false") {
		t.Error("a row reports unsorted output")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "-1"}, &out); err == nil {
		t.Error("negative -n accepted")
	}
}
