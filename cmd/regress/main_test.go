package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"approxsort/internal/verify"
)

// collectOnce shares one grid replay across the tests in this package;
// the determinism test pays for the second.
var collectOnce = sync.OnceValues(func() ([]verify.Metric, error) {
	return collect(defaultSeed, 1)
})

// TestReportByteIdentical is the acceptance criterion: two replays at the
// pinned seed must render byte-identical reports.
func TestReportByteIdentical(t *testing.T) {
	first, err := collectOnce()
	if err != nil {
		t.Fatal(err)
	}
	second, err := collect(defaultSeed, 4) // different worker count on purpose
	if err != nil {
		t.Fatal(err)
	}
	a, err := marshalGolden(defaultSeed, first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := marshalGolden(defaultSeed, second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two replays at the pinned seed rendered different reports")
	}
}

// TestCommittedGoldensMatch replays the grid against the goldens actually
// committed in results/golden/ — the same comparison CI's regress-gate
// job runs.
func TestCommittedGoldensMatch(t *testing.T) {
	metrics, err := collectOnce()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gate(filepath.Join("..", "..", "results", "golden", "regress.json"), defaultSeed, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("committed goldens drifted: %v (rerun `go run ./cmd/regress -update`)", rep.Drifts)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("gate passed vacuously with zero metrics")
	}
}

// TestGateFailsOnPerturbedGolden proves the gate actually fires: nudge one
// exact metric in a copy of the goldens and the comparison must fail.
func TestGateFailsOnPerturbedGolden(t *testing.T) {
	metrics, err := collectOnce()
	if err != nil {
		t.Fatal(err)
	}
	perturbed := make([]verify.Metric, len(metrics))
	copy(perturbed, metrics)
	hit := -1
	for i, m := range perturbed {
		if m.Tol.Kind == "" && m.Value > 0 { // an exact count
			perturbed[i].Value++
			hit = i
			break
		}
	}
	if hit < 0 {
		t.Fatal("grid produced no exact metrics to perturb")
	}
	data, err := marshalGolden(defaultSeed, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := gate(path, defaultSeed, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Drifts) != 1 || rep.Drifts[0].Name != metrics[hit].Name {
		t.Fatalf("perturbed golden not caught: pass=%v drifts=%v", rep.Pass, rep.Drifts)
	}
}

// TestGateRejectsSeedMismatch: goldens recorded at another seed are not
// comparable and must refuse, not drift.
func TestGateRejectsSeedMismatch(t *testing.T) {
	data, err := marshalGolden(defaultSeed+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = gate(path, defaultSeed, nil)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
}
