package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"

	"approxsort/internal/experiments"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/server"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
	"approxsort/internal/verify"
)

// defaultSeed pins the whole grid. Change it only together with -update.
const defaultSeed = 1729

// relEps is the relative tolerance for simulated nanos/energy/rate
// metrics. The grid is bit-deterministic on one platform; the epsilon
// only absorbs cross-platform float association differences.
const relEps = 1e-9

// Grid sizes. Small enough that the full replay (plus the golden tests
// that run it) stays well inside a CI minute; large enough that every
// stage of every pipeline executes with a non-trivial remainder.
const (
	fig2Words  = 12000
	figN       = 2000
	spinN      = 800
	sortdN     = 1500
	sortdPilot = 200
)

// goldenFile is the committed results/golden/regress.json layout.
type goldenFile struct {
	Seed    uint64          `json:"seed"`
	Metrics []verify.Metric `json:"metrics"`
}

// report is the machine-readable gate outcome.
type report struct {
	Seed    uint64          `json:"seed"`
	Pass    bool            `json:"pass"`
	Drifts  []verify.Drift  `json:"drifts"`
	Metrics []verify.Metric `json:"metrics"`
}

// serverJob mirrors the wire shape of a sortd job record.
type serverJob = server.Job

// collect replays the pinned grid and returns its metrics sorted by name.
func collect(seed uint64, workers int) ([]verify.Metric, error) {
	var ms []verify.Metric
	add := func(batch []verify.Metric, err error) error {
		if err != nil {
			return err
		}
		ms = append(ms, batch...)
		return nil
	}
	if err := add(collectFig2(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectFig4(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectRefineFigs(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectSpinFigs(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectOneSweep(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectMemristive(seed, workers)); err != nil {
		return nil, err
	}
	if err := add(collectSortd(seed)); err != nil {
		return nil, err
	}
	verify.SortMetrics(ms)
	return ms, nil
}

// gate loads the golden file and compares.
func gate(goldenPath string, seed uint64, metrics []verify.Metric) (*report, error) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		return nil, fmt.Errorf("reading goldens (run with -update to create them): %w", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", goldenPath, err)
	}
	if g.Seed != seed {
		return nil, fmt.Errorf("golden file was recorded at seed %d, this run used %d", g.Seed, seed)
	}
	drifts := verify.CompareMetrics(g.Metrics, metrics)
	if drifts == nil {
		drifts = []verify.Drift{}
	}
	return &report{Seed: seed, Pass: len(drifts) == 0, Drifts: drifts, Metrics: metrics}, nil
}

// collectFig2 gates the Figure 2 Monte-Carlo campaign at the Table 3 Ts.
func collectFig2(seed uint64, workers int) ([]verify.Metric, error) {
	var ms []verify.Metric
	for _, st := range mlc.SweepParallel(mlc.Precise(), []float64{0.03, 0.055, 0.1}, fig2Words, seed, workers) {
		p := fmt.Sprintf("fig2/T=%g", st.T)
		ms = append(ms,
			verify.Rel(p+"/avg_p", st.AvgP, relEps),
			verify.Rel(p+"/cell_error_rate", st.CellErrorRate, relEps),
			verify.Rel(p+"/word_error_rate", st.WordErrorRate, relEps),
			verify.Exact(p+"/word_writes", float64(st.WordWrites)),
		)
	}
	return ms, nil
}

// collectFig4 gates the Section 3 approximate-only study.
func collectFig4(seed uint64, workers int) ([]verify.Metric, error) {
	algs := []sorts.Algorithm{sorts.Quicksort{}, sorts.MSD{Bits: 6}}
	var ms []verify.Metric
	rows, err := experiments.Fig4(algs, []float64{0.03, 0.1}, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		p := fmt.Sprintf("fig4/%s/T=%g", row.Algorithm, row.T)
		ms = append(ms,
			verify.Rel(p+"/error_rate", row.ErrorRate, relEps),
			verify.Rel(p+"/rem_ratio", row.RemRatio, relEps),
			verify.Rel(p+"/write_reduction", row.WriteReduction, relEps),
		)
	}
	return ms, nil
}

// refineMetrics flattens one approx-refine row under a name prefix.
func refineMetrics(p string, row experiments.RefineRow) []verify.Metric {
	return []verify.Metric{
		verify.Rel(p+"/write_reduction", row.WriteReduction, relEps),
		verify.Rel(p+"/model_wr", row.ModelWR, relEps),
		verify.Rel(p+"/rem_ratio", row.RemTildeRatio, relEps),
		verify.Rel(p+"/approx_write_nanos", row.ApproxWriteNanos, relEps),
		verify.Rel(p+"/refine_write_nanos", row.RefineWriteNanos, relEps),
		verify.Rel(p+"/baseline_write_nanos", row.BaselineWriteNanos, relEps),
		verify.Rel(p+"/energy_saving", row.EnergySaving, relEps),
		verify.Exact(p+"/sorted", b2f(row.Sorted)),
	}
}

// collectRefineFigs gates subsets of Figures 9, 10 and 11.
func collectRefineFigs(seed uint64, workers int) ([]verify.Metric, error) {
	var ms []verify.Metric

	pair := []sorts.Algorithm{sorts.Quicksort{}, sorts.MSD{Bits: 6}}
	rows, err := experiments.Fig9(pair, []float64{0.03, 0.055}, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		ms = append(ms, refineMetrics(fmt.Sprintf("fig9/%s/T=%g", row.Algorithm, row.T), row)...)
	}

	rows, err = experiments.Fig10([]sorts.Algorithm{sorts.MSD{Bits: 6}}, 0.055, []int{500, figN}, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		ms = append(ms, refineMetrics(fmt.Sprintf("fig10/%s/n=%d", row.Algorithm, row.N), row)...)
	}

	roster := []sorts.Algorithm{sorts.Quicksort{}, sorts.Mergesort{}, sorts.LSD{Bits: 4}, sorts.MSD{Bits: 6}}
	rows, err = experiments.Fig11(roster, 0.055, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		ms = append(ms, refineMetrics("fig11/"+row.Algorithm, row)...)
	}
	return ms, nil
}

// collectSpinFigs gates subsets of the Appendix A spintronic studies
// (Figures 12 and 13) at the two harshest operating points.
func collectSpinFigs(seed uint64, workers int) ([]verify.Metric, error) {
	algs := []sorts.Algorithm{sorts.MSD{Bits: 6}}
	cfgs := spintronic.Presets()[2:] // 33% and 50% energy-saving points
	var ms []verify.Metric
	spinRows, err := experiments.Fig12(algs, cfgs, spinN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range spinRows {
		p := fmt.Sprintf("fig12/%s/save=%g", row.Algorithm, row.Saving)
		ms = append(ms,
			verify.Rel(p+"/rem_ratio", row.RemRatio, relEps),
			verify.Rel(p+"/error_rate", row.ErrorRate, relEps),
		)
	}
	rows, err := experiments.Fig13(algs, cfgs, spinN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		p := fmt.Sprintf("fig13/%s/save=%g", row.Algorithm, row.Saving)
		ms = append(ms,
			verify.Rel(p+"/energy_saving", row.EnergySaving, relEps),
			verify.Rel(p+"/approx_energy", row.ApproxEnergy, relEps),
			verify.Rel(p+"/refine_energy", row.RefineEnergy, relEps),
			verify.Rel(p+"/rem_ratio", row.RemTildeRatio, relEps),
			verify.Exact(p+"/sorted", b2f(row.Sorted)),
		)
	}
	return ms, nil
}

// collectOneSweep gates the write-combining radix on the Figure 9 grid —
// new golden rows beside (never replacing) the pre-registry fig9 set.
// Every row passed verify.CheckAlgorithmWrites, so a golden match also
// certifies the 2-writes-per-element-per-pass structural identity.
func collectOneSweep(seed uint64, workers int) ([]verify.Metric, error) {
	var ms []verify.Metric
	rows, err := experiments.Fig9([]sorts.Algorithm{sorts.OneSweepLSD{Bits: 8}}, []float64{0.03, 0.055}, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		ms = append(ms, refineMetrics(fmt.Sprintf("fig9/%s/T=%g", row.Algorithm, row.T), row)...)
	}
	return ms, nil
}

// collectMemristive gates the memristive backend: approx-refine and
// sort-only rows at the two harsher presets, exercising the backend's
// retain-old-value corruption, fixed write latency and half-latency
// reads under the full identity checker.
func collectMemristive(seed uint64, workers int) ([]verify.Metric, error) {
	algs := []sorts.Algorithm{sorts.MSD{Bits: 6}, sorts.OneSweepLSD{Bits: 8}}
	pts := memmodel.MemristivePresets()[1:] // scale 0.7/fail 1e-5 and scale 0.5/fail 1e-4
	var ms []verify.Metric
	rows, err := experiments.RefineGrid(algs, pts, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	pointLabel := func(pt memmodel.Point) string {
		scale, _ := pt.Param("current_scale")
		fail, _ := pt.Param("switch_fail_prob")
		return fmt.Sprintf("scale=%g,fail=%g", scale, fail)
	}
	for _, row := range rows {
		ms = append(ms, refineMetrics(fmt.Sprintf("memristive/refine/%s/%s", row.Algorithm, pointLabel(row.Point)), row)...)
	}
	sortRows, err := experiments.SortOnlyGrid([]sorts.Algorithm{sorts.MSD{Bits: 6}}, pts, figN, seed, workers)
	if err != nil {
		return nil, err
	}
	for _, row := range sortRows {
		p := fmt.Sprintf("memristive/sortonly/%s/%s", row.Algorithm, pointLabel(row.Point))
		ms = append(ms,
			verify.Rel(p+"/error_rate", row.ErrorRate, relEps),
			verify.Rel(p+"/rem_ratio", row.RemRatio, relEps),
			verify.Rel(p+"/write_reduction", row.WriteReduction, relEps),
		)
	}
	return ms, nil
}

// sortdJobs is the pinned service-level grid: one job per execution mode
// plus an auto-routed generated dataset, all served through the real HTTP
// stack so admission, planner routing, execution, verification and the
// job store are all under the gate.
func sortdJobs(seed uint64) []struct{ name, body string } {
	return []struct{ name, body string }{
		{"auto-reverse-inline", fmt.Sprintf(
			`{"keys":%s,"algorithm":"msd","mode":"auto","t":0.055,"seed":%d}`,
			reverseKeysJSON(256), seed)},
		{"auto-uniform-dataset", fmt.Sprintf(
			`{"dataset":{"kind":"uniform","n":%d,"seed":%d},"algorithm":"quicksort","mode":"auto","t":0.03,"seed":%d}`,
			sortdN, seed, seed)},
		{"hybrid-zipf", fmt.Sprintf(
			`{"dataset":{"kind":"zipf","n":%d,"seed":%d,"k":512,"s":1.2},"algorithm":"msd","mode":"hybrid","t":0.1,"seed":%d}`,
			sortdN, seed, seed)},
		{"precise-sorted", fmt.Sprintf(
			`{"dataset":{"kind":"sorted","n":%d},"algorithm":"mergesort","mode":"precise","seed":%d}`,
			sortdN, seed)},
		{"hybrid-onesweep", fmt.Sprintf(
			`{"dataset":{"kind":"zipf","n":%d,"seed":%d,"k":512,"s":1.2},"algorithm":"onesweep-lsd","mode":"hybrid","t":0.1,"seed":%d}`,
			sortdN, seed, seed)},
		{"memristive-hybrid-msd", fmt.Sprintf(
			`{"dataset":{"kind":"uniform","n":%d,"seed":%d},"algorithm":"msd","mode":"hybrid","backend":"memristive","seed":%d}`,
			sortdN, seed, seed)},
		{"memristive-auto", fmt.Sprintf(
			`{"dataset":{"kind":"uniform","n":%d,"seed":%d},"algorithm":"msd","mode":"auto","backend":"memristive","seed":%d}`,
			sortdN, seed, seed)},
	}
}

// collectSortd boots an in-process sortd, runs the job grid synchronously
// and flattens each job result.
func collectSortd(seed uint64) ([]verify.Metric, error) {
	srv := server.New(server.Config{Workers: 1, PilotSize: sortdPilot})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var ms []verify.Metric
	for _, j := range sortdJobs(seed) {
		job, err := post(ts, j.body)
		if err != nil {
			return nil, fmt.Errorf("sortd job %s: %w", j.name, err)
		}
		if job.Status != server.StatusDone || job.Result == nil {
			return nil, fmt.Errorf("sortd job %s: status %q, error %q", j.name, job.Status, job.Error)
		}
		r := job.Result
		p := "sortd/" + j.name
		mode := 0.0
		if r.Mode == server.ModeHybrid {
			mode = 1
		}
		ms = append(ms,
			verify.Exact(p+"/mode_hybrid", mode),
			verify.Exact(p+"/n", float64(r.N)),
			verify.Exact(p+"/rem", float64(r.Rem)),
			verify.Exact(p+"/writes_approx", float64(r.Writes.Approx)),
			verify.Exact(p+"/writes_precise", float64(r.Writes.Precise)),
			verify.Exact(p+"/writes_baseline", float64(r.Writes.Baseline)),
			verify.Rel(p+"/predicted_wr", r.PredictedWR, relEps),
			verify.Rel(p+"/actual_wr", r.ActualWR, relEps),
			verify.Rel(p+"/write_nanos", r.WriteNanos, relEps),
			verify.Rel(p+"/pcm_nanos", r.PCMNanos, relEps),
			verify.Exact(p+"/sorted", b2f(r.Sorted)),
			verify.Exact(p+"/verified", b2f(r.Verified)),
		)
	}
	return ms, nil
}

// reverseKeysJSON renders [n, n-1, ..., 1] as a JSON array.
func reverseKeysJSON(n int) string {
	buf := []byte{'['}
	for i := n; i >= 1; i-- {
		if i < n {
			buf = append(buf, ',')
		}
		buf = append(buf, []byte(fmt.Sprint(i))...)
	}
	return string(append(buf, ']'))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
