// Command regress replays a pinned-seed subset of the paper's experiment
// grid — Figures 2, 4, 9–13 plus a handful of sortd API jobs served over
// an in-process HTTP server — and gates every produced metric against the
// committed goldens in results/golden/regress.json.
//
// The grid is deterministic by construction (coordinate-keyed rng.Split
// seeds, shared MLC table cache), so two runs at the same seed produce
// byte-identical reports and the gate has zero flake budget: counts
// compare exactly, simulated nanos/energy under a tiny relative epsilon
// (declared per metric by this runner, never by the golden file).
//
// Usage:
//
//	regress                  # compare against goldens, exit 1 on drift
//	regress -update          # regenerate the golden file
//	regress -out report.json # also write the machine-readable report
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"approxsort/internal/verify"
)

func main() {
	var (
		update  = flag.Bool("update", false, "rewrite the golden file from this run instead of gating")
		golden  = flag.String("golden", "results/golden/regress.json", "golden metrics file")
		out     = flag.String("out", "", "write the gate report JSON here ('-' or empty = stdout)")
		seed    = flag.Uint64("seed", defaultSeed, "base seed for every grid point")
		workers = flag.Int("workers", 1, "sweep worker count (results are identical for any value)")
	)
	flag.Parse()

	metrics, err := collect(*seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regress: collect:", err)
		os.Exit(1)
	}

	if *update {
		data, err := marshalGolden(*seed, metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regress:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*golden, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "regress:", err)
			os.Exit(1)
		}
		fmt.Printf("regress: wrote %d metrics to %s\n", len(metrics), *golden)
		return
	}

	rep, err := gate(*golden, *seed, metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(1)
	}
	data, err := marshalReport(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(1)
	}
	if *out == "" || *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(1)
	}
	if !rep.Pass {
		for _, d := range rep.Drifts {
			fmt.Fprintln(os.Stderr, "regress: DRIFT:", d)
		}
		fmt.Fprintf(os.Stderr, "regress: FAIL: %d of %d metrics drifted (golden %s)\n",
			len(rep.Drifts), len(rep.Metrics), *golden)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "regress: PASS: %d metrics match %s\n", len(rep.Metrics), *golden)
}

// marshalGolden renders the golden file: metrics pre-sorted by name,
// indented, trailing newline — byte-stable for a given grid.
func marshalGolden(seed uint64, metrics []verify.Metric) ([]byte, error) {
	return stableJSON(goldenFile{Seed: seed, Metrics: metrics})
}

// marshalReport renders the gate report identically stably.
func marshalReport(rep *report) ([]byte, error) {
	return stableJSON(rep)
}

func stableJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// post issues one synchronous sortd job and returns the terminal job record.
func post(ts *httptest.Server, body string) (*serverJob, error) {
	resp, err := http.Post(ts.URL+"/v1/sort?wait=1", "application/json", bytes.NewBufferString(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("POST /v1/sort: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var job serverJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, err
	}
	return &job, nil
}
