// Command sortd is the sorting-as-a-service daemon: a long-lived HTTP
// server that executes sort jobs on the simulated hybrid
// precise/approximate memory system, routing each job through the
// Section 4.3 planner when asked to.
//
// API:
//
//	POST /v1/sort           submit a job; ?wait=1 blocks for the result
//	POST /v1/sort/stream    submit an out-of-core streaming job
//	POST /v1/sort/sharded   fan one sort across the -shards fleet
//	GET  /v1/jobs/{id}      poll a job record
//	GET  /v1/jobs/{id}/output  download a finished job's sorted stream
//	GET  /v1/tables         export a calibrated MLC table artifact
//	POST /v1/tables         install a relayed table artifact
//	GET  /healthz           readiness (503 while draining)
//	GET  /metrics           Prometheus text metrics
//
// Usage:
//
//	go run ./cmd/sortd [-addr :8080] [-workers 0] [-queue 64]
//	                   [-pilot 4096] [-maxn 8388608] [-drain 30s]
//	                   [-shards http://h1:8081,http://h2:8081]
//	                   [-tenant-inflight 2] [-streamdir DIR]
//
// With -shards the instance also acts as a cluster coordinator:
// POST /v1/sort/sharded range-partitions the input over the listed
// sortd nodes, runs one verified approx-refine job per shard, and
// k-way-merges the shard outputs under a single write accountant.
//
// SIGINT/SIGTERM trigger a graceful drain: health flips to 503, new jobs
// are refused, queued and in-flight jobs finish (up to -drain), then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"approxsort/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sortd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// onListen, when non-nil, receives the bound address once the listener is
// up — the end-to-end test uses it to find a :0 port.
var onListen func(addr string)

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sortd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 64, "bounded job-queue depth (full => 429)")
	pilot := fs.Int("pilot", 0, "planner pilot sample size (0 = default 4096)")
	maxN := fs.Int("maxn", 8<<20, "largest accepted input size")
	retain := fs.Int("retain", 4096, "finished job records kept for GET /v1/jobs")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	shards := fs.String("shards", "", "comma-separated shard sortd URLs; enables the /v1/sort/sharded coordinator")
	tenantInflight := fs.Int("tenant-inflight", 2, "concurrent sharded sorts allowed per tenant")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Minute, "deadline for one sharded sort's whole shard fan-out")
	streamDir := fs.String("streamdir", "", "streaming/sharded job spool directory (default: OS temp)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", *queue)
	}
	if *maxN < 1 {
		return fmt.Errorf("-maxn must be positive, got %d", *maxN)
	}

	var shardNodes []string
	if *shards != "" {
		for _, n := range strings.Split(*shards, ",") {
			if n = strings.TrimSpace(n); n != "" {
				shardNodes = append(shardNodes, n)
			}
		}
		if len(shardNodes) == 0 {
			return fmt.Errorf("-shards must list at least one node URL")
		}
	}

	s := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		PilotSize:         *pilot,
		MaxN:              *maxN,
		RetainJobs:        *retain,
		StreamDir:         *streamDir,
		ShardNodes:        shardNodes,
		TenantMaxInflight: *tenantInflight,
		ShardSortTimeout:  *shardTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sortd listening on %s (workers=%d queue=%d maxn=%d shards=%d)\n",
		ln.Addr(), *workers, *queue, *maxN, len(shardNodes))
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "sortd draining (budget %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := s.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(stdout, "sortd drained cleanly")
	return nil
}
