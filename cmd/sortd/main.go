// Command sortd is the sorting-as-a-service daemon: a long-lived HTTP
// server that executes sort jobs on the simulated hybrid
// precise/approximate memory system, routing each job through the
// Section 4.3 planner when asked to.
//
// API:
//
//	POST /v1/sort          submit a job; ?wait=1 blocks for the result
//	GET  /v1/jobs/{id}     poll a job record
//	GET  /healthz          readiness (503 while draining)
//	GET  /metrics          Prometheus text metrics
//
// Usage:
//
//	go run ./cmd/sortd [-addr :8080] [-workers 0] [-queue 64]
//	                   [-pilot 4096] [-maxn 8388608] [-drain 30s]
//
// SIGINT/SIGTERM trigger a graceful drain: health flips to 503, new jobs
// are refused, queued and in-flight jobs finish (up to -drain), then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"approxsort/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sortd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// onListen, when non-nil, receives the bound address once the listener is
// up — the end-to-end test uses it to find a :0 port.
var onListen func(addr string)

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sortd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	queue := fs.Int("queue", 64, "bounded job-queue depth (full => 429)")
	pilot := fs.Int("pilot", 0, "planner pilot sample size (0 = default 4096)")
	maxN := fs.Int("maxn", 8<<20, "largest accepted input size")
	retain := fs.Int("retain", 4096, "finished job records kept for GET /v1/jobs")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", *queue)
	}
	if *maxN < 1 {
		return fmt.Errorf("-maxn must be positive, got %d", *maxN)
	}

	s := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		PilotSize:  *pilot,
		MaxN:       *maxN,
		RetainJobs: *retain,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sortd listening on %s (workers=%d queue=%d maxn=%d)\n",
		ln.Addr(), *workers, *queue, *maxN)
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "sortd draining (budget %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := s.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(stdout, "sortd drained cleanly")
	return nil
}
