package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on a kernel-chosen port and returns its base
// URL plus a stop function that triggers the graceful drain and waits for
// exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	onListen = func(a string) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	var out bytes.Buffer
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s"}, extraArgs...)
	go func() { errCh <- run(ctx, args, &out) }()

	select {
	case addr := <-addrCh:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errCh:
				if !strings.Contains(out.String(), "drained cleanly") {
					t.Errorf("daemon did not drain cleanly:\n%s", out.String())
				}
				return err
			case <-time.After(15 * time.Second):
				return fmt.Errorf("daemon did not exit")
			}
		}
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	panic("unreachable")
}

func TestDaemonEndToEnd(t *testing.T) {
	base, stop := startDaemon(t)

	// Readiness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// One auto-routed job, synchronous.
	body := `{"keys":[9,7,8,1,3,2,6,4,5],"algorithm":"auto","return_keys":true}`
	resp, err = http.Post(base+"/v1/sort?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Result *struct {
			Sorted bool     `json:"sorted"`
			Mode   string   `json:"mode"`
			Keys   []uint32 `json:"keys"`
			Plan   *struct {
				UseHybrid bool `json:"use_hybrid"`
			} `json:"plan"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.Status != "done" || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if !job.Result.Sorted || job.Result.Plan == nil {
		t.Fatalf("result incomplete: %+v", job.Result)
	}
	for i := 1; i < len(job.Result.Keys); i++ {
		if job.Result.Keys[i-1] > job.Result.Keys[i] {
			t.Fatalf("output not sorted: %v", job.Result.Keys)
		}
	}

	// Metrics surface is live.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "sortd_jobs_total") {
		t.Error("metrics missing sortd_jobs_total")
	}

	if err := stop(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-queue", "0"}, &out); err == nil {
		t.Error("-queue 0 accepted")
	}
	if err := run(ctx, []string{"-maxn", "-5"}, &out); err == nil {
		t.Error("-maxn -5 accepted")
	}
	if err := run(ctx, []string{"-addr", "256.0.0.1:bad"}, &out); err == nil {
		t.Error("bad -addr accepted")
	}
}
