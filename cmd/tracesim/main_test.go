package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bin")
	var out strings.Builder
	if err := run([]string{"-record", path, "-n", "2000", "-alg", "lsd"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "captured") || !strings.Contains(out.String(), "6-bit LSD") {
		t.Errorf("record output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-replay", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"replayed", "CPU-visible", "L1", "queue-full"} {
		if !strings.Contains(s, want) {
			t.Errorf("replay output missing %q", want)
		}
	}
}

func TestReplayWithSeqDiscount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bin")
	var out strings.Builder
	if err := run([]string{"-record", path, "-n", "1000", "-alg", "mergesort"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-replay", path, "-seq", "0.6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "row-buffer hits") {
		t.Error("seq stats missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no mode but no error")
	}
	if err := run([]string{"-record", filepath.Join(t.TempDir(), "x"), "-alg", "bogo"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-record", filepath.Join(t.TempDir(), "x"), "-n", "0"}, &out); err == nil {
		t.Error("zero -n accepted")
	}
	if err := run([]string{"-replay", "/does/not/exist"}, &out); err == nil {
		t.Error("missing trace file accepted")
	}
}
