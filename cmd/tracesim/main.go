// Command tracesim exercises the trace-driven methodology of Section 3.2:
// it captures the memory-access trace of a sorting run to a compact binary
// file (-record) and replays a trace file through the Table 1 cache
// hierarchy and banked PCM device (-replay), reporting the system-level
// timing.
//
// Usage:
//
//	go run ./cmd/tracesim -record trace.bin [-n N] [-alg quicksort]
//	go run ./cmd/tracesim -replay trace.bin [-writens 1000] [-seq 0.6]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"approxsort/internal/dataset"
	"approxsort/internal/hybrid"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/pcm"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
	"approxsort/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracesim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	record := fs.String("record", "", "capture a sorting trace to this file")
	replay := fs.String("replay", "", "replay a trace file through the memory system")
	n := fs.Int("n", 100000, "number of records for -record")
	algName := fs.String("alg", "quicksort", "algorithm for -record: quicksort|mergesort|lsd|msd|onesweep-lsd")
	writeNanos := fs.Float64("writens", mlc.PreciseWriteNanos, "device write latency for -replay (ns)")
	seqFactor := fs.Float64("seq", 0, "row-buffer discount for sequential writes in -replay (0=off)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *record != "":
		return doRecord(stdout, *record, *n, *algName, *seed)
	case *replay != "":
		return doReplay(stdout, *replay, *writeNanos, *seqFactor)
	default:
		return fmt.Errorf("choose -record FILE or -replay FILE")
	}
}

func doRecord(stdout io.Writer, path string, n int, algName string, seed uint64) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	// 0 bits = each radix algorithm's registered default width.
	alg, err := sorts.New(algName, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}

	space := mem.NewPreciseSpace()
	p := sorts.Pair{Keys: space.Alloc(n), IDs: space.Alloc(n)}
	mem.Load(p.Keys, dataset.Uniform(n, seed))
	mem.Load(p.IDs, dataset.IDs(n))
	// The capture is a single stream into one sink, so batching through
	// a Buffered cannot reorder anything the encoder observes.
	sink := trace.NewBuffered(w, 0)
	space.SetSink(sink) // trace starts after warm-up, like the paper
	alg.Sort(p, sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(seed ^ 0xfeed)})
	sink.Flush()

	if err := w.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "captured %d events (%d bytes, %.2f B/event) from %s of %d records to %s\n",
		w.Count(), info.Size(), float64(info.Size())/float64(w.Count()), alg.Name(), n, path)
	return nil
}

func doReplay(stdout io.Writer, path string, writeNanos, seqFactor float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	dev := pcm.DefaultConfig()
	dev.SeqWriteFactor = seqFactor
	sys := hybrid.NewWithConfig(dev)
	region := sys.Region("trace", writeNanos)
	count, err := r.ReplayAll(region)
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Fprintf(stdout, "replayed %d events through Table 1 memory system (write latency %.0f ns)\n\n", count, writeNanos)
	fmt.Fprintf(stdout, "CPU-visible memory time: %.3f ms\n", st.Clock/1e6)
	fmt.Fprintf(stdout, "reads: %d (L1 %d / L2 %d / L3 %d / PCM %d)\n",
		st.Reads, st.L1Hits, st.L2Hits, st.L3Hits, st.MemReads)
	fmt.Fprintf(stdout, "writes: %d, write-queue stalls: %.3f ms (%d queue-full events)\n",
		st.Writes, st.WriteStallNanos/1e6, st.Device.WriteQueueFullEvents)
	fmt.Fprintf(stdout, "PCM read stall: %.3f ms; reads delayed by an in-flight write: %d\n",
		st.MemReadNanos/1e6, st.Device.ReadsDelayedByWrite)
	if seqFactor > 0 {
		fmt.Fprintf(stdout, "sequential-write row-buffer hits: %d (factor %.2f)\n",
			st.Device.SeqWriteHits, seqFactor)
	}
	return nil
}
