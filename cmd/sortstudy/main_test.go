package main

import (
	"strings"
	"testing"
)

func TestRunTable3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "3", "-n", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table 3", "Quicksort", "Mergesort", "6-bit LSD", "remRatio"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4CSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "4", "-n", "1000", "-csv", "-bits", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "algorithm,T,") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(out.String(), "4-bit LSD") {
		t.Error("-bits 4 not honoured")
	}
}

func TestRunShapes(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "6", "-n", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "T=0.055") {
		t.Error("-fig 6 should plot at T=0.055")
	}
	if strings.Count(s, "x: index, y: key value") != 4 {
		t.Error("expected four scatter plots")
	}
}

func TestRunMeasures(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-measures", "-n", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Rem", "Ham", "Osc"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("measures output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no mode selected but no error")
	}
	if err := run([]string{"-fig", "4", "-n", "-5"}, &out); err == nil {
		t.Error("negative -n accepted")
	}
}
