// Command sortstudy regenerates the Section 3 study of sorting in
// approximate memory only:
//
//	-fig 4     error rate, Rem ratio and write reduction vs T for
//	           quicksort, mergesort, LSD and MSD (Figure 4)
//	-table 3   Rem ratios at T ∈ {0.03, 0.055, 0.1} (Table 3)
//	-fig 5|6|7 sequence-shape plots after sorting at T = 0.03 / 0.055 /
//	           0.1 (Figures 5–7); -fig 5 honours an explicit -T
//	-measures  all disorder measures side by side (Section 3.3's case
//	           for Rem)
//
// Usage:
//
//	go run ./cmd/sortstudy -fig 4 [-n N] [-bits 6] [-seed S] [-csv]
//	go run ./cmd/sortstudy -table 3 [-n N]
//	go run ./cmd/sortstudy -fig 6 [-n N]
//	go run ./cmd/sortstudy -measures [-n N]
//
// The paper's Figure 4 uses 16M keys and Figures 5–7 use 160K; defaults
// here are scaled down (see EXPERIMENTS.md) and adjustable via -n.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"approxsort/internal/experiments"
	"approxsort/internal/mlc"
	"approxsort/internal/sorts"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sortstudy: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sortstudy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	fig := fs.Int("fig", 0, "figure to regenerate: 4, or 5|6|7 (shape plots)")
	table := fs.Int("table", 0, "table to regenerate: 3")
	measures := fs.Bool("measures", false, "compare all disorder measures (Section 3.3's choice of Rem)")
	n := fs.Int("n", 100000, "number of keys (paper: 16M for Fig 4, 160K for Figs 5-7)")
	tFlag := fs.Float64("T", 0.055, "target half-width for -fig 5")
	bits := fs.Int("bits", 6, "radix digit width for LSD/MSD")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (<=0: one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	algs := []sorts.Algorithm{
		sorts.LSD{Bits: *bits}, sorts.MSD{Bits: *bits},
		sorts.Quicksort{}, sorts.Mergesort{},
	}

	switch {
	case *fig == 4:
		fmt.Fprintf(stdout, "Figure 4: sorting %d keys in approximate memory only\n\n", *n)
		rows, err := experiments.Fig4(algs, mlc.StandardTs(false), *n, *seed, *workers)
		if err != nil {
			return err
		}
		return emitSortOnly(stdout, rows, *csv)
	case *table == 3:
		fmt.Fprintf(stdout, "Table 3: Rem ratio after sorting %d keys in approximate memory\n\n", *n)
		rows, err := experiments.Fig4(algs, []float64{0.03, 0.055, 0.1}, *n, *seed, *workers)
		if err != nil {
			return err
		}
		if err := emitSortOnly(stdout, rows, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper (16M keys): T=0.03 ~0%; T=0.055 QS 1.92% LSD 1.02% MSD 1.00%")
		fmt.Fprintln(stdout, "Mergesort 55.8%; T=0.1 QS 96.9% LSD 95.7% MSD 83.8% Mergesort 99.9%.")
		return nil
	case *fig >= 5 && *fig <= 7:
		t := *tFlag
		switch *fig {
		case 6:
			t = 0.055
		case 7:
			t = 0.1
		}
		if *fig == 5 && t == 0.055 {
			t = 0.03 // Figure 5's published precision unless -T overrides
		}
		fmt.Fprintf(stdout, "Figures 5-7: shape of X after sorting %d keys at T=%.3f\n", *n, t)
		for _, alg := range algs {
			fmt.Fprintf(stdout, "\n%s:\n", alg.Name())
			xs := experiments.Shape(alg, t, *n, *seed)
			if err := stats.ScatterPlot(stdout, xs, 16, 72); err != nil {
				return err
			}
		}
		return nil
	case *measures:
		fmt.Fprintf(stdout, "Disorder-measure comparison (Section 3.3) on quicksort output, %d keys\n\n", *n)
		rows, err := experiments.MeasureComparison(sorts.Quicksort{}, mlc.StandardTs(false), *n, *seed, *workers)
		if err != nil {
			return err
		}
		tab := stats.NewTable("T", "Rem", "Ham", "Dis", "Runs", "Inv", "Osc", "Max")
		for _, r := range rows {
			tab.AddRow(r.T, r.Rem, r.Ham, r.Dis, r.Runs, r.Inv, r.Osc, r.Max)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nRem counts exactly the records the refine stage must re-sort; Inv and")
		fmt.Fprintln(stdout, "Osc explode quadratically and Dis/Max saturate after one far-flung error.")
		return nil
	default:
		return fmt.Errorf("choose one of: -fig 4, -table 3, -fig 5|6|7, -measures")
	}
}

func emitSortOnly(stdout io.Writer, rows []experiments.SortOnlyRow, csv bool) error {
	tab := stats.NewTable("algorithm", "T", "errorRate (4a)", "remRatio (4b)", "writeReduction (4c)")
	for _, r := range rows {
		tab.AddRow(r.Algorithm, r.T, r.ErrorRate, r.RemRatio, r.WriteReduction)
	}
	return emit(tab, stdout, csv)
}

func emit(tab *stats.Table, w io.Writer, csv bool) error {
	if csv {
		return tab.WriteCSV(w)
	}
	return tab.Write(w)
}
