// Command mlcstudy regenerates Figure 2 of the paper: the impact of the
// target-range half-width T on MLC write performance (average P&V pulse
// count, panel a) and accuracy (2-bit cell and 32-bit word error rates,
// panel b), via Monte-Carlo simulation of the exact cell model. With
// -density it instead sweeps the cell-density axis (SLC / 4-level /
// 16-level at fixed guard fractions).
//
// Usage:
//
//	go run ./cmd/mlcstudy [-words N] [-seed S] [-csv] [-density]
//
// The paper's campaign writes 1e8 cells (= 6.25M words); the default here
// is 200k words, which resolves every trend in the figure. Raise -words
// for tighter error bars.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"approxsort/internal/experiments"
	"approxsort/internal/mlc"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlcstudy: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlcstudy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	words := fs.Int("words", 200000, "32-bit word writes per T point")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	density := fs.Bool("density", false, "sweep cell density (SLC/4-level/16-level) at fixed guard fractions instead")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (<=0: one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *words <= 0 {
		return fmt.Errorf("-words must be positive, got %d", *words)
	}

	if *density {
		return densityStudy(stdout, *words, *seed, *csv, *workers)
	}

	fmt.Fprintf(stdout, "Figure 2: MLC write performance and accuracy vs T (%d words/point)\n\n", *words)
	rows := experiments.Fig2(*words, *seed, true, *workers)
	tab := stats.NewTable("T", "avg#P (2a)", "p(t)", "cellErr (2b)", "wordErr (2b)", "writeReduction")
	for _, r := range rows {
		tab.AddRow(r.T, r.AvgP, r.PRatio(), r.CellErrorRate, r.WordErrorRate, r.WriteReduction())
	}
	if err := emit(tab, stdout, *csv); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\nPaper anchors: avg#P ~2.98 at T=0.025 (Table 2); ~50% latency reduction")
	fmt.Fprintln(stdout, "at T=0.1 (Section 2.2); errors negligible below T~0.05, steep past 0.06.")
	return nil
}

// densityStudy sweeps the Sampson density axis: cells with more levels
// store more bits but demand tighter absolute targets, costing pulses and
// reliability at the same relative guard fraction.
func densityStudy(stdout io.Writer, words int, seed uint64, csv bool, workers int) error {
	fmt.Fprintf(stdout, "Cell-density study: SLC vs 4-level vs 16-level at fixed guard fractions (%d words/point)\n\n", words)
	tab := stats.NewTable("levels", "bits/cell", "guardFrac", "T", "avg#P", "cellErr", "wordErr")
	type point struct {
		levels int
		f      float64
	}
	var pts []point
	for _, levels := range []int{2, 4, 16} {
		for _, f := range []float64{0.2, 0.4, 0.6, 0.8} {
			pts = append(pts, point{levels, f})
		}
	}
	rows, _ := parallel.Map(pts, workers, func(_ int, pt point) (mlc.Stats, error) {
		return mlc.MonteCarlo(mlc.GuardFraction(pt.levels, pt.f), words, rng.Split(seed, pt.levels, pt.f)), nil
	})
	for i, pt := range pts {
		p := mlc.GuardFraction(pt.levels, pt.f)
		s := rows[i]
		tab.AddRow(pt.levels, p.BitsPerCell(), pt.f, p.T, s.AvgP, s.CellErrorRate, s.WordErrorRate)
	}
	if err := emit(tab, stdout, csv); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\nDenser cells: fewer cells per word but more P&V pulses and higher error")
	fmt.Fprintln(stdout, "rates at the same guard fraction - the trade-off behind approximate MLC.")
	fmt.Fprintln(stdout, "Note: the default drift magnitude (~0.034) exceeds a 16-level band's")
	fmt.Fprintln(stdout, "half-width (1/32), so 16-level cells are unusable without scrubbing -")
	fmt.Fprintln(stdout, "one reason 2-bit MLC is the industry default the paper adopts.")
	return nil
}

func emit(tab *stats.Table, w io.Writer, csv bool) error {
	if csv {
		return tab.WriteCSV(w)
	}
	return tab.Write(w)
}
