package main

import (
	"strings"
	"testing"
)

func TestRunFig2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-words", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 2", "avg#P", "0.0250", "0.1240"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-words", "500", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T,avg#P (2a),p(t)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunDensity(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-words", "500", "-density"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Cell-density", "levels", "16"} {
		if !strings.Contains(s, want) {
			t.Errorf("density output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-words", "0"}, &out); err == nil {
		t.Error("-words 0 accepted")
	}
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
