// Command refinestudy regenerates the Section 5 evaluation of the
// approx-refine mechanism:
//
//	-fig 9    write reduction vs T per algorithm (Figure 9), with the
//	          Equation 4 model prediction alongside the measurement
//	-fig 10   write reduction vs n at T = 0.055 (Figure 10)
//	-fig 11   write-latency breakdown into approx and refine phases,
//	          normalized to 3-bit LSD's approx phase (Figure 11)
//	-memsim   end-to-end memory access time through the Table 1 cache
//	          hierarchy and banked PCM device (abstract's "up to 11%");
//	          -seq enables the sequential-write row-buffer discount
//	-robust   cross-distribution robustness sweep
//
// Usage:
//
//	go run ./cmd/refinestudy -fig 9 [-n N] [-seed S] [-csv]
//	go run ./cmd/refinestudy -fig 10
//	go run ./cmd/refinestudy -fig 11
//	go run ./cmd/refinestudy -memsim [-T 0.055] [-seq 0.6]
//	go run ./cmd/refinestudy -robust
//
// The paper's runs use 16M records; the default -n is scaled down and the
// -fig 10 sweep itself shows the n-trend (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"approxsort/internal/experiments"
	"approxsort/internal/mlc"
	"approxsort/internal/parallel"
	"approxsort/internal/pcm"
	"approxsort/internal/sorts"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("refinestudy: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("refinestudy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	fig := fs.Int("fig", 0, "figure to regenerate: 9, 10 or 11")
	memsim := fs.Bool("memsim", false, "run the cache+PCM access-time comparison")
	robust := fs.Bool("robust", false, "run the cross-distribution robustness sweep")
	seqFactor := fs.Float64("seq", 0, "row-buffer discount for sequential writes in -memsim (0=off, e.g. 0.6)")
	n := fs.Int("n", 100000, "number of records (paper: 16M)")
	tFlag := fs.Float64("T", 0.055, "target half-width for -fig 11 / -memsim / -robust")
	seed := fs.Uint64("seed", 1, "RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (<=0: one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}

	switch {
	case *fig == 9:
		algs := experiments.StudyAlgorithms()
		fmt.Fprintf(stdout, "Figure 9: approx-refine write reduction vs T (%d records)\n\n", *n)
		rows, err := experiments.Fig9(algs, mlc.StandardTs(false), *n, *seed, *workers)
		if err != nil {
			return err
		}
		if err := emitRefine(stdout, rows, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper (16M): peaks at T=0.055; radix ~10%, quicksort ~4%, mergesort")
		fmt.Fprintln(stdout, "never positive; negative below T=0.03 (p~1) and above T~0.07 (refine blows up).")
		return nil
	case *fig == 10:
		algs := experiments.StudyAlgorithms(3, 6)
		ns := []int{1600, 16000, 160000, 1600000}
		fmt.Fprintf(stdout, "Figure 10: approx-refine write reduction vs n at T=%.3f\n\n", *tFlag)
		rows, err := experiments.Fig10(algs, *tFlag, ns, *seed, *workers)
		if err != nil {
			return err
		}
		if err := emitRefine(stdout, rows, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper: growing with n for quicksort/MSD, non-monotone for LSD,")
		fmt.Fprintln(stdout, "mergesort negative throughout; maxima 11% (3-bit LSD), 10.3% (3-bit MSD), 4% (QS).")
		return nil
	case *fig == 11:
		algs := experiments.StudyAlgorithms()
		fmt.Fprintf(stdout, "Figure 11: write-latency breakdown at T=%.3f (%d records),\n", *tFlag, *n)
		fmt.Fprintf(stdout, "normalized to 3-bit LSD's approx phase\n\n")
		rows, err := experiments.Fig11(algs, *tFlag, *n, *seed, *workers)
		if err != nil {
			return err
		}
		var norm float64
		for _, r := range rows {
			if r.Algorithm == "3-bit LSD" {
				norm = r.ApproxWriteNanos
			}
		}
		if norm == 0 {
			return fmt.Errorf("3-bit LSD row missing for normalization")
		}
		tab := stats.NewTable("algorithm", "approx (norm)", "refine (norm)", "total (norm)", "refine share")
		for _, r := range rows {
			total := r.ApproxWriteNanos + r.RefineWriteNanos
			tab.AddRow(r.Algorithm, r.ApproxWriteNanos/norm, r.RefineWriteNanos/norm,
				total/norm, r.RefineWriteNanos/total)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nPaper: refine overhead negligible except mergesort; 6-bit MSD and")
		fmt.Fprintln(stdout, "quicksort cheapest overall; fewer bins -> larger totals.")
		return nil
	case *memsim:
		dev := pcm.DefaultConfig()
		dev.SeqWriteFactor = *seqFactor
		fmt.Fprintf(stdout, "Memory access time through cache hierarchy + banked PCM at T=%.3f (%d records", *tFlag, *n)
		if *seqFactor > 0 {
			fmt.Fprintf(stdout, ", sequential-write factor %.2f", *seqFactor)
		}
		fmt.Fprint(stdout, ")\n\n")
		tab := stats.NewTable("algorithm", "latency-sum reduction", "hybrid clock (ms)",
			"baseline clock (ms)", "queue-aware reduction")
		memAlgs := []sorts.Algorithm{sorts.LSD{Bits: 3}, sorts.MSD{Bits: 3}, sorts.Quicksort{}, sorts.Mergesort{}}
		memRows, err := parallel.Map(memAlgs, *workers, func(_ int, alg sorts.Algorithm) (experiments.AccessTimeRow, error) {
			return experiments.AccessTimeWithDevice(alg, *tFlag, *n, *seed, dev)
		})
		if err != nil {
			return err
		}
		for _, row := range memRows {
			tab.AddRow(row.Algorithm, row.LatencyReduction, row.HybridClockNanos/1e6,
				row.BaselineClockNanos/1e6, row.QueueAwareReduction)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nThe latency-sum column is the paper's metric (abstract: up to 11%).")
		fmt.Fprintln(stdout, "The queue-aware column adds posted writes + read-priority scheduling:")
		fmt.Fprintln(stdout, "writes overlap computation, so the CPU-visible gain is smaller.")
		return nil
	case *robust:
		fmt.Fprintf(stdout, "Robustness: approx-refine across key distributions at T=%.3f (%d records)\n\n", *tFlag, *n)
		rows, err := experiments.Robustness(experiments.StudyAlgorithms(6), *tFlag, *n, *seed, *workers)
		if err != nil {
			return err
		}
		tab := stats.NewTable("algorithm", "distribution", "WR measured", "Rem~/n", "sorted")
		for _, r := range rows {
			tab.AddRow(r.Algorithm, string(r.Distribution), r.WriteReduction, r.RemTildeRatio, r.Sorted)
		}
		if err := emit(tab, stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nEvery row must be sorted=true: precision is unconditional; only the")
		fmt.Fprintln(stdout, "saving varies with the input shape.")
		return nil
	default:
		return fmt.Errorf("choose one of: -fig 9, -fig 10, -fig 11, -memsim, -robust")
	}
}

func emitRefine(stdout io.Writer, rows []experiments.RefineRow, csv bool) error {
	tab := stats.NewTable("algorithm", "T", "n", "WR measured", "WR model (Eq4)", "Rem~/n", "sorted")
	for _, r := range rows {
		tab.AddRow(r.Algorithm, r.T, r.N, r.WriteReduction, r.ModelWR, r.RemTildeRatio, r.Sorted)
	}
	return emit(tab, stdout, csv)
}

func emit(tab *stats.Table, w io.Writer, csv bool) error {
	if csv {
		return tab.WriteCSV(w)
	}
	return tab.Write(w)
}
