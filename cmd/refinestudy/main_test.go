package main

import (
	"strings"
	"testing"
)

func TestRunFig11(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "11", "-n", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 11", "3-bit LSD", "refine share", "Mergesort"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The normalization row itself must read 1.0000 for approx.
	if !strings.Contains(s, "3-bit LSD  1.0000") {
		t.Errorf("3-bit LSD approx not normalized to 1:\n%s", s)
	}
}

func TestRunMemsimWithSeq(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-memsim", "-n", "3000", "-seq", "0.6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "sequential-write factor 0.60") {
		t.Error("-seq not reported")
	}
	if !strings.Contains(s, "latency-sum reduction") {
		t.Error("metric column missing")
	}
}

func TestRunRobust(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-robust", "-n", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"uniform", "zipf", "fewdistinct", "true"} {
		if !strings.Contains(s, want) {
			t.Errorf("robustness output missing %q", want)
		}
	}
	if strings.Contains(s, "false") {
		t.Error("a robustness row reports unsorted output")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no mode selected but no error")
	}
	if err := run([]string{"-fig", "9", "-n", "0"}, &out); err == nil {
		t.Error("zero -n accepted")
	}
}
