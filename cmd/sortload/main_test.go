package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"approxsort/internal/server"
)

// TestJobStreamDeterministic pins the satellite contract: the generated
// workload is a pure function of the invocation — two builds of the same
// level are deeply equal, every request seed derives from the stream
// coordinates, and no two requests share a seed.
func TestJobStreamDeterministic(t *testing.T) {
	cfg := loadConfig{
		Levels: []int{1, 4}, Jobs: 13, N: 1000, Dist: "uniform",
		Alg: "auto", Bits: 6, Mode: "auto", T: 0.055, Seed: 42,
	}
	for _, level := range cfg.Levels {
		a := buildRequests(cfg, level)
		b := buildRequests(cfg, level)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("level %d: rerun produced a different job stream", level)
		}
		total := 0
		seeds := map[uint64]bool{}
		for w := range a {
			for _, req := range a[w] {
				total++
				if seeds[req.Seed] || seeds[req.Dataset.Seed] {
					t.Fatalf("level %d: duplicate seed in stream", level)
				}
				seeds[req.Seed] = true
				seeds[req.Dataset.Seed] = true
			}
		}
		if total != cfg.Jobs {
			t.Fatalf("level %d: stream has %d jobs, want %d", level, total, cfg.Jobs)
		}
	}
	// Coordinates, not positions: the same (worker, index) pair keeps its
	// seed when the level list changes, and distinct levels differ.
	a1 := buildRequests(cfg, 1)
	a4 := buildRequests(cfg, 4)
	if a1[0][0].Seed == a4[0][0].Seed {
		t.Error("different levels share request seeds")
	}
}

// TestSortloadEndToEnd drives a real in-process sortd at two concurrency
// levels and checks the benchmark artifact.
func TestSortloadEndToEnd(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_sortd.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-conc", "1,2",
		"-jobs", "6",
		"-n", "5000",
		"-alg", "msd",
		"-mode", "auto",
		"-out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("sortload: %v\n%s", err, stdout.String())
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(report.Levels) != 2 {
		t.Fatalf("artifact has %d levels, want 2", len(report.Levels))
	}
	for _, lvl := range report.Levels {
		if lvl.Jobs != 6 || lvl.Errors != 0 {
			t.Errorf("level %d: jobs=%d errors=%d", lvl.Concurrency, lvl.Jobs, lvl.Errors)
		}
		if lvl.P50Millis <= 0 || lvl.P99Millis < lvl.P50Millis {
			t.Errorf("level %d: implausible latency summary %+v", lvl.Concurrency, lvl)
		}
		if lvl.JobsPerSec <= 0 {
			t.Errorf("level %d: jobs/sec = %v", lvl.Concurrency, lvl.JobsPerSec)
		}
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("stdout missing artifact line:\n%s", stdout.String())
	}
}

// TestSortloadStream drives the streaming job class end to end: every
// job goes through POST /v1/sort/stream, and postJob rejects results
// that lack the extsort audit.
func TestSortloadStream(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 16, StreamDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_sortd_stream.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-conc", "2",
		"-jobs", "4",
		"-n", "20000",
		"-alg", "msd",
		"-mode", "hybrid",
		"-stream",
		"-runsize", "3000",
		"-out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("sortload -stream: %v\n%s", err, stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if !report.Config.Stream || report.Config.RunSize != 3000 {
		t.Errorf("artifact config does not record streaming: %+v", report.Config)
	}
	if len(report.Levels) != 1 || report.Levels[0].Errors != 0 {
		t.Fatalf("streaming level summary: %+v", report.Levels)
	}
	if report.Levels[0].HybridJobs != 4 {
		t.Errorf("hybrid jobs = %d, want 4", report.Levels[0].HybridJobs)
	}
}

func TestSortloadStreamRejectsNearlySorted(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-stream", "-dist", "nearlysorted"}, &out); err == nil {
		t.Error("-stream with nearlysorted accepted")
	}
}

func TestSortloadFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-conc", "0"}, &out); err == nil {
		t.Error("-conc 0 accepted")
	}
	if err := run([]string{"-conc", "abc"}, &out); err == nil {
		t.Error("-conc abc accepted")
	}
	if err := run([]string{"-jobs", "0"}, &out); err == nil {
		t.Error("-jobs 0 accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("-n 0 accepted")
	}
	if _, err := parseLevels("1, 2,4"); err != nil {
		t.Errorf("spaced levels rejected: %v", err)
	}
}
