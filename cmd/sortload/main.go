// Command sortload is the closed-loop load generator for sortd: at each
// target concurrency level it keeps exactly that many synchronous jobs in
// flight, measures per-job latency, and emits a latency/throughput summary
// (p50/p90/p99, jobs/sec) to stdout and a JSON benchmark artifact.
//
// The generated job stream is deterministic: every request's dataset seed
// and run seed derive from the stream coordinates (base seed, concurrency
// level, worker index, request index) via rng.Split, never from time or
// arrival order — rerunning the same invocation replays the identical job
// stream, so two BENCH files differ only in timing, not in work.
//
// Usage:
//
//	go run ./cmd/sortload -addr http://127.0.0.1:8080 \
//	    [-conc 1,4] [-jobs 32] [-n 100000] [-alg auto] [-t 0.055] \
//	    [-backend pcm-mlc] [-dist uniform] [-seed 1] [-out BENCH_sortd.json]
//
// With -nodes the tool instead drives POST /v1/sort/sharded against a
// coordinator: one round per listed shard-count cap, reporting aggregate
// and per-node throughput so a 1-vs-3-node run shows the scaling curve:
//
//	go run ./cmd/sortload -addr http://127.0.0.1:8090 -nodes 1,3 \
//	    -jobs 4 -n 2000000 -runsize 262144 -out BENCH_cluster.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"approxsort/internal/rng"
	"approxsort/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sortload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// loadConfig is the parsed invocation.
type loadConfig struct {
	Addr   string  `json:"addr"`
	Levels []int   `json:"concurrency_levels,omitempty"`
	Jobs   int     `json:"jobs_per_level"`
	N      int     `json:"n"`
	Dist   string  `json:"dist"`
	Alg    string  `json:"algorithm"`
	Bits   int     `json:"bits"`
	Mode    string  `json:"mode"`
	Backend string  `json:"backend,omitempty"`
	T       float64 `json:"t"`
	Seed    uint64  `json:"seed"`
	// Stream switches the generated jobs to POST /v1/sort/stream
	// (out-of-core external sorts over server-generated dataset streams);
	// RunSize is each streaming job's in-memory run budget.
	Stream  bool `json:"stream,omitempty"`
	RunSize int  `json:"run_size,omitempty"`
	// Nodes switches to the multi-node sweep: each entry is a shard-count
	// cap for one round of POST /v1/sort/sharded jobs against the
	// coordinator, so one invocation measures the same work at (say) 1
	// and 3 shards and reports per-node throughput and scaling.
	Nodes  []int  `json:"nodes,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	out    string
	client *http.Client
}

// levelSummary is one concurrency level's measured outcome.
type levelSummary struct {
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	Errors      int     `json:"errors"`
	Retries429  int     `json:"retries_429"`
	HybridJobs  int     `json:"hybrid_jobs"`
	PreciseJobs int     `json:"precise_jobs"`
	P50Millis   float64 `json:"p50_ms"`
	P90Millis   float64 `json:"p90_ms"`
	P99Millis   float64 `json:"p99_ms"`
	MeanMillis  float64 `json:"mean_ms"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	WallMillis  float64 `json:"wall_ms"`
}

// shardSummary is one shard-count round's measured outcome in the
// multi-node sweep.
type shardSummary struct {
	// ShardCap is the requested max_shards; Shards the fan-out the
	// planner actually chose (identical across the round's jobs — the
	// stream is deterministic).
	ShardCap int `json:"shard_cap"`
	Shards   int `json:"shards"`
	Jobs     int `json:"jobs"`
	Errors   int `json:"errors"`
	// Verified counts jobs whose full cross-shard audit chain passed.
	Verified   int     `json:"verified"`
	MeanMillis float64 `json:"mean_ms"`
	// RecordsPerSec is the round's aggregate sort throughput; PerNode
	// divides by the fan-out — flat PerNode across rounds is linear
	// scaling. Speedup is this round's throughput over the first
	// round's.
	RecordsPerSec float64 `json:"records_per_sec"`
	PerNode       float64 `json:"records_per_sec_per_node"`
	Speedup       float64 `json:"speedup"`
}

// benchReport is the BENCH_sortd.json / BENCH_cluster.json schema.
type benchReport struct {
	Tool    string         `json:"tool"`
	Config  loadConfig     `json:"config"`
	Levels  []levelSummary `json:"levels,omitempty"`
	Sharded []shardSummary `json:"sharded,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sortload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", "http://127.0.0.1:8080", "sortd base URL")
	conc := fs.String("conc", "1,4", "comma-separated target concurrency levels")
	jobs := fs.Int("jobs", 32, "jobs per concurrency level")
	n := fs.Int("n", 100000, "keys per job (generated server-side)")
	dist := fs.String("dist", "uniform", "dataset kind: uniform|sorted|reverse|nearlysorted|fewdistinct|zipf")
	alg := fs.String("alg", "auto", "algorithm: auto (registry-selected) or a registered name — see GET /v1/algorithms (quicksort|mergesort|lsd|msd|onesweep-lsd)")
	bits := fs.Int("bits", 0, "radix digit width (0 = the algorithm's registered default)")
	mode := fs.String("mode", "auto", "execution mode: auto|hybrid|precise")
	backend := fs.String("backend", "", "memory backend (see GET /v1/backends; empty = server default pcm-mlc)")
	tFlag := fs.Float64("t", 0.055, "target half-width T (pcm-mlc only; ignored for other backends)")
	seed := fs.Uint64("seed", 1, "base seed for the deterministic job stream")
	stream := fs.Bool("stream", false, "drive POST /v1/sort/stream (out-of-core external sorts) instead of /v1/sort")
	runSize := fs.Int("runsize", 0, "streaming jobs' in-memory run budget in records (0 = server default)")
	nodes := fs.String("nodes", "", "comma-separated shard-count caps for the multi-node sweep (drives POST /v1/sort/sharded)")
	tenant := fs.String("tenant", "sortload", "tenant identity for sharded jobs (placement + quota)")
	out := fs.String("out", "BENCH_sortd.json", "benchmark artifact path")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	levels, err := parseLevels(*conc)
	if err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1, got %d", *jobs)
	}
	if *n < 1 {
		return fmt.Errorf("-n must be at least 1, got %d", *n)
	}
	cfg := loadConfig{
		Addr: strings.TrimRight(*addr, "/"), Levels: levels, Jobs: *jobs,
		N: *n, Dist: *dist, Alg: *alg, Bits: *bits, Mode: *mode,
		Backend: *backend, T: *tFlag, Seed: *seed,
		Stream: *stream, RunSize: *runSize, Tenant: *tenant, out: *out,
		client: &http.Client{Timeout: *timeout},
	}
	if *nodes != "" {
		if cfg.Nodes, err = parseLevels(*nodes); err != nil {
			return fmt.Errorf("-nodes: %v", err)
		}
		cfg.Levels = nil // the sweep axis is shard caps, not client concurrency
	}
	if (cfg.Stream || cfg.Nodes != nil) && cfg.Dist == "nearlysorted" {
		return fmt.Errorf("nearlysorted input is not streamable")
	}
	// t is the pcm-mlc half-width; the server rejects it for other
	// backends, whose operating points come from their schema defaults.
	if cfg.Backend != "" && cfg.Backend != "pcm-mlc" {
		cfg.T = 0
	}
	if cfg.Nodes != nil {
		return driveSharded(cfg, stdout)
	}
	return drive(cfg, stdout)
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, c)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("-conc names no levels")
	}
	return levels, nil
}

// buildRequests lays out the deterministic job stream for one concurrency
// level: requests[w][i] is worker w's i-th job. Jobs split across workers
// round-robin by index; every request's seeds are a pure function of
// (base seed, level, worker, index), so reruns and different worker
// interleavings replay identical work.
func buildRequests(cfg loadConfig, level int) [][]server.SortRequest {
	reqs := make([][]server.SortRequest, level)
	for j := 0; j < cfg.Jobs; j++ {
		w := j % level
		i := len(reqs[w])
		reqs[w] = append(reqs[w], server.SortRequest{
			Dataset: &server.DatasetSpec{
				Kind: cfg.Dist,
				N:    cfg.N,
				Seed: rng.Split(cfg.Seed, "sortload", "dataset", level, w, i),
			},
			Algorithm: cfg.Alg,
			Bits:      cfg.Bits,
			Mode:      cfg.Mode,
			Backend:   cfg.Backend,
			T:         cfg.T,
			Seed:      rng.Split(cfg.Seed, "sortload", "run", level, w, i),
		})
	}
	return reqs
}

// jobOutcome is one completed request's measurement.
type jobOutcome struct {
	latency time.Duration
	mode    string
	retries int
	err     error
}

// drive runs every concurrency level and writes the report.
func drive(cfg loadConfig, stdout io.Writer) error {
	report := benchReport{Tool: "sortload", Config: cfg}
	for _, level := range cfg.Levels {
		summary, err := driveLevel(cfg, level)
		if err != nil {
			return err
		}
		report.Levels = append(report.Levels, summary)
		fmt.Fprintf(stdout,
			"conc=%-3d jobs=%-4d errors=%d  p50=%.1fms p90=%.1fms p99=%.1fms mean=%.1fms  %.2f jobs/s (hybrid %d / precise %d, 429 retries %d)\n",
			summary.Concurrency, summary.Jobs, summary.Errors,
			summary.P50Millis, summary.P90Millis, summary.P99Millis, summary.MeanMillis,
			summary.JobsPerSec, summary.HybridJobs, summary.PreciseJobs, summary.Retries429)
	}

	if cfg.out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", cfg.out)
	}
	return nil
}

// driveLevel keeps `level` workers in closed loop until their job lists
// drain, then summarizes.
func driveLevel(cfg loadConfig, level int) (levelSummary, error) {
	reqs := buildRequests(cfg, level)
	outcomes := make([][]jobOutcome, level)
	start := time.Now() //nolint:detrand // wall-clock by design: the load generator measures real throughput
	var wg sync.WaitGroup
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, req := range reqs[w] {
				outcomes[w] = append(outcomes[w], postJob(cfg, req))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start) //nolint:detrand // wall-clock by design: real elapsed time is the benchmark output

	summary := levelSummary{Concurrency: level, WallMillis: float64(wall.Milliseconds())}
	var latencies []float64
	var sum float64
	for w := range outcomes {
		for _, o := range outcomes[w] {
			summary.Jobs++
			summary.Retries429 += o.retries
			if o.err != nil {
				summary.Errors++
				continue
			}
			ms := float64(o.latency) / float64(time.Millisecond)
			latencies = append(latencies, ms)
			sum += ms
			switch o.mode {
			case server.ModeHybrid:
				summary.HybridJobs++
			case server.ModePrecise:
				summary.PreciseJobs++
			}
		}
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		summary.P50Millis = quantile(latencies, 0.50)
		summary.P90Millis = quantile(latencies, 0.90)
		summary.P99Millis = quantile(latencies, 0.99)
		summary.MeanMillis = sum / float64(len(latencies))
	}
	if secs := wall.Seconds(); secs > 0 {
		summary.JobsPerSec = float64(summary.Jobs-summary.Errors) / secs
	}
	if summary.Errors == summary.Jobs {
		return summary, fmt.Errorf("concurrency %d: every job failed (first: %v)",
			level, firstError(outcomes))
	}
	return summary, nil
}

// postJob runs one synchronous job, retrying on 429 backpressure (the
// closed loop can still overrun the queue when the daemon serves other
// clients).
func postJob(cfg loadConfig, req server.SortRequest) jobOutcome {
	route := "/v1/sort?wait=1"
	var payload any = req
	if cfg.Stream {
		// Same deterministic coordinates, driven through the streaming
		// job class: the server generates the dataset as a stream and
		// runs the out-of-core external sort.
		route = "/v1/sort/stream?wait=1"
		payload = server.StreamRequest{
			Dataset:   req.Dataset,
			Algorithm: req.Algorithm,
			Bits:      req.Bits,
			Mode:      req.Mode,
			Backend:   req.Backend,
			T:         req.T,
			Seed:      req.Seed,
			RunSize:   cfg.RunSize,
		}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return jobOutcome{err: err}
	}
	var out jobOutcome
	start := time.Now() //nolint:detrand // wall-clock by design: per-request latency measurement
	for {
		resp, err := cfg.client.Post(cfg.Addr+route, "application/json", bytes.NewReader(body))
		if err != nil {
			out.err = err
			return out
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			out.retries++
			if out.retries > 1000 {
				out.err = fmt.Errorf("giving up after %d 429s", out.retries)
				return out
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var job server.Job
		decErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		out.latency = time.Since(start) //nolint:detrand // wall-clock by design: per-request latency measurement
		switch {
		case resp.StatusCode != http.StatusOK:
			out.err = fmt.Errorf("status %d", resp.StatusCode)
		case decErr != nil:
			out.err = decErr
		case job.Status != server.StatusDone:
			out.err = fmt.Errorf("job %s: %s %s", job.ID, job.Status, job.Error)
		case job.Result == nil || !job.Result.Sorted:
			out.err = fmt.Errorf("job %s: result missing or unsorted", job.ID)
		case cfg.Stream && (!job.Result.Verified || job.Result.Extsort == nil):
			out.err = fmt.Errorf("job %s: streaming result missing extsort audit (verified=%v)",
				job.ID, job.Result.Verified)
		default:
			out.mode = job.Result.Mode
		}
		return out
	}
}

// driveSharded runs the multi-node sweep: one round of sharded sorts
// per -nodes entry, same deterministic job stream each round, so the
// rounds differ only in the shard-count cap. Per-node throughput staying
// flat while aggregate throughput grows with the cap is the linear-
// scaling signature the sweep exists to measure.
func driveSharded(cfg loadConfig, stdout io.Writer) error {
	report := benchReport{Tool: "sortload", Config: cfg}
	var base float64
	for _, cap := range cfg.Nodes {
		summary := shardSummary{ShardCap: cap}
		var sum float64
		start := time.Now() //nolint:detrand // wall-clock by design: the load generator measures real throughput
		for i := 0; i < cfg.Jobs; i++ {
			out, shards, verified := postShardedJob(cfg, cap, i)
			summary.Jobs++
			if out.err != nil {
				summary.Errors++
				continue
			}
			if verified {
				summary.Verified++
			}
			summary.Shards = shards
			sum += float64(out.latency) / float64(time.Millisecond)
		}
		wall := time.Since(start) //nolint:detrand // wall-clock by design: real elapsed time is the benchmark output
		done := summary.Jobs - summary.Errors
		if done > 0 {
			summary.MeanMillis = sum / float64(done)
		}
		if secs := wall.Seconds(); secs > 0 {
			summary.RecordsPerSec = float64(done) * float64(cfg.N) / secs
		}
		if summary.Shards > 0 {
			summary.PerNode = summary.RecordsPerSec / float64(summary.Shards)
		}
		if base == 0 && summary.RecordsPerSec > 0 {
			base = summary.RecordsPerSec
		}
		if base > 0 {
			summary.Speedup = summary.RecordsPerSec / base
		}
		if summary.Errors == summary.Jobs {
			return fmt.Errorf("shard cap %d: every job failed", cap)
		}
		report.Sharded = append(report.Sharded, summary)
		fmt.Fprintf(stdout,
			"nodes=%-2d shards=%-2d jobs=%-3d errors=%d verified=%d  mean=%.1fms  %.0f rec/s (%.0f rec/s/node, speedup %.2fx)\n",
			cap, summary.Shards, summary.Jobs, summary.Errors, summary.Verified,
			summary.MeanMillis, summary.RecordsPerSec, summary.PerNode, summary.Speedup)
	}

	if cfg.out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", cfg.out)
	}
	return nil
}

// postShardedJob runs one synchronous sharded sort and reports the
// fan-out the coordinator chose and whether the cross-shard audit chain
// verified.
func postShardedJob(cfg loadConfig, cap, i int) (jobOutcome, int, bool) {
	payload := server.ShardedRequest{
		StreamRequest: server.StreamRequest{
			Dataset: &server.DatasetSpec{
				Kind: cfg.Dist,
				N:    cfg.N,
				Seed: rng.Split(cfg.Seed, "sortload", "sharded", "dataset", cap, i),
			},
			Algorithm: cfg.Alg,
			Bits:      cfg.Bits,
			Mode:      cfg.Mode,
			Backend:   cfg.Backend,
			T:         cfg.T,
			Seed:      rng.Split(cfg.Seed, "sortload", "sharded", "run", cap, i),
			RunSize:   cfg.RunSize,
		},
		Tenant:    cfg.Tenant,
		MaxShards: cap,
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return jobOutcome{err: err}, 0, false
	}
	var out jobOutcome
	start := time.Now() //nolint:detrand // wall-clock by design: per-request latency measurement
	for {
		resp, err := cfg.client.Post(cfg.Addr+"/v1/sort/sharded?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			out.err = err
			return out, 0, false
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			out.retries++
			if out.retries > 1000 {
				out.err = fmt.Errorf("giving up after %d 429s", out.retries)
				return out, 0, false
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var job server.Job
		decErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		out.latency = time.Since(start) //nolint:detrand // wall-clock by design: per-request latency measurement
		switch {
		case resp.StatusCode != http.StatusOK:
			out.err = fmt.Errorf("status %d", resp.StatusCode)
		case decErr != nil:
			out.err = decErr
		case job.Status != server.StatusDone:
			out.err = fmt.Errorf("job %s: %s %s", job.ID, job.Status, job.Error)
		case job.Result == nil || job.Result.Cluster == nil:
			out.err = fmt.Errorf("job %s: result missing cluster ledger", job.ID)
		case !job.Result.Verified:
			out.err = fmt.Errorf("job %s: cross-shard audit chain not verified", job.ID)
		default:
			out.mode = job.Result.Mode
			return out, len(job.Result.Cluster.Shards), job.Result.Cluster.Verified
		}
		return out, 0, false
	}
}

// quantile returns the q-quantile of sorted values by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func firstError(outcomes [][]jobOutcome) error {
	for _, ws := range outcomes {
		for _, o := range ws {
			if o.err != nil {
				return o.err
			}
		}
	}
	return nil
}
