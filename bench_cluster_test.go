package approxsort_test

// Multi-node benchmarks behind BENCH_cluster.json. These measure the
// sharded-sortd pipeline's moving parts — the shard router, the
// cross-shard merge primitive, and a full coordinator sort over an
// in-process fleet — at sizes that force real fan-out while staying
// bench-friendly. The full-scale scaling sweep is `sortload -nodes 1,3`
// against a real fleet (the cluster-smoke CI job).

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net/http/httptest"
	"sort"
	"testing"

	"approxsort/internal/cluster"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/server"
	"approxsort/internal/verify"
)

const benchClusterN = 300000

func benchEncode(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[4*i:], k)
	}
	return out
}

// benchFleet builds an in-process shard fleet and a coordinator over it.
func benchFleet(b *testing.B, shards, maxShards int) *cluster.Coordinator {
	b.Helper()
	nodes := make([]string, shards)
	for i := range nodes {
		s := server.New(server.Config{Workers: 2, StreamDir: b.TempDir()})
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		b.Cleanup(func() { s.Shutdown(context.Background()) })
		nodes[i] = ts.URL
	}
	co, err := cluster.New(cluster.Config{
		Nodes:      nodes,
		Job:        cluster.JobParams{Mode: "auto", T: 0.055, Seed: benchSeed},
		MaxShards:  maxShards,
		MemBudget:  benchClusterN / 12,
		TempDir:    b.TempDir(),
		NewAuditor: func(w io.Writer) cluster.StreamAuditor { return verify.NewStreamChecker(w) },
		WrapShard:  verify.WrapShards(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return co
}

func benchClusterSort(b *testing.B, shards, maxShards int) {
	co := benchFleet(b, shards, maxShards)
	raw := benchEncode(dataset.Uniform(benchClusterN, benchSeed))
	b.SetBytes(4 * benchClusterN)
	b.ResetTimer()
	var stats cluster.Stats
	for i := 0; i < b.N; i++ {
		st, err := co.Sort(context.Background(), bytes.NewReader(raw), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Verified {
			b.Fatal("cluster sort not verified")
		}
		stats = st
	}
	b.ReportMetric(float64(len(stats.Shards)), "shards")
}

// BenchmarkClusterSort3Shards is the headline multi-node configuration:
// sample, partition, three verified shard jobs, and the range-pinned
// audited cross-shard merge.
func BenchmarkClusterSort3Shards(b *testing.B) { benchClusterSort(b, 3, 0) }

// BenchmarkClusterSort1Shard pins the fan-out to one node over the same
// input — the coordination overhead baseline the 3-shard run amortizes.
func BenchmarkClusterSort1Shard(b *testing.B) { benchClusterSort(b, 3, 1) }

// BenchmarkClusterMergeReaders isolates the cross-shard merge primitive:
// a k-way tournament over pre-sorted shard streams under one precise
// write accountant.
func BenchmarkClusterMergeReaders(b *testing.B) {
	const parts = 4
	per := benchClusterN / parts
	streams := make([][]byte, parts)
	counts := make([]int64, parts)
	for i := range streams {
		keys := dataset.Uniform(per, benchSeed+uint64(i))
		sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
		streams[i] = benchEncode(keys)
		counts[i] = int64(per)
	}
	b.SetBytes(int64(4 * per * parts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readers := make([]io.Reader, parts)
		for j := range readers {
			readers[j] = bytes.NewReader(streams[j])
		}
		ms, err := extsort.MergeReaders(readers, counts, io.Discard, 0)
		if err != nil {
			b.Fatal(err)
		}
		if ms.Writes != int64(per*parts) {
			b.Fatalf("MergeWrites = %d", ms.Writes)
		}
	}
}

// BenchmarkClusterRoute measures the shard router: one Route call per
// key against sampled splitters, the per-record cost of partitioning.
func BenchmarkClusterRoute(b *testing.B) {
	keys := dataset.Uniform(benchClusterN, benchSeed)
	part, err := cluster.NewPartitioner([]uint32{1 << 30, 1 << 31, 3 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 * benchClusterN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			part.Route(k)
		}
	}
}
