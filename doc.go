// Package approxsort is a reproduction of "A Study of Sorting Algorithms
// on Approximate Memory" (Chen, Jiang, He, Tang — SIGMOD 2016): sorting on
// a hybrid memory system that pairs precise multi-level-cell PCM with
// approximate PCM whose narrowed program-and-verify guard bands trade
// occasional storage errors for up to ~50% lower write latency.
//
// The repository contains, all stdlib-only:
//
//   - the MLC PCM cell model with Monte-Carlo calibration (internal/mlc)
//     and the approximate spintronic model of Appendix A
//     (internal/spintronic);
//   - instrumented hybrid-memory arrays with full latency/energy
//     accounting (internal/mem), plus the Table 1 cache hierarchy
//     (internal/cache), banked PCM timing simulator (internal/pcm), trace
//     infrastructure (internal/trace) and system glue (internal/hybrid);
//   - the four studied sorting algorithms (internal/sorts), the
//     histogram-based radix sorts of Appendix B (internal/histsort) and an
//     adaptive-sort refine baseline (internal/adaptive);
//   - the paper's core contribution, the approx-refine execution mechanism
//     with its Section 4.3 cost model (internal/core);
//   - one experiment function per table/figure (internal/experiments), the
//     cmd/ harnesses that print them, and benchmarks in bench_test.go.
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
package approxsort
