module approxsort

go 1.22
