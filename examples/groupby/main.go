// groupby: sort-based aggregation on approximate memory — the paper's
// named future-work direction ("other database operations (such as
// aggregations) on approximate hardware") taken the conservative way: the
// approximate hardware accelerates the ORDER BY, the grouping pass stays
// precise, so GROUP BY results are exact.
//
// The example aggregates a skewed sales table by product ID and
// cross-checks the result against a plain hash aggregation.
//
// Run with:
//
//	go run ./examples/groupby
package main

import (
	"fmt"
	"log"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/relation"
	"approxsort/internal/sorts"
)

func main() {
	log.SetFlags(0)
	const n = 300_000

	// Synthesize sales: Zipf-skewed product IDs, per-sale amounts.
	products := dataset.Zipf(n, 2000, 1.3, 13)
	amounts := make([]int64, n)
	for i := range amounts {
		amounts[i] = int64(100 + (i*37)%900) // cents
	}
	table, err := relation.NewTable(
		&relation.Uint32Column{ColName: "product", Values: products},
		&relation.Int64Column{ColName: "amount", Values: amounts},
	)
	if err != nil {
		log.Fatal(err)
	}

	groups, report, err := table.GroupBySorted("product", "amount", core.Config{
		Algorithm: sorts.LSD{Bits: 6},
		T:         0.055,
		Seed:      13,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GROUP BY product over %d sales: %d groups, write reduction %.2f%%\n\n",
		n, len(groups), 100*report.WriteReduction())

	// Show the three best sellers by count.
	best := groups[0]
	var second, third relation.GroupAgg
	for _, g := range groups {
		switch {
		case g.Count > best.Count:
			third, second, best = second, best, g
		case g.Count > second.Count:
			third, second = second, g
		case g.Count > third.Count:
			third = g
		}
	}
	fmt.Println("top products by sale count:")
	for _, g := range []relation.GroupAgg{best, second, third} {
		fmt.Printf("  product %10d  sales=%6d  revenue=$%d.%02d\n",
			g.Key, g.Count, g.Sum/100, g.Sum%100)
	}

	// Cross-check against a hash aggregation in plain Go.
	counts := make(map[uint32]int, len(groups))
	sums := make(map[uint32]int64, len(groups))
	for i, p := range products {
		counts[p]++
		sums[p] += amounts[i]
	}
	if len(counts) != len(groups) {
		log.Fatalf("group count mismatch: %d vs %d", len(groups), len(counts))
	}
	for _, g := range groups {
		if counts[g.Key] != g.Count || sums[g.Key] != g.Sum {
			log.Fatalf("aggregation wrong for product %d", g.Key)
		}
	}
	fmt.Println("\ncross-check vs hash aggregation: identical ✔")
}
