// diskorder: sorting a dataset that does not fit in memory — the paper's
// Section 4.1 note made concrete: "If the data is initially in the hard
// disk, we need to adopt more advanced external memory sorting algorithms,
// for which the proposed approx-refine scheme can be used in their
// in-memory sorting steps."
//
// The example writes a key file to a temp directory, external-sorts it
// with approx-refine run formation (internal/extsort), and verifies the
// output file is exactly sorted.
//
// Run with:
//
//	go run ./examples/diskorder
package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/sorts"
)

func main() {
	log.SetFlags(0)
	const n = 2_000_000
	dir, err := os.MkdirTemp("", "diskorder-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	inPath := filepath.Join(dir, "keys.bin")
	outPath := filepath.Join(dir, "sorted.bin")
	writeKeys(inPath, dataset.Uniform(n, 99))

	in, err := os.Open(inPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	stats, err := extsort.SortStream(in, out, extsort.Config{
		Core:    core.Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.055, Seed: 99},
		RunSize: 250_000, // pretend only 1 MB of record memory is available
		FanIn:   4,
		TempDir: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("external sort of %d records: %d runs, %d merge pass(es)\n",
		stats.Records, stats.Runs, stats.MergePasses)
	fmt.Printf("run formation on approximate memory: %.1f ms of write latency, Rem~ total %d\n",
		stats.HybridWriteNanos/1e6, stats.RemTildeTotal)

	verify(outPath, n)
	fmt.Println("output file verified: fully sorted ✔")
}

func writeKeys(path string, keys []uint32) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var word [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(word[:], k)
		if _, err := bw.Write(word[:]); err != nil {
			log.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func verify(path string, n int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var word [4]byte
	prev := uint32(0)
	count := 0
	for {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			if err == io.EOF {
				break
			}
			log.Fatal(err)
		}
		k := binary.LittleEndian.Uint32(word[:])
		if count > 0 && k < prev {
			log.Fatalf("output unsorted at record %d", count)
		}
		prev = k
		count++
	}
	if count != n {
		log.Fatalf("output has %d records, want %d", count, n)
	}
}
