// dbsort: a database-style ORDER BY over <Key, RecordID> pairs — the
// workload the paper's design centers on (Section 4.1): record IDs are the
// payload that lets query processing continue from the sorted result, so
// they must stay attached to their keys with bit-exact precision.
//
// The example builds a toy "orders" table, sorts it by order total through
// the approx-refine engine, uses the returned ID permutation to fetch the
// top rows, and cross-checks the result against a plain precise sort.
//
// Run with:
//
//	go run ./examples/dbsort
package main

import (
	"fmt"
	"log"
	"sort"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

// order is one row of the toy table. Only the total participates in the
// sort; the rest rides along via the record ID, exactly like the paper's
// <Key, ID> layout.
type order struct {
	customer string
	items    int
	total    uint32 // cents
}

func main() {
	log.SetFlags(0)
	const n = 400_000

	// Synthesize the table: Zipf-skewed totals, like real sales data.
	totals := dataset.Zipf(n, 5000, 1.1, 7)
	table := make([]order, n)
	for i := range table {
		table[i] = order{
			customer: fmt.Sprintf("customer-%05d", i%50000),
			items:    1 + i%7,
			total:    totals[i],
		}
	}

	// ORDER BY total, offloaded to approximate memory.
	keys := make([]uint32, n)
	for i, row := range table {
		keys[i] = row.total
	}
	res, err := core.Run(keys, core.Config{
		Algorithm: sorts.LSD{Bits: 6},
		T:         0.055,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ORDER BY total over %d rows: write reduction %.2f%% (Rem~=%d)\n\n",
		n, 100*res.Report.WriteReduction(), res.Report.RemTilde)

	// The ID permutation recovers whole rows from the sorted keys.
	fmt.Println("top 5 orders by total:")
	for i := 0; i < 5; i++ {
		row := table[res.IDs[n-1-i]]
		fmt.Printf("  %s  items=%d  total=$%d.%02d\n",
			row.customer, row.items, row.total/100, row.total%100)
	}

	// Cross-check against the host language's own sort.
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if res.Keys[i] != want[i] {
			log.Fatalf("precision violated at row %d", i)
		}
		if table[res.IDs[i]].total != res.Keys[i] {
			log.Fatalf("record ID detached from its row at %d", i)
		}
	}
	fmt.Println("\ncross-check vs precise sort: identical ✔")
}
