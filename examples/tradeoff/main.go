// tradeoff: the Step 1 study of the paper as a library user would run it —
// sweep the guard-band knob T and print the sortedness-versus-write-latency
// frontier for an application that can tolerate a nearly sorted result
// (say, a top-k dashboard refreshed every second).
//
// The output shows the paper's central trade-off: around T=0.055 the
// sequence is still ~99% sorted while write latency drops by a third;
// past T~0.07 disorder explodes faster than latency falls.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"

	"approxsort/internal/dataset"
	"approxsort/internal/experiments"
	"approxsort/internal/sorts"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	const n = 100_000
	alg := sorts.Quicksort{}
	keys := dataset.Uniform(n, 11)

	fmt.Printf("sortedness vs write latency: %s over %d keys in approximate memory only\n\n", alg.Name(), n)
	tab := stats.NewTable("T", "write reduction", "Rem ratio", "sorted enough for top-k?")
	for _, t := range []float64{0.025, 0.04, 0.055, 0.07, 0.085, 0.1} {
		row, err := experiments.SortOnly(alg, t, keys, 11)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "yes"
		if row.RemRatio > 0.05 {
			verdict = "no - refine or lower T"
		}
		tab.AddRow(row.T, row.WriteReduction, row.RemRatio, verdict)
	}
	if err := tab.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWith the approx-refine engine (see examples/quickstart) the same")
	fmt.Println("hardware produces *precise* output at a smaller - but still real - saving.")
}
