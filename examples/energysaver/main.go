// energysaver: the Appendix A scenario — a battery-constrained device with
// approximate spintronic memory picks the write-energy operating point
// that still yields precise sorted output at the best total energy.
//
// The example sweeps the four published operating points (per-write energy
// saving vs per-bit error probability), runs approx-refine at each, and
// recommends the point with the largest end-to-end saving; it demonstrates
// that the engine is model-agnostic: the same code that runs on MLC PCM
// runs here on a completely different error/energy model.
//
// Run with:
//
//	go run ./examples/energysaver
package main

import (
	"fmt"
	"log"
	"os"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
	"approxsort/internal/stats"
)

func main() {
	log.SetFlags(0)
	const n = 200_000
	keys := dataset.Uniform(n, 21)
	alg := sorts.MSD{Bits: 3}

	fmt.Printf("picking a spintronic operating point: %s over %d records\n\n", alg.Name(), n)
	tab := stats.NewTable("saving/write", "bit error prob", "Rem~/n", "total energy saving", "precise?")
	best, bestSaving := spintronic.Config{}, -1.0
	for _, cfg := range spintronic.Presets() {
		cfg := cfg
		res, err := core.Run(keys, core.Config{
			Algorithm: alg,
			NewSpace:  func(seed uint64) core.Space { return spintronic.NewSpace(cfg, seed) },
			Seed:      21,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		tab.AddRow(
			fmt.Sprintf("%.0f%%", cfg.Saving*100),
			cfg.BitErrorProb,
			r.RemTildeRatio(),
			r.EnergySaving(),
			r.Sorted,
		)
		if r.Sorted && r.EnergySaving() > bestSaving {
			best, bestSaving = cfg, r.EnergySaving()
		}
	}
	if err := tab.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if bestSaving < 0 {
		fmt.Println("\nno operating point beats precise-only memory at this size;")
		fmt.Println("the cost model (core.CostModel.UseHybrid) would fall back to a precise sort.")
		return
	}
	fmt.Printf("\nrecommended: %.0f%% per-write saving (bit error %.0e) -> %.2f%% total write energy saved\n",
		best.Saving*100, best.BitErrorProb, 100*bestSaving)
	fmt.Println("output remains bit-exact: the refine stage absorbs the flips.")
}
