// Quickstart: the smallest end-to-end use of the approx-refine engine.
//
// It sorts one million uniformly random 32-bit keys on a hybrid
// precise/approximate memory system, prints the write-latency savings,
// and verifies the output is exactly the sorted input — the paper's core
// promise: approximate hardware, precise results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func main() {
	log.SetFlags(0)
	const n = 1_000_000

	keys := dataset.Uniform(n, 42)

	res, err := core.Run(keys, core.Config{
		Algorithm: sorts.MSD{Bits: 3}, // 3-bit MSD: the paper's best performer
		T:         0.055,              // the sweet-spot guard-band setting
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Report
	fmt.Printf("sorted %d keys with %s on approximate memory (T=%.3f)\n", r.N, r.Algorithm, r.T)
	fmt.Printf("  heuristic remainder Rem~: %d records (%.3f%% of n)\n", r.RemTilde, 100*r.RemTildeRatio())
	fmt.Printf("  total write latency: %.1f ms (precise-only baseline: %.1f ms)\n",
		r.Total().WriteNanos()/1e6, r.Baseline.WriteNanos/1e6)
	fmt.Printf("  write reduction (Eq. 2): %.2f%%\n", 100*r.WriteReduction())

	// The precision check: every output key equals the sorted input.
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i] < res.Keys[i-1] {
			log.Fatalf("output unsorted at %d — the refine stage is broken", i)
		}
	}
	fmt.Println("  output verified: fully sorted, bit-exact keys ✔")
}
