#!/bin/sh
# Regenerates every recorded result in results/. Sizes are chosen to finish
# in tens of minutes on a laptop; raise -n/-words toward the paper's 16M
# for tighter numbers.
set -e
cd "$(dirname "$0")/.."
go run ./cmd/mlcstudy   -words 1000000                 > results/fig2.txt
go run ./cmd/sortstudy  -table 3 -n 1000000            > results/table3.txt
go run ./cmd/sortstudy  -fig 4   -n 200000             > results/fig4.txt
go run ./cmd/sortstudy  -fig 6   -n 20000              > results/fig6_shapes.txt
go run ./cmd/refinestudy -fig 9  -n 100000             > results/fig9.txt
go run ./cmd/refinestudy -fig 10                        > results/fig10.txt
go run ./cmd/refinestudy -fig 11 -n 200000             > results/fig11.txt
go run ./cmd/refinestudy -memsim -n 100000             > results/memsim.txt
go run ./cmd/spinstudy  -fig 12  -n 200000             > results/fig12.txt
go run ./cmd/spinstudy  -fig 13  -n 200000             > results/fig13.txt
go run ./cmd/spinstudy  -fig 14  -n 200000             > results/fig14.txt
go run ./cmd/histstudy  -n 100000                       > results/fig15.txt

# Extension studies (features the paper names but does not evaluate).
go run ./cmd/sortstudy  -measures -n 50000              > results/measures.txt
go run ./cmd/mlcstudy   -density -words 100000          > results/density.txt
go run ./cmd/refinestudy -robust -n 50000               > results/robust.txt
go run ./cmd/refinestudy -memsim -n 30000 -seq 0.6      > results/memsim_seq.txt
echo DONE
