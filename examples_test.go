package approxsort_test

// Integration coverage for the runnable examples: each one is built and
// executed with `go run`, and its success markers are checked, so the
// examples can never rot. Skipped with -short (they sort up to 2M records).

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{"write reduction", "output verified: fully sorted"}},
		{"./examples/dbsort", []string{"top 5 orders", "cross-check vs precise sort: identical"}},
		{"./examples/tradeoff", []string{"sorted enough for top-k?", "refine or lower T"}},
		{"./examples/energysaver", []string{"total energy saving", "recommended:"}},
		{"./examples/groupby", []string{"top products", "cross-check vs hash aggregation: identical"}},
		{"./examples/diskorder", []string{"merge pass", "output file verified: fully sorted"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tc.dir, want, out)
				}
			}
		})
	}
}
