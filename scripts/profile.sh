#!/usr/bin/env bash
# Capture CPU (and optionally memory) profiles of the simulation-core
# hot path. Runs the BenchmarkCore* suite behind BENCH_core.json —
# table sampler, accounted Get/Set, refine at the roadmap sizes, one
# sortd job — and leaves pprof artifacts plus the test binary (pprof
# needs it for symbolization) under the output directory.
#
# Re-run this (and refresh BENCH_core.json) whenever the per-access
# path changes: mem.Space accounting, the mlc sampler, bulk
# GetSlice/SetSlice consumers, or the sorts inner loops. DESIGN.md §13
# documents the budget these profiles are checked against.
#
# Usage: scripts/profile.sh [outdir]   (default: /tmp/approxsort-prof)
#
# Inspect with:
#   go tool pprof -top   <outdir>/approxsort.test <outdir>/cpu.out
#   go tool pprof -http: <outdir>/approxsort.test <outdir>/cpu.out
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-/tmp/approxsort-prof}
mkdir -p "$OUT"

echo "== profiling BenchmarkCore* -> $OUT"
go test -run '^$' -bench 'BenchmarkCore' -benchtime 2x -count 1 \
  -cpuprofile "$OUT/cpu.out" \
  -memprofile "$OUT/mem.out" \
  -o "$OUT/approxsort.test" \
  .

echo "== top CPU consumers"
go tool pprof -top -nodecount 15 "$OUT/approxsort.test" "$OUT/cpu.out"

echo
echo "profiles: $OUT/cpu.out $OUT/mem.out (binary: $OUT/approxsort.test)"
