#!/usr/bin/env bash
# Ratchet gate for memlint: compare the current per-analyzer finding
# counts against the committed baseline (scripts/lint_baseline.json) and
# fail only on regressions. The baseline is all-zero today; it exists so
# a future justified exemption can land explicitly reviewed instead of
# silently growing.
#
# When counts fall below the baseline, memlint suggests tightening:
#
#   go run ./cmd/memlint -baseline scripts/lint_baseline.json -update-baseline ./...
#
# Usage: scripts/lint_ratchet.sh
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/memlint -baseline scripts/lint_baseline.json ./...
