#!/usr/bin/env bash
# Daemon lifecycle helpers for CI smoke jobs. Source this, then:
#
#   daemon_start NAME LOGFILE CMD...    start CMD in the background
#   daemon_wait_healthy NAME URL [SECS] poll URL until 200 (default 10s),
#                                       failing fast if the daemon died
#   daemon_stop NAME [SECS]             SIGTERM with a bounded wait
#                                       (default 10s), then SIGKILL + fail
#   daemon_stop_all [SECS]              daemon_stop every started daemon
#   daemon_dump_logs                    cat every daemon's log, labelled
#
# Every daemon-spawning job uses the same pattern:
#
#   source scripts/ci_daemon.sh
#   trap daemon_dump_logs ERR
#   daemon_start sortd /tmp/sortd.log /tmp/sortd -addr 127.0.0.1:18080
#   daemon_wait_healthy sortd http://127.0.0.1:18080/healthz
#   ...assertions...
#   daemon_stop_all
#
# The bounded SIGTERM wait is the point: an unbounded `wait` turns a
# wedged drain into a 6-hour CI hang, while an unchecked `kill` hides
# shutdown bugs. A daemon that outlives its drain budget fails the job.

declare -A CI_DAEMON_PID CI_DAEMON_LOG

daemon_start() {
  local name=$1 log=$2
  shift 2
  "$@" >"$log" 2>&1 &
  CI_DAEMON_PID[$name]=$!
  CI_DAEMON_LOG[$name]=$log
}

daemon_wait_healthy() {
  local name=$1 url=$2 secs=${3:-10}
  local i
  for i in $(seq 1 $((secs * 5))); do
    if curl -sf "$url" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${CI_DAEMON_PID[$name]}" 2>/dev/null; then
      echo "$name exited before becoming healthy" >&2
      return 1
    fi
    sleep 0.2
  done
  echo "$name not healthy at $url within ${secs}s" >&2
  return 1
}

daemon_stop() {
  local name=$1 secs=${2:-10} pid=${CI_DAEMON_PID[$name]}
  local i
  kill -TERM "$pid" 2>/dev/null || true
  for i in $(seq 1 $((secs * 5))); do
    if ! kill -0 "$pid" 2>/dev/null; then
      return 0
    fi
    sleep 0.2
  done
  echo "$name (pid $pid) did not exit within ${secs}s of SIGTERM" >&2
  kill -KILL "$pid" 2>/dev/null || true
  return 1
}

daemon_stop_all() {
  local rc=0 name
  for name in "${!CI_DAEMON_PID[@]}"; do
    daemon_stop "$name" "${1:-10}" || rc=1
  done
  return $rc
}

daemon_dump_logs() {
  local name
  for name in "${!CI_DAEMON_LOG[@]}"; do
    echo "--- $name log (${CI_DAEMON_LOG[$name]}) ---"
    cat "${CI_DAEMON_LOG[$name]}" 2>/dev/null || true
  done
}
