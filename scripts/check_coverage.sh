#!/usr/bin/env bash
# Ratcheted coverage gate.
#
# Compares the total statement coverage of a Go cover profile against the
# committed floor in scripts/coverage_floor.txt and fails when coverage
# drops below it. The floor only moves in one direction: when real
# coverage grows, raise the floor in the same PR (the script prints a
# reminder when there is >= 1 point of slack). Lowering the floor is a
# reviewed decision, not a drive-by.
#
# Usage: scripts/check_coverage.sh [profile]   (default: coverage.out)
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"
floor="$(tr -d '[:space:]' < "$here/coverage_floor.txt")"
profile="${1:-coverage.out}"

if [[ ! -f "$profile" ]]; then
  echo "check_coverage: profile '$profile' not found" >&2
  exit 2
fi

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $NF); print $NF}')"
if [[ -z "$total" ]]; then
  echo "check_coverage: could not parse total from $profile" >&2
  exit 2
fi

awk -v t="$total" -v f="$floor" 'BEGIN {
  if (t + 0 < f + 0) {
    printf "check_coverage: FAIL: total coverage %.1f%% is below the committed floor %.1f%%\n", t, f
    exit 1
  }
  printf "check_coverage: OK: total coverage %.1f%% >= floor %.1f%%\n", t, f
  if (t - f >= 1.0) {
    printf "check_coverage: note: %.1f points of slack — consider ratcheting scripts/coverage_floor.txt up\n", t - f
  }
}'
