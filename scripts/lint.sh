#!/usr/bin/env bash
# Single source of truth for static analysis. CI's lint jobs invoke this
# script, so local runs and CI cannot drift on flags or check sets.
#
# Runs, in order:
#   1. go vet            — the stock suite
#   2. staticcheck       — check set committed in staticcheck.conf
#                          (skipped with a notice when not installed;
#                          CI always installs it)
#   3. memlint           — the repo's own analyzer suite (cmd/memlint):
#                          detrand, memescape, floatord, verifygate,
#                          hotpath, nolintreason, ctxleak, lockorder,
#                          verdictcheck, bodyclose. See DESIGN.md §11
#                          and §16 (facts engine).
#
# Usage: scripts/lint.sh [--json FILE | --sarif FILE]
#   --json FILE   also write memlint findings as JSON to FILE
#   --sarif FILE  also write memlint findings as SARIF 2.1.0 to FILE
#                 (CI uploads this for code-scanning annotations)
set -euo pipefail
cd "$(dirname "$0")/.."

MEMLINT_FLAG=""
MEMLINT_FILE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --json)  MEMLINT_FLAG=-json  MEMLINT_FILE="$2"; shift 2 ;;
    --sarif) MEMLINT_FLAG=-sarif MEMLINT_FILE="$2"; shift 2 ;;
    *) echo "lint.sh: unknown argument $1" >&2; exit 64 ;;
  esac
done

echo "== go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ($(staticcheck -version 2>/dev/null | head -1))"
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping (CI installs honnef.co/go/tools/cmd/staticcheck)"
fi

echo "== memlint"
if [ -n "$MEMLINT_FLAG" ]; then
  # The machine-readable stream goes to the file. On findings memlint
  # exits 2 after the artifact is fully written, so CI can upload the
  # SARIF with `if: always()` and still fail the job.
  go run ./cmd/memlint "$MEMLINT_FLAG" ./... > "$MEMLINT_FILE"
else
  go run ./cmd/memlint ./...
fi

echo "lint: OK"
