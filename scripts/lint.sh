#!/usr/bin/env bash
# Single source of truth for static analysis. CI's lint jobs invoke this
# script, so local runs and CI cannot drift on flags or check sets.
#
# Runs, in order:
#   1. go vet            — the stock suite
#   2. staticcheck       — check set committed in staticcheck.conf
#                          (skipped with a notice when not installed;
#                          CI always installs it)
#   3. memlint           — the repo's own analyzer suite (cmd/memlint):
#                          detrand, memescape, floatord, verifygate,
#                          hotpath, nolintreason. See DESIGN.md §11.
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ($(staticcheck -version 2>/dev/null | head -1))"
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping (CI installs honnef.co/go/tools/cmd/staticcheck)"
fi

echo "== memlint"
go run ./cmd/memlint ./...

echo "lint: OK"
