package approxsort_test

// Out-of-core benchmarks behind BENCH_extsort.json (DESIGN.md §14). These
// measure the external pipeline's moving parts — replacement-selection
// run formation, the write-limited k-way merge, and a full streamed sort
// in each mode — at a size (400k records, RunSize 50k) that forces real
// multi-run spills while staying bench-friendly. They use only public
// package APIs; the full-size acceptance run is `approxsort -external`.

import (
	"io"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

const (
	benchExtN       = 400000
	benchExtRunSize = 50000
)

func benchExtConfig(b *testing.B, dir string) extsort.Config {
	backend := memmodel.MustGet(memmodel.PCMMLC)
	pt, err := backend.Normalize(memmodel.Point{
		Backend: backend.Name(),
		Params:  map[string]float64{"t": 0.055},
	})
	if err != nil {
		b.Fatal(err)
	}
	return extsort.Config{
		Core: core.Config{
			Algorithm: sorts.MSD{Bits: 6},
			NewSpace:  func(s uint64) core.Space { return backend.NewApprox(pt, s) },
			Seed:      benchSeed,
		},
		RunSize: benchExtRunSize,
		FanIn:   8,
		TempDir: dir,
		Omega:   memmodel.WriteCostRatio(backend, pt),
	}
}

func benchExtStream(b *testing.B) io.Reader {
	src, err := dataset.StreamSpec{Kind: "uniform", N: benchExtN, Seed: benchSeed}.Stream()
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func benchExtSort(b *testing.B, mutate func(*extsort.Config)) extsort.Stats {
	var stats extsort.Stats
	b.SetBytes(4 * benchExtN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchExtConfig(b, b.TempDir())
		if mutate != nil {
			mutate(&cfg)
		}
		src := benchExtStream(b)
		b.StartTimer()
		st, err := extsort.SortStream(src, io.Discard, cfg)
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(stats.MeanRunLength()/float64(benchExtRunSize), "runlen/M")
	b.ReportMetric(float64(stats.MergePasses), "passes")
	return stats
}

// BenchmarkExtsortHybridReplacement is the headline configuration:
// replacement-selection runs (each approx-refined on the hybrid system)
// plus the staged k-way merge.
func BenchmarkExtsortHybridReplacement(b *testing.B) {
	st := benchExtSort(b, nil)
	if st.Formation != extsort.FormationReplacement || !st.Hybrid {
		b.Fatalf("unexpected configuration: %+v", st)
	}
}

// BenchmarkExtsortHybridChunk isolates replacement selection's cost by
// pinning the load-sort-store discipline over the same input.
func BenchmarkExtsortHybridChunk(b *testing.B) {
	benchExtSort(b, func(cfg *extsort.Config) { cfg.Formation = extsort.FormationChunk })
}

// BenchmarkExtsortRefineAtMerge defers every run's refine merge into the
// k-way merge — the variant the (M, B, ω) planner prices against
// refine-at-formation.
func BenchmarkExtsortRefineAtMerge(b *testing.B) {
	benchExtSort(b, func(cfg *extsort.Config) { cfg.RefineAtMerge = true })
}

// BenchmarkExtsortPrecise is the precise-only baseline: no approximate
// stage, every formation write at full precise cost.
func BenchmarkExtsortPrecise(b *testing.B) {
	benchExtSort(b, func(cfg *extsort.Config) { cfg.Precise = true })
}

// BenchmarkExtsortAudited is the streaming-service configuration: the
// headline sort plus the full verification chain (per-run Auditor, output
// StreamChecker, stats ledger) — its overhead is what every sortd
// streaming job pays for Verified:true.
func BenchmarkExtsortAudited(b *testing.B) {
	backend := memmodel.MustGet(memmodel.PCMMLC)
	pt, err := backend.Normalize(memmodel.Point{
		Backend: backend.Name(),
		Params:  map[string]float64{"t": 0.055},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 * benchExtN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchExtConfig(b, b.TempDir())
		cfg.Verifier = verify.Auditor{ID: backend.Identities(pt)}
		src := benchExtStream(b)
		sc := verify.NewStreamChecker(io.Discard)
		b.StartTimer()
		st, err := extsort.SortStream(src, sc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sc.Finish(st.Records); err != nil {
			b.Fatal(err)
		}
		if err := verify.CheckExtsortStats(st).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtsortFormationOnly bounds replacement selection alone: runs
// are formed and spilled but never merged, by sizing RunSize above the
// input so the single run short-circuits the merge. The delta against
// the full sort is the merge's cost.
func BenchmarkExtsortFormationOnly(b *testing.B) {
	b.SetBytes(4 * benchExtN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchExtConfig(b, b.TempDir())
		cfg.RunSize = benchExtN
		src := benchExtStream(b)
		b.StartTimer()
		if _, err := extsort.SortStream(src, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
