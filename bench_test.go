package approxsort_test

// One benchmark per table/figure of the paper, plus ablations for the
// design choices called out in DESIGN.md §7. Each benchmark runs the same
// experiment code the cmd/ harnesses use (internal/experiments) at a
// bench-friendly size and reports the experiment's headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// result series in miniature. Full-size tables come from the cmd/
// binaries (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"approxsort/internal/adaptive"
	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/experiments"
	"approxsort/internal/histsort"
	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
	"approxsort/internal/verify"
)

const (
	benchN    = 20000
	benchSeed = 0xbe
)

// --- Figure 2: MLC write performance and accuracy vs T ---

func BenchmarkFig2aAvgPulses(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		s := mlc.MonteCarlo(mlc.Approximate(0.1), 5000, benchSeed)
		last = s.AvgP
	}
	b.ReportMetric(last, "avg#P@T=0.1")
	b.ReportMetric(last/mlc.ReferenceAvgP, "p(t)")
}

func BenchmarkFig2bErrorRate(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		s := mlc.MonteCarlo(mlc.Approximate(0.1), 5000, benchSeed)
		last = s.WordErrorRate
	}
	b.ReportMetric(last, "wordErr@T=0.1")
}

// --- Figure 4 / Table 3: sorting in approximate memory only ---

func benchSortOnly(b *testing.B, alg sorts.Algorithm, t float64) {
	keys := dataset.Uniform(benchN, benchSeed)
	var row experiments.SortOnlyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.SortOnly(alg, t, keys, benchSeed+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.RemRatio, "remRatio")
	b.ReportMetric(row.ErrorRate, "errRate")
	b.ReportMetric(row.WriteReduction, "writeReduction")
}

func BenchmarkFig4Quicksort(b *testing.B) { benchSortOnly(b, sorts.Quicksort{}, 0.055) }
func BenchmarkFig4Mergesort(b *testing.B) { benchSortOnly(b, sorts.Mergesort{}, 0.055) }
func BenchmarkFig4LSD6(b *testing.B)      { benchSortOnly(b, sorts.LSD{Bits: 6}, 0.055) }
func BenchmarkFig4MSD6(b *testing.B)      { benchSortOnly(b, sorts.MSD{Bits: 6}, 0.055) }
func BenchmarkTable3AtT01(b *testing.B)   { benchSortOnly(b, sorts.Quicksort{}, 0.1) }
func BenchmarkTable3AtT003(b *testing.B)  { benchSortOnly(b, sorts.Quicksort{}, 0.03) }

// --- Figures 5–7: post-sort sequence shape ---

func BenchmarkFig5to7Shape(b *testing.B) {
	var xs []uint32
	for i := 0; i < b.N; i++ {
		xs = experiments.Shape(sorts.Quicksort{}, 0.055, benchN, benchSeed)
	}
	b.ReportMetric(float64(len(xs)), "points")
}

// --- Figure 9: approx-refine write reduction vs T ---

func benchRefine(b *testing.B, alg sorts.Algorithm, t float64) {
	keys := dataset.Uniform(benchN, benchSeed)
	var row experiments.RefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err = experiments.Refine(alg, t, keys, benchSeed+uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !row.Sorted {
			b.Fatal("unsorted output")
		}
	}
	b.ReportMetric(row.WriteReduction, "writeReduction")
	b.ReportMetric(row.ModelWR, "modelWR(Eq4)")
	b.ReportMetric(row.RemTildeRatio, "rem~/n")
}

func BenchmarkFig9Quicksort(b *testing.B) { benchRefine(b, sorts.Quicksort{}, 0.055) }
func BenchmarkFig9Mergesort(b *testing.B) { benchRefine(b, sorts.Mergesort{}, 0.055) }
func BenchmarkFig9LSD3(b *testing.B)      { benchRefine(b, sorts.LSD{Bits: 3}, 0.055) }
func BenchmarkFig9MSD3(b *testing.B)      { benchRefine(b, sorts.MSD{Bits: 3}, 0.055) }
func BenchmarkFig9LSD6(b *testing.B)      { benchRefine(b, sorts.LSD{Bits: 6}, 0.055) }
func BenchmarkFig9MSD6(b *testing.B)      { benchRefine(b, sorts.MSD{Bits: 6}, 0.055) }

// --- Figure 10: write reduction vs n (two sizes bracket the trend) ---

func BenchmarkFig10Small(b *testing.B) {
	keys := dataset.Uniform(1600, benchSeed)
	var row experiments.RefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row, err = experiments.Refine(sorts.MSD{Bits: 3}, 0.055, keys, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.WriteReduction, "writeReduction@1.6K")
}

func BenchmarkFig10Large(b *testing.B) {
	keys := dataset.Uniform(160000, benchSeed)
	var row experiments.RefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row, err = experiments.Refine(sorts.MSD{Bits: 3}, 0.055, keys, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.WriteReduction, "writeReduction@160K")
}

// --- Figure 11: write-latency breakdown ---

func BenchmarkFig11Breakdown(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var row experiments.RefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row, err = experiments.Refine(sorts.LSD{Bits: 6}, 0.055, keys, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	total := row.ApproxWriteNanos + row.RefineWriteNanos
	b.ReportMetric(row.RefineWriteNanos/total, "refineShare")
}

// --- Equation 4: analytic cost model ---

func BenchmarkCostModelEq4(b *testing.B) {
	m := core.CostModel{P: 0.67, Alpha: core.AlphaQuicksort}
	var wr float64
	for i := 0; i < b.N; i++ {
		wr = m.WriteReduction(16000000, 200000)
	}
	b.ReportMetric(wr, "modelWR@16M")
}

// --- Figures 12–14: the spintronic model of Appendix A ---

func BenchmarkFig12SpintronicSortOnly(b *testing.B) {
	var rows []experiments.SpinSortRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig12([]sorts.Algorithm{sorts.Mergesort{}},
			spintronic.Presets()[3:], benchN, benchSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RemRatio, "remRatio@50%")
}

func BenchmarkFig13SpinRefine(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var row experiments.SpinRefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row, err = experiments.SpinRefine(sorts.MSD{Bits: 3}, spintronic.Presets()[2], keys, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.EnergySaving, "energySaving@33%")
}

func BenchmarkFig14SpinBreakdown(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var row experiments.SpinRefineRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row, err = experiments.SpinRefine(sorts.LSD{Bits: 6}, spintronic.Presets()[2], keys, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.RefineEnergy/(row.ApproxEnergy+row.RefineEnergy), "refineShare")
}

// --- Figure 15: histogram-based radix (Appendix B) ---

func BenchmarkFig15HistLSD3(b *testing.B) { benchRefine(b, histsort.HistLSD{Bits: 3}, 0.055) }
func BenchmarkFig15HistMSD3(b *testing.B) { benchRefine(b, histsort.HistMSD{Bits: 3}, 0.055) }

// --- Table 1 / abstract: end-to-end memory access time ---

func BenchmarkAccessTimeTable1(b *testing.B) {
	var row experiments.AccessTimeRow
	var err error
	for i := 0; i < b.N; i++ {
		if row, err = experiments.AccessTime(sorts.MSD{Bits: 3}, 0.055, benchN, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.LatencyReduction, "latencyReduction")
	b.ReportMetric(row.QueueAwareReduction, "queueAwareReduction")
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationRefineVsAdaptive compares the write bill of the paper's
// heuristic refine stage against the adaptive natural-mergesort baseline on
// the same nearly sorted order.
func BenchmarkAblationRefineVsAdaptive(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var heuristic, adaptiveWrites float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(keys, core.Config{
			Algorithm: sorts.Quicksort{}, T: 0.055, Seed: benchSeed, SkipBaseline: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := res.Report
		heuristic = float64(r.RefineFind.Precise.Writes + r.RefineSort.Precise.Writes +
			r.RefineMerge.Precise.Writes)

		// Rebuild an equivalent nearly sorted order (same seeds) and
		// refine it adaptively instead.
		space := mem.NewPreciseSpace()
		key0 := space.Alloc(benchN)
		mem.Load(key0, keys)
		id := space.Alloc(benchN)
		approx := mem.NewApproxSpaceAt(0.055, benchSeed)
		keyA := approx.Alloc(benchN)
		mem.Copy(keyA, key0)
		mem.Load(id, dataset.IDs(benchN))
		env := sorts.Env{KeySpace: approx, IDSpace: space, R: rng.New(benchSeed)}
		sorts.Quicksort{}.Sort(sorts.Pair{Keys: keyA, IDs: id}, env)
		finalKey, finalID := space.Alloc(benchN), space.Alloc(benchN)
		before := space.Stats().Writes
		adaptive.RefineAdaptive(key0, id, space, finalKey, finalID)
		adaptiveWrites = float64(space.Stats().Writes - before)
	}
	b.ReportMetric(heuristic/benchN, "heuristicWrites/n")
	b.ReportMetric(adaptiveWrites/benchN, "adaptiveWrites/n")
}

// BenchmarkAblationQueueVsHistogram compares key writes of queue-bucket and
// histogram LSD (the Appendix B mechanism).
func BenchmarkAblationQueueVsHistogram(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	measure := func(alg sorts.Algorithm) float64 {
		ks := mem.NewPreciseSpace()
		env := sorts.Env{KeySpace: ks, IDSpace: mem.NewPreciseSpace(), R: rng.New(benchSeed)}
		p := sorts.Pair{Keys: ks.Alloc(benchN)}
		mem.Load(p.Keys, keys)
		alg.Sort(p, env)
		return float64(ks.Stats().Writes - benchN)
	}
	var queue, hist float64
	for i := 0; i < b.N; i++ {
		queue = measure(sorts.LSD{Bits: 6})
		hist = measure(histsort.HistLSD{Bits: 6})
	}
	b.ReportMetric(queue/benchN, "queueWrites/n")
	b.ReportMetric(hist/benchN, "histWrites/n")
}

// BenchmarkAblationTableVsExact compares the two MLC engines' throughput.
func BenchmarkAblationModelExact(b *testing.B) {
	model := mlc.NewExact(mlc.Approximate(0.055))
	r := rng.New(benchSeed)
	var sink uint32
	for i := 0; i < b.N; i++ {
		s, _ := model.WriteWord(r, uint32(i)*2654435761)
		sink ^= s
	}
	_ = sink
}

func BenchmarkAblationModelTable(b *testing.B) {
	model := mlc.NewTable(mlc.Approximate(0.055), 0, benchSeed)
	r := rng.New(benchSeed)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		s, _ := model.WriteWord(r, uint32(i)*2654435761)
		sink ^= s
	}
	_ = sink
}

// BenchmarkAblationExactLIS compares the refine stage's heuristic against
// the exact-LIS variant (remainder size vs bookkeeping writes).
func BenchmarkAblationExactLIS(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var heurRem, exactRem, heurWrites, exactWrites float64
	for i := 0; i < b.N; i++ {
		h, err := core.Run(keys, core.Config{
			Algorithm: sorts.Quicksort{}, T: 0.07, Seed: benchSeed, SkipBaseline: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.Run(keys, core.Config{
			Algorithm: sorts.Quicksort{}, T: 0.07, Seed: benchSeed, SkipBaseline: true, ExactLIS: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		heurRem = float64(h.Report.RemTilde)
		exactRem = float64(e.Report.RemTilde)
		heurWrites = float64(h.Report.RefineFind.Precise.Writes)
		exactWrites = float64(e.Report.RefineFind.Precise.Writes)
	}
	b.ReportMetric(heurRem/benchN, "heurRem/n")
	b.ReportMetric(exactRem/benchN, "exactRem/n")
	b.ReportMetric(heurWrites/benchN, "heurFindWrites/n")
	b.ReportMetric(exactWrites/benchN, "exactFindWrites/n")
}

// BenchmarkPlanner measures the pilot-based switch decision of
// core.Planner (Section 4.3's "switch accordingly").
func BenchmarkPlanner(b *testing.B) {
	keys := dataset.Uniform(200000, benchSeed)
	var plan core.Plan
	var err error
	for i := 0; i < b.N; i++ {
		plan, err = core.Planner{Config: core.Config{
			Algorithm: sorts.MSD{Bits: 3}, T: 0.055, Seed: benchSeed,
		}}.Plan(keys)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plan.PredictedWR, "predictedWR")
	b.ReportMetric(boolMetric(plan.UseHybrid), "useHybrid")
}

// BenchmarkAblationCellDensity compares pulse counts across cell densities
// at a fixed guard fraction (the Sampson density trade-off).
func BenchmarkAblationCellDensity(b *testing.B) {
	var slc, m4, m16 float64
	for i := 0; i < b.N; i++ {
		slc = mlc.MonteCarlo(mlc.GuardFraction(2, 0.4), 2000, benchSeed).AvgP
		m4 = mlc.MonteCarlo(mlc.GuardFraction(4, 0.4), 2000, benchSeed).AvgP
		m16 = mlc.MonteCarlo(mlc.GuardFraction(16, 0.4), 2000, benchSeed).AvgP
	}
	b.ReportMetric(slc, "avg#P@SLC")
	b.ReportMetric(m4, "avg#P@4level")
	b.ReportMetric(m16, "avg#P@16level")
}

// BenchmarkRobustness runs the cross-distribution precision sweep.
func BenchmarkRobustness(b *testing.B) {
	var rows []experiments.RobustnessRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Robustness([]sorts.Algorithm{sorts.MSD{Bits: 6}}, 0.055, 5000, benchSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "distributions")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkFig9Workers runs the full Figure 9 grid (StudyAlgorithms x
// StandardTs) at increasing worker counts. Results are bit-identical at
// every count; only the wall clock changes, and only on multi-core hosts.
func BenchmarkFig9Workers(b *testing.B) {
	algs := experiments.StudyAlgorithms()
	ts := mlc.StandardTs(false)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig9(algs, ts, 4000, benchSeed, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableCache measures the shared MLC table cache: with the cache
// on, a sweep of A algorithms x K T-points builds K transition tables; off,
// it builds one per grid point.
func BenchmarkTableCache(b *testing.B) {
	algs := experiments.StudyAlgorithms()
	ts := mlc.StandardTs(false)
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("cache=%v", on), func(b *testing.B) {
			prev := mlc.SetSharedTableCache(on)
			defer mlc.SetSharedTableCache(prev)
			for i := 0; i < b.N; i++ {
				mlc.SharedTables().Reset()
				if _, err := experiments.Fig9(algs, ts, 4000, benchSeed, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRadixBins sweeps the paper's bin-width tuning parameter.
func BenchmarkAblationRadixBins(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	var wr3, wr6 float64
	for i := 0; i < b.N; i++ {
		r3, err := experiments.Refine(sorts.MSD{Bits: 3}, 0.055, keys, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		r6, err := experiments.Refine(sorts.MSD{Bits: 6}, 0.055, keys, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		wr3, wr6 = r3.WriteReduction, r6.WriteReduction
	}
	b.ReportMetric(wr3, "WR@3bit")
	b.ReportMetric(wr6, "WR@6bit")
}

// --- The memmodel seam: refine cost per backend, seam vs direct ---

// BenchmarkRefineBackends runs one approx-refine per registered backend
// at its featured operating point, both through the registry seam
// (experiments.RefineAt) and via a direct twin that builds the concrete
// space and runs the same audit, but with no registry resolution,
// normalization, or row assembly. Dispatch is per run, not per access —
// backends hand core.Run concrete spaces, so the sort inner loops stay
// devirtualized — and the seam-vs-direct delta is the artifact recorded
// in BENCH_backend.json.
func BenchmarkRefineBackends(b *testing.B) {
	keys := dataset.Uniform(benchN, benchSeed)
	alg := sorts.MSD{Bits: 6}
	cases := []struct {
		pt     memmodel.Point
		direct func(uint64) core.Space
	}{
		{memmodel.MLC(0.055), func(s uint64) core.Space { return mem.NewApproxSpaceAt(0.055, s) }},
		{memmodel.Spintronic(spintronic.Presets()[2]), func(s uint64) core.Space {
			return spintronic.NewSpace(spintronic.Presets()[2], s)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.pt.Backend+"/seam", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiments.RefineAt(alg, tc.pt, keys, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				if !row.Sorted {
					b.Fatal("unsorted output")
				}
			}
		})
		id := memmodel.MustGet(tc.pt.Backend).Identities(memmodel.MustGet(tc.pt.Backend).DefaultPoint())
		b.Run(tc.pt.Backend+"/direct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(keys, core.Config{Algorithm: alg, NewSpace: tc.direct, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				if err := verify.CheckRefineRun(keys, res, id).Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
