package approxsort_test

// Algorithm-registry benchmarks (BENCH_algo.json): the write-combining
// OneSweep radix vs the paper's queue-bucket LSD at equal T on the
// Figure 9 approx-refine configuration. The headline metric is total
// approximate writes per element — the quantity the wider digit buys
// down — alongside the resulting write reduction.

import (
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func benchAlgoWrites(b *testing.B, alg sorts.Algorithm, t float64) {
	keys := dataset.Uniform(benchN, benchSeed)
	var report *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(keys, core.Config{Algorithm: alg, T: t, Seed: benchSeed + uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.Sorted {
			b.Fatal("unsorted output")
		}
		report = res.Report
	}
	total := report.Total()
	b.ReportMetric(float64(total.Approx.Writes)/float64(report.N), "approxWrites/elem")
	b.ReportMetric(report.WriteReduction(), "writeReduction")
}

func BenchmarkAlgoLSD6AtT0055(b *testing.B)      { benchAlgoWrites(b, sorts.LSD{Bits: 6}, 0.055) }
func BenchmarkAlgoOneSweep8AtT0055(b *testing.B) { benchAlgoWrites(b, sorts.OneSweepLSD{Bits: 8}, 0.055) }
func BenchmarkAlgoLSD6AtT003(b *testing.B)       { benchAlgoWrites(b, sorts.LSD{Bits: 6}, 0.03) }
func BenchmarkAlgoOneSweep8AtT003(b *testing.B)  { benchAlgoWrites(b, sorts.OneSweepLSD{Bits: 8}, 0.03) }
