package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Verdictcheck is errcheck narrowed to what this repository cannot
// afford to drop: verification verdicts. A call whose result carries a
// verify verdict — a *verify.Report, an error from the verify package,
// or an error from a Check* accounting-ledger method like
// hybrid.Stats.Check — silently discarded is a run whose paper
// identities were audited and the answer thrown away; the golden gate
// then certifies a number nobody actually checked.
//
// Sources are recognized three ways:
//
//   - by result type: any function returning *verify.Report;
//   - by home: any function in internal/verify returning an error
//     (Auditor.VerifyRun, StreamChecker.Finish, Report.Err, ...);
//   - by name: any Check*-named function in this module returning an
//     error (the Stats ledger reconcilers).
//
// Wrappers propagate: a function that calls a source and returns an
// error or *verify.Report carries the verdict out, so it becomes a
// source for its own callers via an exported fact — the discard is
// caught two packages away from the verify call. Discarding means an
// expression statement (including go/defer) or an assignment where
// every left-hand side is blank. Test files are exempt: tests may
// exercise failure paths without consuming every verdict.
var Verdictcheck = &Analyzer{
	Name:    "verdictcheck",
	Doc:     "no call result carrying a verify verdict or Stats ledger may be discarded",
	Run:     runVerdictcheck,
	NewFact: func() Fact { return new(verdictFact) },
}

// verdictFact marks a function whose error or *verify.Report result
// carries a verification verdict obtained from a source it called.
type verdictFact struct {
	ReturnsVerdict bool
}

func (*verdictFact) AFact() {}

const (
	verdictVerifyPkg = "approxsort/internal/verify"
	verdictModule    = "approxsort/"
)

func runVerdictcheck(pass *Pass) error {
	// The verify package itself plumbs reports internally and is
	// audited by its own tests; checking it against itself only yields
	// noise.
	if pass.PkgPath == verdictVerifyPkg {
		return nil
	}

	isSource := func(obj types.Object) bool {
		return verdictSource(pass, obj)
	}

	// Compute wrapper facts to a fixpoint: a function returning error
	// or *verify.Report whose body calls a source is itself a source.
	type fnInfo struct {
		obj     types.Object
		body    *ast.BlockStmt
		carries bool
		callees []types.Object
	}
	var fns []*fnInfo
	byObj := make(map[types.Object]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil || !verdictResultShape(obj) {
				continue
			}
			info := &fnInfo{obj: obj, body: fd.Body}
			fns = append(fns, info)
			byObj[obj] = info
		}
	}
	for _, info := range fns {
		ast.Inspect(info.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(pass, call)
			if callee == nil {
				return true
			}
			if isSource(callee) {
				info.carries = true
			} else {
				info.callees = append(info.callees, callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.carries {
				continue
			}
			for _, callee := range info.callees {
				if c, ok := byObj[callee]; ok && c.carries {
					info.carries = true
					changed = true
					break
				}
			}
		}
	}
	local := make(map[types.Object]bool)
	for _, info := range fns {
		if info.carries {
			local[info.obj] = true
			pass.ExportObjectFact(info.obj, &verdictFact{ReturnsVerdict: true})
		}
	}

	sourceOrWrapper := func(obj types.Object) bool {
		return isSource(obj) || local[obj]
	}

	// Flag the discards.
	report := func(call *ast.CallExpr) {
		callee := calleeObj(pass, call)
		if callee == nil || pass.InTestFile(call.Pos()) {
			return
		}
		if !sourceOrWrapper(callee) {
			return
		}
		pass.Reportf(call.Pos(), "result of %s carries a verify verdict; check it instead of discarding it", verdictCallName(callee))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call)
				}
			case *ast.GoStmt:
				report(n.Call)
			case *ast.DeferStmt:
				report(n.Call)
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if !allBlank {
					return true
				}
				for _, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						report(call)
					}
				}
			}
			return true
		})
	}
	return nil
}

// verdictSource classifies obj as a primary verdict source (see the
// analyzer doc) or a fact-carrying wrapper from an already-analyzed
// package.
func verdictSource(pass *Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	if verdictReturnsReport(fn) {
		return true
	}
	returnsError := verdictReturnsError(fn)
	if returnsError && obj.Pkg().Path() == verdictVerifyPkg {
		return true
	}
	if returnsError && strings.HasPrefix(obj.Name(), "Check") && strings.HasPrefix(obj.Pkg().Path(), verdictModule) {
		return true
	}
	if f, ok := pass.ImportObjectFact(obj); ok {
		if vf, ok := f.(*verdictFact); ok && vf.ReturnsVerdict {
			return true
		}
	}
	return false
}

// verdictResultShape reports whether obj returns an error or a
// *verify.Report — the only shapes that can carry a verdict out.
func verdictResultShape(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return verdictReturnsError(fn) || verdictReturnsReport(fn)
}

func verdictReturnsError(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

func verdictReturnsReport(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Report" && obj.Pkg() != nil && obj.Pkg().Path() == verdictVerifyPkg {
				return true
			}
		}
	}
	return false
}

// verdictCallName renders obj for diagnostics: "verify.Check",
// "(Stats).Check". Callees are not always *types.Func — a builtin or a
// func-typed var reaches here when bodyclose labels an arbitrary call.
func verdictCallName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
