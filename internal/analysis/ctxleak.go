package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxleak enforces the service layers' goroutine and context hygiene.
// The sharded sort path fans one request out across nodes; a goroutine
// or HTTP round-trip that is not joined and not bound to a
// deadline-bearing context outlives its request, holds its tenant slot,
// and defeats the graceful-drain contract (DESIGN.md §15). Two rules,
// both scoped to the request-serving packages (internal/server,
// internal/cluster):
//
//  1. Every `go` statement must be visibly joined or cancellable: the
//     goroutine body (or callee) must signal completion through a
//     sync.WaitGroup, close or send on a channel, or observe a
//     context.Context from the enclosing request scope.
//  2. Outbound HTTP must carry a caller-derived or deadline-bearing
//     context: the context-less senders (http.Get, http.Post,
//     http.PostForm, http.Head, http.NewRequest) are banned, and
//     passing context.Background() or context.TODO() directly into a
//     function that performs HTTP (known interprocedurally via facts)
//     is flagged.
//
// The "performs HTTP" property is a fact (ctxleakFact.DoesHTTP)
// exported for every function in every analyzed package, so rule 2
// sees through wrappers like cluster.Client.Submit from two packages
// away.
var Ctxleak = &Analyzer{
	Name:    "ctxleak",
	Doc:     "service goroutines must be joined or context-bound; outbound HTTP must carry a deadline-bearing context",
	Run:     runCtxleak,
	NewFact: func() Fact { return new(ctxleakFact) },
}

// ctxleakFact marks a function that performs an outbound HTTP
// round-trip, directly or through a callee that carries the same fact.
type ctxleakFact struct {
	DoesHTTP bool
}

func (*ctxleakFact) AFact() {}

// ctxleakScope lists the packages whose goroutines and HTTP calls are
// checked. Facts are computed everywhere; diagnostics fire only here —
// cmd/ mains legitimately start from context.Background, and the
// simulation core neither spawns nor dials.
var ctxleakScope = map[string]bool{
	"approxsort/internal/server":  true,
	"approxsort/internal/cluster": true,
}

func runCtxleak(pass *Pass) error {
	doesHTTP := ctxleakComputeFacts(pass)
	if !ctxleakScope[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				ctxleakCheckGo(pass, n)
			case *ast.CallExpr:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				ctxleakCheckCall(pass, n, doesHTTP)
			}
			return true
		})
	}
	return nil
}

// ctxleakComputeFacts finds every function in the package that performs
// HTTP — a call to one of net/http's client entry points, or a call to
// a function already carrying the fact — iterating in-package calls to
// a fixpoint, and exports a fact per such function. The local set is
// returned so rule 2 works on unexported same-package helpers too.
func ctxleakComputeFacts(pass *Pass) map[types.Object]bool {
	type fnInfo struct {
		obj     types.Object
		body    *ast.BlockStmt
		callees []types.Object
		http    bool
	}
	var fns []*fnInfo
	byObj := make(map[types.Object]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			info := &fnInfo{obj: obj, body: fd.Body}
			fns = append(fns, info)
			byObj[obj] = info
		}
	}
	for _, info := range fns {
		ast.Inspect(info.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(pass, call)
			if callee == nil {
				return true
			}
			if httpSenderName(callee) != "" {
				info.http = true
			} else if fact, ok := ctxleakImport(pass, callee); ok && fact.DoesHTTP {
				info.http = true
			} else {
				info.callees = append(info.callees, callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.http {
				continue
			}
			for _, callee := range info.callees {
				if c, ok := byObj[callee]; ok && c.http {
					info.http = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[types.Object]bool)
	for _, info := range fns {
		if info.http {
			out[info.obj] = true
			pass.ExportObjectFact(info.obj, &ctxleakFact{DoesHTTP: true})
		}
	}
	return out
}

func ctxleakImport(pass *Pass, obj types.Object) (*ctxleakFact, bool) {
	f, ok := pass.ImportObjectFact(obj)
	if !ok {
		return nil, false
	}
	cf, ok := f.(*ctxleakFact)
	return cf, ok
}

// httpSenderName classifies net/http client round-trip entry points
// (for the DoesHTTP fact): it returns the dotted name for diagnostics
// ("http.Get", "(*http.Client).Do"), or "" if obj is not one.
// NewRequestWithContext is deliberately not a sender — it is the
// sanctioned way to attach a context.
func httpSenderName(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head":
			return "http." + fn.Name()
		}
		return ""
	}
	recv := namedOf(deref(sig.Recv().Type()))
	if recv == nil || recv.Obj().Name() != "Client" {
		return "" // http.Header.Get and friends are not round-trips
	}
	switch fn.Name() {
	case "Do", "Get", "Post", "PostForm", "Head":
		return "(*http.Client)." + fn.Name()
	}
	return ""
}

// contextlessSender reports whether obj is a sender that cannot carry a
// context at all: the convenience Get/Post/PostForm/Head entry points.
// (*http.Client).Do is excluded — its *http.Request carries the context
// and rule 2's NewRequest ban polices how that request is built.
func contextlessSender(obj types.Object) bool {
	name := httpSenderName(obj)
	return name != "" && !strings.HasSuffix(name, ".Do")
}

// ctxleakCheckGo applies rule 1 to one go statement.
func ctxleakCheckGo(pass *Pass, g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if ctxleakLitJoined(pass, lit) {
			return
		}
		pass.Reportf(g.Pos(), "goroutine is neither joined (WaitGroup, channel close/send) nor bound to a context.Context; it can outlive its request and defeat graceful drain")
		return
	}
	// Named call: accept when any argument (or the receiver chain)
	// carries a context.Context — cancellation reaches the goroutine.
	for _, arg := range g.Call.Args {
		if isContextType(pass.TypesInfo.Types[arg].Type) {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine call takes no context.Context and is not visibly joined; pass a cancellable context or join it with a WaitGroup")
}

// ctxleakLitJoined reports whether a goroutine func literal visibly
// terminates with its request: it calls (*sync.WaitGroup).Done, closes
// or sends on a channel, or references a context.Context value from the
// enclosing scope (so cancellation reaches it).
func ctxleakLitJoined(pass *Pass, lit *ast.FuncLit) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeObj(pass, n); callee != nil {
				if callee.Pkg() != nil && callee.Pkg().Path() == "sync" && callee.Name() == "Done" {
					joined = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin || pass.TypesInfo.Uses[id] == nil {
					joined = true // builtin close: a completion signal
				}
			}
		case *ast.SendStmt:
			joined = true
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && isContextType(obj.Type()) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// ctxleakCheckCall applies rule 2 to one call expression.
func ctxleakCheckCall(pass *Pass, call *ast.CallExpr, doesHTTP map[types.Object]bool) {
	callee := calleeObj(pass, call)
	if callee == nil {
		return
	}
	if contextlessSender(callee) && !hasContextParam(callee) {
		pass.Reportf(call.Pos(), "%s carries no context; build the request with http.NewRequestWithContext and a deadline-bearing context", httpSenderName(callee))
		return
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && callee.Name() == "NewRequest" {
		pass.Reportf(call.Pos(), "http.NewRequest yields a context-less request; use http.NewRequestWithContext so the round-trip inherits the caller's deadline")
		return
	}
	// context.Background()/TODO() flowing straight into an HTTP-performing
	// function: the round-trip can never be cancelled.
	target := ""
	switch {
	case doesHTTP[callee]:
		target = callee.Name()
	default:
		if fact, ok := ctxleakImport(pass, callee); ok && fact.DoesHTTP {
			target = callee.Name()
		} else if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && callee.Name() == "NewRequestWithContext" {
			target = "http.NewRequestWithContext"
		}
	}
	if target == "" {
		return
	}
	for _, arg := range call.Args {
		inner, ok := arg.(*ast.CallExpr)
		if !ok {
			continue
		}
		argCallee := calleeObj(pass, inner)
		if argCallee == nil || argCallee.Pkg() == nil || argCallee.Pkg().Path() != "context" {
			continue
		}
		if argCallee.Name() == "Background" || argCallee.Name() == "TODO" {
			pass.Reportf(arg.Pos(), "context.%s() passed into %s, which performs outbound HTTP; derive a deadline-bearing context (context.WithTimeout) or thread the request's", argCallee.Name(), target)
		}
	}
}

// hasContextParam reports whether fn takes a context.Context anywhere
// in its signature.
func hasContextParam(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
