package detrand

import "time"

// Test files are exempt: tests may time their own scaffolding.
func testClock() time.Time {
	return time.Now()
}
