// Package detrand exercises the determinism analyzer: wall-clock reads,
// math/rand imports, and map-ordered output.
package detrand

import (
	"fmt"
	"math/rand" // want `import of "math/rand" is nondeterministic across runs`
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time.Now reads the wall clock`
	return t.Unix()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since reads the wall clock`
}

// sleepOK: time.Sleep delays but never flows into emitted values.
func sleepOK() {
	time.Sleep(time.Millisecond)
}

// sanctioned: a well-formed per-call directive suppresses the finding.
func sanctioned() time.Time {
	return time.Now() //nolint:detrand // fixture-sanctioned wall-clock read
}

// notSuppressed: a reasonless directive suppresses nothing.
func notSuppressed() time.Time {
	return time.Now() /* want `time.Now reads the wall clock` */ //nolint:detrand
}

func draw() int {
	return rand.Int()
}

func badAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `appends map-ordered values`
		out = append(out, v)
	}
	return out
}

func badPrint(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `writes output inside the loop`
		fmt.Fprintf(sb, "%s\n", k)
	}
}

// goodCollect is the sanctioned collect-keys-then-sort idiom.
func goodCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCount: aggregation commutes, nothing ordered escapes the loop.
func goodCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
