// Package lockdep owns lock B: its acquire-set facts flow to importers,
// so a caller holding another lock across lockdep.Grab picks up an
// acquisition edge without lockorder ever seeing both bodies at once.
package lockdep

import "sync"

// B guards the downstream table.
type B struct{ Mu sync.Mutex }

// GB is the process-wide instance.
var GB B

// Grab takes and releases the lock.
func Grab() {
	GB.Mu.Lock()
	defer GB.Mu.Unlock()
}
