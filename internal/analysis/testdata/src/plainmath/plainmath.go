// Package plainmath sits outside the floatord accounting scope; exact
// float comparison is this package's own business.
package plainmath

func equal(a, b float64) bool { return a == b }
