// Package hotpath exercises the //memlint:hotpath analyzer: annotated
// functions must stay free of per-access allocations and dynamic
// dispatch; unannotated functions are never inspected.
package hotpath

type words interface {
	Get(i int) uint32
	Set(i int, v uint32)
}

type dense struct{ data []uint32 }

func (d *dense) Get(i int) uint32    { return d.data[i] }
func (d *dense) Set(i int, v uint32) { d.data[i] = v }
func (d *dense) bulk(dst []uint32)   { copy(dst, d.data) }

type state struct {
	w    words
	d    *dense
	hook func(uint32)
	buf  []uint32
}

// annotated is the per-access path under test.
//
//memlint:hotpath
func (s *state) annotated(i int, v uint32) uint32 {
	tmp := make([]uint32, 4) // want `make allocates in hotpath function annotated`
	_ = new(dense)           // want `new allocates in hotpath function annotated`
	s.buf = append(s.buf, v) // want `append allocates in hotpath function annotated`
	_ = &dense{}             // want `address-taken composite literal allocates in hotpath function annotated`
	f := func() {}           // want `function literal allocates in hotpath function annotated`
	f()                      // want `dynamic call through f in hotpath function annotated`
	s.w.Set(i, v)         // want `interface-crossing call words.Set in hotpath function annotated`
	s.hook(v)             // want `dynamic call through field hook in hotpath function annotated`
	s.d.Set(i, v)         // static concrete-method call: fine
	s.d.bulk(tmp)         // static concrete-method call: fine
	u := uint32(i)        // conversion: fine
	_ = len(s.buf)        // non-allocating builtin: fine
	return s.w.Get(i) + u // want `interface-crossing call words.Get in hotpath function annotated`
}

// sanctioned shows the documented escape: a traced-path dispatch with a
// reasoned same-line directive.
//
//memlint:hotpath
func (s *state) sanctioned(i int) uint32 {
	return s.w.Get(i) //nolint:hotpath // fixture-sanctioned per-access dispatch
}

// dynamicParam flags calls through func-typed parameters too.
//
//memlint:hotpath
func dynamicParam(key func(uint32) uint32, v uint32) uint32 {
	return key(v) // want `dynamic call through key in hotpath function dynamicParam`
}

// unannotated may do all of this freely: the analyzer only inspects
// annotated functions.
func (s *state) unannotated(i int, v uint32) {
	b := make([]uint32, 8)
	s.w.Set(i, v)
	s.hook(v)
	_ = b
}
