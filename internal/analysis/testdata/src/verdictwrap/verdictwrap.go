// Package verdictwrap re-exports a verdict across a package boundary:
// Audit's exported verdict fact lets an importer's discard surface two
// packages away from the verify call.
package verdictwrap

import "approxsort/internal/verify"

// Audit runs the checker and folds the verdict into an error.
func Audit(n int) error { return verify.Check(n).Err() }
