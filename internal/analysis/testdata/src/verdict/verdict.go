// Package verdict seeds discarded-verdict violations against the fake
// verify package, a Stats ledger method, a cross-package wrapper and a
// local wrapper, next to the sanctioned consuming forms.
package verdict

import (
	"approxsort/internal/hybrid"
	"approxsort/internal/verify"

	"verdictwrap"
)

func discards(n int) {
	verify.Check(n)        // want `result of verify\.Check carries a verify verdict`
	_ = verify.Check(n)    // want `result of verify\.Check carries a verify verdict`
	r := verify.Check(n)
	_ = r.Err()            // want `result of \(Report\)\.Err carries a verify verdict`
	hybrid.Stats{}.Check() // want `result of \(Stats\)\.Check carries a verify verdict`
	verdictwrap.Audit(n)   // want `result of verdictwrap\.Audit carries a verify verdict`
	audit(n)               // want `result of verdict\.audit carries a verify verdict`
}

func async(n int) {
	go audit(n)                         // want `result of verdict\.audit carries a verify verdict`
	defer verify.CheckRefineRun(n, nil) // want `result of verify\.CheckRefineRun carries a verify verdict`
}

func consumes(n int) error {
	if err := verify.Check(n).Err(); err != nil {
		return err
	}
	r := verify.CheckOutput(nil)
	return r.Err()
}

// audit is a local wrapper: calling a source and returning error makes
// it a source for its own callers through the fixpoint.
func audit(n int) error { return verify.Check(n).Err() }
