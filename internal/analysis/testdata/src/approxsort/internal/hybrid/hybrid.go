// Package hybrid is a testdata stand-in at the real import path: its
// Stats ledger's Check-prefixed reconciler is a by-name verdict source
// for verdictcheck.
package hybrid

// Stats is the write-accounting ledger.
type Stats struct{ Reads, Writes int }

// Check reconciles the ledger.
func (s Stats) Check() error { return nil }
