// Package mem is a testdata stand-in for the real accounting package:
// the same escape-hatch surface (Peek, Peeker, PeekAll), none of the
// simulator behind it. Declaring it at the real import path makes the
// path-scoped analyzers run their production configuration in tests.
package mem

// Words is an instrumented array handle.
type Words struct{ vals []uint32 }

// Peek is the uncharged read.
func (w *Words) Peek(i int) uint32 { return w.vals[i] }

// Read is the charged read.
func (w *Words) Read(i int) uint32 { return w.vals[i] }

// Peeker is the uncharged escape-hatch interface.
type Peeker interface{ Peek(i int) uint32 }

// PeekAll snapshots a whole array without charge.
func PeekAll(w *Words) []uint32 { return w.vals }
