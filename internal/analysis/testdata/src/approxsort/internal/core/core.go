// Package core is a testdata stand-in at an in-scope accounting path:
// exact float comparison is a defect here.
package core

func equalNanos(a, b float64) bool {
	return a == b // want `== on floating-point values`
}

func driftNanos(a, b float64) bool {
	return a != b // want `!= on floating-point values`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `== on floating-point values`
}

// constFold: two constants fold at compile time, no runtime comparison.
func constFold() bool {
	return 1.0 == 2.0
}

func counts(a, b uint64) bool {
	return a == b
}

func ordered(a, b float64) bool {
	return a < b
}

// sentinel: a reasoned per-call directive suppresses the finding.
func sentinel(a float64) bool {
	return a == 0 //nolint:floatord // fixture-sanctioned exact sentinel
}
