// Package cluster is a testdata stand-in at the real import path: an
// in-scope service layer for the ctxleak analyzer, seeding one
// violation per rule next to the sanctioned forms.
package cluster

import (
	"context"
	"net/http"
	"sync"

	"httpwrap"
)

func fanOut(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // joined: WaitGroup Done
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()

	done := make(chan struct{})
	go func() { // joined: channel close signals completion
		work(0)
		close(done)
	}()
	<-done

	go func() { // bound: observes the request context
		<-ctx.Done()
		work(1)
	}()

	go func() { // want `neither joined .* nor bound to a context`
		work(2)
	}()

	go work(3) // want `takes no context.Context and is not visibly joined`
	go tick(ctx)
}

func work(i int) {}

func tick(ctx context.Context) { <-ctx.Done() }

func fetch(ctx context.Context, c *http.Client, u string) error {
	resp, err := http.Get(u) // want `http.Get carries no context`
	if err == nil {
		resp.Body.Close()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil) // want `http.NewRequest yields a context-less request`
	if err != nil {
		return err
	}
	_ = req

	req2, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp2, err := c.Do(req2) // sanctioned: the request carries ctx
	if err != nil {
		return err
	}
	resp2.Body.Close()

	return httpwrap.Fetch(context.Background(), u) // want `context.Background\(\) passed into Fetch`
}

func good(ctx context.Context, u string) error {
	return httpwrap.Fetch(ctx, u)
}
