// Package experiments is a testdata stand-in at the real import path,
// exercising the verifygate row-reachability rules.
package experiments

import "approxsort/internal/verify"

// SortRow is a serialized row type (suffix "Row").
type SortRow struct{ V int }

// SpinRow is a serialized row type.
type SpinRow struct{ V int }

// RunReport is a serialized report type (suffix "Report").
type RunReport struct{ V int }

// Summary is not a row: the suffix rule does not match.
type Summary struct{ V int }

// audited verifies directly.
func audited(n int) SortRow {
	verify.Check(n)
	return SortRow{V: n}
}

// sweep verifies transitively through audited (the fixpoint).
func sweep(n int) []SortRow {
	return []SortRow{audited(n)}
}

// inClosure verifies inside a function literal, the parallel.Map shape.
func inClosure(n int) []SortRow {
	rows := make([]SortRow, 0, n)
	emit := func(i int) {
		verify.CheckOutput(nil)
		rows = append(rows, SortRow{V: i})
	}
	for i := 0; i < n; i++ {
		emit(i)
	}
	return rows
}

func unaudited(n int) SpinRow { // want `unaudited returns SpinRow`
	return SpinRow{V: n}
}

func unauditedPtr(n int) *RunReport { // want `unauditedPtr returns RunReport`
	return &RunReport{V: n}
}

func unauditedSlice(n int) []SpinRow { // want `unauditedSlice returns SpinRow`
	return []SpinRow{unaudited(n)}
}

// summary returns no row type; nothing to audit.
func summary(n int) Summary {
	return Summary{V: n}
}

// point stands in for a backend operating point (memmodel.Point): the
// generic entry points are parameterized by it rather than a scalar T.

type point struct{ backend string }

// refineAt is the backend-generic leaf: it audits via the identity-aware
// CheckRefineRun entry.
func refineAt(pt point, n int) SortRow {
	verify.CheckRefineRun(n, pt.backend)
	return SortRow{V: n}
}

// fig13 is a device-study wrapper over the generic leaf: verified
// transitively through refineAt (the fixpoint must learn the new
// generic entry points).
func fig13(pt point, n int) []SortRow {
	return []SortRow{refineAt(pt, n)}
}

func unauditedAt(pt point, n int) SpinRow { // want `unauditedAt returns SpinRow`
	_ = pt
	return SpinRow{V: n}
}

// algorithm stands in for a registry entry (sorts.Algorithm): the
// registry-era entry points take the dispatched algorithm itself.

type algorithm struct{ name string }

// profiled audits through the registry write-budget identity: the
// declared-profile check is a verify.Check* call like any other, so a
// leaf that only charges writes against its profile still satisfies the
// gate.
func profiled(alg algorithm, n int) SortRow {
	verify.CheckAlgorithmWrites(alg, n)
	return SortRow{V: n}
}

// rosterSweep fans one row out per registered algorithm: verified
// transitively through profiled (the fixpoint must learn the
// registry-dispatched leaves too).
func rosterSweep(roster []algorithm, n int) []SortRow {
	rows := make([]SortRow, 0, len(roster))
	for _, alg := range roster {
		rows = append(rows, profiled(alg, n))
	}
	return rows
}

func unprofiledSweep(roster []algorithm, n int) []SpinRow { // want `unprofiledSweep returns SpinRow`
	rows := make([]SpinRow, 0, len(roster))
	for _, alg := range roster {
		_ = alg
		rows = append(rows, SpinRow{V: n})
	}
	return rows
}
