// Package verify is a testdata stand-in at the real import path: the
// memescape-exempt measurement package, carrying the Check* surface the
// verifygate analyzer resolves against.
package verify

import "approxsort/internal/mem"

// Report mirrors the real checker's result shape.
type Report struct{ N int }

// Err folds the report into a single pass/fail verdict.
func (r *Report) Err() error { return nil }

// Check audits a finished run.
func Check(n int) *Report { return &Report{N: n} }

// CheckRefineRun audits a finished run against a backend identity set —
// the generic entry points' audit call.
func CheckRefineRun(n int, id any) *Report { return &Report{N: n} }

// CheckOutput audits a raw output sequence.
func CheckOutput(xs []uint32) *Report { return &Report{N: len(xs)} }

// CheckAlgorithmWrites audits a run against the algorithm's declared
// registry write profile — the registry-era write-budget identity.
func CheckAlgorithmWrites(alg any, n int) *Report { return &Report{N: n} }

// Snapshot peeks freely: verify is the sanctioned uncharged reader, so
// none of these uses may be flagged.
func Snapshot(w *mem.Words) []uint32 {
	var p mem.Peeker = w
	_ = p.Peek(0)
	return mem.PeekAll(w)
}
