// Package bodyuser seeds response-leak violations next to every
// sanctioned disposal: direct close, escape by return, hand-off to a
// closer fact, and ownership transfer through an io.ReadCloser sink.
package bodyuser

import (
	"io"
	"net/http"

	"bodyhelp"
)

func leaks(u string) error {
	resp, err := http.Get(u) // want `response body of http\.Get is never closed`
	if err != nil {
		return err
	}
	_ = resp.Status
	return nil
}

func closes(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func escapes(u string) (*http.Response, error) {
	resp, err := http.Get(u)
	return resp, err
}

func handsOff(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	return bodyhelp.Drain(resp)
}

// readAllOnly reads the body, but io.ReadAll's io.Reader parameter does
// not take ownership: still a leak.
func readAllOnly(u string) error {
	resp, err := http.Get(u) // want `response body of http\.Get is never closed`
	if err != nil {
		return err
	}
	_, err = io.ReadAll(resp.Body)
	return err
}

func ownership(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	return consume(resp.Body)
}

func consume(rc io.ReadCloser) error { return rc.Close() }
