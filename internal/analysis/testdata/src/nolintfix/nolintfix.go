// Package nolintfix exercises the directive-hygiene analyzer. The want
// expectations use block comments so the trailing line comment under
// test survives on the same line.
package nolintfix

func spaced() int      { return 0 } /* want `is not a directive` */ // nolint:floatord // spacing bug
func bare() int        { return 0 } /* want `bare //nolint` */      //nolint
func bareColon() int   { return 0 } /* want `bare //nolint` */      //nolint:
func reasonless() int  { return 0 } /* want `no justification` */   //nolint:floatord
func emptyReason() int { return 0 } /* want `no justification` */   //nolint:floatord //

func good() int  { return 0 } //nolint:floatord // fixture-sanctioned, names its check and says why
func multi() int { return 0 } //nolint:floatord,detrand // one reason may cover several named checks

// prose mentioning nolintreason by name is not a directive and must not
// be flagged.
func prose() int { return 0 }
