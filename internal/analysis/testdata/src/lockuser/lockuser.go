// Package lockuser seeds a cross-package lock-order cycle:
// lockuser.mu -> lockdep.B.Mu through lockdep.Grab's exported fact,
// lockdep.B.Mu -> lockuser.mu directly. Both closing edges are in this
// package, so both acquisition sites report.
package lockuser

import (
	"sync"

	"lockdep"
)

var mu sync.Mutex

func aThenB() {
	mu.Lock()
	defer mu.Unlock()
	lockdep.Grab() // want `lock order cycle`
}

func bThenA() {
	lockdep.GB.Mu.Lock()
	mu.Lock() // want `lock order cycle`
	mu.Unlock()
	lockdep.GB.Mu.Unlock()
}

// onlyOne holds nothing across the call: release-before-call yields no
// edge, so a one-directional pair stays silent.
func onlyOne() {
	mu.Lock()
	mu.Unlock()
	lockdep.Grab()
}

// local mutexes scope to the function: no cross-function identity, no
// spurious edges against the package-level mu.
func scratch() {
	var local sync.Mutex
	local.Lock()
	defer local.Unlock()
}
