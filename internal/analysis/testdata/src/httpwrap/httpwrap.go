// Package httpwrap is an out-of-scope helper: ctxleak computes DoesHTTP
// facts here (they flow to in-scope importers) but must stay silent —
// only the service layers are policed.
package httpwrap

import (
	"context"
	"net/http"
)

// Fetch performs an HTTP round-trip; its exported DoesHTTP fact lets an
// in-scope caller's context.Background() misuse surface two packages
// away.
func Fetch(ctx context.Context, u string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Leaky would be two violations in scope (unjoined goroutine, context-
// less sender); unflagged here, it proves the analyzer's path scoping.
func Leaky(u string) {
	go func() {
		resp, err := http.Get(u)
		if err == nil {
			resp.Body.Close()
		}
	}()
}
