// Package memuser is an ordinary (non-exempt) consumer of the
// accounting package: every uncharged access must be flagged.
package memuser

import "approxsort/internal/mem"

func snapshot(w *mem.Words) []uint32 {
	return mem.PeekAll(w) // want `mem.PeekAll bypasses access accounting`
}

func viaInterface(p mem.Peeker) uint32 { // want `mem.Peeker is the uncharged escape hatch`
	return p.Peek(0) // want `Peek reads simulated memory without charge`
}

func direct(w *mem.Words) uint32 {
	return w.Peek(3) // want `Peek reads simulated memory without charge`
}

// charged: the accounted read path is always fine.
func charged(w *mem.Words) uint32 {
	return w.Read(3)
}

// sanctioned: a reasoned per-call directive suppresses the finding.
func sanctioned(w *mem.Words) []uint32 {
	return mem.PeekAll(w) //nolint:memescape // fixture-sanctioned instrumentation
}
