package memuser

import "approxsort/internal/mem"

// Test files may peek: assertions need to see stored values without
// perturbing the run under test.
func testSnapshot(w *mem.Words) []uint32 {
	return mem.PeekAll(w)
}
