// Package bodyhelp is an out-of-package response closer: its exported
// bodyclose fact marks Drain as a safe sink for importers' responses.
package bodyhelp

import (
	"io"
	"net/http"
)

// Drain consumes and closes a response.
func Drain(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return err
}
