package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatordScope is the accounting and verification core where exact
// floating-point comparison is a latent bug: latency/energy sums are
// accumulated in float64 and the verification contract (PR 3) compares
// them under a relative 1e-9 tolerance, never exactly. Service-layer
// packages (internal/server, internal/relation) that use float sentinels
// for request routing are out of scope.
var floatordScope = map[string]bool{
	"approxsort/internal/mem":         true,
	"approxsort/internal/mlc":         true,
	"approxsort/internal/pcm":         true,
	"approxsort/internal/hybrid":      true,
	"approxsort/internal/spintronic":  true,
	"approxsort/internal/core":        true,
	"approxsort/internal/verify":      true,
	"approxsort/internal/experiments": true,
	"approxsort/internal/sortedness":  true,
	"approxsort/internal/stats":       true,
}

// Floatord forbids == and != on floating-point expressions in the
// accounting and verification packages. Accumulated nanos/energy values
// are sums of per-access constants whose association order varies with
// the worker count, so exact equality is both semantically wrong and a
// determinism hazard. Compare integer access counts instead, or use the
// tolerance helpers (verify.closeEnough's rel-1e-9 contract). The rare
// intentional exact comparison — e.g. a helper's fast path — carries a
// per-call `//nolint:floatord // reason`.
var Floatord = &Analyzer{
	Name: "floatord",
	Doc:  "forbid ==/!= on floating-point values in accounting and verification code",
	Run:  runFloatord,
}

func runFloatord(pass *Pass) error {
	if !floatordScope[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, y := pass.TypesInfo.Types[bin.X], pass.TypesInfo.Types[bin.Y]
			// Two constants fold at compile time; no runtime comparison
			// happens.
			if x.Value != nil && y.Value != nil {
				return true
			}
			if isFloat(x.Type) || isFloat(y.Type) {
				pass.Reportf(bin.OpPos,
					"%s on floating-point values; compare integer counts or use a rel-1e-9 tolerance helper", bin.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
