package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder proves the repository's mutex acquisition graph acyclic.
// The service layers hold locks across package boundaries — the server
// guards job tables while calling into the pool, the coordinator fans
// out under tenant accounting, the metrics registry renders while
// vectors lock their children — and a cycle in "acquire B while
// holding A" edges is a deadlock waiting for the right interleaving.
//
// Each declared function gets a summary fact (lockorderFact): the set
// of locks its static call graph may acquire, and the held->acquired
// edges observed in its body (including edges through static calls,
// using callees' acquire sets). Summaries flow downstream as facts, so
// an edge like "server.Server.mu -> parallel.Pool.mu" materializes
// when analyzing internal/server even though Pool.mu lives a package
// away. Every pass then checks the accumulated global graph: an edge
// that completes a cycle is reported at its acquisition site in the
// current package — so the analyzer works identically standalone (one
// dependency-ordered suite run) and under go vet (facts via .vetx).
//
// Lock identity is structural: "pkg.Type.field" for a mutex field
// (receiver pointer-stripped), "pkg.var" for a package-level mutex,
// "pkg.func.name" for a function-local one, and "pkg.Type.<embedded>"
// when the Lock call goes through an embedded sync.Mutex. Read and
// write locks of one RWMutex share an identity: RLock-vs-Lock cycles
// deadlock just as hard. Function literals are summarized as separate
// anonymous schedules — edges wholly inside a literal count, but a
// literal's acquisitions do not extend the enclosing function's
// held-set, because the literal runs at an unknown time.
var Lockorder = &Analyzer{
	Name:    "lockorder",
	Doc:     "the cross-package mutex acquisition graph must stay acyclic",
	Run:     runLockorder,
	NewFact: func() Fact { return new(lockorderFact) },
}

// lockorderFact summarizes one function's locking behavior.
type lockorderFact struct {
	// Acquires is the sorted set of lock IDs the function (or its
	// static callees) may take.
	Acquires []string `json:",omitempty"`
	// Edges are the held->acquired pairs observed in the function,
	// including those inside its literals.
	Edges []lockorderEdge `json:",omitempty"`
}

func (*lockorderFact) AFact() {}

// lockorderEdge is one "acquired To while holding From" observation.
// Fn and File/Line locate the acquisition for the diagnostic trail.
type lockorderEdge struct {
	From string
	To   string
	Fn   string
	File string
	Line int
}

const (
	lockAcq = iota
	lockRel
	lockDeferRel
	lockCall
)

// lockEvent is one lock-relevant action in source order.
type lockEvent struct {
	kind   int
	id     string
	callee types.Object
	pos    token.Pos
}

// lockFn is one schedule: a declared function or a function literal.
type lockFn struct {
	obj    types.Object // enclosing declared function (fact anchor)
	name   string
	isLit  bool
	events []lockEvent
	lits   []*lockFn
}

func runLockorder(pass *Pass) error {
	decls := lockorderCollect(pass)

	// Flatten declarations plus nested literals into independent
	// schedules, keeping a decl-only index for call resolution.
	var all []*lockFn
	declByObj := make(map[types.Object]*lockFn)
	var flatten func(fn *lockFn)
	flatten = func(fn *lockFn) {
		all = append(all, fn)
		for _, l := range fn.lits {
			flatten(l)
		}
	}
	for _, fn := range decls {
		declByObj[fn.obj] = fn
		flatten(fn)
	}

	// Fixpoint the acquire sets: a schedule acquires what it locks plus
	// what its static callees acquire (in-package declarations by body,
	// imported functions by fact). Literal acquisitions intentionally do
	// not propagate to the enclosing declaration.
	acquires := make(map[*lockFn]map[string]bool)
	calleeAcquires := func(obj types.Object) map[string]bool {
		if c, ok := declByObj[obj]; ok {
			return acquires[c]
		}
		if fact, ok := lockorderImport(pass, obj); ok {
			set := make(map[string]bool, len(fact.Acquires))
			for _, id := range fact.Acquires {
				set[id] = true
			}
			return set
		}
		return nil
	}
	for _, fn := range all {
		set := make(map[string]bool)
		for _, ev := range fn.events {
			if ev.kind == lockAcq {
				set[ev.id] = true
			}
		}
		acquires[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range all {
			set := acquires[fn]
			for _, ev := range fn.events {
				if ev.kind != lockCall || ev.callee == nil {
					continue
				}
				for id := range calleeAcquires(ev.callee) {
					if !set[id] {
						set[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Replay each schedule's events against a held-set to derive edges.
	edgesByFn := make(map[*lockFn][]lockorderEdge)
	for _, fn := range all {
		var held []string
		seen := make(map[[2]string]bool)
		emit := func(from, to string, pos token.Pos) {
			if from == to || seen[[2]string{from, to}] {
				return
			}
			seen[[2]string{from, to}] = true
			p := pass.Fset.Position(pos)
			edgesByFn[fn] = append(edgesByFn[fn], lockorderEdge{
				From: from, To: to, Fn: fn.name, File: p.Filename, Line: p.Line,
			})
		}
		for _, ev := range fn.events {
			switch ev.kind {
			case lockAcq:
				for _, h := range held {
					emit(h, ev.id, ev.pos)
				}
				held = append(held, ev.id)
			case lockRel:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.id {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case lockDeferRel:
				// Released only at return: the lock stays in the
				// held-set for the rest of the schedule.
			case lockCall:
				if ev.callee == nil {
					continue
				}
				callee := calleeAcquires(ev.callee)
				if len(callee) == 0 {
					continue
				}
				ids := make([]string, 0, len(callee))
				for id := range callee {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, h := range held {
					for _, id := range ids {
						emit(h, id, ev.pos)
					}
				}
			}
		}
	}

	// Export one fact per declaration: its acquire set plus the edges
	// of the declaration and all its literals.
	for _, fn := range decls {
		acqList := make([]string, 0, len(acquires[fn]))
		for id := range acquires[fn] {
			acqList = append(acqList, id)
		}
		sort.Strings(acqList)
		var edges []lockorderEdge
		var gather func(f *lockFn)
		gather = func(f *lockFn) {
			edges = append(edges, edgesByFn[f]...)
			for _, l := range f.lits {
				gather(l)
			}
		}
		gather(fn)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		if len(acqList) > 0 || len(edges) > 0 {
			pass.ExportObjectFact(fn.obj, &lockorderFact{Acquires: acqList, Edges: edges})
		}
	}

	// Assemble the global graph from every fact visible so far (all
	// dependency packages plus this one) and report any current-package
	// edge that lies on a cycle.
	adj := make(map[string][]string)
	for _, key := range pass.AllObjectFactKeys() {
		f, _ := pass.ImportObjectFactByKey(key)
		lf, ok := f.(*lockorderFact)
		if !ok {
			continue
		}
		for _, e := range lf.Edges {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	for from := range adj {
		sort.Strings(adj[from])
	}

	reported := make(map[[2]string]bool)
	for _, fn := range all {
		for _, e := range edgesByFn[fn] {
			if reported[[2]string{e.From, e.To}] {
				continue
			}
			if cycle := lockorderPath(adj, e.To, e.From); cycle != nil {
				reported[[2]string{e.From, e.To}] = true
				loop := append([]string{e.From}, cycle...)
				pass.Reportf(lockorderEdgePos(pass, e), "lock order cycle: %s acquires %s while holding %s, closing the loop %s -> %s", e.Fn, e.To, e.From, strings.Join(loop, " -> "), e.From)
			}
		}
	}
	return nil
}

// lockorderEdgePos locates an in-package edge's acquisition line.
func lockorderEdgePos(pass *Pass, e lockorderEdge) token.Pos {
	var pos token.Pos = token.NoPos
	pass.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == e.File {
			if e.Line >= 1 && e.Line <= f.LineCount() {
				pos = f.LineStart(e.Line)
			}
			return false
		}
		return true
	})
	return pos
}

// lockorderPath returns a node path from -> ... -> to over adj, or nil
// if unreachable. Deterministic: neighbor lists are pre-sorted.
func lockorderPath(adj map[string][]string, from, to string) []string {
	type frame struct {
		node string
		path []string
	}
	visited := map[string]bool{from: true}
	stack := []frame{{from, []string{from}}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.node == to {
			return fr.path
		}
		next := adj[fr.node]
		for i := len(next) - 1; i >= 0; i-- {
			n := next[i]
			if visited[n] {
				continue
			}
			visited[n] = true
			stack = append(stack, frame{n, append(append([]string{}, fr.path...), n)})
		}
	}
	return nil
}

func lockorderImport(pass *Pass, obj types.Object) (*lockorderFact, bool) {
	if obj == nil {
		return nil, false
	}
	f, ok := pass.ImportObjectFact(obj)
	if !ok {
		return nil, false
	}
	lf, ok := f.(*lockorderFact)
	return lf, ok
}

// lockorderCollect builds one schedule per function declaration, with
// nested literals attached as sub-schedules.
func lockorderCollect(pass *Pass) []*lockFn {
	var fns []*lockFn
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + name
			}
			fn := &lockFn{obj: obj, name: name}
			lockorderWalk(pass, fd.Body, fn)
			fns = append(fns, fn)
		}
	}
	return fns
}

// lockorderWalk appends lock events for one body in source order.
// Function literals become sub-schedules; `defer mu.Unlock()` (bare or
// wrapped in a literal) becomes a deferred release.
func lockorderWalk(pass *Pass, body ast.Node, fn *lockFn) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := &lockFn{obj: fn.obj, name: fn.name + ".func", isLit: true}
			lockorderWalk(pass, n.Body, sub)
			fn.lits = append(fn.lits, sub)
			return false
		case *ast.DeferStmt:
			if id, kind, ok := lockorderCallID(pass, n.Call, fn.name); ok && kind == lockRel {
				fn.events = append(fn.events, lockEvent{kind: lockDeferRel, id: id, pos: n.Pos()})
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// `defer func() { ...; mu.Unlock() }()`: count its
				// unlocks as deferred releases; anything else inside is
				// a sub-schedule like any literal.
				sub := &lockFn{obj: fn.obj, name: fn.name + ".func", isLit: true}
				lockorderWalk(pass, lit.Body, sub)
				for _, ev := range sub.events {
					if ev.kind == lockRel {
						fn.events = append(fn.events, lockEvent{kind: lockDeferRel, id: ev.id, pos: ev.pos})
					}
				}
				fn.lits = append(fn.lits, sub)
				return false
			}
			return true
		case *ast.CallExpr:
			if id, kind, ok := lockorderCallID(pass, n, fn.name); ok {
				fn.events = append(fn.events, lockEvent{kind: kind, id: id, pos: n.Pos()})
				return true
			}
			if callee := calleeObj(pass, n); callee != nil {
				if _, isFunc := callee.(*types.Func); isFunc {
					fn.events = append(fn.events, lockEvent{kind: lockCall, callee: callee, pos: n.Pos()})
				}
			}
		}
		return true
	})
}

// lockorderCallID classifies call as a mutex acquisition or release and
// derives the lock's structural identity. fnName scopes function-local
// mutexes.
func lockorderCallID(pass *Pass, call *ast.CallExpr, fnName string) (id string, kind int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		kind = lockAcq
	case "Unlock", "RUnlock":
		kind = lockRel
	default:
		return "", 0, false
	}
	// Only mutex methods: TryLock etc. excluded deliberately (a failed
	// TryLock acquires nothing and the success path re-reports).
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return "", 0, false
	}
	id = lockIdentity(pass, sel.X, recv, fnName)
	if id == "" {
		return "", 0, false
	}
	return id, kind, true
}

// lockIdentity names the lock behind expr: the declared home of the
// mutex value, independent of which variable holds it right now.
func lockIdentity(pass *Pass, expr ast.Expr, exprType types.Type, fnName string) string {
	if t := deref(exprType); !isSyncMutex(t) {
		// The Lock call resolved into sync but the receiver expression
		// is a larger struct: an embedded sync.Mutex promoted method.
		if named := namedOf(t); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".<embedded>"
		}
		return ""
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		// s.mu — a struct field: identify by declaring named type.
		if selInfo, ok := pass.TypesInfo.Selections[e]; ok {
			if field, isVar := selInfo.Obj().(*types.Var); isVar {
				if named := namedOf(deref(selInfo.Recv())); named != nil && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
				}
			}
		}
		// pkg.muVar — a package-qualified variable.
		if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if v, isVar := obj.(*types.Var); isVar {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name() // package-level var
			}
			return v.Pkg().Path() + "." + fnName + "." + v.Name() // function-local
		}
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedOf(t types.Type) *types.Named {
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}
