package analysis_test

import (
	"testing"

	"approxsort/internal/analysis"
	"approxsort/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detrand, "detrand")
}

func TestMemescape(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Memescape,
		"memuser", "approxsort/internal/verify")
}

func TestFloatord(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Floatord,
		"approxsort/internal/core", "plainmath")
}

func TestVerifygate(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Verifygate,
		"approxsort/internal/experiments",
		// Out-of-scope package: the analyzer must stay silent.
		"plainmath")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hotpath, "hotpath",
		// Out-of-scope package without annotations: the analyzer must
		// stay silent.
		"plainmath")
}

func TestNolintreason(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Nolintreason, "nolintfix")
}

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxleak,
		"approxsort/internal/cluster",
		// Out-of-scope package: facts flow out, diagnostics must not.
		"httpwrap")
}

func TestLockorder(t *testing.T) {
	// lockuser imports lockdep; the cycle closes through lockdep.Grab's
	// exported acquire-set fact.
	analysistest.Run(t, "testdata", analysis.Lockorder, "lockuser")
}

func TestVerdictcheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Verdictcheck, "verdict")
}

func TestBodyclose(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Bodyclose, "bodyuser")
}
