package analysis

import (
	"go/ast"
	"go/types"
)

// Bodyclose verifies that every *http.Response obtained in this module
// is closed on all paths. The cluster data plane moves shard uploads,
// outputs and warm tables over HTTP; one unclosed body pins a
// keep-alive connection per shard round-trip until the fleet starves
// its file descriptors.
//
// For each variable bound to the *http.Response result of a call, the
// enclosing function must do one of:
//
//   - close it: resp.Body.Close() directly or deferred;
//   - hand it off: return resp (or resp.Body), assign it to a field
//     or collection, or pass resp to a function that closes bodies;
//   - consume via an owner: pass resp.Body to a function taking an
//     io.ReadCloser (ownership transfer by convention).
//
// "A function that closes bodies" is a fact (bodycloseFact): any
// function with a *http.Response (or io.ReadCloser) parameter whose
// body calls Close on it exports the fact, so helpers like a response
// drainer are recognized across packages. Note io.Reader parameters do
// NOT transfer ownership — io.ReadAll(resp.Body) reads but never
// closes.
var Bodyclose = &Analyzer{
	Name:    "bodyclose",
	Doc:     "every *http.Response must be closed on all paths or handed to a closer",
	Run:     runBodyclose,
	NewFact: func() Fact { return new(bodycloseFact) },
}

// bodycloseFact marks a function that closes the *http.Response (or
// io.ReadCloser) passed to it.
type bodycloseFact struct {
	ClosesBody bool
}

func (*bodycloseFact) AFact() {}

func runBodyclose(pass *Pass) error {
	closers := bodycloseComputeFacts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			bodycloseCheckFunc(pass, fd, closers)
		}
	}
	return nil
}

// bodycloseComputeFacts exports a fact for every function that closes a
// response (or read-closer) it receives as a parameter, and returns the
// local closer set for same-package resolution.
func bodycloseComputeFacts(pass *Pass) map[types.Object]bool {
	closers := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			// Parameters that carry a closable body.
			params := make(map[types.Object]bool)
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					p := pass.TypesInfo.Defs[name]
					if p == nil {
						continue
					}
					if isHTTPResponsePtr(p.Type()) || isReadCloser(p.Type()) {
						params[p] = true
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			closes := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" {
					return true
				}
				// p.Close() on a read-closer param, or p.Body.Close()
				// on a response param.
				switch x := sel.X.(type) {
				case *ast.Ident:
					if params[pass.TypesInfo.Uses[x]] {
						closes = true
					}
				case *ast.SelectorExpr:
					if x.Sel.Name == "Body" {
						if id, ok := x.X.(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
							closes = true
						}
					}
				}
				return !closes
			})
			if closes {
				closers[obj] = true
				pass.ExportObjectFact(obj, &bodycloseFact{ClosesBody: true})
			}
		}
	}
	return closers
}

// bodycloseCheckFunc flags response variables in one function that are
// neither closed nor handed off.
func bodycloseCheckFunc(pass *Pass, fd *ast.FuncDecl, closers map[types.Object]bool) {
	// Collect candidate bindings: `resp, err := <call>` where the call
	// yields *http.Response.
	type candidate struct {
		obj  types.Object
		pos  ast.Expr
		call *ast.CallExpr
	}
	var candidates []candidate
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id] // plain = assignment
			}
			if obj == nil || !isHTTPResponsePtr(obj.Type()) {
				continue
			}
			candidates = append(candidates, candidate{obj: obj, pos: id, call: call})
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}

	resolved := func(obj types.Object) bool {
		ok := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ok {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Close" {
					// resp.Body.Close()
					if inner, isSel2 := sel.X.(*ast.SelectorExpr); isSel2 && inner.Sel.Name == "Body" {
						if id, isID := inner.X.(*ast.Ident); isID && pass.TypesInfo.Uses[id] == obj {
							ok = true
							return false
						}
					}
				}
				// resp (or resp.Body) passed to a closer / ReadCloser sink.
				callee := calleeObj(pass, n)
				for i, arg := range n.Args {
					argObj, body := bodycloseRespArg(pass, arg)
					if argObj != obj {
						continue
					}
					if callee != nil && (closers[callee] || bodycloseImportedCloser(pass, callee)) {
						ok = true
						return false
					}
					if body && bodycloseParamIsReadCloser(callee, i) {
						ok = true
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if argObj, _ := bodycloseRespArg(pass, res); argObj == obj {
						ok = true
						return false
					}
				}
			case *ast.AssignStmt:
				// Handed off into a field, map, slice or named struct:
				// conservative escape.
				for i, rhs := range n.Rhs {
					argObj, _ := bodycloseRespArg(pass, rhs)
					if argObj != obj || i >= len(n.Lhs) {
						continue
					}
					if _, plainIdent := n.Lhs[i].(*ast.Ident); !plainIdent {
						ok = true
						return false
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					e := elt
					if kv, isKV := e.(*ast.KeyValueExpr); isKV {
						e = kv.Value
					}
					if argObj, _ := bodycloseRespArg(pass, e); argObj == obj {
						ok = true
						return false
					}
				}
			}
			return true
		})
		return ok
	}

	seen := make(map[types.Object]bool)
	for _, c := range candidates {
		if seen[c.obj] {
			continue
		}
		seen[c.obj] = true
		if resolved(c.obj) {
			continue
		}
		pass.Reportf(c.pos.Pos(), "response body of %s is never closed in %s; defer %s.Body.Close() or hand it to the caller", bodycloseCallLabel(pass, c.call), fd.Name.Name, bodycloseVarName(c.pos))
	}
}

// bodycloseRespArg resolves expr to a response variable: `resp` yields
// (obj, false), `resp.Body` yields (obj, true), anything else (nil, _).
func bodycloseRespArg(pass *Pass, expr ast.Expr) (types.Object, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj != nil && isHTTPResponsePtr(obj.Type()) {
			return obj, false
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "Body" {
			if id, ok := e.X.(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[id]
				if obj != nil && isHTTPResponsePtr(obj.Type()) {
					return obj, true
				}
			}
		}
	case *ast.UnaryExpr:
		return bodycloseRespArg(pass, e.X)
	}
	return nil, false
}

func bodycloseImportedCloser(pass *Pass, obj types.Object) bool {
	f, ok := pass.ImportObjectFact(obj)
	if !ok {
		return false
	}
	bf, ok := f.(*bodycloseFact)
	return ok && bf.ClosesBody
}

// bodycloseParamIsReadCloser reports whether callee's i-th parameter is
// io.ReadCloser — an ownership transfer by convention.
func bodycloseParamIsReadCloser(callee types.Object, i int) bool {
	if callee == nil {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	if i >= sig.Params().Len() {
		if !sig.Variadic() || sig.Params().Len() == 0 {
			return false
		}
		i = sig.Params().Len() - 1
	}
	return isReadCloser(sig.Params().At(i).Type())
}

func bodycloseCallLabel(pass *Pass, call *ast.CallExpr) string {
	if callee := calleeObj(pass, call); callee != nil {
		return verdictCallName(callee)
	}
	return "call"
}

func bodycloseVarName(expr ast.Expr) string {
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return "resp"
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// isReadCloser reports whether t is io.ReadCloser.
func isReadCloser(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "io" && obj.Name() == "ReadCloser"
}
