package analysis

import "strings"

// Nolintreason keeps suppressions auditable: every nolint directive must
// name the specific check it silences and justify itself in the
// `//nolint:check1[,check2] // reason` form already used in the tree.
// A bare //nolint (silences everything, explains nothing), a missing or
// empty reason, or the spaced "// nolint" spelling (which tools ignore,
// so it silences nothing while looking like it does) are each defects.
// Test files are included: an unexplained suppression in a test is as
// opaque as one in production code.
var Nolintreason = &Analyzer{
	Name: "nolintreason",
	Doc:  "require every //nolint directive to name its check and carry a // reason",
	Run:  runNolintreason,
}

func runNolintreason(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseNolint(c.Text)
				if !ok || d.wellFormed() {
					continue
				}
				switch {
				case d.spaced:
					pass.Reportf(c.Pos(),
						`"// nolint" is not a directive (tools require "//nolint" with no space); fix the spelling and add ":check // reason"`)
				case !d.colon || len(d.checks) == 0:
					pass.Reportf(c.Pos(),
						"bare //nolint suppresses every check indiscriminately; name the check: //nolint:<check> // reason")
				case d.reason == "":
					checks := strings.Join(d.checks, ",")
					pass.Reportf(c.Pos(),
						"//nolint:%s has no justification; append a reason: //nolint:%s // why this is safe",
						checks, checks)
				}
			}
		}
	}
	return nil
}
