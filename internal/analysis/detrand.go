package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand enforces the determinism contract behind the golden regression
// gate: every report, JSON row, and metrics page must be byte-identical
// for any -workers value and any run time. Three sources of
// nondeterminism are forbidden in non-test code:
//
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - math/rand and math/rand/v2 (the simulator's randomness flows
//     through internal/rng's splittable, coordinate-keyed streams);
//   - ranging over a map while feeding ordered output (appending
//     derived values or writing/printing inside the loop body). The
//     collect-keys-then-sort idiom — a body that only appends the range
//     key itself — is recognized and allowed.
//
// The deterministic core (internal/core, experiments, verify, mlc, rng,
// cmd/regress) must be unconditionally clean. Wall-clock packages
// (internal/server, cmd/sortload) are not exempted wholesale: each
// intentional wall-clock read carries its own per-call
// `//nolint:detrand // reason`, so a new call site is a conscious,
// reviewed decision rather than a free-for-all.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads, math/rand, and map-ordered output in deterministic code",
	Run:  runDetrand,
}

// wallClockFuncs are the time package functions that read the wall
// clock. time.Sleep is deliberately absent: it delays but never flows
// into emitted values.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"import of %s is nondeterministic across runs; use internal/rng's splittable streams", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := stdlibCall(pass, n, "time"); ok && wallClockFuncs[name] {
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock; deterministic code must not depend on run time", name)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// stdlibCall reports whether call is pkgPath.Name(...) for a standard
// library package, returning the function name.
func stdlibCall(pass *Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return obj.Name(), true
}

// checkMapRange flags `for k := range m` over a map whose body feeds
// ordered output: map iteration order is randomized per run, so anything
// appended or written inside the loop lands in a different order every
// time. Appending only the key itself is the sanctioned
// collect-then-sort pattern and is not flagged.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyObj := rangeVarObj(pass, rng.Key)
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAppend(pass, n) {
				if !appendsOnlyKey(pass, n, keyObj) {
					reason = "appends map-ordered values"
				}
				return false // don't descend into append args
			}
			if isOutputCall(pass, n) {
				reason = "writes output inside the loop"
			}
		}
		return true
	})
	if reason != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic and this loop %s; collect the keys, sort them, then emit", reason)
	}
}

func rangeVarObj(pass *Pass, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsOnlyKey reports whether every appended value is exactly the
// range key variable — the collect-keys pattern that precedes a sort.
func appendsOnlyKey(pass *Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != keyObj {
			return false
		}
	}
	return true
}

// outputMethods are method names that emit to an ordered destination:
// writers, buffers, and encoders.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true,
}

// isOutputCall reports whether call writes to ordered output: a method
// from outputMethods, or an fmt print function.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || !outputMethods[obj.Name()] {
		return false
	}
	// Package-level functions qualify only from fmt (Fprintf and
	// friends); methods (on writers, buffers, encoders) always qualify.
	if _, isSel := pass.TypesInfo.Selections[sel]; isSel {
		return true
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}
