package analysis_test

import (
	"testing"

	"approxsort/internal/analysis"
)

// TestRepositoryIsClean runs the full analyzer suite over every package
// of the module as one dependency-ordered, fact-sharing pass: plain
// `go test` must catch a new violation — including cross-package ones
// like a lock-order cycle spanning server and parallel — without
// waiting for CI's memlint job. Intentional exemptions are the
// per-call //nolint directives rostered in DESIGN.md §11.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := analysis.RunSuite(units, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
