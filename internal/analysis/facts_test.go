package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// factTestPkg type-checks a tiny package and returns its scope.
func factTestPkg(t *testing.T) *types.Package {
	t.Helper()
	const src = `package p
type T struct{}
func (t *T) M() {}
func (t T) N() {}
func F() {}
var V int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestFactKey(t *testing.T) {
	pkg := factTestPkg(t)
	scope := pkg.Scope()
	named := scope.Lookup("T").Type().(*types.Named)
	methods := map[string]types.Object{}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		methods[m.Name()] = m
	}

	cases := []struct {
		obj  types.Object
		want string
	}{
		{scope.Lookup("F"), "example/p.F"},
		{scope.Lookup("V"), "example/p.V"},
		{scope.Lookup("T"), "example/p.T"},
		// Pointer receivers strip: (*T).M and (T).N key the same way.
		{methods["M"], "example/p.(T).M"},
		{methods["N"], "example/p.(T).N"},
		{nil, ""},
		{types.Universe.Lookup("len"), ""}, // builtin: no package
	}
	for _, c := range cases {
		if got := FactKey(c.obj); got != c.want {
			t.Errorf("FactKey(%v) = %q, want %q", c.obj, got, c.want)
		}
	}
}

// TestFactsEncodeDecodeRoundTrip pins the .vetx payload contract: a
// store survives JSON encode/decode with concrete fact types rebuilt
// through each analyzer's NewFact constructor.
func TestFactsEncodeDecodeRoundTrip(t *testing.T) {
	src := NewFactStore()
	src.export(Ctxleak.Name, "example/p.F", &ctxleakFact{DoesHTTP: true})
	src.export(Lockorder.Name, "example/p.G", &lockorderFact{
		Acquires: []string{"example/p.mu"},
		Edges:    []lockorderEdge{{From: "example/p.mu", To: "example/q.mu", Fn: "example/p.G", File: "p.go", Line: 3}},
	})
	src.export(Verdictcheck.Name, "example/p.Audit", &verdictFact{ReturnsVerdict: true})
	src.export(Bodyclose.Name, "example/p.Drain", &bodycloseFact{ClosesBody: true})
	// Empty keys and nil facts must not land in the store.
	src.export(Ctxleak.Name, "", &ctxleakFact{DoesHTTP: true})
	src.export(Ctxleak.Name, "example/p.nil", nil)

	data, err := src.EncodeFacts()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewFactStore()
	if err := dst.DecodeFacts(data, All()); err != nil {
		t.Fatal(err)
	}

	if f, ok := dst.imp(Ctxleak.Name, "example/p.F"); !ok {
		t.Error("ctxleak fact lost in round trip")
	} else if cf := f.(*ctxleakFact); !cf.DoesHTTP {
		t.Error("ctxleak DoesHTTP flattened to false")
	}
	if f, ok := dst.imp(Lockorder.Name, "example/p.G"); !ok {
		t.Error("lockorder fact lost in round trip")
	} else {
		lf := f.(*lockorderFact)
		if len(lf.Acquires) != 1 || lf.Acquires[0] != "example/p.mu" {
			t.Errorf("lockorder acquires = %v", lf.Acquires)
		}
		if len(lf.Edges) != 1 || lf.Edges[0].To != "example/q.mu" || lf.Edges[0].Line != 3 {
			t.Errorf("lockorder edges = %v", lf.Edges)
		}
	}
	if _, ok := dst.imp(Verdictcheck.Name, "example/p.Audit"); !ok {
		t.Error("verdictcheck fact lost in round trip")
	}
	if _, ok := dst.imp(Bodyclose.Name, "example/p.Drain"); !ok {
		t.Error("bodyclose fact lost in round trip")
	}
	if _, ok := dst.imp(Ctxleak.Name, ""); ok {
		t.Error("empty key must not be stored")
	}
	if got, want := dst.keys(Lockorder.Name), 1; len(got) != want {
		t.Errorf("lockorder keys = %v, want %d entry", got, want)
	}
}

func TestDecodeFactsTolerance(t *testing.T) {
	s := NewFactStore()
	// Legacy placeholder and empty files decode to nothing.
	for _, data := range []string{"", "   \n", "memlint facts placeholder"} {
		if err := s.DecodeFacts([]byte(data), All()); err != nil {
			t.Errorf("DecodeFacts(%q) = %v, want nil", data, err)
		}
	}
	// Facts for analyzers outside the suite are skipped, not errors.
	if err := s.DecodeFacts([]byte(`{"nosuch":{"p.F":{"X":1}}}`), All()); err != nil {
		t.Errorf("unknown analyzer: %v", err)
	}
	// Facts for analyzers without a NewFact constructor are skipped.
	if err := s.DecodeFacts([]byte(`{"detrand":{"p.F":{"X":1}}}`), All()); err != nil {
		t.Errorf("factless analyzer: %v", err)
	}
	// Malformed JSON is an error once it looks like a fact file.
	if err := s.DecodeFacts([]byte(`{"ctxleak":`), All()); err == nil {
		t.Error("truncated fact file decoded without error")
	}
	if err := s.DecodeFacts([]byte(`{"ctxleak":{"p.F":[1,2]}}`), All()); err == nil {
		t.Error("mistyped fact value decoded without error")
	}
}

// TestPassFactAccessors exercises the Pass-level fact API against a nil
// store (vet probes construct passes before any store exists) and a
// live one.
func TestPassFactAccessors(t *testing.T) {
	pkg := factTestPkg(t)
	obj := pkg.Scope().Lookup("F")

	nilPass := &Pass{Analyzer: Ctxleak}
	nilPass.ExportObjectFact(obj, &ctxleakFact{DoesHTTP: true})
	if _, ok := nilPass.ImportObjectFact(obj); ok {
		t.Error("nil-store pass returned a fact")
	}
	if _, ok := nilPass.ImportObjectFactByKey("example/p.F"); ok {
		t.Error("nil-store pass returned a fact by key")
	}
	if keys := nilPass.AllObjectFactKeys(); keys != nil {
		t.Errorf("nil-store pass keys = %v", keys)
	}

	pass := &Pass{Analyzer: Ctxleak, facts: NewFactStore()}
	pass.ExportObjectFact(obj, &ctxleakFact{DoesHTTP: true})
	if f, ok := pass.ImportObjectFact(obj); !ok || !f.(*ctxleakFact).DoesHTTP {
		t.Error("exported fact not importable")
	}
	if _, ok := pass.ImportObjectFactByKey("example/p.F"); !ok {
		t.Error("fact not importable by key")
	}
	if keys := pass.AllObjectFactKeys(); len(keys) != 1 || keys[0] != "example/p.F" {
		t.Errorf("keys = %v", keys)
	}
}
