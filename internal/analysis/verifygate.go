package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

const (
	experimentsPkgPath = "approxsort/internal/experiments"
	verifyPkgPath      = "approxsort/internal/verify"
)

// Verifygate enforces PR 3's "fail rather than emit an unverified row"
// rule at compile time. Any function in internal/experiments that
// returns a row or report type (a struct declared in the package whose
// name ends in "Row" or "Report" — the shapes the cmd/ harnesses
// serialize) must reach a verify.Check* call: either directly in its
// body (function literals included, so rows built inside parallel.Map
// closures count), or by calling another function in the package that
// does. The closure is computed to a fixpoint, so a sweep like Fig9 is
// covered by the verify.Check inside the leaf Refine it fans out to —
// and removing that one call re-flags every sweep above it.
var Verifygate = &Analyzer{
	Name: "verifygate",
	Doc:  "require a verify.Check* call on every experiments function returning serialized rows",
	Run:  runVerifygate,
}

func runVerifygate(pass *Pass) error {
	if pass.PkgPath != experimentsPkgPath {
		return nil
	}

	rowTypes := collectRowTypes(pass)
	if len(rowTypes) == 0 {
		return nil
	}

	// Map every function declaration to the package functions it calls
	// and whether it calls verify.Check* directly.
	type funcInfo struct {
		decl      *ast.FuncDecl
		callees   map[types.Object]bool
		verifying bool
	}
	infos := make(map[types.Object]*funcInfo)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			info := &funcInfo{decl: fd, callees: make(map[types.Object]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeObj(pass, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch {
				case callee.Pkg().Path() == verifyPkgPath && strings.HasPrefix(callee.Name(), "Check"):
					info.verifying = true
				case callee.Pkg() == pass.Pkg:
					info.callees[callee] = true
				}
				return true
			})
			infos[obj] = info
		}
	}

	// Propagate "verifying" through the in-package call graph until it
	// stabilizes.
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.verifying {
				continue
			}
			for callee := range info.callees {
				if c, ok := infos[callee]; ok && c.verifying {
					info.verifying = true
					changed = true
					break
				}
			}
		}
	}

	for obj, info := range infos {
		if info.verifying {
			continue
		}
		if row := returnsRowType(obj, rowTypes); row != "" {
			pass.Reportf(info.decl.Name.Pos(),
				"%s returns %s but no verify.Check* call guards the row; runs must be audited before their rows are emitted",
				obj.Name(), row)
		}
	}
	return nil
}

// collectRowTypes gathers the package's serialized row/report types: the
// named struct types whose name ends in "Row" or "Report".
func collectRowTypes(pass *Pass) map[*types.TypeName]bool {
	rows := make(map[*types.TypeName]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if !strings.HasSuffix(name, "Row") && !strings.HasSuffix(name, "Report") {
			continue
		}
		if _, ok := tn.Type().Underlying().(*types.Struct); ok {
			rows[tn] = true
		}
	}
	return rows
}

// calleeObj resolves the object a call statically invokes, through plain
// identifiers and selections.
func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// returnsRowType reports the first row type mentioned in fn's results
// (directly, behind a pointer, or as a slice/array element), or "".
func returnsRowType(fn types.Object, rows map[*types.TypeName]bool) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if name := rowTypeIn(sig.Results().At(i).Type(), rows, 0); name != "" {
			return name
		}
	}
	return ""
}

func rowTypeIn(t types.Type, rows map[*types.TypeName]bool, depth int) string {
	if depth > 4 {
		return ""
	}
	switch t := t.(type) {
	case *types.Named:
		if rows[t.Obj()] {
			return t.Obj().Name()
		}
	case *types.Pointer:
		return rowTypeIn(t.Elem(), rows, depth+1)
	case *types.Slice:
		return rowTypeIn(t.Elem(), rows, depth+1)
	case *types.Array:
		return rowTypeIn(t.Elem(), rows, depth+1)
	}
	return ""
}
