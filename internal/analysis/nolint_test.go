package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "detrand",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "time.Now reads the wall clock",
	}
	s := d.String()
	for _, part := range []string{"x.go:3:7", "[detrand]", "wall clock"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q, missing %q", s, part)
		}
	}
}

func TestParseNolint(t *testing.T) {
	cases := []struct {
		text       string
		directive  bool
		wellFormed bool
		checks     []string
		reason     string
	}{
		{"//nolint:floatord // exact sentinel", true, true, []string{"floatord"}, "exact sentinel"},
		{"//nolint:floatord,detrand // shared reason", true, true, []string{"floatord", "detrand"}, "shared reason"},
		{"//nolint", true, false, nil, ""},
		{"//nolint:", true, false, nil, ""},
		{"//nolint:floatord", true, false, []string{"floatord"}, ""},
		{"//nolint:floatord //", true, false, []string{"floatord"}, ""},
		{"// nolint:floatord // spaced spelling", true, false, []string{"floatord"}, ""},
		{"//nolint reasonless bare", true, false, nil, ""},
		// Prose that merely mentions the word is not a directive.
		{"// nolintreason enforces directive hygiene", false, false, nil, ""},
		{"// the //nolint grammar is strict", false, false, nil, ""},
		{"// ordinary comment", false, false, nil, ""},
	}
	for _, c := range cases {
		d, ok := parseNolint(c.text)
		if ok != c.directive {
			t.Errorf("%q: directive = %v, want %v", c.text, ok, c.directive)
			continue
		}
		if !ok {
			continue
		}
		if got := d.wellFormed(); got != c.wellFormed {
			t.Errorf("%q: wellFormed = %v, want %v", c.text, got, c.wellFormed)
		}
		if len(d.checks) != len(c.checks) {
			t.Errorf("%q: checks = %v, want %v", c.text, d.checks, c.checks)
		} else {
			for i := range c.checks {
				if d.checks[i] != c.checks[i] {
					t.Errorf("%q: checks = %v, want %v", c.text, d.checks, c.checks)
					break
				}
			}
		}
		if c.wellFormed && d.reason != c.reason {
			t.Errorf("%q: reason = %q, want %q", c.text, d.reason, c.reason)
		}
	}
}
