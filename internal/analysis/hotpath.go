package analysis

import (
	"go/ast"
	"go/types"
)

// hotpathMarker is the annotation that opts a function into the check,
// written as a directive comment in the function's doc block.
const hotpathMarker = "//memlint:hotpath"

// Hotpath guards the per-access cost contract of the simulation core's
// inner loops (DESIGN.md §13): a function annotated //memlint:hotpath
// runs once per simulated word access, so a heap allocation or a
// dynamically dispatched call inside it multiplies by the access count
// of every sweep. The analyzer flags, inside annotated functions:
//
//   - allocation sites: make, new, append, function literals, and
//     address-taken composite literals;
//   - interface-crossing method calls and calls through func values,
//     which block inlining and cost dynamic dispatch per access.
//
// A deliberate exception — a traced array's per-access sink dispatch,
// a foreign model behind the devirtualized fast path — carries a
// same-line `//nolint:hotpath // reason` naming why the cost stays off
// the untraced fast path.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag per-access heap allocations and dynamic dispatch in //memlint:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotpathAnnotated(fn) {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
	return nil
}

func hotpathAnnotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathMarker {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, n, name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal allocates in hotpath function %s; hoist it out of the per-access path", name)
		case *ast.UnaryExpr:
			if _, isLit := n.X.(*ast.CompositeLit); isLit {
				pass.Reportf(n.Pos(),
					"address-taken composite literal allocates in hotpath function %s; reuse a preallocated value", name)
			}
		}
		return true
	})
}

// checkHotpathCall classifies one call inside an annotated body:
// allocating builtins and dynamically dispatched calls are flagged;
// static calls, conversions, and non-allocating builtins pass.
func checkHotpathCall(pass *Pass, call *ast.CallExpr, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(),
					"%s allocates in hotpath function %s; hoist or reuse buffers", obj.Name(), name)
			}
		case *types.Var:
			// A call through a func-typed variable or parameter.
			pass.Reportf(call.Pos(),
				"dynamic call through %s in hotpath function %s; pass concrete work instead of a callback", fun.Name, name)
		}
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[fun]
		if !ok {
			// Package-qualified identifier: a static call or conversion.
			return
		}
		switch sel.Kind() {
		case types.MethodVal:
			if types.IsInterface(sel.Recv()) {
				pass.Reportf(call.Pos(),
					"interface-crossing call %s.%s in hotpath function %s; devirtualize or batch through the bulk API",
					types.TypeString(sel.Recv(), types.RelativeTo(pass.Pkg)), fun.Sel.Name, name)
			}
		case types.FieldVal:
			pass.Reportf(call.Pos(),
				"dynamic call through field %s in hotpath function %s; pass concrete work instead of a callback",
				fun.Sel.Name, name)
		}
	}
}
