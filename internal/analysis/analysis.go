// Package analysis is the repository's static-analysis suite: ten
// analyzers that turn the simulator's runtime contracts into
// compile-time checks, plus the loading, fact-propagation and
// reporting plumbing that cmd/memlint and the analysistest harness
// share.
//
// The shape deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer value with a Run function over a type-checked Pass, plus
// per-object facts flowing from imported packages to importers — so
// the analyzers would port to the upstream framework verbatim. The
// repo vendors no third-party modules, so the subset used here is
// implemented on the standard library alone: packages load through
// `go list -export` (load.go), facts serialize as JSON keyed by
// canonical object keys (facts.go), and RunSuite analyzes units in
// dependency order so every pass sees its imports' facts.
//
// The ten analyzers and the runtime invariant each one fronts:
//
//   - detrand: byte-identical reports for any -workers value (no wall
//     clock, no math/rand, no map-ordered output) — the determinism
//     contract behind cmd/regress's golden gate.
//   - memescape: every simulated access is charged through mem.Space
//     accounting; the uncharged mem.Peeker/PeekAll escape hatch stays
//     out of cost-model paths.
//   - floatord: no ==/!= on floating-point accounting quantities; the
//     rel-1e-9 tolerance contract of internal/verify.
//   - verifygate: every experiments row destined for serialization is
//     audited by a verify.Check* call before it can be emitted.
//   - hotpath: functions annotated //memlint:hotpath — the per-access
//     inner loops of the simulation core — stay free of heap
//     allocations and dynamic dispatch (DESIGN.md §13).
//   - nolintreason: every //nolint directive names its check and
//     justifies itself, so exemptions stay auditable.
//   - ctxleak: goroutines launched in the service layers are joined or
//     context-bound, and outbound HTTP carries a deadline-bearing
//     context — no shard fan-out may outlive its request.
//   - lockorder: the global mutex acquisition graph, assembled from
//     per-function facts across server, cluster, parallel and friends,
//     stays acyclic.
//   - verdictcheck: no call whose result carries a verify verdict or
//     Stats ledger may discard it, through wrappers interprocedurally.
//   - bodyclose: every *http.Response obtained from the cluster client
//     or elsewhere is closed on all paths or handed to a closer.
//
// Suppression: a diagnostic is suppressed only by a same-line
// `//nolint:<name> // reason` directive naming the analyzer. Bare or
// reasonless directives never suppress — and nolintreason flags them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. The subset of the upstream
// go/analysis Analyzer contract used by this repository: a name for
// diagnostics and -flag toggles, documentation, and a Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, //nolint directives
	// and command-line toggles. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run executes the analyzer over one type-checked package.
	Run func(*Pass) error
	// NewFact returns a fresh zero value of the analyzer's fact type,
	// used to decode serialized facts in go vet mode. Nil means the
	// analyzer neither exports nor imports facts.
	NewFact func() Fact
}

// Pass carries one type-checked package through an analyzer, mirroring
// go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the package, with comments.
	Files []*ast.File
	// PkgPath is the canonical import path with any " [test]" variant
	// suffix stripped, so path-scoped rules see the same identity for a
	// package and its in-package test compilation.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers exempt test code: tests may peek at simulated memory and
// time their own scaffolding without perturbing any accounted run.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one reported finding, resolved to a concrete position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand, Memescape, Floatord, Verifygate, Hotpath, Nolintreason,
		Ctxleak, Lockorder, Verdictcheck, Bodyclose,
	}
}

// RunUnit executes each analyzer over one unit against a shared fact
// store: facts exported by earlier units (or decoded from .vetx files
// in go vet mode) are visible, and facts this unit exports land in the
// store for later units. Diagnostics are nolint-filtered and sorted.
func RunUnit(u *Unit, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Syntax,
			PkgPath:   u.PkgPath,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, u.PkgPath, err)
		}
	}
	diags = suppressNolinted(u, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// RunSuite analyzes units in dependency order (importees before
// importers) with one shared fact store, so cross-package facts flow
// exactly as in a `go vet` build graph, and returns every surviving
// diagnostic sorted by position. This is the standalone multi-package
// entry point behind `memlint ./...` and the repository self-clean
// gate.
func RunSuite(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFactStore()
	var diags []Diagnostic
	for _, u := range SortUnitsByDeps(units) {
		ds, err := RunUnit(u, analyzers, facts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressNolinted drops diagnostics whose line carries a well-formed
// //nolint directive naming the diagnostic's analyzer. Malformed
// directives (bare, reasonless) suppress nothing.
func suppressNolinted(u *Unit, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	suppressed := make(map[key]map[string]bool)
	for _, f := range u.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseNolint(c.Text)
				if !ok || !d.wellFormed() {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				if suppressed[k] == nil {
					suppressed[k] = make(map[string]bool)
				}
				for _, name := range d.checks {
					suppressed[k][name] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if suppressed[key{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
