package analysistest_test

import (
	"path/filepath"
	"testing"

	"approxsort/internal/analysis"
	"approxsort/internal/analysis/analysistest"
)

// testdata is shared with the analyzer suites one directory up.
var testdata = filepath.Join("..", "testdata")

// TestHarnessFixtureResolution drives the harness end to end: fixture
// packages that import other fixtures (memuser → the fake
// approxsort/internal/mem) and fixtures that fall back to real stdlib
// export data (detrand → fmt, sort, strings, time).
func TestHarnessFixtureResolution(t *testing.T) {
	analysistest.Run(t, testdata, analysis.Detrand, "detrand")
	analysistest.Run(t, testdata, analysis.Memescape, "memuser")
}

// TestHarnessBlockCommentWants covers the `/* want ... */` spelling
// used where a line comment under test occupies the rest of the line.
func TestHarnessBlockCommentWants(t *testing.T) {
	analysistest.Run(t, testdata, analysis.Nolintreason, "nolintfix")
}
