// Package analysistest runs an analyzer over fixture packages laid out
// under testdata/src/<importpath>/ and checks its diagnostics against
// `// want` expectations, mirroring the x/tools harness of the same
// name on the standard library alone.
//
// Expectation syntax, on the line the diagnostic must land on:
//
//	m[sortedKeys()] = 1 // want `map iteration`
//
// Each backquoted (or double-quoted) string is a regular expression that
// must match the message of exactly one diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations with
// no matching diagnostic, both fail the test.
//
// Fixture packages may import each other by their testdata import path
// — including fakes of real repository packages (a testdata
// approxsort/internal/mem stands in for the real one, so path-scoped
// analyzers exercise their real configuration). Imports not found under
// testdata/src resolve against the real build's export data via
// `go list -export`, so fixtures can use the standard library freely.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"approxsort/internal/analysis"
)

// Run loads each fixture package and reports expectation mismatches as
// test errors. All named packages plus every fixture package they pull
// in are analyzed in dependency order against one shared fact store —
// the same shape as a real multi-package memlint run — so cross-package
// facts flow into the named fixtures. Expectations are checked only in
// the named packages; dependency fixtures contribute facts, not
// diagnostics.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &loader{
		src:     filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		units:   make(map[string]*analysis.Unit),
		exports: make(map[string]string),
	}
	named := make(map[string]bool, len(pkgPaths))
	for _, path := range pkgPaths {
		if _, err := ld.load(path); err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		named[path] = true
	}
	paths := make([]string, 0, len(ld.units))
	for path := range ld.units { //nolint:detrand // sorted on the next line
		paths = append(paths, path)
	}
	sort.Strings(paths)
	units := make([]*analysis.Unit, 0, len(paths))
	for _, path := range paths {
		units = append(units, ld.units[path])
	}

	facts := analysis.NewFactStore()
	for _, u := range analysis.SortUnitsByDeps(units) {
		diags, err := analysis.RunUnit(u, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, u.PkgPath, err)
		}
		if named[u.PkgPath] {
			checkExpectations(t, u, diags)
		}
	}
}

// loader type-checks fixture packages, resolving fixture-local imports
// recursively and everything else through real export data.
type loader struct {
	src      string
	fset     *token.FileSet
	units    map[string]*analysis.Unit
	exports  map[string]string
	fallback types.Importer
}

func (l *loader) load(path string) (*analysis.Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	u, err := analysis.TypeCheck(l.fset, path, files, l)
	if err != nil {
		return nil, err
	}
	l.units[path] = u
	return u, nil
}

// Import implements types.Importer: fixture packages win over the real
// build's export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	if l.fallback == nil {
		l.fallback = analysis.ExportImporter(l.fset, l.exportFile)
	}
	return l.fallback.Import(path)
}

// exportFile resolves a non-fixture import (stdlib, in practice) to its
// compiled export data, caching the `go list` lookups.
func (l *loader) exportFile(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		return f, nil
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json", "--", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return "", err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := l.exports[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// checkExpectations diffs diagnostics against the `// want` comments of
// every fixture file.
func checkExpectations(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range u.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", u.Fset.Position(c.Pos()), err)
				}
				if len(patterns) == 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				wants[lineKey{pos.Filename, pos.Line}] = append(wants[lineKey{pos.Filename, pos.Line}], patterns...)
			}
		}
	}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k][matched] = nil
	}
	var unmatched []string
	for k, res := range wants { //nolint:detrand // collected lines are sorted before reporting
		for _, re := range res {
			if re != nil {
				unmatched = append(unmatched, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(unmatched)
	for _, m := range unmatched {
		t.Errorf("%s", m)
	}
}

// wantRe extracts the expectation strings of a `// want` comment: each
// backquoted or double-quoted chunk is one pattern.
var wantRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

func parseWant(comment string) ([]*regexp.Regexp, error) {
	// Block-comment expectations (`/* want ... */`) let a fixture line
	// carry both a want and a trailing line comment under test — a line
	// comment would swallow everything after it, nolint directive
	// included.
	body := strings.TrimPrefix(comment, "//")
	if strings.HasPrefix(comment, "/*") {
		body = strings.TrimSuffix(strings.TrimPrefix(comment, "/*"), "*/")
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "want ") {
		return nil, nil
	}
	var patterns []*regexp.Regexp
	for _, m := range wantRe.FindAllString(body[len("want "):], -1) {
		re, err := regexp.Compile(m[1 : len(m)-1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", m, err)
		}
		patterns = append(patterns, re)
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("want comment with no quoted pattern: %s", comment)
	}
	return patterns, nil
}
