package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Fact is a unit of analyzer knowledge attached to a package-level
// object (a function, method, type, or variable) and visible to later
// passes of the same analyzer over downstream packages. It mirrors the
// upstream go/analysis fact model with two simplifications that keep
// the implementation on the standard library:
//
//   - facts are keyed by the object's canonical string key (FactKey)
//     rather than by types.Object identity, so a fact survives the
//     round trip through export data, where the importing package
//     materializes a different types.Object for the same symbol;
//   - facts are serialized as JSON (not gob) into the .vetx files the
//     go vet driver shuttles between compilation units, so the files
//     stay inspectable and the analyzers need no init-time type
//     registration.
//
// A Fact implementation must be a pointer to a JSON-marshalable struct;
// AFact is a marker that documents intent and keeps arbitrary values
// out of the store.
type Fact interface {
	AFact()
}

// FactKey returns the canonical cross-package key for a package-level
// object: "pkgpath.Name" for functions, types and variables, and
// "pkgpath.(Recv).Name" for methods, with any pointer receiver
// stripped so (*T).M and (T).M share one key. Objects without a
// package (builtins, the blank identifier) key to "".
func FactKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				name = "(" + named.Obj().Name() + ")." + name
			}
		}
	}
	return obj.Pkg().Path() + "." + name
}

// FactStore accumulates facts across a dependency-ordered run of many
// packages. One store is shared by every pass of a suite run: when
// analyzer A runs over package P it exports facts about P's objects,
// and when A later runs over a package importing P those facts are
// already present. The zero value is not usable; call NewFactStore.
type FactStore struct {
	// byAnalyzer maps analyzer name -> object key -> fact.
	byAnalyzer map[string]map[string]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byAnalyzer: make(map[string]map[string]Fact)}
}

func (s *FactStore) export(analyzer, key string, f Fact) {
	if key == "" || f == nil {
		return
	}
	m := s.byAnalyzer[analyzer]
	if m == nil {
		m = make(map[string]Fact)
		s.byAnalyzer[analyzer] = m
	}
	m[key] = f
}

func (s *FactStore) imp(analyzer, key string) (Fact, bool) {
	f, ok := s.byAnalyzer[analyzer][key]
	return f, ok
}

// keys returns the sorted object keys holding a fact for analyzer.
// Analyzers that enumerate the store (lockorder's global graph) must
// iterate in this order to keep diagnostics deterministic.
func (s *FactStore) keys(analyzer string) []string {
	m := s.byAnalyzer[analyzer]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EncodeFacts serializes every fact in the store as JSON:
// analyzer name -> object key -> fact value. In go vet mode the result
// is written to the unit's .vetx output file; downstream units decode
// it with DecodeFacts. Output is deterministic (sorted keys via
// encoding/json's map ordering).
func (s *FactStore) EncodeFacts() ([]byte, error) {
	out := make(map[string]map[string]json.RawMessage, len(s.byAnalyzer))
	for name, m := range s.byAnalyzer {
		enc := make(map[string]json.RawMessage, len(m))
		for key, f := range m {
			b, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("analysis: encode fact %s/%s: %w", name, key, err)
			}
			enc[key] = b
		}
		out[name] = enc
	}
	return json.Marshal(out)
}

// DecodeFacts merges a serialized fact file into the store. Each
// analyzer's NewFact constructor gives the concrete type to decode
// into; facts for analyzers absent from the suite (or analyzers that
// declare no fact type) are skipped, and an empty or legacy
// placeholder file decodes to nothing.
func (s *FactStore) DecodeFacts(data []byte, analyzers []*Analyzer) error {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" || !strings.HasPrefix(trimmed, "{") {
		return nil // empty or pre-facts placeholder file
	}
	var raw map[string]map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("analysis: decode facts: %w", err)
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	for name, m := range raw {
		a := byName[name]
		if a == nil || a.NewFact == nil {
			continue
		}
		for key, b := range m {
			f := a.NewFact()
			if err := json.Unmarshal(b, f); err != nil {
				return fmt.Errorf("analysis: decode fact %s/%s: %w", name, key, err)
			}
			s.export(name, key, f)
		}
	}
	return nil
}

// ExportObjectFact records a fact about obj for this pass's analyzer.
// The fact becomes visible to the same analyzer running over any
// package analyzed after this one (imports are analyzed first, so
// "after" means "importers"). Exporting twice for one object
// overwrites: the last call wins.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.export(p.Analyzer.Name, FactKey(obj), f)
}

// ImportObjectFact returns the fact previously exported for obj by this
// pass's analyzer, whether from an earlier package in this run or from
// a decoded .vetx file in go vet mode.
func (p *Pass) ImportObjectFact(obj types.Object) (Fact, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.imp(p.Analyzer.Name, FactKey(obj))
}

// ImportObjectFactByKey is ImportObjectFact for callers that already
// hold a canonical key (e.g. graph nodes rebuilt from other facts).
func (p *Pass) ImportObjectFactByKey(key string) (Fact, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.imp(p.Analyzer.Name, key)
}

// AllObjectFactKeys returns the sorted keys of every fact visible to
// this pass's analyzer, including facts it exported during this very
// pass. Analyzers building whole-program structures (lockorder's
// acquisition graph) enumerate the store through this to stay
// deterministic.
func (p *Pass) AllObjectFactKeys() []string {
	if p.facts == nil {
		return nil
	}
	return p.facts.keys(p.Analyzer.Name)
}

// SortUnitsByDeps orders units so every unit appears after all units it
// imports (directly or transitively), which is the order RunSuite needs
// for facts to flow importee -> importer. Ties break on package path,
// so the order is stable for a given unit set. Import edges outside the
// unit set (stdlib, export data) are ignored.
func SortUnitsByDeps(units []*Unit) []*Unit {
	byPath := make(map[string]*Unit, len(units))
	paths := make([]string, 0, len(units))
	for _, u := range units {
		byPath[u.PkgPath] = u
		paths = append(paths, u.PkgPath)
	}
	sort.Strings(paths)

	out := make([]*Unit, 0, len(units))
	state := make(map[string]int, len(units)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		u := byPath[path]
		if u == nil || state[path] != 0 {
			return // external dep, or already placed (cycles cannot occur in Go imports)
		}
		state[path] = 1
		imps := u.Pkg.Imports()
		impPaths := make([]string, 0, len(imps))
		for _, imp := range imps {
			impPaths = append(impPaths, basePkgPath(imp.Path()))
		}
		sort.Strings(impPaths)
		for _, ip := range impPaths {
			visit(ip)
		}
		state[path] = 2
		out = append(out, u)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}
