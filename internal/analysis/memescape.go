package analysis

import (
	"go/ast"
	"go/types"
)

// memPkgPath is the accounting package every simulated access must flow
// through.
const memPkgPath = "approxsort/internal/mem"

// memescapeExempt are the only non-test package paths allowed to touch
// simulated memory without charge: the accounting package itself and the
// verification subsystem (whose whole point is to measure a finished run
// without perturbing it).
var memescapeExempt = map[string]bool{
	memPkgPath:                   true,
	"approxsort/internal/verify": true,
}

// Memescape guards the read/write accounting contract: in a cost model
// built on asymmetric write costs, a single uncharged write path makes
// every latency and energy figure unverifiable. Simulated memory may
// only be touched through the charged mem.Words / mem.Space API. The
// free-of-charge escape hatch — mem.PeekAll, the mem.Peeker interface,
// and Peek(i) methods on instrumented arrays — is legal only in
// internal/verify and in _test.go files. Anywhere else, each use needs a
// per-call `//nolint:memescape // reason` documenting why the bypass
// cannot leak into accounted figures (the roster of exemptions lives in
// DESIGN.md §11).
var Memescape = &Analyzer{
	Name: "memescape",
	Doc:  "restrict the uncharged mem.Peeker/PeekAll escape hatch to internal/verify and tests",
	Run:  runMemescape,
}

func runMemescape(pass *Pass) error {
	if memescapeExempt[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != memPkgPath {
					return true
				}
				switch obj.Name() {
				case "PeekAll":
					pass.Reportf(n.Pos(),
						"mem.PeekAll bypasses access accounting; only internal/verify and _test.go files may peek")
				case "Peeker":
					pass.Reportf(n.Pos(),
						"mem.Peeker is the uncharged escape hatch; only internal/verify and _test.go files may use it")
				}
			case *ast.SelectorExpr:
				checkPeekCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkPeekCall flags selections of a Peek(int) uint32 method — the
// uncharged read every instrumented array implements — regardless of
// which concrete array type the receiver is.
func checkPeekCall(pass *Pass, sel *ast.SelectorExpr) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Name() != "Peek" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return
	}
	if !isBasic(sig.Params().At(0).Type(), types.Int) || !isBasic(sig.Results().At(0).Type(), types.Uint32) {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s.Peek reads simulated memory without charge; only internal/verify and _test.go files may peek",
		types.TypeString(selection.Recv(), types.RelativeTo(pass.Pkg)))
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}
