package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Unit is one package compilation ready for analysis: parsed syntax plus
// type information. For a package with in-package tests, the unit is the
// test variant (sources + _test.go files), matching what `go vet`
// analyzes.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads every package matched by patterns (typically
// "./...") in the module rooted at dir, including test compilations, and
// type-checks each against the export data `go list -export` produces.
// Dependencies are resolved through the same export files, so analysis
// sees exactly the types the real build does.
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPackage
	exports := make(map[string]string) // canonical import path -> export file
	hasTestVariant := make(map[string]bool)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && basePkgPath(p.ImportPath) == p.ForTest {
			hasTestVariant[p.ForTest] = true
		}
		pkgs = append(pkgs, p)
	}

	var units []*Unit
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		// Prefer the test variant: it compiles the same sources plus the
		// _test.go files, so analyzing both would double-report.
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue
		}
		u, err := checkUnit(p, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// basePkgPath strips the " [foo.test]" variant suffix go list attaches
// to test recompilations.
func basePkgPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// checkUnit parses and type-checks one listed package against export
// data.
func checkUnit(p *listPackage, exports map[string]string) (*Unit, error) {
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(p.Dir, f)
		}
		files[i] = f
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	})
	return TypeCheck(fset, basePkgPath(p.ImportPath), files, imp)
}

// ExportImporter returns a types.Importer backed by compiler export
// data, resolving each import path to an export file via resolve.
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// TypeCheck parses files (with comments) and type-checks them as package
// pkgPath, returning the analysis-ready unit. Type errors are hard
// failures: an analyzer verdict over a half-checked package is worthless.
func TypeCheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Unit, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, err := conf.Check(pkgPath, fset, syntax, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, err)
	}
	return &Unit{PkgPath: pkgPath, Fset: fset, Syntax: syntax, Pkg: pkg, Info: info}, nil
}

// ModuleRoot walks up from dir to the nearest directory containing
// go.mod — the root the loaders and scripts anchor their patterns to.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
