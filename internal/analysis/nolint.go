package analysis

import (
	"regexp"
	"strings"
)

// nolintDirective is one parsed suppression comment. The only accepted
// grammar, matching the form already used in the tree
// (`x() //nolint:errcheck // background noise only`), is:
//
//	//nolint:check1[,check2...] // reason
//
// Anything looser — a bare directive, a spaced "// nolint", a missing or
// empty reason — is rejected by wellFormed, suppresses nothing, and is
// itself flagged by the nolintreason analyzer.
type nolintDirective struct {
	raw    string
	checks []string
	reason string
	// spaced records the non-directive "// nolint" spelling, which Go
	// tools ignore; it is reported as its own defect.
	spaced bool
	// colon records whether a ":check" list was present at all.
	colon bool
}

// directiveStart matches comments that are (or were meant to be) nolint
// directives: "nolint" immediately at the start of the comment text,
// followed by a check list, whitespace, or end of comment. Prose that
// merely mentions an identifier like "nolintreason" does not match.
var directiveStart = regexp.MustCompile(`^//(\s*)nolint($|[:\s])`)

// parseNolint classifies a comment. ok is false for ordinary comments
// that are not nolint directives at all.
func parseNolint(text string) (d nolintDirective, ok bool) {
	m := directiveStart.FindStringSubmatch(text)
	if m == nil {
		return d, false
	}
	d.raw = text
	d.spaced = m[1] != ""
	rest := strings.TrimPrefix(text, "//")
	rest = strings.TrimLeft(rest, " \t")
	rest = strings.TrimPrefix(rest, "nolint")
	if strings.HasPrefix(rest, ":") {
		d.colon = true
		rest = rest[1:]
		list := rest
		if i := strings.IndexAny(list, " \t"); i >= 0 {
			list, rest = list[:i], list[i:]
		} else {
			rest = ""
		}
		for _, c := range strings.Split(list, ",") {
			if c = strings.TrimSpace(c); c != "" {
				d.checks = append(d.checks, c)
			}
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	if strings.HasPrefix(rest, "//") {
		d.reason = strings.TrimSpace(strings.TrimPrefix(rest, "//"))
	}
	return d, true
}

// wellFormed reports whether the directive both names at least one check
// and carries a non-empty `// reason` trailer.
func (d nolintDirective) wellFormed() bool {
	return !d.spaced && d.colon && len(d.checks) > 0 && d.reason != ""
}
