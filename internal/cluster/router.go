package cluster

import (
	"fmt"
	"sort"
)

// Partitioner routes keys to shards by range: shard i owns the keys in
// (splitters[i-1], splitters[i]], with the open ends at the extremes.
// Keys exactly equal to a boundary are legal on either side of it, and
// constant or few-valued inputs can make several boundaries equal; such
// boundary keys round-robin across every shard whose range touches the
// value, so a degenerate input still spreads instead of landing a whole
// stream on one shard. The rotation is deterministic (a per-value
// counter), and since equal keys are indistinguishable in a keys-only
// stream, the merged output is identical whichever shard sorts them.
type Partitioner struct {
	splitters []uint32
	shards    int
	// rr[v] rotates placement for boundary value v over [lo(v), hi(v)].
	rr map[uint32]int
}

// NewPartitioner builds a router for len(splitters)+1 shards. Splitters
// must be sorted ascending (equal entries allowed — see above).
func NewPartitioner(splitters []uint32) (*Partitioner, error) {
	for i := 1; i < len(splitters); i++ {
		if splitters[i] < splitters[i-1] {
			return nil, fmt.Errorf("cluster: splitters not sorted at %d: %d < %d", i, splitters[i], splitters[i-1])
		}
	}
	return &Partitioner{
		splitters: append([]uint32(nil), splitters...),
		shards:    len(splitters) + 1,
		rr:        make(map[uint32]int),
	}, nil
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.shards }

// Range returns shard i's key range [lo, hi], inclusive at both ends:
// a boundary value can round-robin onto either side of its splitter, so
// shard i may legitimately receive both of its boundary keys.
func (p *Partitioner) Range(i int) (lo, hi uint32) {
	lo, hi = 0, 1<<32-1
	if i > 0 {
		lo = p.splitters[i-1]
	}
	if i < len(p.splitters) {
		hi = p.splitters[i]
	}
	return lo, hi
}

// Route returns the shard for key.
func (p *Partitioner) Route(key uint32) int {
	// First splitter >= key: key belongs to that splitter's shard (the
	// (lo, hi] rule), unless key IS a boundary value, where every shard
	// between the first and last splitter equal to key (plus the one
	// above the last) is eligible and the per-value counter rotates.
	i := sort.Search(len(p.splitters), func(i int) bool { return p.splitters[i] >= key })
	if i == len(p.splitters) || p.splitters[i] != key {
		return i
	}
	j := i
	for j < len(p.splitters) && p.splitters[j] == key {
		j++
	}
	// Eligible shards are i..j (j is the shard above the last equal
	// splitter; shards strictly between equal splitters own an empty
	// open range and only ever receive this boundary value).
	n := j - i + 1
	r := p.rr[key]
	p.rr[key] = (r + 1) % n
	return i + r
}
