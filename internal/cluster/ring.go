// Package cluster fans one large sort across a fleet of sortd
// instances: a coordinator samples splitters, range-partitions the
// input into per-shard jobs placed by consistent hashing, drives the
// shards' approx-refine external sorts over the HTTP API, and folds the
// sorted shard streams through a single verified merge tournament so
// the cross-shard MergeWrites ledger stays exact.
//
// The package deliberately imports neither internal/server nor
// internal/verify: it speaks to shards over the wire (small JSON
// mirrors of the job API), and the coordinator's verification chain is
// injected through the StreamAuditor / WrapShard hooks, exactly as
// extsort.Verifier keeps verify out of extsort.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-node vnode count. 64 points per node
// keeps the standard deviation of ring arc shares within a few percent
// for small fleets without bloating lookups.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over node names (base
// URLs). Placement is stable under membership change: adding or
// removing a node only moves the keys on the arcs it owns.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over nodes with the given vnode count per node
// (<= 0 selects DefaultVirtualNodes). Node order does not matter;
// duplicate nodes are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	sort.Strings(r.nodes)
	for i, n := range r.nodes {
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Hash ties (astronomically rare with fnv-64) order by node so
		// the ring is still a pure function of the membership set.
		return p.node < q.node
	})
	return r, nil
}

// Nodes returns the membership in ring (sorted) order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Lookup returns the node owning key.
func (r *Ring) Lookup(key string) string { return r.LookupN(key, 1)[0] }

// LookupN returns min(n, len(nodes)) distinct nodes for key, walking
// clockwise from the key's point and skipping vnodes of already-chosen
// nodes — the standard preference-list walk, so node i+1 is the natural
// failover (or co-placement) target after node i.
func (r *Ring) LookupN(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}
