package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingDeterministicAcrossOrder(t *testing.T) {
	nodes := ringNodes(5)
	a, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed membership list: placement must not depend on input order.
	rev := make([]string, len(nodes))
	for i, n := range nodes {
		rev[len(nodes)-1-i] = n
	}
	b, err := NewRing(rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		ga, gb := a.LookupN(key, 3), b.LookupN(key, 3)
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("key %s: placement differs by input order: %v vs %v", key, ga, gb)
			}
		}
	}
}

func TestRingLookupNDistinct(t *testing.T) {
	r, err := NewRing(ringNodes(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got := r.LookupN(fmt.Sprintf("k%d", i), 4)
		if len(got) != 4 {
			t.Fatalf("LookupN returned %d nodes", len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate node %s in %v", n, got)
			}
			seen[n] = true
		}
	}
	// Asking for more nodes than exist clamps.
	if got := r.LookupN("k", 99); len(got) != 4 {
		t.Fatalf("over-ask returned %d nodes", len(got))
	}
}

func TestRingStableUnderMembershipChange(t *testing.T) {
	// Consistent hashing's whole point: adding one node moves roughly
	// 1/(n+1) of the keys and nothing else; removing it restores the
	// original placement exactly.
	nodes := ringNodes(4)
	before, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(append(append([]string(nil), nodes...), "http://10.0.0.99:8080"), 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		was, now := before.Lookup(key), grown.Lookup(key)
		if was != now {
			if now != "http://10.0.0.99:8080" {
				t.Fatalf("key %s moved between surviving nodes: %s -> %s", key, was, now)
			}
			moved++
		}
	}
	// Expected share 1/5 = 400; vnode variance keeps it loose.
	if moved < keys/10 || moved > keys/2 {
		t.Fatalf("adding a node moved %d/%d keys, want roughly %d", moved, keys, keys/5)
	}
	// Remove the node again: placement is exactly the original.
	shrunk, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if before.Lookup(key) != shrunk.Lookup(key) {
			t.Fatalf("key %s placement not restored after removal", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(ringNodes(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 6000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		if c < keys/3/2 || c > keys/3*2 {
			t.Errorf("node %s owns %d/%d keys, want near %d", node, c, keys, keys/3)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}
