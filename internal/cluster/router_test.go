package cluster

import (
	"testing"

	"approxsort/internal/dataset"
)

func TestPartitionerRoutesWithinRange(t *testing.T) {
	p, err := NewPartitioner([]uint32{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	for _, key := range dataset.Uniform(20000, 3) {
		s := p.Route(key)
		lo, hi := p.Range(s)
		if key < lo || key > hi {
			t.Fatalf("key %d routed to shard %d with range [%d, %d]", key, s, lo, hi)
		}
	}
}

func TestPartitionerBoundaryRoundRobin(t *testing.T) {
	// A constant input equal to every splitter (the degenerate
	// fewdistinct case) must spread across all shards, not land on one.
	p, err := NewPartitioner([]uint32{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.Shards())
	for i := 0; i < 4000; i++ {
		counts[p.Route(7)]++
	}
	for s, c := range counts {
		if c != 1000 {
			t.Fatalf("shard %d got %d of 4000 boundary keys, want exact round-robin: %v", s, c, counts)
		}
	}
}

func TestPartitionerSingleBoundaryAlternates(t *testing.T) {
	p, err := NewPartitioner([]uint32{50})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for i := 0; i < 10; i++ {
		counts[p.Route(50)]++
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("boundary key split %v, want 5/5", counts)
	}
	if s := p.Route(49); s != 0 {
		t.Fatalf("Route(49) = %d", s)
	}
	if s := p.Route(51); s != 1 {
		t.Fatalf("Route(51) = %d", s)
	}
}

func TestPartitionerDeterministic(t *testing.T) {
	keys := dataset.FewDistinct(5000, 8, 21)
	mk := func() []int {
		p, err := NewPartitioner([]uint32{1 << 10, 1 << 20, 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(keys))
		for i, k := range keys {
			out[i] = p.Route(k)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("routing diverged at %d", i)
		}
	}
}

func TestPartitionerRejectsUnsorted(t *testing.T) {
	if _, err := NewPartitioner([]uint32{5, 3}); err == nil {
		t.Fatal("unsorted splitters accepted")
	}
}
