package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// ShardError is the typed failure of one shard interaction: which node,
// which stage of the shard's lifecycle (submit, poll, job, output,
// table), and the underlying cause. A killed or unreachable shard
// surfaces as a ShardError, never as a hang — every request runs under
// the caller's context.
type ShardError struct {
	Node  string
	Stage string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %s: %s: %v", e.Node, e.Stage, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// JobParams are the sort parameters a shard job is submitted with,
// mirroring the /v1/sort/stream octet-stream query form.
type JobParams struct {
	Algorithm     string
	Bits          int
	Mode          string
	Backend       string
	T             float64
	Seed          uint64
	RunSize       int
	FanIn         int
	Formation     string
	RefineAtMerge bool
}

func (p JobParams) query() url.Values {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("algorithm", p.Algorithm)
	set("mode", p.Mode)
	set("backend", p.Backend)
	set("formation", p.Formation)
	if p.Bits != 0 {
		q.Set("bits", strconv.Itoa(p.Bits))
	}
	if p.T != 0 {
		q.Set("t", strconv.FormatFloat(p.T, 'g', -1, 64))
	}
	q.Set("seed", strconv.FormatUint(p.Seed, 10))
	if p.RunSize != 0 {
		q.Set("run_size", strconv.Itoa(p.RunSize))
	}
	if p.FanIn != 0 {
		q.Set("fan_in", strconv.Itoa(p.FanIn))
	}
	if p.RefineAtMerge {
		q.Set("refine_at_merge", "true")
	}
	return q
}

// jobView mirrors the slice of the sortd job snapshot the coordinator
// consumes. Unknown fields are ignored by design: the coordinator must
// tolerate shards a minor version ahead.
type jobView struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Error       string `json:"error"`
	OutputBytes int64  `json:"output_bytes"`
	Result      *struct {
		Verified   bool    `json:"verified"`
		Sorted     bool    `json:"sorted"`
		WriteNanos float64 `json:"write_nanos"`
		Extsort    *struct {
			Records     int64 `json:"records"`
			Runs        int   `json:"runs"`
			MergePasses int   `json:"merge_passes"`
		} `json:"extsort"`
	} `json:"result"`
}

// Client drives one sortd node's HTTP API on behalf of the coordinator.
type Client struct {
	// Node is the shard's base URL, e.g. "http://127.0.0.1:8081".
	Node string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval is the job-status poll cadence (default 50ms).
	PollInterval time.Duration
	// SubmitRetries bounds retries after 429 queue-full responses
	// (default 20, honoring Retry-After between attempts).
	SubmitRetries int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) fail(stage string, err error) *ShardError {
	return &ShardError{Node: c.Node, Stage: stage, Err: err}
}

// decodeError extracts a sortd {"error": ...} body, falling back to the
// HTTP status.
func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return errors.New(resp.Status)
}

// Submit streams body (little-endian uint32 keys) to the shard as an
// octet-stream /v1/sort/stream job and returns the job ID. A 429
// queue-full response backs off per Retry-After and retries; bodyFn
// re-opens the upload for each attempt.
func (c *Client) Submit(ctx context.Context, p JobParams, bodyFn func() (io.ReadCloser, error)) (string, error) {
	u := c.Node + "/v1/sort/stream?" + p.query().Encode()
	retries := c.SubmitRetries
	if retries <= 0 {
		retries = 20
	}
	for attempt := 0; ; attempt++ {
		body, err := bodyFn()
		if err != nil {
			return "", c.fail("submit", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
		if err != nil {
			body.Close()
			return "", c.fail("submit", err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.http().Do(req)
		if err != nil {
			return "", c.fail("submit", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retries {
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			resp.Body.Close()
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return "", c.fail("submit", ctx.Err())
			}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return "", c.fail("submit", decodeError(resp))
		}
		var jv jobView
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			return "", c.fail("submit", err)
		}
		if jv.ID == "" {
			return "", c.fail("submit", errors.New("shard returned no job id"))
		}
		return jv.ID, nil
	}
}

// Wait polls the job until it reaches a terminal state and returns the
// final snapshot. A failed job is a ShardError at stage "job" carrying
// the shard's own error text.
func (c *Client) Wait(ctx context.Context, jobID string) (jobView, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		jv, err := c.job(ctx, jobID)
		if err != nil {
			return jobView{}, err
		}
		switch jv.Status {
		case "done":
			return jv, nil
		case "failed":
			return jobView{}, c.fail("job", fmt.Errorf("job %s failed: %s", jobID, jv.Error))
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return jobView{}, c.fail("poll", ctx.Err())
		}
	}
}

func (c *Client) job(ctx context.Context, jobID string) (jobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Node+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return jobView{}, c.fail("poll", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return jobView{}, c.fail("poll", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, c.fail("poll", decodeError(resp))
	}
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return jobView{}, c.fail("poll", err)
	}
	return jv, nil
}

// Output opens the finished job's sorted stream. The caller must close
// the returned reader.
func (c *Client) Output(ctx context.Context, jobID string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Node+"/v1/jobs/"+jobID+"/output", nil)
	if err != nil {
		return nil, c.fail("output", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, c.fail("output", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, c.fail("output", decodeError(resp))
	}
	return resp.Body, nil
}

// FetchTable downloads the shard's calibrated MLC table artifact for
// half-width t as raw JSON (the coordinator relays it opaquely — it
// never needs the mlc package itself).
func (c *Client) FetchTable(ctx context.Context, t float64) ([]byte, error) {
	u := c.Node + "/v1/tables?t=" + url.QueryEscape(strconv.FormatFloat(t, 'g', -1, 64))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, c.fail("table", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, c.fail("table", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.fail("table", decodeError(resp))
	}
	return io.ReadAll(resp.Body)
}

// InstallTable uploads a table artifact previously fetched from a warm
// shard.
func (c *Client) InstallTable(ctx context.Context, artifact []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Node+"/v1/tables",
		bytes.NewReader(artifact))
	if err != nil {
		return c.fail("table", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return c.fail("table", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return c.fail("table", decodeError(resp))
	}
	return nil
}
