package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
)

// StreamAuditor is the coordinator's output verification hook: the
// merged stream is written through it, and Finish seals the check with
// the expected record count. internal/verify's StreamChecker satisfies
// it; the indirection keeps verify out of cluster's import graph (the
// same pattern as extsort.Verifier).
type StreamAuditor interface {
	io.Writer
	// Finish returns an error unless exactly records monotone records
	// passed through.
	Finish(records int64) error
}

// Config parameterizes a Coordinator.
type Config struct {
	// Nodes are the shard sortd base URLs. Placement uses a consistent
	// hash ring over them, so the same fleet and PlacementKey always
	// pick the same shards in the same order.
	Nodes []string
	// VNodes is the ring's per-node vnode count (DefaultVirtualNodes
	// when <= 0).
	VNodes int
	// PlacementKey is the ring key jobs are placed under — the tenant
	// identity, so one tenant's sorts land on a stable shard
	// preference list. Empty uses "default".
	PlacementKey string

	// Job carries the sort parameters forwarded to every shard job.
	// Each shard's seed is derived as rng.Split(Job.Seed, "cluster",
	// "shard", i); Job.Seed itself is never used directly.
	Job JobParams

	// MaxShards caps the fan-out below len(Nodes); 0 means every node
	// is a candidate. The (M, B, ω, S) planner picks the actual count.
	MaxShards int
	// MemBudget is the per-shard planner M in records (default 1<<20,
	// or Job.RunSize when set).
	MemBudget int
	// SampleSize is the splitter/pilot reservoir size (default 4096).
	SampleSize int
	// Block is the cross-shard merge staging window in records
	// (default core.ExtBlockDefault).
	Block int
	// TempDir hosts the input spool and per-shard partitions (os
	// default when empty).
	TempDir string

	// WarmTables shares shard 0's calibrated MLC table with the other
	// shards through the /v1/tables artifact endpoints before
	// submitting, so a cold fleet pays one calibration campaign
	// instead of one per node. Best-effort: a warming failure is
	// recorded in Stats, not fatal (each shard can calibrate locally).
	WarmTables bool

	// HTTP is the shared transport (http.DefaultClient when nil);
	// NewClient overrides per-node client construction (tests).
	HTTP      *http.Client
	NewClient func(node string) *Client

	// NewAuditor wraps the merged output stream (verify.NewStreamChecker
	// in production; nil skips the hook — MergeReaders still enforces
	// per-stream monotonicity and record conservation).
	NewAuditor func(w io.Writer) StreamAuditor
	// WrapShard wraps shard i's output stream before the merge; the
	// production hook (verify.RangeReader) pins every record to the
	// shard's assigned [lo, hi] range so a shard cannot smuggle keys
	// outside its partition. nil skips the hook.
	WrapShard func(shard int, lo, hi uint32, expect int64, r io.Reader) io.Reader
}

// ShardStat is one shard's slice of a cluster sort.
type ShardStat struct {
	Node  string `json:"node"`
	JobID string `json:"job_id"`
	// Lo and Hi are the shard's assigned key range, inclusive.
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// Records is the partition size the coordinator routed to the
	// shard; the shard's own extsort ledger must agree exactly.
	Records int64 `json:"records"`
	// Verified echoes the shard job's full audit-chain verdict.
	Verified bool `json:"verified"`
	// WriteNanos is the shard's modelled write latency; Runs and
	// MergePasses its external geometry.
	WriteNanos  float64 `json:"write_nanos"`
	Runs        int     `json:"runs"`
	MergePasses int     `json:"merge_passes"`
}

// Stats summarizes one cluster sort.
type Stats struct {
	// Records is the total input size; Shards the per-shard ledger in
	// range order (shard i's Hi <= shard i+1's Lo... boundaries may
	// touch, see Partitioner).
	Records int64       `json:"records"`
	Shards  []ShardStat `json:"shards"`
	// Splitters are the sampled range boundaries (len(Shards)-1).
	Splitters []uint32 `json:"splitters,omitempty"`
	// Plan is the coordinator's (M, B, ω, S) verdict.
	Plan *core.Plan `json:"plan,omitempty"`
	// MergeWrites and MergeWriteNanos are the coordinator's cross-shard
	// merge ledger: exactly one precise write per record (MergeWrites
	// == Records, a single cross pass) on one accountant spanning all
	// shard streams.
	MergeWrites     int64   `json:"merge_writes"`
	MergeWriteNanos float64 `json:"merge_write_nanos"`
	// TableWarmed reports whether the calibration artifact relay ran;
	// TableWarmError carries the (non-fatal) failure when it did not.
	TableWarmed     bool   `json:"table_warmed,omitempty"`
	TableWarmError  string `json:"table_warm_error,omitempty"`
	// Verified is true when every shard job passed its own audit chain
	// AND the merged stream passed the coordinator's checks.
	Verified bool `json:"verified"`
}

// Coordinator fans a sort across shards. Construct with New.
type Coordinator struct {
	cfg  Config
	ring *Ring
}

// New validates cfg and builds the coordinator.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.MaxShards < 0 {
		return nil, fmt.Errorf("cluster: MaxShards = %d is negative", cfg.MaxShards)
	}
	if cfg.MaxShards == 0 || cfg.MaxShards > len(cfg.Nodes) {
		cfg.MaxShards = len(cfg.Nodes)
	}
	if cfg.MemBudget <= 0 {
		if cfg.Job.RunSize > 0 {
			cfg.MemBudget = cfg.Job.RunSize
		} else {
			cfg.MemBudget = 1 << 20
		}
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 4096
	}
	if cfg.PlacementKey == "" {
		cfg.PlacementKey = "default"
	}
	return &Coordinator{cfg: cfg, ring: ring}, nil
}

// client builds the per-node API client.
func (co *Coordinator) client(node string) *Client {
	if co.cfg.NewClient != nil {
		return co.cfg.NewClient(node)
	}
	return &Client{Node: node, HTTP: co.cfg.HTTP}
}

// Sort reads the little-endian uint32 key stream from src, sorts it
// across the fleet, and writes the merged sorted stream to out.
//
// The pipeline: spool src while reservoir-sampling → plan the shard
// count → cut splitters and range-partition the spool → place shards on
// the ring → (optionally) relay the calibration table → submit and
// await every shard job concurrently → fold the shard outputs through
// one merge tournament into out. Any shard failure — including a node
// killed mid-job — surfaces as a *ShardError naming the node and stage.
func (co *Coordinator) Sort(ctx context.Context, src io.Reader, out io.Writer) (Stats, error) {
	dir, err := os.MkdirTemp(co.cfg.TempDir, "cluster-")
	if err != nil {
		return Stats{}, err
	}
	defer os.RemoveAll(dir)

	// Phase 1: spool + sample. The reservoir sees every key, so the
	// splitters reflect the whole stream, not a prefix.
	spool := filepath.Join(dir, "input.raw")
	rv := dataset.NewReservoir(co.cfg.SampleSize, co.cfg.Job.Seed)
	records, err := spoolAndSample(src, spool, rv)
	if err != nil {
		return Stats{}, err
	}
	if records == 0 {
		return Stats{}, fmt.Errorf("cluster: input has no records")
	}

	// Phase 2: plan S and the per-shard geometry.
	plan, shards, err := co.plan(rv.Keys(), records)
	if err != nil {
		return Stats{}, err
	}

	// Phase 3: splitters + partition.
	splitters, err := rv.Splitters(shards)
	if err != nil {
		return Stats{}, err
	}
	part, err := NewPartitioner(splitters)
	if err != nil {
		return Stats{}, err
	}
	counts, err := partitionSpool(spool, dir, part)
	if err != nil {
		return Stats{}, err
	}
	os.Remove(spool) // reclaim before the shards start spooling uploads

	// Phase 4: placement.
	nodes := co.ring.LookupN(co.cfg.PlacementKey, shards)

	stats := Stats{
		Records:   records,
		Splitters: splitters,
		Plan:      &plan,
		Shards:    make([]ShardStat, shards),
	}
	for i := range stats.Shards {
		lo, hi := part.Range(i)
		stats.Shards[i] = ShardStat{Node: nodes[i], Lo: lo, Hi: hi, Records: counts[i]}
	}

	// Phase 5: one calibration campaign for the whole fleet.
	if co.cfg.WarmTables && shards > 1 {
		if err := co.warmTables(ctx, nodes); err != nil {
			stats.TableWarmError = err.Error()
		} else {
			stats.TableWarmed = true
		}
	}

	// Phase 6: submit every shard and await completion concurrently.
	if err := co.runShards(ctx, dir, plan, stats.Shards); err != nil {
		return Stats{}, err
	}

	// Phase 7: the cross-shard merge, on one accountant, through the
	// injected audit hooks.
	if err := co.merge(ctx, &stats, out); err != nil {
		return Stats{}, err
	}

	stats.Verified = true
	for _, s := range stats.Shards {
		if !s.Verified {
			stats.Verified = false
		}
	}
	return stats, nil
}

// plan runs the sharded planner over the pilot sample and returns the
// chosen shard count.
func (co *Coordinator) plan(sample []uint32, records int64) (core.Plan, int, error) {
	job := co.cfg.Job
	alg, err := resolveAlgorithm(job.Algorithm, job.Bits)
	if err != nil {
		return core.Plan{}, 0, err
	}
	backend, point, err := resolvePoint(job.Backend, job.T)
	if err != nil {
		return core.Plan{}, 0, err
	}
	planner := core.Planner{Config: core.Config{
		Algorithm: alg,
		NewSpace:  func(sd uint64) core.Space { return backend.NewApprox(point, sd) },
		Seed:      rng.Split(job.Seed, "cluster", "pilot"),
	}}
	plan, err := planner.PlanSharded(sample, core.ShardConfig{
		Ext: core.ExtConfig{
			N:                  records,
			MemBudget:          co.cfg.MemBudget,
			MaxFanIn:           job.FanIn,
			Omega:              memmodel.WriteCostRatio(backend, point),
			Replacement:        job.Formation != extsort.FormationChunk,
			AllowRefineAtMerge: job.RefineAtMerge || job.Mode == "" || job.Mode == "auto",
		},
		MaxShards: co.cfg.MaxShards,
	})
	if err != nil {
		return core.Plan{}, 0, err
	}
	return plan, plan.Sharded.Shards, nil
}

// resolveAlgorithm mirrors the sortd API's algorithm names for the
// coordinator's pilot.
func resolveAlgorithm(name string, bits int) (sorts.Algorithm, error) {
	if bits == 0 {
		bits = 6
	}
	switch name {
	case "", "auto", "msd":
		return sorts.MSD{Bits: bits}, nil
	case "lsd":
		return sorts.LSD{Bits: bits}, nil
	case "quicksort":
		return sorts.Quicksort{}, nil
	case "mergesort":
		return sorts.Mergesort{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", name)
	}
}

// resolvePoint resolves the backend operating point for the pilot.
func resolvePoint(name string, t float64) (memmodel.Backend, memmodel.Point, error) {
	b, err := memmodel.Get(name)
	if err != nil {
		return nil, memmodel.Point{}, err
	}
	pt := memmodel.Point{Backend: b.Name()}
	if t != 0 {
		if b.Name() != memmodel.PCMMLC {
			return nil, memmodel.Point{}, fmt.Errorf("cluster: t applies only to the %s backend", memmodel.PCMMLC)
		}
		pt.Params = map[string]float64{"t": t}
	}
	pt, err = b.Normalize(pt)
	if err != nil {
		return nil, memmodel.Point{}, err
	}
	return b, pt, nil
}

// spoolAndSample copies the input stream to path while feeding every
// key to the reservoir, returning the record count.
func spoolAndSample(src io.Reader, path string, rv *dataset.Reservoir) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	buf := make([]byte, 1<<16)
	carry := 0
	var records int64
	for {
		n, rerr := src.Read(buf[carry:])
		n += carry
		whole := n &^ 3
		for i := 0; i < whole; i += 4 {
			rv.Add(binary.LittleEndian.Uint32(buf[i:]))
		}
		if _, err := w.Write(buf[:whole]); err != nil {
			return 0, err
		}
		records += int64(whole / 4)
		carry = copy(buf, buf[whole:n])
		if rerr == io.EOF {
			if carry != 0 {
				return 0, fmt.Errorf("cluster: input is not a whole number of uint32 records (%d trailing bytes)", carry)
			}
			if err := w.Flush(); err != nil {
				return 0, err
			}
			return records, f.Close()
		}
		if rerr != nil {
			return 0, rerr
		}
	}
}

// partitionSpool routes the spooled keys into per-shard files
// ("shard-%d.raw" under dir) and returns the per-shard record counts.
func partitionSpool(spool, dir string, part *Partitioner) ([]int64, error) {
	in, err := os.Open(spool)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	shards := part.Shards()
	files := make([]*os.File, shards)
	writers := make([]*bufio.Writer, shards)
	counts := make([]int64, shards)
	for i := range files {
		f, err := os.Create(shardPath(dir, i))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		files[i] = f
		writers[i] = bufio.NewWriterSize(f, 1<<16)
	}

	r := bufio.NewReaderSize(in, 1<<16)
	var word [4]byte
	for {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		s := part.Route(binary.LittleEndian.Uint32(word[:]))
		if _, err := writers[s].Write(word[:]); err != nil {
			return nil, err
		}
		counts[s]++
	}
	for i, w := range writers {
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if err := files[i].Close(); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.raw", i))
}

// warmTables relays the calibrated table artifact from the first shard
// to the rest. The coordinator treats the artifact as opaque bytes.
func (co *Coordinator) warmTables(ctx context.Context, nodes []string) error {
	if b, err := memmodel.Get(co.cfg.Job.Backend); err != nil || b.Name() != memmodel.PCMMLC {
		if err != nil {
			return err
		}
		return fmt.Errorf("table warming applies only to the %s backend", memmodel.PCMMLC)
	}
	artifact, err := co.client(nodes[0]).FetchTable(ctx, co.cfg.Job.T)
	if err != nil {
		return err
	}
	for _, node := range nodes[1:] {
		if err := co.client(node).InstallTable(ctx, artifact); err != nil {
			return err
		}
	}
	return nil
}

// runShards submits one job per shard and waits for all of them,
// filling each ShardStat in place. The per-shard geometry comes from
// the planner's per-shard external plan; the per-shard seed from
// rng.Split, so a re-run of the same cluster sort is bit-reproducible.
func (co *Coordinator) runShards(ctx context.Context, dir string, plan core.Plan, shards []ShardStat) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	job := co.cfg.Job
	if per := plan.Sharded.PerShard; per != nil && (job.Mode == "" || job.Mode == "auto") {
		// Pin the planner's verdict instead of re-planning per shard:
		// every shard runs the same geometry the cross-shard pricing
		// assumed. The shard's own auto-planner would see only its
		// slice and could diverge.
		job.RunSize = per.RunSize
		job.FanIn = per.FanIn
		job.RefineAtMerge = per.RefineAtMerge
		if per.UseHybrid {
			job.Mode = "hybrid"
		} else {
			job.Mode = "precise"
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = co.runShard(ctx, dir, i, job, &shards[i])
			if errs[i] != nil {
				cancel() // release the siblings promptly
			}
		}(i)
	}
	wg.Wait()
	// The first failure cancelled the siblings, so most errs are
	// context.Canceled noise; surface the root cause.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// runShard drives one shard job start to finish.
func (co *Coordinator) runShard(ctx context.Context, dir string, i int, job JobParams, st *ShardStat) error {
	cl := co.client(st.Node)
	job.Seed = rng.Split(co.cfg.Job.Seed, "cluster", "shard", i)
	path := shardPath(dir, i)
	id, err := cl.Submit(ctx, job, func() (io.ReadCloser, error) { return os.Open(path) })
	if err != nil {
		return err
	}
	st.JobID = id
	os.Remove(path) // the shard spooled its copy; reclaim ours
	jv, err := cl.Wait(ctx, id)
	if err != nil {
		return err
	}
	if jv.Result == nil || jv.Result.Extsort == nil {
		return cl.fail("job", fmt.Errorf("job %s finished without an extsort result", id))
	}
	if got := jv.Result.Extsort.Records; got != st.Records {
		return cl.fail("job", fmt.Errorf("job %s sorted %d records, coordinator sent %d", id, got, st.Records))
	}
	if !jv.Result.Sorted || !jv.Result.Verified {
		return cl.fail("job", fmt.Errorf("job %s did not verify", id))
	}
	st.Verified = jv.Result.Verified
	st.WriteNanos = jv.Result.WriteNanos
	st.Runs = jv.Result.Extsort.Runs
	st.MergePasses = jv.Result.Extsort.MergePasses
	return nil
}

// merge folds the shard outputs into out through one tournament and one
// accountant, applying the WrapShard and NewAuditor hooks.
func (co *Coordinator) merge(ctx context.Context, stats *Stats, out io.Writer) error {
	readers := make([]io.Reader, len(stats.Shards))
	counts := make([]int64, len(stats.Shards))
	for i := range stats.Shards {
		st := &stats.Shards[i]
		body, err := co.client(st.Node).Output(ctx, st.JobID)
		if err != nil {
			return err
		}
		defer body.Close()
		var r io.Reader = body
		if co.cfg.WrapShard != nil {
			r = co.cfg.WrapShard(i, st.Lo, st.Hi, st.Records, r)
		}
		readers[i] = r
		counts[i] = st.Records
	}

	w := out
	var aud StreamAuditor
	if co.cfg.NewAuditor != nil {
		aud = co.cfg.NewAuditor(out)
		w = aud
	}
	ms, err := extsort.MergeReaders(readers, counts, w, co.cfg.Block)
	if err != nil {
		return err
	}
	if ms.Records != stats.Records {
		return fmt.Errorf("cluster: merge delivered %d records, want %d", ms.Records, stats.Records)
	}
	if aud != nil {
		if err := aud.Finish(stats.Records); err != nil {
			return err
		}
	}
	stats.MergeWrites = ms.Writes
	stats.MergeWriteNanos = ms.WriteNanos
	return nil
}
