package cluster_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"approxsort/internal/cluster"
	"approxsort/internal/dataset"
	"approxsort/internal/server"
	"approxsort/internal/verify"
)

func encode(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[4*i:], k)
	}
	return out
}

func decode(t *testing.T, raw []byte) []uint32 {
	t.Helper()
	if len(raw)%4 != 0 {
		t.Fatalf("output of %d bytes is not word-aligned", len(raw))
	}
	keys := make([]uint32, len(raw)/4)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return keys
}

// startShards spins up n in-process sortd instances and returns their
// base URLs.
func startShards(t *testing.T, n int) []string {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		s := server.New(server.Config{Workers: 2, StreamDir: t.TempDir()})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.Shutdown(context.Background()) })
		nodes[i] = ts.URL
	}
	return nodes
}

func auditorHook(w io.Writer) cluster.StreamAuditor { return verify.NewStreamChecker(w) }

func TestCoordinatorSortAcrossShards(t *testing.T) {
	nodes := startShards(t, 3)
	co, err := cluster.New(cluster.Config{
		Nodes:      nodes,
		Job:        cluster.JobParams{Mode: "auto", T: 0.07, Seed: 41},
		MemBudget:  1 << 14, // out-of-core at this size, so the planner fans out
		TempDir:    t.TempDir(),
		NewAuditor: auditorHook,
		WrapShard:  verify.WrapShards(),
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := dataset.Uniform(150000, 17)
	var out bytes.Buffer
	stats, err := co.Sort(context.Background(), bytes.NewReader(encode(keys)), &out)
	if err != nil {
		t.Fatal(err)
	}

	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := decode(t, out.Bytes())
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged output wrong at %d: %d != %d", i, got[i], want[i])
		}
	}

	if !stats.Verified {
		t.Error("Stats.Verified = false")
	}
	if stats.Plan == nil || stats.Plan.Sharded == nil {
		t.Fatal("no sharded plan in stats")
	}
	if got, want := len(stats.Shards), stats.Plan.Sharded.Shards; got != want {
		t.Errorf("ran %d shards, plan chose %d", got, want)
	}
	if len(stats.Shards) < 2 {
		t.Errorf("coordinator did not fan out: %d shards", len(stats.Shards))
	}
	for i, sh := range stats.Shards {
		if !sh.Verified {
			t.Errorf("shard %d not verified", i)
		}
		if sh.JobID == "" || sh.Node == "" {
			t.Errorf("shard %d missing identity: %+v", i, sh)
		}
	}
	if err := verify.CheckClusterStats(stats).Err(); err != nil {
		t.Errorf("cluster ledger: %v", err)
	}
}

func TestCoordinatorDeterministicSplitters(t *testing.T) {
	nodes := startShards(t, 2)
	run := func() cluster.Stats {
		co, err := cluster.New(cluster.Config{
			Nodes:     nodes,
			Job:       cluster.JobParams{Mode: "hybrid", T: 0.07, Seed: 5},
			MemBudget: 1 << 13,
			MaxShards: 2,
			TempDir:   t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		keys := dataset.Uniform(60000, 3)
		var out bytes.Buffer
		stats, err := co.Sort(context.Background(), bytes.NewReader(encode(keys)), &out)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if fmt.Sprint(a.Splitters) != fmt.Sprint(b.Splitters) {
		t.Fatalf("splitters diverged: %v vs %v", a.Splitters, b.Splitters)
	}
	for i := range a.Shards {
		if a.Shards[i].Records != b.Shards[i].Records {
			t.Fatalf("partition diverged at shard %d: %d vs %d",
				i, a.Shards[i].Records, b.Shards[i].Records)
		}
	}
}

// fakeShard accepts submissions and reports jobs running forever; kill
// closes it mid-job.
type fakeShard struct {
	ts     *httptest.Server
	polled chan struct{} // closed on first poll
	once   sync.Once
}

func newFakeShard() *fakeShard {
	f := &fakeShard{polled: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sort/stream", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-00000001", "status": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.once.Do(func() { close(f.polled) })
		json.NewEncoder(w).Encode(map[string]string{"id": r.PathValue("id"), "status": "running"})
	})
	f.ts = httptest.NewServer(mux)
	return f
}

func TestCoordinatorKilledShardSurfacesTypedError(t *testing.T) {
	shards := []*fakeShard{newFakeShard(), newFakeShard(), newFakeShard()}
	nodes := make([]string, len(shards))
	for i, f := range shards {
		nodes[i] = f.ts.URL
		t.Cleanup(f.ts.Close)
	}
	co, err := cluster.New(cluster.Config{
		Nodes: nodes,
		Job:   cluster.JobParams{Mode: "hybrid", T: 0.07, Seed: 9},
		// Fakes never sort, so skip planning surprises: tiny input, all
		// shards forced.
		MemBudget: 1 << 11,
		TempDir:   t.TempDir(),
		NewClient: func(node string) *cluster.Client {
			return &cluster.Client{Node: node, PollInterval: 5 * time.Millisecond}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the first fake that gets polled, mid-job.
	killed := make(chan string, 1)
	go func() {
		cases := make([]chan struct{}, len(shards))
		for i, f := range shards {
			cases[i] = f.polled
		}
		for {
			for i, ch := range cases {
				select {
				case <-ch:
					shards[i].ts.CloseClientConnections()
					shards[i].ts.Close()
					killed <- nodes[i]
					return
				default:
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	keys := dataset.Uniform(20000, 11)
	var out bytes.Buffer
	_, err = co.Sort(ctx, bytes.NewReader(encode(keys)), &out)
	if err == nil {
		t.Fatal("coordinator succeeded against dead shard")
	}
	if ctx.Err() != nil {
		t.Fatalf("coordinator hung until the deadline: %v", err)
	}
	var se *cluster.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *cluster.ShardError", err, err)
	}
	deadNode := <-killed
	if se.Node != deadNode {
		t.Fatalf("ShardError names %s, killed %s", se.Node, deadNode)
	}
	if se.Stage != "poll" && se.Stage != "job" {
		t.Fatalf("ShardError stage = %q", se.Stage)
	}
}

func TestClientSubmitRetriesOn429(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sort/stream", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full, retry later"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-00000002"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := &cluster.Client{Node: ts.URL}
	id, err := cl.Submit(context.Background(), cluster.JobParams{Seed: 1}, func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(encode([]uint32{3, 1, 2}))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-00000002" {
		t.Fatalf("job id = %q", id)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one 429, one accept)", attempts)
	}
}

func TestCoordinatorWarmsTableFleet(t *testing.T) {
	nodes := startShards(t, 3)
	co, err := cluster.New(cluster.Config{
		Nodes:      nodes,
		Job:        cluster.JobParams{Mode: "auto", T: 0.07, Seed: 51},
		MemBudget:  1 << 13,
		TempDir:    t.TempDir(),
		WarmTables: true,
		NewAuditor: auditorHook,
		WrapShard:  verify.WrapShards(),
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := dataset.Uniform(50000, 19)
	var out bytes.Buffer
	stats, err := co.Sort(context.Background(), bytes.NewReader(encode(keys)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) < 2 {
		t.Fatalf("fan-out = %d shards; the warm relay needs > 1", len(stats.Shards))
	}
	if !stats.TableWarmed {
		t.Fatalf("TableWarmed = false: %s", stats.TableWarmError)
	}
	if !stats.Verified {
		t.Error("warmed cluster sort not verified")
	}
}

func TestCoordinatorConfigAndJobValidation(t *testing.T) {
	nodes := startShards(t, 1)
	if _, err := cluster.New(cluster.Config{}); err == nil {
		t.Error("New with no nodes succeeded")
	}
	if _, err := cluster.New(cluster.Config{Nodes: nodes, MaxShards: -1}); err == nil {
		t.Error("New with negative MaxShards succeeded")
	}
	if _, err := cluster.NewRing([]string{"a", "a"}, 4); err == nil {
		t.Error("NewRing with duplicate nodes succeeded")
	}

	keys := encode(dataset.Uniform(1000, 3))
	badJobs := []cluster.JobParams{
		{Algorithm: "bogosort", Seed: 1},
		{Backend: "no-such-backend", Seed: 1},
		{Backend: "spintronic", T: 0.07, Seed: 1}, // t is MLC-only
	}
	for _, job := range badJobs {
		co, err := cluster.New(cluster.Config{Nodes: nodes, Job: job, TempDir: t.TempDir()})
		if err != nil {
			t.Fatalf("New(%+v): %v", job, err)
		}
		if _, err := co.Sort(context.Background(), bytes.NewReader(keys), io.Discard); err == nil {
			t.Errorf("Sort with job %+v succeeded", job)
		}
	}
}

// TestCoordinatorAlgorithmNames drives the pilot through each of the
// sortd API's algorithm names on a single-node fleet.
func TestCoordinatorAlgorithmNames(t *testing.T) {
	nodes := startShards(t, 1)
	keys := dataset.Uniform(3000, 7)
	for _, alg := range []string{"lsd", "quicksort", "mergesort"} {
		co, err := cluster.New(cluster.Config{
			Nodes:   nodes,
			Job:     cluster.JobParams{Algorithm: alg, Mode: "auto", T: 0.07, Seed: 5},
			TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		stats, err := co.Sort(context.Background(), bytes.NewReader(encode(keys)), &out)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if stats.Records != int64(len(keys)) {
			t.Errorf("%s: records = %d", alg, stats.Records)
		}
		got := decode(t, out.Bytes())
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
			t.Errorf("%s: output not sorted", alg)
		}
	}
}

func TestRingMembershipAndLookupN(t *testing.T) {
	ring, err := cluster.NewRing([]string{"c", "a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := ring.Nodes()
	if !sort.StringsAreSorted(nodes) || len(nodes) != 3 {
		t.Fatalf("Nodes() = %v, want 3 sorted entries", nodes)
	}
	nodes[0] = "mutated"
	if ring.Nodes()[0] == "mutated" {
		t.Error("Nodes() exposes internal state")
	}
	if got := ring.LookupN("key", 0); got != nil {
		t.Errorf("LookupN(0) = %v, want nil", got)
	}
	all := ring.LookupN("key", 99)
	if len(all) != 3 {
		t.Fatalf("LookupN over-asking returned %d nodes", len(all))
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("LookupN returned %q twice", n)
		}
		seen[n] = true
	}
	if ring.Lookup("key") != all[0] {
		t.Error("Lookup disagrees with LookupN's first choice")
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	nodes := startShards(t, 1)
	c := &cluster.Client{Node: nodes[0]} // nil HTTP: default client path
	ctx := context.Background()

	_, err := c.Submit(ctx, cluster.JobParams{T: 99, Seed: 1}, func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(encode([]uint32{2, 1}))), nil
	})
	var se *cluster.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("Submit with absurd t: err = %v, want ShardError", err)
	}
	if se.Stage != "submit" || se.Node != nodes[0] {
		t.Errorf("ShardError = %+v", se)
	}
	if msg := se.Error(); !strings.Contains(msg, nodes[0]) || !strings.Contains(msg, "submit") {
		t.Errorf("Error() = %q missing node or stage", msg)
	}

	if _, err := c.Output(ctx, "job-99999999"); err == nil {
		t.Error("Output of unknown job succeeded")
	}
	if _, err := c.FetchTable(ctx, -5); err == nil {
		t.Error("FetchTable with invalid t succeeded")
	}
	if err := c.InstallTable(ctx, []byte(`{"params":{}}`)); err == nil {
		t.Error("InstallTable with invalid artifact succeeded")
	}
}
