// Package spintronic implements the approximate spintronic-memory model of
// the paper's Appendix A (after Ranjan et al., DAC'15). Lowering the
// magnetic tunnel junction's write voltage/current saves a fixed fraction
// of the write energy at the cost of independent per-bit write errors;
// reads are assumed precise. The appendix evaluates four operating points
// pairing per-write energy savings of 5/20/33/50 % with per-bit error
// probabilities of 1e-7/1e-6/1e-5/1e-4.
//
// Space satisfies the same allocation/accounting contract as the MLC PCM
// spaces in package mem, so the approx-refine engine (internal/core) runs
// on it unchanged — which is exactly the appendix's point: the mechanism is
// not tied to one approximate-memory technology.
package spintronic

import (
	"fmt"
	"math"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// Config is one operating point of the approximate spintronic memory.
type Config struct {
	// Saving is the fraction of the precise write energy saved by each
	// approximate write (e.g. 0.33 = each write costs 67% of precise).
	Saving float64
	// BitErrorProb is the independent per-bit flip probability of one
	// write at this operating point.
	BitErrorProb float64
	// ReadBitErrorProb, when nonzero, lifts the appendix's "reads are
	// always precise for simplicity" assumption: each read returns the
	// stored value with independent per-bit flips at this probability.
	// Read errors are transient — the stored value is unchanged — so
	// repeated reads of one cell can disagree, like mlc.AnalogArray.
	ReadBitErrorProb float64
}

// Validate reports whether the operating point is meaningful.
func (c Config) Validate() error {
	if c.Saving < 0 || c.Saving >= 1 {
		return fmt.Errorf("spintronic: Saving = %v out of [0, 1)", c.Saving)
	}
	if c.BitErrorProb < 0 || c.BitErrorProb > 0.5 {
		return fmt.Errorf("spintronic: BitErrorProb = %v out of [0, 0.5]", c.BitErrorProb)
	}
	if c.ReadBitErrorProb < 0 || c.ReadBitErrorProb > 0.5 {
		return fmt.Errorf("spintronic: ReadBitErrorProb = %v out of [0, 0.5]", c.ReadBitErrorProb)
	}
	return nil
}

// Presets returns the four operating points evaluated in Appendix A, in
// increasing aggressiveness.
func Presets() []Config {
	return []Config{
		{Saving: 0.05, BitErrorProb: 1e-7},
		{Saving: 0.20, BitErrorProb: 1e-6},
		{Saving: 0.33, BitErrorProb: 1e-5},
		{Saving: 0.50, BitErrorProb: 1e-4},
	}
}

// Space is an approximate spintronic memory region compatible with
// mem.Space.
type Space struct {
	cfg   Config
	r     *rng.Source
	stats mem.Stats
	sink  mem.Sink
	addrs mem.AddressAllocator

	// logOneMinusWrite and logOneMinusRead cache ln(1−p) for geometric
	// bit-flip skipping on writes and reads respectively.
	logOneMinusWrite float64
	logOneMinusRead  float64
}

// NewSpace returns a spintronic space at operating point cfg. It panics on
// an invalid configuration (programming error).
func NewSpace(cfg Config, seed uint64) *Space {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Space{
		cfg:              cfg,
		r:                rng.New(seed),
		logOneMinusWrite: math.Log1p(-cfg.BitErrorProb),
		logOneMinusRead:  math.Log1p(-cfg.ReadBitErrorProb),
	}
}

// Config returns the space's operating point.
func (s *Space) Config() Config { return s.cfg }

// SetSink attaches a trace sink.
func (s *Space) SetSink(sink mem.Sink) { s.sink = sink }

// Alloc implements mem.Space.
func (s *Space) Alloc(n int) mem.Words {
	return &words{space: s, base: s.addrs.Take(n), data: make([]uint32, n)}
}

// Stats implements mem.Space.
func (s *Space) Stats() mem.Stats { return s.stats }

// ResetStats clears the aggregate counters.
func (s *Space) ResetStats() { s.stats = mem.Stats{} }

// Approximate implements mem.Space.
func (s *Space) Approximate() bool { return true }

// corrupt flips each of v's 32 bits independently with probability p
// (whose ln(1−p) is passed precomputed), using geometric skipping so the
// common error-free case costs a single uniform draw.
func (s *Space) corrupt(v uint32, p, logOneMinusP float64) uint32 {
	if p == 0 { //nolint:floatord // exact-zero fast path on a configured probability, not an accumulated sum
		return v
	}
	bit := 0
	for {
		// Draw the distance to the next flipped bit: geometric with
		// success probability p. 1−Float64() lies in (0, 1], keeping
		// the logarithm finite.
		u := 1 - s.r.Float64()
		skip := int(math.Log(u) / logOneMinusP)
		bit += skip
		if bit >= 32 {
			return v
		}
		v ^= 1 << uint(bit)
		bit++
	}
}

type words struct {
	space *Space
	base  uint64
	data  []uint32
	stats mem.Stats
}

func (w *words) Len() int { return len(w.data) }

func (w *words) Get(i int) uint32 {
	w.stats.Reads++
	w.stats.ReadNanos += mlc.ReadNanos
	w.space.stats.Reads++
	w.space.stats.ReadNanos += mlc.ReadNanos
	if w.space.sink != nil {
		w.space.sink.Access(mem.OpRead, w.base+uint64(i)*4, 4)
	}
	// Transient read flips (off unless ReadBitErrorProb is set): the
	// stored value stays intact.
	return w.space.corrupt(w.data[i], w.space.cfg.ReadBitErrorProb, w.space.logOneMinusRead)
}

func (w *words) Set(i int, v uint32) {
	stored := w.space.corrupt(v, w.space.cfg.BitErrorProb, w.space.logOneMinusWrite)
	energy := 1 - w.space.cfg.Saving

	w.stats.Writes++
	w.stats.WriteNanos += mlc.PreciseWriteNanos
	w.stats.WriteEnergy += energy
	w.space.stats.Writes++
	w.space.stats.WriteNanos += mlc.PreciseWriteNanos
	w.space.stats.WriteEnergy += energy
	if stored != v {
		w.stats.Corrupted++
		w.space.stats.Corrupted++
	}
	if w.space.sink != nil {
		w.space.sink.Access(mem.OpWrite, w.base+uint64(i)*4, 4)
	}
	w.data[i] = stored
}

func (w *words) Stats() mem.Stats { return w.stats }

// Peek implements mem.Peeker.
func (w *words) Peek(i int) uint32 { return w.data[i] }
