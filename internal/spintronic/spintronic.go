// Package spintronic implements the approximate spintronic-memory model of
// the paper's Appendix A (after Ranjan et al., DAC'15). Lowering the
// magnetic tunnel junction's write voltage/current saves a fixed fraction
// of the write energy at the cost of independent per-bit write errors;
// reads are assumed precise. The appendix evaluates four operating points
// pairing per-write energy savings of 5/20/33/50 % with per-bit error
// probabilities of 1e-7/1e-6/1e-5/1e-4.
//
// Space satisfies the same allocation/accounting contract as the MLC PCM
// spaces in package mem, so the approx-refine engine (internal/core) runs
// on it unchanged — which is exactly the appendix's point: the mechanism is
// not tied to one approximate-memory technology.
package spintronic

import (
	"fmt"
	"math"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// Config is one operating point of the approximate spintronic memory.
type Config struct {
	// Saving is the fraction of the precise write energy saved by each
	// approximate write (e.g. 0.33 = each write costs 67% of precise).
	Saving float64
	// BitErrorProb is the independent per-bit flip probability of one
	// write at this operating point.
	BitErrorProb float64
	// ReadBitErrorProb, when nonzero, lifts the appendix's "reads are
	// always precise for simplicity" assumption: each read returns the
	// stored value with independent per-bit flips at this probability.
	// Read errors are transient — the stored value is unchanged — so
	// repeated reads of one cell can disagree, like mlc.AnalogArray.
	ReadBitErrorProb float64
}

// Validate reports whether the operating point is meaningful.
func (c Config) Validate() error {
	if c.Saving < 0 || c.Saving >= 1 {
		return fmt.Errorf("spintronic: Saving = %v out of [0, 1)", c.Saving)
	}
	if c.BitErrorProb < 0 || c.BitErrorProb > 0.5 {
		return fmt.Errorf("spintronic: BitErrorProb = %v out of [0, 0.5]", c.BitErrorProb)
	}
	if c.ReadBitErrorProb < 0 || c.ReadBitErrorProb > 0.5 {
		return fmt.Errorf("spintronic: ReadBitErrorProb = %v out of [0, 0.5]", c.ReadBitErrorProb)
	}
	return nil
}

// Presets returns the four operating points evaluated in Appendix A, in
// increasing aggressiveness.
func Presets() []Config {
	return []Config{
		{Saving: 0.05, BitErrorProb: 1e-7},
		{Saving: 0.20, BitErrorProb: 1e-6},
		{Saving: 0.33, BitErrorProb: 1e-5},
		{Saving: 0.50, BitErrorProb: 1e-4},
	}
}

// Space is an approximate spintronic memory region compatible with
// mem.Space. Accounting follows the same batched Raw/Fold scheme as the
// PCM spaces in package mem: the hot path mutates integer counters on
// the owning array; Stats folds the array registry on demand.
type Space struct {
	cfg   Config
	r     *rng.Source
	fold  mem.Fold
	sink  mem.Sink
	addrs mem.AddressAllocator
	words []*words
	base  mem.Raw

	// logOneMinusWrite and logOneMinusRead cache ln(1−p) for geometric
	// bit-flip skipping on writes and reads respectively.
	logOneMinusWrite float64
	logOneMinusRead  float64
}

// NewSpace returns a spintronic space at operating point cfg. It panics on
// an invalid configuration (programming error).
func NewSpace(cfg Config, seed uint64) *Space {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Space{
		cfg: cfg,
		r:   rng.New(seed),
		fold: mem.Fold{
			ReadNanos:      mlc.ReadNanos,
			WriteNanos:     mlc.PreciseWriteNanos,
			EnergyPerWrite: 1 - cfg.Saving,
		},
		logOneMinusWrite: math.Log1p(-cfg.BitErrorProb),
		logOneMinusRead:  math.Log1p(-cfg.ReadBitErrorProb),
	}
}

// Config returns the space's operating point.
func (s *Space) Config() Config { return s.cfg }

// SetSink attaches a trace sink, retroactively rebinding arrays
// allocated before the attach.
func (s *Space) SetSink(sink mem.Sink) {
	s.sink = sink
	for _, w := range s.words {
		w.sink = sink
	}
}

// Alloc implements mem.Space.
func (s *Space) Alloc(n int) mem.Words {
	w := &words{space: s, sink: s.sink, base: s.addrs.Take(n), data: make([]uint32, n)}
	s.words = append(s.words, w)
	return w
}

func (s *Space) rawTotal() mem.Raw {
	var total mem.Raw
	for _, w := range s.words {
		total.Add(w.raw)
	}
	return total
}

// Stats implements mem.Space.
func (s *Space) Stats() mem.Stats { return s.fold.Stats(s.rawTotal().Sub(s.base)) }

// ResetStats zeroes the aggregate by snapshotting the current raw totals
// as the new baseline; arrays allocated before the reset fold into the
// post-reset aggregate exactly once.
func (s *Space) ResetStats() { s.base = s.rawTotal() }

// Approximate implements mem.Space.
func (s *Space) Approximate() bool { return true }

// corrupt flips each of v's 32 bits independently with probability p
// (whose ln(1−p) is passed precomputed), using geometric skipping so the
// common error-free case costs a single uniform draw.
func (s *Space) corrupt(v uint32, p, logOneMinusP float64) uint32 {
	if p == 0 { //nolint:floatord // exact-zero fast path on a configured probability, not an accumulated sum
		return v
	}
	bit := 0
	for {
		// Draw the distance to the next flipped bit: geometric with
		// success probability p. 1−Float64() lies in (0, 1], keeping
		// the logarithm finite.
		u := 1 - s.r.Float64()
		skip := int(math.Log(u) / logOneMinusP)
		bit += skip
		if bit >= 32 {
			return v
		}
		v ^= 1 << uint(bit)
		bit++
	}
}

type words struct {
	space *Space
	sink  mem.Sink
	base  uint64
	data  []uint32
	raw   mem.Raw
}

func (w *words) Len() int { return len(w.data) }

//memlint:hotpath
func (w *words) Get(i int) uint32 {
	w.raw.Reads++
	if w.sink != nil {
		w.sink.Access(mem.OpRead, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	// Transient read flips (off unless ReadBitErrorProb is set): the
	// stored value stays intact.
	return w.space.corrupt(w.data[i], w.space.cfg.ReadBitErrorProb, w.space.logOneMinusRead)
}

//memlint:hotpath
func (w *words) Set(i int, v uint32) {
	stored := w.space.corrupt(v, w.space.cfg.BitErrorProb, w.space.logOneMinusWrite)
	w.raw.Writes++
	if stored != v {
		w.raw.Corrupted++
	}
	if w.sink != nil {
		w.sink.Access(mem.OpWrite, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	w.data[i] = stored
}

// GetSlice implements mem.BulkWords. With read flips enabled each read
// draws from the noise stream in index order, exactly as per-element
// Gets would.
func (w *words) GetSlice(i int, dst []uint32) {
	if w.sink != nil {
		for j := range dst {
			dst[j] = w.Get(i + j)
		}
		return
	}
	s := w.space
	if s.cfg.ReadBitErrorProb == 0 { //nolint:floatord // exact-zero fast path on a configured probability, not an accumulated sum
		w.raw.Reads += len(dst)
		copy(dst, w.data[i:i+len(dst)])
		return
	}
	w.raw.Reads += len(dst)
	for j := range dst {
		dst[j] = s.corrupt(w.data[i+j], s.cfg.ReadBitErrorProb, s.logOneMinusRead)
	}
}

// SetSlice implements mem.BulkWords: writes run through the bit-flip
// model in index order, consuming the noise stream exactly as
// per-element Sets would.
func (w *words) SetSlice(i int, src []uint32) {
	if w.sink != nil {
		for j, v := range src {
			w.Set(i+j, v)
		}
		return
	}
	s := w.space
	corrupted := 0
	for j, v := range src {
		stored := s.corrupt(v, s.cfg.BitErrorProb, s.logOneMinusWrite)
		if stored != v {
			corrupted++
		}
		w.data[i+j] = stored
	}
	w.raw.Writes += len(src)
	w.raw.Corrupted += corrupted
}

// Reorderable implements mem.BulkWords: untraced spintronic arrays
// commute with other arrays only when reads are precise — with
// ReadBitErrorProb set, reads share the noise stream with writes, so
// cross-array reordering would shift every later draw.
func (w *words) Reorderable() bool {
	return w.sink == nil && w.space.cfg.ReadBitErrorProb == 0 //nolint:floatord // exact-zero gate on a configured probability, not an accumulated sum
}

// Stats returns the accesses charged to this array, folded under the
// space's cost recipe.
func (w *words) Stats() mem.Stats { return w.space.fold.Stats(w.raw) }

// Peek implements mem.Peeker.
func (w *words) Peek(i int) uint32 { return w.data[i] }
