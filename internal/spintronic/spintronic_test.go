package spintronic

import (
	"math"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/sorts"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Saving: -0.1, BitErrorProb: 0},
		{Saving: 1.0, BitErrorProb: 0},
		{Saving: 0.5, BitErrorProb: -1},
		{Saving: 0.5, BitErrorProb: 0.6},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Config %+v accepted", c)
		}
	}
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %+v rejected: %v", c, err)
		}
	}
}

func TestPresetsOrdering(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 {
		t.Fatalf("want 4 presets, got %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Saving <= ps[i-1].Saving || ps[i].BitErrorProb <= ps[i-1].BitErrorProb {
			t.Errorf("presets not ordered by aggressiveness at %d", i)
		}
	}
}

func TestBitErrorRateCalibration(t *testing.T) {
	// Empirical flip rate must match the configured probability.
	cfg := Config{Saving: 0.5, BitErrorProb: 1e-3}
	s := NewSpace(cfg, 1)
	w := s.Alloc(1)
	const writes = 200000
	flips := 0
	for i := 0; i < writes; i++ {
		w.Set(0, 0)
		v := w.Get(0)
		for v != 0 {
			flips += int(v & 1)
			v >>= 1
		}
	}
	got := float64(flips) / float64(writes*32)
	if math.Abs(got-cfg.BitErrorProb) > 0.15*cfg.BitErrorProb {
		t.Errorf("bit flip rate %v, want %v ± 15%%", got, cfg.BitErrorProb)
	}
}

func TestZeroErrorProbabilityIsClean(t *testing.T) {
	s := NewSpace(Config{Saving: 0.2, BitErrorProb: 0}, 2)
	w := s.Alloc(1000)
	for i := 0; i < 1000; i++ {
		w.Set(i, uint32(i)*2654435761)
	}
	for i := 0; i < 1000; i++ {
		if w.Get(i) != uint32(i)*2654435761 {
			t.Fatal("corruption with zero error probability")
		}
	}
	if got := s.Stats().Corrupted; got != 0 {
		t.Fatalf("Corrupted = %d", got)
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := NewSpace(Config{Saving: 0.33, BitErrorProb: 1e-6}, 3)
	w := s.Alloc(100)
	for i := 0; i < 100; i++ {
		w.Set(i, 1)
	}
	st := s.Stats()
	if math.Abs(st.WriteEnergy-67.0) > 1e-9 {
		t.Errorf("WriteEnergy = %v, want 67 (100 writes at 0.67 units)", st.WriteEnergy)
	}
	if st.Writes != 100 {
		t.Errorf("Writes = %d", st.Writes)
	}
	if !s.Approximate() {
		t.Error("spintronic space must report approximate")
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	s := NewSpace(Presets()[2], 4)
	w := s.Alloc(10)
	w.Set(0, 7)
	before := s.Stats()
	_ = mem.PeekAll(w)
	if s.Stats() != before {
		t.Error("PeekAll charged accesses")
	}
}

func TestReadErrorsAreTransient(t *testing.T) {
	s := NewSpace(Config{Saving: 0.3, BitErrorProb: 0, ReadBitErrorProb: 0.01}, 5)
	w := s.Alloc(200)
	for i := 0; i < 200; i++ {
		w.Set(i, 0xAAAA5555)
	}
	// Stored values are intact (Peek bypasses the read path)…
	for i := 0; i < 200; i++ {
		if mem.PeekAll(w)[i] != 0xAAAA5555 {
			t.Fatal("write-side corruption with BitErrorProb=0")
		}
		break
	}
	// …but repeated reads disagree sometimes.
	diff := 0
	for i := 0; i < 200; i++ {
		if w.Get(i) != w.Get(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no transient read disagreement at 1% read-bit error")
	}
	if s.Stats().Corrupted != 0 {
		t.Error("read flips must not count as stored corruption")
	}
}

func TestReadErrorValidation(t *testing.T) {
	if (Config{Saving: 0.1, ReadBitErrorProb: 0.9}).Validate() == nil {
		t.Error("ReadBitErrorProb > 0.5 accepted")
	}
}

// TestRefineSurvivesNoisyReads: even with unstable approximate reads the
// engine's output is exact, because every refine decision reads precise
// memory.
func TestRefineSurvivesNoisyReads(t *testing.T) {
	cfg := Config{Saving: 0.33, BitErrorProb: 1e-5, ReadBitErrorProb: 1e-4}
	keys := dataset.Uniform(10000, 11)
	res, err := core.Run(keys, core.Config{
		Algorithm: sorts.Quicksort{},
		NewSpace:  func(seed uint64) core.Space { return NewSpace(cfg, seed) },
		Seed:      12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Sorted {
		t.Fatal("output unsorted under noisy reads")
	}
	prev := uint32(0)
	for i, k := range res.Keys {
		if i > 0 && k < prev {
			t.Fatalf("unsorted at %d", i)
		}
		prev = k
	}
}

// TestApproxRefineOnSpintronic is the Appendix A integration check: the
// unchanged core engine must produce precise results on the spintronic
// model, and aggressive savings must show up as energy reduction relative
// to less aggressive points with comparable error.
func TestApproxRefineOnSpintronic(t *testing.T) {
	keys := dataset.Uniform(20000, 5)
	for _, preset := range Presets() {
		preset := preset
		res, err := core.Run(keys, core.Config{
			Algorithm: sorts.MSD{Bits: 6},
			NewSpace:  func(seed uint64) core.Space { return NewSpace(preset, seed) },
			Seed:      6,
		})
		if err != nil {
			t.Fatalf("saving %v: %v", preset.Saving, err)
		}
		if !res.Report.Sorted {
			t.Fatalf("saving %v: output not sorted", preset.Saving)
		}
		prev := uint32(0)
		for i, k := range res.Keys {
			if i > 0 && k < prev {
				t.Fatalf("saving %v: output not sorted at %d", preset.Saving, i)
			}
			prev = k
		}
	}
}

// TestEnergySavingSweetSpot reproduces the Appendix A shape: moderate
// operating points (20/33%) save energy, the timid one (5%) saves almost
// nothing, and mergesort never wins.
func TestEnergySavingSweetSpot(t *testing.T) {
	keys := dataset.Uniform(30000, 7)
	run := func(alg sorts.Algorithm, cfg Config) float64 {
		res, err := core.Run(keys, core.Config{
			Algorithm: alg,
			NewSpace:  func(seed uint64) core.Space { return NewSpace(cfg, seed) },
			Seed:      8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.EnergySaving()
	}
	mid := run(sorts.MSD{Bits: 3}, Presets()[2])   // 33% saving point
	timid := run(sorts.MSD{Bits: 3}, Presets()[0]) // 5% saving point
	if mid <= 0 {
		t.Errorf("MSD energy saving at 33%% point = %v, want positive", mid)
	}
	if timid >= mid {
		t.Errorf("5%% point saving %v not below 33%% point %v", timid, mid)
	}
	if ms := run(sorts.Mergesort{}, Presets()[2]); ms > 0.02 {
		t.Errorf("mergesort energy saving = %v, appendix finds none", ms)
	}
}
