package server

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/hybrid"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// execute runs one normalized request to completion. pilotSize tunes the
// planner sample (0 = planner default). The request's Seed is split by the
// job's coordinates — the algorithm name plus the backend point's
// seed-bearing parameters — never by arrival order, so resubmitting the
// same request — on any worker, at any concurrency — reproduces the same
// numbers (the serving-side analogue of the sweep determinism contract).
func execute(req *SortRequest, pilotSize int) (*JobResult, error) {
	keys := req.Keys
	if req.Dataset != nil {
		var err error
		keys, err = req.Dataset.materialize()
		if err != nil {
			return nil, err
		}
	}
	var alg sorts.Algorithm
	if !req.autoAlgorithm() {
		var err error
		alg, err = req.algorithm()
		if err != nil {
			return nil, err
		}
	}
	b, pt := req.backend, req.point

	res := &JobResult{
		Backend: b.Name(),
		Params:  pt.Params,
		N:       len(keys),
		T:       req.T,
	}

	// seedParts keys a sub-stream by purpose + job coordinates. For
	// pcm-mlc the coordinates are [t], reproducing the pre-seam
	// derivation bit-for-bit. alg is captured by reference: the run
	// stream of an auto job that selected, say, msd is the run stream of
	// an explicit msd job — resubmitting with the choice pinned
	// reproduces the same numbers.
	coords := b.SeedCoords(pt)
	seedParts := func(kind string, extra ...any) []any {
		parts := make([]any, 0, 3+len(coords)+len(extra))
		parts = append(parts, "sortd", kind, alg.Name())
		parts = append(parts, coords...)
		return append(parts, extra...)
	}
	newSpace := func(s uint64) core.Space { return b.NewApprox(pt, s) }

	mode := req.Mode
	switch {
	case req.autoAlgorithm():
		// Registry-driven selection: one Equation 4 pilot per registered
		// candidate at its default digit width, cheapest predicted writes
		// wins. No single algorithm owns the pilot stream, so it is keyed
		// by the literal roster label instead of an algorithm name.
		autoParts := append([]any{"sortd", "pilot", "auto"}, coords...)
		plan, err := core.Planner{
			Config:    core.Config{NewSpace: newSpace, Seed: rng.Split(req.Seed, autoParts...)},
			PilotSize: pilotSize,
		}.PlanAuto(keys, sorts.AutoCandidates())
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		if err := verify.CheckPlan(len(keys), plan).Err(); err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		alg, err = sorts.New(plan.Algorithm, 0)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		res.Plan = planView(plan)
		res.PredictedWR = plan.PredictedWR
		if mode == ModeAuto {
			if plan.UseHybrid {
				mode = ModeHybrid
			} else {
				mode = ModePrecise
			}
		}
	case mode == ModeAuto:
		plan, err := core.Planner{
			Config: core.Config{
				Algorithm: alg,
				NewSpace:  newSpace,
				Seed:      rng.Split(req.Seed, seedParts("pilot")...),
			},
			PilotSize: pilotSize,
		}.Plan(keys)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		if err := verify.CheckPlan(len(keys), plan).Err(); err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		res.Plan = planView(plan)
		res.PredictedWR = plan.PredictedWR
		if plan.UseHybrid {
			mode = ModeHybrid
		} else {
			mode = ModePrecise
		}
	}
	res.Algorithm = alg.Name()
	res.Mode = mode

	runSeed := rng.Split(req.Seed, seedParts("run", len(keys))...)
	var err error
	if mode == ModeHybrid {
		err = executeHybrid(res, keys, alg, req, runSeed)
	} else {
		err = executePrecise(res, keys, alg, req, runSeed)
	}
	if err != nil {
		return nil, err
	}
	res.sanitize()
	return res, nil
}

// planView projects a core plan into the response shape. Algorithm is
// empty (and omitted from the JSON) for explicit-algorithm jobs, where
// the planner only picked the mode.
func planView(plan core.Plan) *PlanView {
	return &PlanView{
		Algorithm:     plan.Algorithm,
		UseHybrid:     plan.UseHybrid,
		PredictedWR:   plan.PredictedWR,
		P:             plan.P,
		PilotRemRatio: plan.PilotRemRatio,
		PredictedRem:  plan.PredictedRem,
		PilotSize:     plan.PilotSize,
	}
}

// executeHybrid runs approx-refine with both spaces sinked into one
// Table 1 memory system, plus the precise-only baseline for the measured
// write reduction. The approximate region's device clock charges the
// backend's modelled mean write latency.
func executeHybrid(res *JobResult, keys []uint32, alg sorts.Algorithm, req *SortRequest, seed uint64) error {
	b, pt := req.backend, req.point
	sys := hybrid.New()
	out, err := core.Run(keys, core.Config{
		Algorithm:   alg,
		NewSpace:    func(s uint64) core.Space { return b.NewApprox(pt, s) },
		Seed:        seed,
		PreciseSink: sys.Region("precise", mlc.PreciseWriteNanos),
		ApproxSink:  sys.Region("approx", b.ApproxWriteNanos(pt)),
	})
	if err != nil {
		return err
	}
	// Every served job passes through the full invariant checker — held
	// to the backend's accounting identities — plus the memory-system
	// consistency check before its result is stored — a routing or refine
	// regression fails the job loudly instead of returning a
	// slightly-wrong payload.
	if err := verify.CheckRefineRun(keys, out, b.Identities(pt)).Err(); err != nil {
		return err
	}
	if err := verify.CheckAlgorithmWrites(alg, out.Report).Err(); err != nil {
		return err
	}
	if err := sys.Stats().Check(); err != nil {
		return err
	}
	r := out.Report
	total := r.Total()
	res.Rem = r.RemTilde
	res.Writes = WriteCounts{
		Approx:   total.Approx.Writes,
		Precise:  total.Precise.Writes,
		Baseline: r.Baseline.Writes,
	}
	res.ActualWR = r.WriteReduction()
	res.WriteNanos = total.WriteNanos()
	res.PCMNanos = sys.Clock()
	res.Sorted = r.Sorted
	res.Verified = true
	if req.ReturnKeys {
		res.Keys = out.Keys
	}
	return nil
}

// executePrecise runs the traditional sort — keys and IDs both precise —
// through its own memory system. It is the baseline, so ActualWR is 0 by
// construction and Baseline mirrors the run itself.
func executePrecise(res *JobResult, keys []uint32, alg sorts.Algorithm, req *SortRequest, seed uint64) error {
	n := len(keys)
	sys := hybrid.New()
	space := mem.NewPreciseSpace()
	p := sorts.Pair{Keys: space.Alloc(n), IDs: space.Alloc(n)}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(n))
	// Accounting and the device clock start after warm-up, matching
	// core.Run and the paper's methodology.
	space.ResetStats()
	space.SetSink(sys.Region("precise", mlc.PreciseWriteNanos))
	alg.Sort(p, sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(seed)})

	st := space.Stats()
	sorted := mem.PeekAll(p.Keys) //nolint:memescape // response extraction after the accounted run
	// The precise path has no stage accounting, but its output contract
	// is identical: sorted, a permutation, and equal to the reference
	// oracle sort.
	if err := verify.CheckOutput(keys, sorted).Err(); err != nil {
		return err
	}
	if err := sys.Stats().Check(); err != nil {
		return err
	}
	res.Writes = WriteCounts{Precise: st.Writes, Baseline: st.Writes}
	res.WriteNanos = st.WriteNanos
	res.PCMNanos = sys.Clock()
	res.Sorted = true
	res.Verified = true
	if req.ReturnKeys {
		res.Keys = sorted
	}
	return nil
}
