package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"approxsort/internal/dataset"
)

func streamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StreamDir == "" {
		cfg.StreamDir = t.TempDir()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func encodeKeys(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[i*4:], k)
	}
	return out
}

func postOctet(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSortStreamUploadEndToEnd(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 2, QueueDepth: 8})
	keys := dataset.Uniform(30000, 5)

	resp := postOctet(t, ts.URL+"/v1/sort/stream?wait=1&run_size=4000&fan_in=4&seed=7&t=0.07&mode=hybrid", encodeKeys(keys))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}
	if job.Kind != KindStream {
		t.Errorf("job kind = %q", job.Kind)
	}
	res := job.Result
	if res == nil || res.Extsort == nil {
		t.Fatalf("missing extsort result: %+v", res)
	}
	if !res.Verified || !res.Sorted {
		t.Errorf("verified=%v sorted=%v", res.Verified, res.Sorted)
	}
	if res.Extsort.Records != 30000 {
		t.Errorf("records = %d", res.Extsort.Records)
	}
	if res.Extsort.Runs < 2 {
		t.Errorf("runs = %d, expected a multi-run sort", res.Extsort.Runs)
	}
	if res.Mode != ModeHybrid || res.Rem == 0 {
		t.Errorf("mode=%q rem=%d", res.Mode, res.Rem)
	}
	if job.OutputBytes != 4*30000 {
		t.Errorf("OutputBytes = %d", job.OutputBytes)
	}

	// Download and spot-check the sorted output.
	out, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Body.Close()
	if out.StatusCode != http.StatusOK {
		t.Fatalf("output status = %d", out.StatusCode)
	}
	data, err := io.ReadAll(out.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4*len(keys) {
		t.Fatalf("output is %d bytes, want %d", len(data), 4*len(keys))
	}
	var prev uint32
	for i := 0; i < len(keys); i++ {
		k := binary.LittleEndian.Uint32(data[4*i:])
		if i > 0 && k < prev {
			t.Fatalf("output unsorted at %d", i)
		}
		prev = k
	}
}

func TestSortStreamDatasetAuto(t *testing.T) {
	s, ts := streamServer(t, Config{Workers: 2, QueueDepth: 8})
	resp := postJSON(t, ts.URL+"/v1/sort/stream?wait=1", StreamRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 60000, Seed: 3},
		RunSize: 8000,
		T:       0.07,
		Seed:    11,
		Mode:    ModeAuto,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}
	res := job.Result
	if res == nil || res.Extsort == nil || res.Extsort.Plan == nil {
		t.Fatalf("auto mode did not record a plan: %+v", res)
	}
	pl := res.Extsort.Plan
	if res.Extsort.RunSize != pl.RunSize || res.Extsort.FanIn != pl.FanIn {
		t.Errorf("executed geometry (%d,%d) diverges from plan (%d,%d)",
			res.Extsort.RunSize, res.Extsort.FanIn, pl.RunSize, pl.FanIn)
	}
	if !res.Verified {
		t.Error("not verified")
	}
	// Progress must have been recorded along the way.
	if job.Progress == nil || job.Progress.Records != 60000 {
		t.Errorf("progress = %+v", job.Progress)
	}
	// Extsort metrics must have moved.
	var buf bytes.Buffer
	s.Metrics().Render(&buf)
	for _, m := range []string{"sortd_extsort_records_total 60000", "sortd_extsort_runs_total"} {
		if !bytes.Contains(buf.Bytes(), []byte(m)) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

func TestSortStreamValidation(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1, QueueDepth: 4})

	// Truncated body (not a multiple of 4).
	resp := postOctet(t, ts.URL+"/v1/sort/stream", []byte{1, 2, 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated upload: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Empty body.
	resp = postOctet(t, ts.URL+"/v1/sort/stream", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty upload: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// nearlysorted is not streamable.
	resp = postJSON(t, ts.URL+"/v1/sort/stream", StreamRequest{
		Dataset: &DatasetSpec{Kind: "nearlysorted", N: 100},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nearlysorted: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad query parameter.
	resp = postOctet(t, ts.URL+"/v1/sort/stream?fan_in=x", encodeKeys([]uint32{1}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fan_in: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown mode.
	resp = postJSON(t, ts.URL+"/v1/sort/stream", StreamRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 100},
		Mode:    "warp",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSortStreamQuota(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1, QueueDepth: 4, MaxStreamBytes: 1000})

	// Upload over the server quota → 413 at admission.
	resp := postOctet(t, ts.URL+"/v1/sort/stream", encodeKeys(dataset.Uniform(1000, 1)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Dataset spec over the quota → 400 at admission.
	resp = postJSON(t, ts.URL+"/v1/sort/stream", StreamRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 1000},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized dataset: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A job whose spill exceeds its own quota fails cleanly.
	resp = postJSON(t, ts.URL+"/v1/sort/stream?wait=1", StreamRequest{
		Dataset:      &DatasetSpec{Kind: "uniform", N: 200, Seed: 2},
		RunSize:      50,
		MaxDiskBytes: 500, // the 800 bytes of level-0 runs cannot all be live
		T:            0.07,
	})
	job := decodeJob(t, resp)
	if job.Status != StatusFailed {
		t.Fatalf("quota-starved job status = %q (error %q)", job.Status, job.Error)
	}
}

func TestSortStreamOutputLifecycle(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 4, RetainJobs: 1, StreamDir: t.TempDir()}
	_, ts := streamServer(t, cfg)

	resp := postJSON(t, ts.URL+"/v1/sort/stream?wait=1", StreamRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 5000, Seed: 9},
		RunSize: 1000,
		T:       0.07,
	})
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}

	// Output of a non-stream job is a 400.
	resp2 := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{Keys: []uint32{2, 1}})
	plain := decodeJob(t, resp2)
	out, _ := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/output")
	if out.StatusCode != http.StatusBadRequest {
		t.Errorf("non-stream output: status = %d", out.StatusCode)
	}
	out.Body.Close()

	// RetainJobs=1 means the second finished job evicted the first —
	// record and files both.
	out, _ = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/output")
	if out.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job output: status = %d", out.StatusCode)
	}
	out.Body.Close()
	entries, err := os.ReadDir(cfg.StreamDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("evicted job left %d entries in the stream dir", len(entries))
	}
}

func TestSortStreamDeterministicAcrossResubmission(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 2, QueueDepth: 8})
	req := StreamRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 20000, Seed: 4},
		RunSize: 3000,
		T:       0.07,
		Seed:    42,
		Mode:    ModeHybrid,
	}
	fetch := func() (*JobResult, []byte) {
		resp := postJSON(t, ts.URL+"/v1/sort/stream?wait=1", req)
		job := decodeJob(t, resp)
		if job.Status != StatusDone {
			t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
		}
		out, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/output")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Body.Close()
		data, err := io.ReadAll(out.Body)
		if err != nil {
			t.Fatal(err)
		}
		return job.Result, data
	}
	r1, d1 := fetch()
	r2, d2 := fetch()
	if !bytes.Equal(d1, d2) {
		t.Error("resubmitted job produced different output bytes")
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("resubmitted job produced different results:\n%s\n%s", j1, j2)
	}
	if r1.Rem == 0 || r1.Extsort.RemTilde != r1.Rem {
		t.Errorf("rem accounting: %d vs %d", r1.Rem, r1.Extsort.RemTilde)
	}
}
