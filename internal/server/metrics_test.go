package server

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"approxsort/internal/mlc"
)

func TestRegistryRendersPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	c.Add(3)
	v := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	v.With("/a", "200").Inc()
	v.With("/a", "500").Add(2)
	r.GaugeFunc("test_depth", "Depth.", func() float64 { return 7 })
	h := r.HistogramVec("test_latency_seconds", "Latency.", []float64{0.1, 1}, "op")
	h.With("x").Observe(0.05)
	h.With("x").Observe(0.5)
	h.With("x").Observe(5)

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		`test_requests_total{route="/a",code="200"} 1`,
		`test_requests_total{route="/a",code="500"} 2`,
		"# TYPE test_depth gauge",
		"test_depth 7",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{op="x",le="0.1"} 1`,
		`test_latency_seconds_bucket{op="x",le="1"} 2`,
		`test_latency_seconds_bucket{op="x",le="+Inf"} 3`,
		`test_latency_seconds_sum{op="x"} 5.55`,
		`test_latency_seconds_count{op="x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(3) // le=4
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Errorf("p99 = %v, want 4", q)
	}
	h.Observe(100)
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 with overflow sample = %v, want +Inf", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

// TestTableCacheSharedAcrossJobs is the satellite proof: two concurrent
// hybrid jobs at the same T must build ONE transition table — the second
// job hits the shared cache — and the /metrics surface must show it.
func TestTableCacheSharedAcrossJobs(t *testing.T) {
	tables := mlc.SharedTables()
	tables.Reset()
	t.Cleanup(tables.Reset)

	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const T = 0.09
	run := func() {
		resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
			Dataset:   &DatasetSpec{Kind: "uniform", N: 20000, Seed: 5},
			Algorithm: "msd",
			T:         T,
			Mode:      ModeHybrid,
		})
		job := decodeJob(t, resp)
		if job.Status != StatusDone {
			t.Errorf("job: %q %s", job.Status, job.Error)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); run() }()
	}
	wg.Wait()

	// Two hybrid jobs at one T: exactly one table resident, and at least
	// one Get served from cache. (Each job calls CachedTable twice — once
	// for the p(t) write latency, once inside the approximate space — so
	// hits ≥ 3 of 4 gets; the singleflight makes "misses == 1" exact even
	// though both jobs raced to build.)
	if got := tables.Len(); got != 1 {
		t.Errorf("tables resident = %d, want 1", got)
	}
	if tables.Misses() != 1 {
		t.Errorf("table builds = %d, want 1 (cache not shared?)", tables.Misses())
	}
	if tables.Hits() == 0 {
		t.Error("no cache hits across two same-T jobs")
	}

	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		"sortd_mlc_table_cache_misses_total 1",
		"sortd_mlc_table_cache_size 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metrics, "table_cache"))
		}
	}
	if strings.Contains(metrics, "sortd_mlc_table_cache_hits_total 0\n") {
		t.Error("metrics report zero table-cache hits")
	}
}

// TestServerMetricsSurface checks the end-to-end /metrics content after a
// mixed workload: request counters, per-algorithm job counters, latency
// histogram series.
func TestServerMetricsSurface(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
			Keys: []uint32{3, 1, 2}, Algorithm: "quicksort", Mode: ModePrecise,
		})
		resp.Body.Close()
	}
	out := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`sortd_requests_total{route="/v1/sort",code="200"} 3`,
		`sortd_jobs_total{backend="pcm-mlc",algorithm="quicksort",mode="precise",status="done"} 3`,
		`sortd_job_duration_seconds_count{backend="pcm-mlc",algorithm="quicksort",mode="precise"} 3`,
		"sortd_queue_capacity 8",
		"sortd_draining 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
