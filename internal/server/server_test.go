package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func TestSortEndToEndAuto(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
		Keys:       []uint32{5, 3, 1, 4, 2},
		Algorithm:  "auto",
		ReturnKeys: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}
	res := job.Result
	if res == nil {
		t.Fatal("no result")
	}
	if !res.Sorted {
		t.Error("result not marked sorted")
	}
	want := []uint32{1, 2, 3, 4, 5}
	if len(res.Keys) != len(want) {
		t.Fatalf("returned %d keys", len(res.Keys))
	}
	for i := range want {
		if res.Keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", res.Keys, want)
		}
	}
	// Auto mode must record the planner verdict and route accordingly.
	// (Equation 4 is scale-free for radix sorts — α is linear in n — so
	// even a tiny input may legitimately route hybrid; what matters is
	// that the verdict and the executed mode agree.)
	if res.Plan == nil {
		t.Fatal("auto job missing planner verdict")
	}
	wantMode := ModePrecise
	if res.Plan.UseHybrid {
		wantMode = ModeHybrid
	}
	if res.Mode != wantMode {
		t.Errorf("mode %q disagrees with plan %+v", res.Mode, res.Plan)
	}
}

func TestSortAutoRoutesHybridAtSweetSpot(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
		Dataset:   &DatasetSpec{Kind: "uniform", N: 300000, Seed: 7},
		Algorithm: "msd",
		Bits:      3,
		T:         0.055,
		Mode:      ModeAuto,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	res := job.Result
	if res.Plan == nil || !res.Plan.UseHybrid || res.Mode != ModeHybrid {
		t.Fatalf("sweet-spot job not routed hybrid: mode=%q plan=%+v", res.Mode, res.Plan)
	}
	if !res.Sorted {
		t.Error("hybrid output not sorted")
	}
	// Predicted vs. actual write reduction must both be present and agree
	// in sign (the planner's whole job).
	if res.PredictedWR <= 0 || res.ActualWR <= 0 {
		t.Errorf("predicted WR %v / actual WR %v not both positive", res.PredictedWR, res.ActualWR)
	}
	if res.Rem <= 0 {
		t.Errorf("hybrid run reported Rem~ = %d", res.Rem)
	}
	if res.PCMNanos <= 0 {
		t.Errorf("PCM clock = %v", res.PCMNanos)
	}
	if res.Writes.Approx == 0 || res.Writes.Precise == 0 || res.Writes.Baseline == 0 {
		t.Errorf("write accounting incomplete: %+v", res.Writes)
	}
}

func TestSortAsyncPolling(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{2, 1}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	job := decodeJob(t, resp)
	if job.ID == "" || loc != "/v1/jobs/"+job.ID {
		t.Fatalf("bad Location %q for job %q", loc, job.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeJob(t, r)
		if got.Status == StatusDone {
			break
		}
		if got.Status == StatusFailed {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, MaxN: 1000})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both inputs", `{"keys":[1],"dataset":{"kind":"uniform","n":5}}`},
		{"zero n", `{"dataset":{"kind":"uniform","n":0}}`},
		{"over maxN", `{"dataset":{"kind":"uniform","n":100000}}`},
		{"bad kind", `{"dataset":{"kind":"gauss","n":5}}`},
		{"bad algorithm", `{"keys":[1,2],"algorithm":"bogo"}`},
		{"bad mode", `{"keys":[1,2],"mode":"turbo"}`},
		{"bad T", `{"keys":[1,2],"t":0.5}`},
		{"bad bits", `{"keys":[1,2],"bits":40}`},
		{"unknown field", `{"keys":[1,2],"frobnicate":true}`},
		{"not json", `hello`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/sort", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestQueueFull429 pins the backpressure contract: with the single worker
// held and the queue full, the next POST is rejected with 429 and a
// Retry-After header, and the rejection shows up on /metrics.
func TestQueueFull429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testHookBeforeExec = func(*Job) { started <- struct{}{}; <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 occupies the worker (wait until it is actually held), job 2
	// fills the queue slot.
	r1 := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{3, 1}})
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", r1.StatusCode)
	}
	<-started
	r2 := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{3, 1}})
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", r2.StatusCode)
	}

	r3 := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{3, 1}})
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	metrics := fetchMetrics(t, ts.URL)
	if !strings.Contains(metrics, "sortd_queue_rejected_total 1") {
		t.Errorf("metrics missing rejection count:\n%s", grepMetrics(metrics, "sortd_queue"))
	}

	close(block)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdown pins the drain contract: once Shutdown begins,
// healthz flips to 503/draining, new jobs are refused, and both the
// in-flight and the queued job still run to completion before Shutdown
// returns.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testHookBeforeExec = func(*Job) { started <- struct{}{}; <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{2, 1}})
	inflightJob := decodeJob(t, inflight)
	<-started
	queued := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{4, 3}})
	queuedJob := decodeJob(t, queued)

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// Draining must become observable while the worker is still held.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hz.StatusCode)
	}
	refused := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{9, 8}})
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", refused.StatusCode)
	}

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before jobs drained: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Both jobs must have completed during the drain.
	for _, id := range []string{inflightJob.ID, queuedJob.ID} {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeJob(t, r)
		if got.Status != StatusDone {
			t.Errorf("job %s after drain: status %q error %q", id, got.Status, got.Error)
		}
	}
}

// TestShutdownContextCancel: a deadline shorter than the drain abandons the
// wait with an error instead of hanging.
func TestShutdownContextCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testHookBeforeExec = func(*Job) { started <- struct{}{}; <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := postJSON(t, ts.URL+"/v1/sort", SortRequest{Keys: []uint32{2, 1}})
	r.Body.Close()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned nil despite a held worker")
	}
	close(block)
}

// TestConcurrentSorts hammers POST /v1/sort from many goroutines — the
// test the CI -race step leans on. Every job must come back sorted, and
// per-request seeds keep results independent of scheduling.
func TestConcurrentSorts(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
					Dataset:   &DatasetSpec{Kind: "uniform", N: 5000, Seed: uint64(c*100 + i)},
					Algorithm: "msd",
					T:         0.055,
					Mode:      ModeAuto,
					Seed:      uint64(c*1000 + i),
				})
				job := decodeJob(t, resp)
				if job.Status != StatusDone {
					errs <- fmt.Errorf("client %d job %d: %q %s", c, i, job.Status, job.Error)
					return
				}
				if !job.Result.Sorted {
					errs <- fmt.Errorf("client %d job %d: unsorted", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDeterministicAcrossConcurrency: the same request replayed at
// different worker counts produces bit-identical accounting, because every
// stream is derived from the request's coordinates.
func TestDeterministicAcrossConcurrency(t *testing.T) {
	req := func() *SortRequest {
		r := &SortRequest{
			Dataset:   &DatasetSpec{Kind: "uniform", N: 50000, Seed: 11},
			Algorithm: "msd",
			T:         0.08,
			Mode:      ModeHybrid,
			Seed:      99,
		}
		if err := r.normalize(1 << 20); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, err := execute(req(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run amid unrelated concurrent jobs.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			other := &SortRequest{
				Dataset: &DatasetSpec{Kind: "uniform", N: 10000, Seed: uint64(i)},
				Mode:    ModePrecise, Algorithm: "quicksort", Seed: uint64(i),
			}
			if err := other.normalize(1 << 20); err == nil {
				execute(other, 0) //nolint:errcheck // background noise only
			}
		}(i)
	}
	b, err := execute(req(), 0)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if a.Rem != b.Rem || a.Writes != b.Writes || a.ActualWR != b.ActualWR || a.PCMNanos != b.PCMNanos {
		t.Errorf("same request diverged:\n%+v\n%+v", a, b)
	}
}

func fetchMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// grepMetrics returns the metric lines containing substr, for error
// messages.
func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}
