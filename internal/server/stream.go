package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/rng"
	"approxsort/internal/verify"
)

// StreamRequest parameterizes POST /v1/sort/stream. Two input forms:
//
//   - Content-Type: application/octet-stream — the body is the raw
//     little-endian uint32 key stream, spooled to the job's directory
//     (against its disk quota) before the job is enqueued; sort
//     parameters arrive as query parameters.
//   - any other Content-Type — this struct as a JSON body, with a
//     Dataset spec generated server-side as a stream (no materialized
//     array), so load tests can drive out-of-core sizes without shipping
//     gigabytes.
type StreamRequest struct {
	// Dataset generates the input server-side (JSON form only). Must be
	// a streamable kind: nearlysorted is rejected.
	Dataset *DatasetSpec `json:"dataset,omitempty"`

	// Algorithm/Bits/Mode/Backend/Params/T/Seed as in SortRequest. Mode
	// auto consults the (M, B, ω) external planner: the pilot decides
	// hybrid vs precise formation, run size, fan-in, and whether to
	// defer refine step 3 into the merge.
	Algorithm string             `json:"algorithm,omitempty"`
	Bits      int                `json:"bits,omitempty"`
	Mode      string             `json:"mode,omitempty"`
	Backend   string             `json:"backend,omitempty"`
	Params    map[string]float64 `json:"params,omitempty"`
	T         float64            `json:"t,omitempty"`
	Seed      uint64             `json:"seed,omitempty"`

	// RunSize is the in-memory run budget M in records (default 1M);
	// FanIn the merge width cap (default 16). Under mode auto these act
	// as the planner's M and fan-in ceiling.
	RunSize int `json:"run_size,omitempty"`
	FanIn   int `json:"fan_in,omitempty"`
	// Formation picks run formation: replacement (default) or chunk.
	Formation string `json:"formation,omitempty"`
	// RefineAtMerge defers each run's refine merge into the k-way merge.
	RefineAtMerge bool `json:"refine_at_merge,omitempty"`
	// MaxDiskBytes lowers the per-job disk quota below the server cap.
	MaxDiskBytes int64 `json:"max_disk_bytes,omitempty"`

	backend memmodel.Backend
	point   memmodel.Point
}

// normalize validates and defaults the request in place. The server cap
// bounds the per-job quota.
func (r *StreamRequest) normalize(cfg Config, hasBody bool) error {
	if hasBody == (r.Dataset != nil) {
		return fmt.Errorf("provide the key stream as the request body or a dataset spec, not both")
	}
	if r.Dataset != nil {
		if err := r.Dataset.validate(); err != nil {
			return err
		}
		if r.Dataset.Kind == "nearlysorted" {
			return fmt.Errorf("dataset kind nearlysorted is not streamable")
		}
		if r.Dataset.N <= 0 {
			return fmt.Errorf("dataset must have at least one key")
		}
		if b := 4 * int64(r.Dataset.N); b > cfg.MaxStreamBytes {
			return fmt.Errorf("dataset stream of %d bytes exceeds the server quota %d", b, cfg.MaxStreamBytes)
		}
	}
	switch r.Mode {
	case "":
		r.Mode = ModeAuto
	case ModeAuto, ModeHybrid, ModePrecise:
	default:
		return fmt.Errorf("unknown mode %q (want auto, hybrid or precise)", r.Mode)
	}
	switch r.Formation {
	case "":
		r.Formation = extsort.FormationReplacement
	case extsort.FormationReplacement, extsort.FormationChunk:
	default:
		return fmt.Errorf("unknown formation %q (want replacement or chunk)", r.Formation)
	}
	if r.RunSize < 0 || r.FanIn < 0 || r.MaxDiskBytes < 0 {
		return fmt.Errorf("run_size, fan_in and max_disk_bytes must be non-negative")
	}
	if r.FanIn == 1 {
		return fmt.Errorf("fan_in = 1 cannot merge")
	}
	if r.MaxDiskBytes == 0 || r.MaxDiskBytes > cfg.MaxStreamBytes {
		r.MaxDiskBytes = cfg.MaxStreamBytes
	}
	if r.Algorithm == "" {
		r.Algorithm = "auto"
	}
	if r.Bits != 0 && (r.Bits < 1 || r.Bits > 16) {
		return fmt.Errorf("bits = %d out of range [1, 16]", r.Bits)
	}
	if _, err := r.algorithm(); err != nil {
		return err
	}
	b, pt, t, err := resolveBackendPoint(r.Backend, r.Params, r.T)
	if err != nil {
		return err
	}
	r.Backend, r.backend, r.point, r.T = b.Name(), b, pt, t
	return nil
}

func (r *StreamRequest) algorithm() (alg interface {
	Name() string
}, err error) {
	sr := SortRequest{Algorithm: r.Algorithm, Bits: r.Bits}
	return sr.algorithm()
}

// streamQuery parses the octet-stream form's query parameters into a
// StreamRequest.
func streamQuery(q map[string][]string) (*StreamRequest, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	req := &StreamRequest{
		Algorithm: get("algorithm"),
		Mode:      get("mode"),
		Backend:   get("backend"),
		Formation: get("formation"),
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"bits", &req.Bits}, {"run_size", &req.RunSize}, {"fan_in", &req.FanIn},
	} {
		if s := get(f.key); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("bad %s: %v", f.key, err)
			}
			*f.dst = v
		}
	}
	if s := get("t"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad t: %v", err)
		}
		req.T = v
	}
	if s := get("seed"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed: %v", err)
		}
		req.Seed = v
	}
	if s := get("max_disk_bytes"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad max_disk_bytes: %v", err)
		}
		req.MaxDiskBytes = v
	}
	if s := get("refine_at_merge"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("bad refine_at_merge: %v", err)
		}
		req.RefineAtMerge = v
	}
	return req, nil
}

// JobProgress is a streaming job's point-in-time progress, refreshed by
// the worker as the sort advances and served in GET /v1/jobs/{id}.
type JobProgress struct {
	// Phase: form (reading input, forming runs) or merge.
	Phase string `json:"phase"`
	// Records ingested so far; Runs formed so far.
	Records int64 `json:"records"`
	Runs    int   `json:"runs"`
	// Pass is the current merge level (1-based); MergedRecords counts
	// records written in that pass.
	Pass          int   `json:"pass,omitempty"`
	MergedRecords int64 `json:"merged_records,omitempty"`
	// DiskBytes is the live spill footprint.
	DiskBytes int64 `json:"disk_bytes"`
}

// ExtsortView is the external-sort section of a streaming job's result.
type ExtsortView struct {
	Records       int64   `json:"records"`
	Runs          int     `json:"runs"`
	MeanRunLength float64 `json:"mean_run_length"`
	MergePasses   int     `json:"merge_passes"`
	Formation     string  `json:"formation"`
	RefineAtMerge bool    `json:"refine_at_merge"`
	RunSize       int     `json:"run_size"`
	FanIn         int     `json:"fan_in"`
	// RemTilde is the summed refine remainder over all runs.
	RemTilde int `json:"rem_tilde"`
	// Disk ledger: cumulative spill volume and peak live footprint.
	DiskBytesWritten int64 `json:"disk_bytes_written"`
	DiskHighWater    int64 `json:"disk_high_water"`
	// Charged write latency split: run formation vs merge staging.
	FormationWriteNanos float64 `json:"formation_write_nanos"`
	MergeWriteNanos     float64 `json:"merge_write_nanos"`
	// Plan is the (M, B, ω) planner verdict (mode auto only).
	Plan *core.ExternalPlan `json:"plan,omitempty"`
}

func (s *Server) handleSortStream(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/sort/stream"
	if s.draining.Load() {
		s.writeJSON(w, route, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	ct := r.Header.Get("Content-Type")
	var req *StreamRequest
	hasBody := false
	if strings.HasPrefix(ct, "application/octet-stream") {
		// Raw upload: the body is the keys, parameters ride in the query.
		var err error
		req, err = streamQuery(r.URL.Query())
		if err != nil {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		hasBody = true
	} else {
		// Anything else is the JSON form — defaulting to JSON (like
		// /v1/sort) means a curl -d without an explicit Content-Type
		// fails loudly on decode instead of silently sorting the JSON
		// text as key bytes.
		req = &StreamRequest{}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
			return
		}
	}
	if err := req.normalize(s.cfg, hasBody); err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	dir, err := os.MkdirTemp(s.cfg.StreamDir, "sortd-stream-")
	if err != nil {
		s.writeJSON(w, route, http.StatusInternalServerError, apiError{Error: "job dir: " + err.Error()})
		return
	}

	n := 0
	var inputRecords int64
	if hasBody {
		// Spool the upload before enqueueing: the body dies with this
		// handler, the job may run much later. The spool counts against
		// the job's quota like any other spill.
		bytes, err := spoolInput(filepath.Join(dir, "input.raw"),
			http.MaxBytesReader(w, r.Body, req.MaxDiskBytes+1), req.MaxDiskBytes)
		if err != nil {
			os.RemoveAll(dir)
			code := http.StatusBadRequest
			if errors.Is(err, extsort.ErrDiskQuota) {
				code = http.StatusRequestEntityTooLarge
			}
			s.writeJSON(w, route, code, apiError{Error: err.Error()})
			return
		}
		if bytes == 0 {
			os.RemoveAll(dir)
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "input must have at least one key"})
			return
		}
		inputRecords = bytes / 4
	} else {
		inputRecords = int64(req.Dataset.N)
	}
	if inputRecords <= int64(^uint(0)>>1) {
		n = int(inputRecords)
	}

	job := &Job{
		Status:     StatusQueued,
		Kind:       KindStream,
		Algorithm:  req.Algorithm,
		Mode:       req.Mode,
		Backend:    req.Backend,
		N:          n,
		T:          req.T,
		EnqueuedAt: time.Now().UTC(), //nolint:detrand // wall-clock by design: job timestamps are service metadata
		done:       make(chan struct{}),
		stream:     req,
		dir:        dir,
		records:    inputRecords,
	}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("job-%08d", s.seq)
	s.jobs[job.ID] = job
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(job) }) {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		os.RemoveAll(dir)
		s.queueRejects.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, route, http.StatusTooManyRequests, apiError{Error: "queue full, retry later"})
		return
	}

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.done:
			s.writeJSON(w, route, http.StatusOK, s.snapshot(job))
		case <-r.Context().Done():
			s.requests.With(route, "499").Inc()
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, route, http.StatusAccepted, s.snapshot(job))
}

// spoolInput copies the upload to path, enforcing word alignment and the
// quota, and returns the byte count.
func spoolInput(path string, body io.Reader, quota int64) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := io.Copy(f, body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return 0, fmt.Errorf("%w: upload exceeds the job quota %d", extsort.ErrDiskQuota, quota)
		}
		return 0, fmt.Errorf("reading upload: %w", err)
	}
	if quota > 0 && n > quota {
		return 0, fmt.Errorf("%w: upload of %d bytes exceeds the job quota %d", extsort.ErrDiskQuota, n, quota)
	}
	if n%4 != 0 {
		return 0, fmt.Errorf("upload of %d bytes is not a whole number of uint32 records", n)
	}
	return n, nil
}

// executeStream runs one streaming job: spooled upload or generated
// dataset in, verified sorted stream out, with the full audit chain
// (per-run Auditor, output StreamChecker, stats reconciliation) standing
// between the sort and a done status.
func (s *Server) executeStream(job *Job) (*JobResult, error) {
	req := job.stream
	sr := SortRequest{Algorithm: req.Algorithm, Bits: req.Bits}
	alg, err := sr.algorithm()
	if err != nil {
		return nil, err
	}
	b, pt := req.backend, req.point

	var src io.Reader
	if req.Dataset != nil {
		src, err = dataset.StreamSpec{
			Kind: req.Dataset.Kind, N: req.Dataset.N, Seed: req.Dataset.Seed,
			K: req.Dataset.K, S: req.Dataset.S,
		}.Stream()
		if err != nil {
			return nil, err
		}
	} else {
		f, err := os.Open(filepath.Join(job.dir, "input.raw"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}

	coords := b.SeedCoords(pt)
	seedParts := make([]any, 0, 4+len(coords))
	seedParts = append(seedParts, "sortd", "stream", alg.Name())
	seedParts = append(seedParts, coords...)
	seedParts = append(seedParts, uint64(job.records))

	cfg := extsort.Config{
		Core: core.Config{
			Algorithm: alg,
			NewSpace:  func(sd uint64) core.Space { return b.NewApprox(pt, sd) },
			Seed:      rng.Split(req.Seed, seedParts...),
		},
		RunSize:       req.RunSize,
		FanIn:         req.FanIn,
		TempDir:       job.dir,
		Formation:     req.Formation,
		RefineAtMerge: req.RefineAtMerge,
		Precise:       req.Mode == ModePrecise,
		AutoPlan:      req.Mode == ModeAuto,
		TotalRecords:  job.records,
		Omega:         memmodel.WriteCostRatio(b, pt),
		MaxDiskBytes:  req.MaxDiskBytes,
		Verifier:      verify.Auditor{ID: b.Identities(pt)},
		OnProgress: func(p extsort.Progress) {
			s.mu.Lock()
			job.Progress = &JobProgress{
				Phase: p.Phase, Records: p.Records, Runs: p.Runs,
				Pass: p.Pass, MergedRecords: p.MergedRecords, DiskBytes: p.DiskBytes,
			}
			s.mu.Unlock()
		},
	}

	outPath := filepath.Join(job.dir, "output.raw")
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	qw := &quotaWriter{w: out, max: req.MaxDiskBytes}
	sc := verify.NewStreamChecker(qw)
	stats, err := extsort.SortStream(src, sc, cfg)
	if err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	// The audit chain behind Verified: every run was checked by the
	// Auditor at formation time; the output stream must be monotone and
	// conserve the record count; the totals must reconcile per-run.
	if err := sc.Finish(stats.Records); err != nil {
		return nil, err
	}
	if err := verify.CheckExtsortStats(stats).Err(); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(job.dir, "input.raw")) // reclaim the spool

	s.mu.Lock()
	job.OutputBytes = qw.n
	s.mu.Unlock()

	s.extsortRecords.Add(uint64(stats.Records))
	s.extsortRuns.Add(uint64(stats.Runs))
	s.extsortMergePasses.Add(uint64(stats.MergePasses))
	s.extsortSpillBytes.Add(uint64(stats.DiskBytesWritten))

	mode := ModePrecise
	if stats.Hybrid {
		mode = ModeHybrid
	}
	res := &JobResult{
		Algorithm: alg.Name(),
		Mode:      mode,
		N:         job.N,
		Backend:   b.Name(),
		Params:    pt.Params,
		T:         req.T,
		Rem:       stats.RemTildeTotal,
		Writes: WriteCounts{
			Precise: int(stats.MergeWrites),
		},
		WriteNanos: stats.HybridWriteNanos + stats.MergeWriteNanos,
		Sorted:     true,
		Verified:   true,
		Extsort: &ExtsortView{
			Records:             stats.Records,
			Runs:                stats.Runs,
			MeanRunLength:       stats.MeanRunLength(),
			MergePasses:         stats.MergePasses,
			Formation:           stats.Formation,
			RefineAtMerge:       stats.RefineAtMerge,
			RunSize:             stats.RunSize,
			FanIn:               stats.FanIn,
			RemTilde:            stats.RemTildeTotal,
			DiskBytesWritten:    stats.DiskBytesWritten,
			DiskHighWater:       stats.DiskHighWater,
			FormationWriteNanos: stats.HybridWriteNanos,
			MergeWriteNanos:     stats.MergeWriteNanos,
			Plan:                stats.Plan,
		},
	}
	res.sanitize()
	return res, nil
}

// quotaWriter enforces the job quota on the final output file, which the
// extsort disk tracker does not see (it only tracks intermediate spill).
type quotaWriter struct {
	w   io.Writer
	n   int64
	max int64
}

func (q *quotaWriter) Write(p []byte) (int, error) {
	q.n += int64(len(p))
	if q.max > 0 && q.n > q.max {
		return 0, fmt.Errorf("%w: output of %d bytes exceeds the job quota %d", extsort.ErrDiskQuota, q.n, q.max)
	}
	return q.w.Write(p)
}

// handleJobOutput streams a finished streaming job's sorted output.
func (s *Server) handleJobOutput(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/jobs/output"
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var status, dir string
	var size int64
	if ok {
		status, dir, size = job.Status, job.dir, job.OutputBytes
	}
	kindOK := ok && (job.Kind == KindStream || job.Kind == KindSharded)
	s.mu.Unlock()
	if !ok {
		s.writeJSON(w, route, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return
	}
	if !kindOK {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "job " + id + " has no downloadable output"})
		return
	}
	if status != StatusDone {
		s.writeJSON(w, route, http.StatusConflict, apiError{Error: "job " + id + " is " + status})
		return
	}
	f, err := os.Open(filepath.Join(dir, "output.raw"))
	if err != nil {
		s.writeJSON(w, route, http.StatusGone, apiError{Error: "output no longer available"})
		return
	}
	defer f.Close()
	s.requests.With(route, "200").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	io.Copy(w, f)
}
