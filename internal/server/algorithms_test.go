package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"approxsort/internal/sorts"
)

// TestAlgorithmsEndpoint pins the GET /v1/algorithms contract: every
// registered algorithm is listed with its cost profile, in registry
// (sorted-name) order, with the onesweep radix advertising its
// write-combining economy (2 writes per element per pass).
func TestAlgorithmsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body AlgorithmsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Default != "msd" {
		t.Errorf("default = %q, want msd", body.Default)
	}
	want := sorts.Names()
	if len(body.Algorithms) != len(want) {
		t.Fatalf("listed %d algorithms, registry has %d", len(body.Algorithms), len(want))
	}
	byName := map[string]AlgorithmView{}
	for i, v := range body.Algorithms {
		if v.Name != want[i] {
			t.Errorf("entry %d = %q, want registry order %q", i, v.Name, want[i])
		}
		if v.Doc == "" {
			t.Errorf("%s: empty doc", v.Name)
		}
		byName[v.Name] = v
	}
	os, ok := byName["onesweep-lsd"]
	if !ok {
		t.Fatal("onesweep-lsd not listed")
	}
	if !os.Radix || os.DefaultBits != 8 || !os.Auto || !os.ExactWrites {
		t.Errorf("onesweep-lsd view wrong: %+v", os)
	}
	// 8-bit onesweep: 4 passes × 2 writes/element, even pass count so no
	// copy-home. The 6-bit LSD pays 2 writes per element per pass too but
	// needs 6 passes.
	if os.WritesPerElement != 8 {
		t.Errorf("onesweep-lsd writes/element = %v, want 8", os.WritesPerElement)
	}
	if lsd := byName["lsd"]; lsd.WritesPerElement != 12 {
		t.Errorf("lsd writes/element = %v, want 12", lsd.WritesPerElement)
	}
}

// TestUnknownAlgorithmLists400 pins the typed-error contract end to end:
// an unknown algorithm name is rejected with 400 and the error body
// names the registered roster, so a client can self-correct without a
// second round trip to /v1/algorithms.
func TestUnknownAlgorithmLists400(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sort", "application/json",
		strings.NewReader(`{"keys":[3,1,2],"algorithm":"bogosort"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &apiErr); err != nil {
		t.Fatalf("body %q: %v", raw, err)
	}
	if !strings.Contains(apiErr.Error, `"bogosort"`) {
		t.Errorf("error %q does not echo the bad name", apiErr.Error)
	}
	for _, name := range sorts.Names() {
		if !strings.Contains(apiErr.Error, name) {
			t.Errorf("error %q does not list registered algorithm %q", apiErr.Error, name)
		}
	}
}

// TestSortAutoSelectsAlgorithm pins the registry-driven selection path:
// an algorithm=auto job must report which algorithm the planner picked
// (both in the plan verdict and the result), the pick must be a
// registered auto candidate, and resubmitting the same job must pick the
// same algorithm with identical accounting — selection is part of the
// determinism contract, not a per-run coin flip.
func TestSortAutoSelectsAlgorithm(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SortRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 20000, Seed: 11},
		T:       0.055,
		Seed:    42,
	}
	run := func() *JobResult {
		resp := postJSON(t, ts.URL+"/v1/sort?wait=1", req)
		job := decodeJob(t, resp)
		if job.Status != StatusDone {
			t.Fatalf("job failed: %s", job.Error)
		}
		return job.Result
	}
	res := run()
	if res.Plan == nil || res.Plan.Algorithm == "" {
		t.Fatalf("auto job did not report a selected algorithm: plan=%+v", res.Plan)
	}
	candidate := false
	for _, c := range sorts.AutoCandidates() {
		if c.Name == res.Plan.Algorithm {
			candidate = true
			alg, err := sorts.New(c.Name, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != alg.Name() {
				t.Errorf("result algorithm %q, want %q for pick %q", res.Algorithm, alg.Name(), c.Name)
			}
		}
	}
	if !candidate {
		t.Fatalf("selected %q is not an auto candidate", res.Plan.Algorithm)
	}
	if !res.Sorted || !res.Verified {
		t.Errorf("auto job output not verified: %+v", res)
	}
	again := run()
	if again.Plan.Algorithm != res.Plan.Algorithm || again.Writes != res.Writes ||
		again.WriteNanos != res.WriteNanos {
		t.Errorf("auto selection not deterministic:\n first %+v %+v\nsecond %+v %+v",
			res.Plan, res.Writes, again.Plan, again.Writes)
	}
}

// TestAutoMatchesExplicitRun pins that pinning the auto pick reproduces
// the run bit-for-bit: the run-stream seed is keyed by the resolved
// algorithm name, not by how the request spelled it.
func TestAutoMatchesExplicitRun(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := SortRequest{
		Dataset: &DatasetSpec{Kind: "uniform", N: 20000, Seed: 11},
		T:       0.055,
		Seed:    42,
	}
	autoReq := base
	autoRes := decodeJob(t, postJSON(t, ts.URL+"/v1/sort?wait=1", autoReq)).Result
	if autoRes == nil || autoRes.Plan == nil {
		t.Fatal("auto job missing result or plan")
	}
	pinned := base
	pinned.Algorithm = autoRes.Plan.Algorithm
	pinned.Mode = autoRes.Mode
	pinnedRes := decodeJob(t, postJSON(t, ts.URL+"/v1/sort?wait=1", pinned)).Result
	if pinnedRes == nil {
		t.Fatal("pinned job missing result")
	}
	if autoRes.Writes != pinnedRes.Writes || autoRes.WriteNanos != pinnedRes.WriteNanos ||
		autoRes.Rem != pinnedRes.Rem || autoRes.ActualWR != pinnedRes.ActualWR {
		t.Errorf("auto run diverges from pinned %q run:\n auto   %+v nanos=%v rem=%d\n pinned %+v nanos=%v rem=%d",
			pinned.Algorithm, autoRes.Writes, autoRes.WriteNanos, autoRes.Rem,
			pinnedRes.Writes, pinnedRes.WriteNanos, pinnedRes.Rem)
	}
}
