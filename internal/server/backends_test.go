package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"approxsort/internal/memmodel"
)

// TestBackendsEndpoint pins the discovery surface: GET /v1/backends lists
// every registered backend with its parameter schema, and names the
// default.
func TestBackendsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got BackendsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Default != memmodel.DefaultName {
		t.Errorf("default = %q, want %q", got.Default, memmodel.DefaultName)
	}
	views := map[string]BackendView{}
	for _, v := range got.Backends {
		views[v.Name] = v
	}
	mlcView, ok := views[memmodel.PCMMLC]
	if !ok {
		t.Fatalf("pcm-mlc missing from %v", got.Backends)
	}
	if len(mlcView.Params) != 1 || mlcView.Params[0].Name != "t" || mlcView.Params[0].Default != 0.055 {
		t.Errorf("pcm-mlc params = %+v", mlcView.Params)
	}
	spinView, ok := views[memmodel.SpintronicName]
	if !ok {
		t.Fatalf("spintronic missing from %v", got.Backends)
	}
	params := map[string]bool{}
	for _, p := range spinView.Params {
		params[p.Name] = true
	}
	for _, want := range []string{"saving", "bit_error_prob", "read_bit_error_prob"} {
		if !params[want] {
			t.Errorf("spintronic schema missing %q: %+v", want, spinView.Params)
		}
	}
}

// TestSortSpintronicEndToEnd serves a spintronic job through the registry
// seam: hybrid mode (the planner routes spintronic precise under auto,
// since its approximate writes are not faster), verified by the invariant
// checker against the spintronic accounting identities.
func TestSortSpintronicEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sort?wait=1", SortRequest{
		Keys:       []uint32{5, 3, 1, 4, 2},
		Backend:    "spintronic",
		Params:     map[string]float64{"saving": 0.33, "bit_error_prob": 1e-5},
		Mode:       ModeHybrid,
		ReturnKeys: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", job.Status, job.Error)
	}
	if job.Backend != "spintronic" {
		t.Errorf("job backend = %q", job.Backend)
	}
	res := job.Result
	if res == nil {
		t.Fatal("no result")
	}
	if !res.Sorted || !res.Verified {
		t.Errorf("Sorted=%v Verified=%v, want both true", res.Sorted, res.Verified)
	}
	if res.Backend != "spintronic" {
		t.Errorf("result backend = %q", res.Backend)
	}
	if res.Params["saving"] != 0.33 || res.Params["bit_error_prob"] != 1e-5 {
		t.Errorf("result params = %v", res.Params)
	}
	if res.T != 0 {
		t.Errorf("T = %v leaked into a non-MLC result", res.T)
	}
	for i, want := range []uint32{1, 2, 3, 4, 5} {
		if res.Keys[i] != want {
			t.Fatalf("keys = %v", res.Keys)
		}
	}
}

// TestSortBackendRequestValidation pins the 400 surface of the backend
// parameters: an unregistered name is rejected with the registry's typed
// error text, and T (the pcm-mlc shorthand) cannot parameterize another
// backend.
func TestSortBackendRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown backend", `{"keys":[2,1],"backend":"memristor"}`, "unknown backend"},
		{"t on spintronic", `{"keys":[2,1],"backend":"spintronic","t":0.055}`, "applies only to the pcm-mlc backend"},
		{"t and params.t", `{"keys":[2,1],"t":0.055,"params":{"t":0.055}}`, "not both"},
		{"foreign param", `{"keys":[2,1],"backend":"pcm-mlc","params":{"saving":0.2}}`, "unknown parameter"},
		{"out of range", `{"keys":[2,1],"backend":"spintronic","params":{"saving":1.5}}`, "saving"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/sort", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.wantErr) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.wantErr)
		}
	}
}
