package server

import (
	"net/http"

	"approxsort/internal/memmodel"
)

// BackendView is one entry of GET /v1/backends: a registered memory
// model, its parameter schema, and its fully-defaulted reference point —
// everything a client needs to construct a valid POST /v1/sort body.
type BackendView struct {
	Name         string               `json:"name"`
	Params       []memmodel.ParamSpec `json:"params"`
	DefaultPoint memmodel.Point       `json:"default_point"`
}

// BackendsResponse is the body of GET /v1/backends.
type BackendsResponse struct {
	// Default names the backend used when a sort request names none.
	Default  string        `json:"default"`
	Backends []BackendView `json:"backends"`
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/backends"
	resp := BackendsResponse{Default: memmodel.DefaultName}
	for _, name := range memmodel.Names() {
		b := memmodel.MustGet(name)
		resp.Backends = append(resp.Backends, BackendView{
			Name:         name,
			Params:       b.Params(),
			DefaultPoint: b.DefaultPoint(),
		})
	}
	s.writeJSON(w, route, http.StatusOK, resp)
}
