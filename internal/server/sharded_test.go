package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"approxsort/internal/dataset"
	"approxsort/internal/mlc"
)

// shardFleet starts n shard sortd instances plus one coordinator
// configured over them.
func shardFleet(t *testing.T, n int, cfg Config) (*Server, string) {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		_, ts := streamServer(t, Config{Workers: 2, QueueDepth: 8})
		nodes[i] = ts.URL
	}
	cfg.ShardNodes = nodes
	co, ts := streamServer(t, cfg)
	return co, ts.URL
}

func TestSortShardedEndToEnd(t *testing.T) {
	_, url := shardFleet(t, 3, Config{Workers: 2, QueueDepth: 8})
	keys := dataset.Uniform(60000, 9)

	resp := postOctet(t, url+"/v1/sort/sharded?wait=1&run_size=8000&seed=13&t=0.07&mode=auto&tenant=acme&warm_tables=true",
		encodeKeys(keys))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}
	if job.Kind != KindSharded {
		t.Errorf("job kind = %q", job.Kind)
	}
	res := job.Result
	if res == nil || res.Cluster == nil {
		t.Fatalf("missing cluster result: %+v", res)
	}
	if !res.Verified || !res.Sorted || !res.Cluster.Verified {
		t.Errorf("verified=%v sorted=%v cluster=%v", res.Verified, res.Sorted, res.Cluster.Verified)
	}
	if len(res.Cluster.Shards) < 2 {
		t.Errorf("fan-out = %d shards, want >= 2", len(res.Cluster.Shards))
	}
	if res.Cluster.Records != 60000 || res.Cluster.MergeWrites != 60000 {
		t.Errorf("records=%d merge_writes=%d", res.Cluster.Records, res.Cluster.MergeWrites)
	}
	if !res.Cluster.TableWarmed {
		t.Errorf("table relay did not run: %s", res.Cluster.TableWarmError)
	}
	for i, sh := range res.Cluster.Shards {
		if !sh.Verified || sh.JobID == "" {
			t.Errorf("shard %d: verified=%v job=%q", i, sh.Verified, sh.JobID)
		}
	}

	out, err := http.Get(url + "/v1/jobs/" + job.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Body.Close()
	if out.StatusCode != http.StatusOK {
		t.Fatalf("output status = %d", out.StatusCode)
	}
	data, err := io.ReadAll(out.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4*len(keys) {
		t.Fatalf("output is %d bytes, want %d", len(data), 4*len(keys))
	}
	var prev uint32
	for i := 0; i < len(keys); i++ {
		k := binary.LittleEndian.Uint32(data[4*i:])
		if i > 0 && k < prev {
			t.Fatalf("merged output unsorted at %d", i)
		}
		prev = k
	}
}

func TestSortShardedDatasetForm(t *testing.T) {
	_, url := shardFleet(t, 2, Config{Workers: 2, QueueDepth: 8})
	resp := postJSON(t, url+"/v1/sort/sharded?wait=1", ShardedRequest{
		StreamRequest: StreamRequest{
			Dataset: &DatasetSpec{Kind: "zipf", N: 40000, K: 4096, S: 1.2, Seed: 7},
			RunSize: 6000,
			T:       0.07,
			Seed:    21,
		},
		MaxShards: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("job status = %q (error %q)", job.Status, job.Error)
	}
	res := job.Result
	if res == nil || res.Cluster == nil || !res.Cluster.Verified {
		t.Fatalf("cluster result missing or unverified: %+v", res)
	}
	if res.Cluster.Records != 40000 {
		t.Errorf("records = %d", res.Cluster.Records)
	}
}

func TestSortShardedNotConfigured(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1, QueueDepth: 2})
	resp := postOctet(t, ts.URL+"/v1/sort/sharded", encodeKeys([]uint32{3, 1, 2}))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

func TestSortShardedTenantQuota(t *testing.T) {
	s, url := shardFleet(t, 1, Config{Workers: 2, QueueDepth: 8, TenantMaxInflight: 1})
	started := make(chan struct{}, 2)
	block := make(chan struct{})
	s.testHookBeforeExec = func(*Job) { started <- struct{}{}; <-block }

	keys := encodeKeys(dataset.Uniform(2000, 1))
	// First job occupies tenant alice's only slot.
	resp := postOctet(t, url+"/v1/sort/sharded?seed=3&t=0.07&tenant=alice", keys)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	first := decodeJob(t, resp)
	<-started

	// Same tenant: rejected with backpressure before the queue.
	resp = postOctet(t, url+"/v1/sort/sharded?seed=4&t=0.07&tenant=alice", keys)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-tenant status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// A different tenant is unaffected.
	resp = postOctet(t, url+"/v1/sort/sharded?seed=5&t=0.07&tenant=bob", keys)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant status = %d, want 202", resp.StatusCode)
	}
	second := decodeJob(t, resp)
	<-started
	close(block)

	// Both jobs finish and release their slots; alice can submit again.
	for _, id := range []string{first.ID, second.ID} {
		waitJobDone(t, url, id)
	}
	resp = postOctet(t, url+"/v1/sort/sharded?seed=6&t=0.07&tenant=alice", keys)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-release status = %d, want 202", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	waitJobDone(t, url, job.ID)
}

func waitJobDone(t *testing.T, url, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second) //nolint:detrand // test timeout
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		job := decodeJob(t, resp)
		switch job.Status {
		case StatusDone:
			return
		case StatusFailed:
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) { //nolint:detrand // test timeout
			t.Fatalf("job %s still %s", id, job.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTablesArtifactRelay(t *testing.T) {
	_, a := streamServer(t, Config{Workers: 1, QueueDepth: 2})
	_, b := streamServer(t, Config{Workers: 1, QueueDepth: 2})

	resp, err := http.Get(a.URL + "/v1/tables?t=0.07")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var art mlc.TableArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if err := art.Validate(); err != nil {
		t.Fatalf("served artifact invalid: %v", err)
	}

	// Both servers share the process-global cache in tests, so the
	// install is a no-op 200; the handler contract (decode, validate,
	// idempotent install) is what's under test here.
	resp = postOctet2(t, b.URL+"/v1/tables", "application/json", raw)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("install status = %d", resp.StatusCode)
	}
	var out map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	// Garbage and missing parameters are 400s.
	resp = postOctet2(t, b.URL+"/v1/tables", "application/json", []byte(`{"params":{}}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad artifact status = %d", resp.StatusCode)
	}
	resp, err = http.Get(a.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-t status = %d", resp.StatusCode)
	}
}

func postOctet2(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSortShardedBadRequests(t *testing.T) {
	_, url := shardFleet(t, 1, Config{Workers: 1, QueueDepth: 4})
	keys := encodeKeys(dataset.Uniform(10, 1))

	octetCases := map[string]string{
		"bad stream param": "?run_size=abc",
		"bad max_shards":   "?max_shards=abc",
		"bad warm_tables":  "?warm_tables=nope",
	}
	for name, query := range octetCases {
		resp := postOctet(t, url+"/v1/sort/sharded"+query, keys)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	resp := postOctet(t, url+"/v1/sort/sharded?t=0.07", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty input: status = %d, want 400", resp.StatusCode)
	}

	resp = postOctet(t, url+"/v1/sort/sharded?t=0.07&max_disk_bytes=4", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over quota: status = %d, want 413", resp.StatusCode)
	}

	resp = postOctet2(t, url+"/v1/sort/sharded", "application/json", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: status = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, url+"/v1/sort/sharded", ShardedRequest{
		StreamRequest: StreamRequest{Dataset: &DatasetSpec{Kind: "uniform", N: 100}, T: 0.07},
		MaxShards:     -1,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative max_shards: status = %d, want 400", resp.StatusCode)
	}
}

func TestSortShardedDrainingRejects(t *testing.T) {
	s, url := shardFleet(t, 1, Config{Workers: 1, QueueDepth: 2})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postOctet(t, url+"/v1/sort/sharded?t=0.07", encodeKeys([]uint32{2, 1}))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
}

func TestSortShardedQueueFull(t *testing.T) {
	s, url := shardFleet(t, 1, Config{Workers: 1, QueueDepth: 1, TenantMaxInflight: 8})
	started := make(chan struct{}, 8)
	block := make(chan struct{})
	s.testHookBeforeExec = func(*Job) { started <- struct{}{}; <-block }

	keys := encodeKeys(dataset.Uniform(500, 1))
	first := decodeJob(t, postOctet(t, url+"/v1/sort/sharded?t=0.07&tenant=a", keys))
	<-started // the lone worker is now parked
	second := decodeJob(t, postOctet(t, url+"/v1/sort/sharded?t=0.07&tenant=b", keys))

	resp := postOctet(t, url+"/v1/sort/sharded?t=0.07&tenant=c", keys)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", resp.StatusCode)
	}

	close(block)
	waitJobDone(t, url, first.ID)
	waitJobDone(t, url, second.ID)
}

func TestSortShardedShardDownFailsJob(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, ts := streamServer(t, Config{Workers: 1, QueueDepth: 2, ShardNodes: []string{dead.URL}})

	resp := postOctet(t, ts.URL+"/v1/sort/sharded?wait=1&t=0.07", encodeKeys(dataset.Uniform(1000, 1)))
	job := decodeJob(t, resp)
	if job.Status != StatusFailed {
		t.Fatalf("job status = %q, want failed", job.Status)
	}
	if job.Error == "" {
		t.Error("failed job carries no error")
	}
}

// TestSortShardedTimeoutFailsJob pins the ShardSortTimeout contract: a
// shard node that accepts the connection and then hangs must fail the
// job within the configured fan-out deadline instead of pinning the
// worker and its tenant slot forever. Before the deadline existed, the
// fan-out ran on context.Background() and this test hung.
func TestSortShardedTimeoutFailsJob(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The submit POST's body is never read here, which suppresses
		// net/http's client-disconnect detection — r.Context() alone
		// would pin the conn past hang.Close(). The release channel
		// lets the handler return once the assertion is done.
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer hang.Close()
	defer close(release)
	_, ts := streamServer(t, Config{
		Workers: 1, QueueDepth: 2,
		ShardNodes:       []string{hang.URL},
		ShardSortTimeout: 200 * time.Millisecond,
	})

	start := time.Now()
	resp := postOctet(t, ts.URL+"/v1/sort/sharded?wait=1&t=0.07", encodeKeys(dataset.Uniform(1000, 1)))
	job := decodeJob(t, resp)
	if job.Status != StatusFailed {
		t.Fatalf("job status = %q, want failed", job.Status)
	}
	if job.Error == "" {
		t.Error("timed-out job carries no error")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("fan-out abandoned after %v, want the 200ms deadline to cut it", elapsed)
	}
}

func TestTablesQueryParams(t *testing.T) {
	_, ts := streamServer(t, Config{Workers: 1, QueueDepth: 2})

	resp, err := http.Get(ts.URL + "/v1/tables?t=0.07&samples=64&seed=9")
	if err != nil {
		t.Fatal(err)
	}
	var art mlc.TableArtifact
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || art.Samples != 64 || art.Seed != 9 {
		t.Fatalf("status=%d samples=%d seed=%d", resp.StatusCode, art.Samples, art.Seed)
	}

	for name, query := range map[string]string{
		"unparsable t": "?t=abc",
		"invalid t":    "?t=-1",
		"bad samples":  "?t=0.07&samples=-3",
		"bad seed":     "?t=0.07&seed=abc",
	} {
		resp, err := http.Get(ts.URL + "/v1/tables" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	resp = postOctet2(t, ts.URL+"/v1/tables", "application/json", []byte("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated artifact: status = %d, want 400", resp.StatusCode)
	}
}

func TestDatasetSpecMaterializeKinds(t *testing.T) {
	for _, spec := range []DatasetSpec{
		{Kind: "uniform", N: 50, Seed: 1},
		{Kind: "sorted", N: 50},
		{Kind: "reverse", N: 50},
		{Kind: "nearlysorted", N: 50, Swaps: 5, Seed: 1},
		{Kind: "fewdistinct", N: 50, Seed: 1}, // k defaults
		{Kind: "zipf", N: 50, Seed: 1},        // k and s default
	} {
		keys, err := spec.materialize()
		if err != nil {
			t.Errorf("%s: %v", spec.Kind, err)
			continue
		}
		if len(keys) != spec.N {
			t.Errorf("%s: %d keys, want %d", spec.Kind, len(keys), spec.N)
		}
	}
	if _, err := (&DatasetSpec{Kind: "uniform", N: -1}).materialize(); err == nil {
		t.Error("negative n materialized")
	}
	if _, err := (&DatasetSpec{Kind: "bogus", N: 5}).materialize(); err == nil {
		t.Error("unknown kind materialized")
	}
}

func TestJobResultSanitizeClampsNonFinite(t *testing.T) {
	r := &JobResult{
		PredictedWR: math.NaN(),
		ActualWR:    math.Inf(1),
		WriteNanos:  math.Inf(-1),
		Plan:        &PlanView{PredictedWR: math.NaN(), P: math.Inf(1), PilotRemRatio: math.Inf(-1)},
	}
	r.sanitize()
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("sanitized result not encodable: %v", err)
	}
	if r.PredictedWR != 0 || r.ActualWR != math.MaxFloat64 || r.WriteNanos != -math.MaxFloat64 {
		t.Errorf("clamps wrong: %+v", r)
	}
}

func TestSortRequestAlgorithmNames(t *testing.T) {
	for name, want := range map[string]string{
		"lsd": "6-bit LSD", "quicksort": "Quicksort", "mergesort": "Mergesort",
	} {
		alg, err := (&SortRequest{Algorithm: name, Bits: 6}).algorithm()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() != want {
			t.Errorf("%s resolved to %s", name, alg.Name())
		}
	}
	if _, err := (&SortRequest{Algorithm: "bogosort"}).algorithm(); err == nil {
		t.Error("unknown algorithm resolved")
	}
}
