package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"approxsort/internal/cluster"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/mlc"
	"approxsort/internal/verify"
)

// ShardedRequest parameterizes POST /v1/sort/sharded: one sort fanned
// across the configured shard fleet. Input forms mirror
// /v1/sort/stream — raw octet-stream body with query parameters, or a
// JSON body with a generated dataset spec.
type ShardedRequest struct {
	StreamRequest

	// Tenant is the placement identity: jobs from one tenant land on a
	// stable shard preference list on the consistent-hash ring, and the
	// per-tenant inflight quota is enforced under it. Empty is the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// MaxShards caps the fan-out below the fleet size (0 = whole fleet);
	// the coordinator's (M, B, ω, S) planner picks the actual count.
	MaxShards int `json:"max_shards,omitempty"`
	// WarmTables relays shard 0's calibrated MLC table to the rest of
	// the fleet before submitting (pcm-mlc only, best-effort).
	WarmTables bool `json:"warm_tables,omitempty"`
}

// normalizeSharded validates the sharded extras on top of the stream
// normalization.
func (r *ShardedRequest) normalizeSharded(cfg Config, hasBody bool) error {
	if err := r.normalize(cfg, hasBody); err != nil {
		return err
	}
	if r.MaxShards < 0 {
		return fmt.Errorf("max_shards must be non-negative")
	}
	if r.Tenant == "" {
		r.Tenant = "default"
	}
	return nil
}

// shardedQuery parses the octet-stream form's query parameters.
func shardedQuery(q map[string][]string) (*ShardedRequest, error) {
	sr, err := streamQuery(q)
	if err != nil {
		return nil, err
	}
	req := &ShardedRequest{StreamRequest: *sr}
	if v := q["tenant"]; len(v) > 0 {
		req.Tenant = v[0]
	}
	if v := q["max_shards"]; len(v) > 0 {
		n, err := strconv.Atoi(v[0])
		if err != nil {
			return nil, fmt.Errorf("bad max_shards: %v", err)
		}
		req.MaxShards = n
	}
	if v := q["warm_tables"]; len(v) > 0 {
		b, err := strconv.ParseBool(v[0])
		if err != nil {
			return nil, fmt.Errorf("bad warm_tables: %v", err)
		}
		req.WarmTables = b
	}
	return req, nil
}

func (s *Server) handleSortSharded(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/sort/sharded"
	if len(s.cfg.ShardNodes) == 0 {
		s.writeJSON(w, route, http.StatusNotImplemented,
			apiError{Error: "no shard fleet configured (start sortd with -shards)"})
		return
	}
	if s.draining.Load() {
		s.writeJSON(w, route, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}

	ct := r.Header.Get("Content-Type")
	var req *ShardedRequest
	hasBody := false
	if strings.HasPrefix(ct, "application/octet-stream") {
		var err error
		req, err = shardedQuery(r.URL.Query())
		if err != nil {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		hasBody = true
	} else {
		req = &ShardedRequest{}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
			return
		}
	}
	if err := req.normalizeSharded(s.cfg, hasBody); err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	// Per-tenant backpressure: the coordinator fans one job across the
	// whole fleet, so a tenant's concurrent sharded jobs are capped
	// before the queue, and the shards' own 429s propagate back through
	// the coordinator's submit retries.
	if !s.acquireTenant(req.Tenant) {
		s.tenantRejects.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, route, http.StatusTooManyRequests,
			apiError{Error: fmt.Sprintf("tenant %s has %d sharded sorts inflight, retry later",
				req.Tenant, s.cfg.TenantMaxInflight)})
		return
	}

	dir, err := os.MkdirTemp(s.cfg.StreamDir, "sortd-sharded-")
	if err != nil {
		s.releaseTenant(req.Tenant)
		s.writeJSON(w, route, http.StatusInternalServerError, apiError{Error: "job dir: " + err.Error()})
		return
	}

	var inputRecords int64
	if hasBody {
		bytes, err := spoolInput(filepath.Join(dir, "input.raw"),
			http.MaxBytesReader(w, r.Body, req.MaxDiskBytes+1), req.MaxDiskBytes)
		if err != nil {
			os.RemoveAll(dir)
			s.releaseTenant(req.Tenant)
			code := http.StatusBadRequest
			if errors.Is(err, extsort.ErrDiskQuota) {
				code = http.StatusRequestEntityTooLarge
			}
			s.writeJSON(w, route, code, apiError{Error: err.Error()})
			return
		}
		if bytes == 0 {
			os.RemoveAll(dir)
			s.releaseTenant(req.Tenant)
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "input must have at least one key"})
			return
		}
		inputRecords = bytes / 4
	} else {
		inputRecords = int64(req.Dataset.N)
	}
	n := 0
	if inputRecords <= int64(^uint(0)>>1) {
		n = int(inputRecords)
	}

	job := &Job{
		Status:     StatusQueued,
		Kind:       KindSharded,
		Algorithm:  req.Algorithm,
		Mode:       req.Mode,
		Backend:    req.Backend,
		N:          n,
		T:          req.T,
		EnqueuedAt: time.Now().UTC(), //nolint:detrand // wall-clock by design: job timestamps are service metadata
		done:       make(chan struct{}),
		sharded:    req,
		tenant:     req.Tenant,
		dir:        dir,
		records:    inputRecords,
	}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("job-%08d", s.seq)
	s.jobs[job.ID] = job
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(job) }) {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		os.RemoveAll(dir)
		s.releaseTenant(req.Tenant)
		s.queueRejects.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, route, http.StatusTooManyRequests, apiError{Error: "queue full, retry later"})
		return
	}

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.done:
			s.writeJSON(w, route, http.StatusOK, s.snapshot(job))
		case <-r.Context().Done():
			s.requests.With(route, "499").Inc()
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, route, http.StatusAccepted, s.snapshot(job))
}

// acquireTenant claims one sharded-job slot for the tenant, failing when
// the per-tenant inflight cap is reached.
func (s *Server) acquireTenant(tenant string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenantInflight == nil {
		s.tenantInflight = make(map[string]int)
	}
	if s.tenantInflight[tenant] >= s.cfg.TenantMaxInflight {
		return false
	}
	s.tenantInflight[tenant]++
	return true
}

func (s *Server) releaseTenant(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenantInflight[tenant] > 1 {
		s.tenantInflight[tenant]--
	} else {
		delete(s.tenantInflight, tenant)
	}
}

// executeSharded runs one sharded job: the coordinator partitions the
// input across the shard fleet, every shard runs a verified
// approx-refine job, and the cross-shard merge flows back through the
// full audit chain (range-pinned shard streams, merged-stream checker,
// cluster ledger reconciliation).
func (s *Server) executeSharded(job *Job) (*JobResult, error) {
	req := job.sharded

	co, err := cluster.New(cluster.Config{
		Nodes:        s.cfg.ShardNodes,
		PlacementKey: req.Tenant,
		Job: cluster.JobParams{
			Algorithm:     req.Algorithm,
			Bits:          req.Bits,
			Mode:          req.Mode,
			Backend:       req.Backend,
			T:             req.T,
			Seed:          req.Seed,
			RunSize:       req.RunSize,
			FanIn:         req.FanIn,
			Formation:     req.Formation,
			RefineAtMerge: req.RefineAtMerge,
		},
		MaxShards:  req.MaxShards,
		TempDir:    job.dir,
		WarmTables: req.WarmTables,
		NewAuditor: func(w io.Writer) cluster.StreamAuditor { return verify.NewStreamChecker(w) },
		WrapShard:  verify.WrapShards(),
	})
	if err != nil {
		return nil, err
	}

	var src io.Reader
	if req.Dataset != nil {
		src, err = dataset.StreamSpec{
			Kind: req.Dataset.Kind, N: req.Dataset.N, Seed: req.Dataset.Seed,
			K: req.Dataset.K, S: req.Dataset.S,
		}.Stream()
		if err != nil {
			return nil, err
		}
	} else {
		f, err := os.Open(filepath.Join(job.dir, "input.raw"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}

	out, err := os.Create(filepath.Join(job.dir, "output.raw"))
	if err != nil {
		return nil, err
	}
	qw := &quotaWriter{w: out, max: req.MaxDiskBytes}
	// The fan-out runs under a deadline, not under the request context:
	// graceful drain promises accepted jobs completion, but a hung shard
	// node must not pin the job, its tenant slot and a worker forever.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShardSortTimeout)
	defer cancel()
	stats, err := co.Sort(ctx, src, qw)
	if err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	// The coordinator already held the merged stream to the
	// StreamChecker and every shard range to its RangeReader; the ledger
	// reconciliation is the last gate before done.
	if err := verify.CheckClusterStats(stats).Err(); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(job.dir, "input.raw"))

	s.mu.Lock()
	job.OutputBytes = qw.n
	s.mu.Unlock()

	s.clusterShards.Add(uint64(len(stats.Shards)))
	s.clusterRecords.Add(uint64(stats.Records))

	mode := req.Mode
	if mode == "" || mode == ModeAuto {
		mode = ModePrecise
		if stats.Plan != nil && stats.Plan.Sharded != nil &&
			stats.Plan.Sharded.PerShard != nil && stats.Plan.Sharded.PerShard.UseHybrid {
			mode = ModeHybrid
		}
	}
	var writeNanos float64
	for _, sh := range stats.Shards {
		writeNanos += sh.WriteNanos
	}
	writeNanos += stats.MergeWriteNanos

	res := &JobResult{
		Algorithm:  req.Algorithm,
		Mode:       mode,
		N:          job.N,
		Backend:    req.Backend,
		Params:     req.point.Params,
		T:          req.T,
		Writes:     WriteCounts{Precise: int(stats.MergeWrites)},
		WriteNanos: writeNanos,
		Sorted:     true,
		Verified:   stats.Verified,
		Cluster:    &stats,
	}
	res.sanitize()
	return res, nil
}

// handleTablesGet serves the shared cache's calibrated MLC transition
// table for half-width t as a portable artifact, building (and caching)
// it on first request. The coordinator's table-warming relay fetches
// from one shard and installs everywhere else, so a cold fleet pays one
// calibration campaign.
func (s *Server) handleTablesGet(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/tables"
	q := r.URL.Query()
	ts := q.Get("t")
	if ts == "" {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "missing t"})
		return
	}
	t, err := strconv.ParseFloat(ts, 64)
	if err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad t: " + err.Error()})
		return
	}
	p := mlc.Approximate(t)
	if err := p.Validate(); err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	samples := 0
	if ss := q.Get("samples"); ss != "" {
		if samples, err = strconv.Atoi(ss); err != nil || samples < 0 {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad samples"})
			return
		}
	}
	seed := mlc.CalibrationSeed
	if ss := q.Get("seed"); ss != "" {
		if seed, err = strconv.ParseUint(ss, 10, 64); err != nil {
			s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad seed"})
			return
		}
	}
	tbl := mlc.SharedTables().Get(p, samples, seed)
	s.writeJSON(w, route, http.StatusOK, tbl.Artifact(samples, seed))
}

// handleTablesPost installs a relayed table artifact into the shared
// cache. Installing an artifact that is already resident is a no-op 200;
// a fresh install returns 201.
func (s *Server) handleTablesPost(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/tables"
	var a mlc.TableArtifact
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&a); err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: "bad artifact: " + err.Error()})
		return
	}
	installed, err := mlc.SharedTables().Install(a)
	if err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	code := http.StatusOK
	if installed {
		code = http.StatusCreated
	}
	s.writeJSON(w, route, code, map[string]bool{"installed": installed})
}
