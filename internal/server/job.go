package server

import (
	"fmt"
	"math"
	"time"

	"approxsort/internal/cluster"
	"approxsort/internal/dataset"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
)

// SortRequest is the body of POST /v1/sort. Exactly one of Keys or Dataset
// supplies the input.
type SortRequest struct {
	// Keys is the inline input array.
	Keys []uint32 `json:"keys,omitempty"`
	// Dataset generates the input server-side from a spec, so load tests
	// don't pay to ship megabytes of keys over the wire.
	Dataset *DatasetSpec `json:"dataset,omitempty"`

	// Algorithm selects the sort by its registry name (GET /v1/algorithms
	// lists them: quicksort, mergesort, lsd, msd, onesweep-lsd, …).
	// "auto" (the default) lets the planner pick per backend and input:
	// in-memory jobs run one Equation 4 pilot per registered candidate and
	// keep the cheapest; streaming jobs resolve to the paper's default
	// (6-bit MSD, the Figure 9 winner). Bits sets the radix digit width;
	// 0 takes the algorithm's registry default (6 for lsd/msd, 8 for
	// onesweep-lsd).
	Algorithm string `json:"algorithm,omitempty"`
	Bits      int    `json:"bits,omitempty"`

	// Mode picks the execution path: "hybrid" forces approx-refine,
	// "precise" forces the traditional sort, and "auto" (default) runs
	// core.Planner's pilot and routes per Equation 4. Note the planner
	// routes on write latency; backends that save energy at full latency
	// (spintronic) always route precise under auto, so energy-motivated
	// jobs on such backends should force "hybrid".
	Mode string `json:"mode,omitempty"`

	// Backend names the approximate-memory device model from the
	// memmodel registry (GET /v1/backends lists them). Empty selects
	// "pcm-mlc", the paper's main-body model.
	Backend string `json:"backend,omitempty"`
	// Params sets the backend's operating point (e.g. {"saving": 0.33,
	// "bit_error_prob": 1e-5} for spintronic). Absent parameters take
	// the backend's documented defaults.
	Params map[string]float64 `json:"params,omitempty"`

	// T is the pcm-mlc target half-width — legacy shorthand for
	// params.t. 0 defaults to 0.055, the paper's sweet spot (Figure 9).
	// Rejected for other backends.
	T float64 `json:"t,omitempty"`

	// Seed drives the run's noise and pivot streams. The planner pilot
	// and execution derive sub-streams from it via rng.Split.
	Seed uint64 `json:"seed,omitempty"`

	// ReturnKeys asks for the sorted key array in the response. Refused
	// above maxReturnKeys to keep job records small.
	ReturnKeys bool `json:"return_keys,omitempty"`

	// backend and point are the registry resolution of Backend/Params/T,
	// filled by normalize. Unexported: execution state, not API surface.
	backend memmodel.Backend
	point   memmodel.Point
}

// maxReturnKeys bounds the sorted payload a job is willing to echo back.
const maxReturnKeys = 1 << 20

// DatasetSpec names a generated workload from internal/dataset.
type DatasetSpec struct {
	// Kind: uniform|sorted|reverse|nearlysorted|fewdistinct|zipf.
	Kind string `json:"kind"`
	N    int    `json:"n"`
	// Seed for the generator; 0 is a valid seed.
	Seed uint64 `json:"seed,omitempty"`
	// K is the distinct-value count for fewdistinct/zipf.
	K int `json:"k,omitempty"`
	// S is the Zipf exponent.
	S float64 `json:"s,omitempty"`
	// Swaps is the transposition count for nearlysorted.
	Swaps int `json:"swaps,omitempty"`
}

// validKinds names every dataset generator the API accepts.
var validKinds = map[string]bool{
	"": true, "uniform": true, "sorted": true, "reverse": true,
	"nearlysorted": true, "fewdistinct": true, "zipf": true,
}

// validate rejects malformed specs at admission time, so a bad request
// fails with 400 instead of a failed job.
func (d *DatasetSpec) validate() error {
	if !validKinds[d.Kind] {
		return fmt.Errorf("unknown dataset kind %q", d.Kind)
	}
	if d.K < 0 || d.Swaps < 0 || d.S < 0 {
		return fmt.Errorf("dataset parameters must be non-negative")
	}
	return nil
}

// materialize generates the spec'd keys.
func (d *DatasetSpec) materialize() ([]uint32, error) {
	if d.N < 0 {
		return nil, fmt.Errorf("dataset n = %d is negative", d.N)
	}
	switch d.Kind {
	case "uniform", "":
		return dataset.Uniform(d.N, d.Seed), nil
	case "sorted":
		return dataset.Sorted(d.N), nil
	case "reverse":
		return dataset.Reverse(d.N), nil
	case "nearlysorted":
		return dataset.NearlySorted(d.N, d.Swaps, d.Seed), nil
	case "fewdistinct":
		k := d.K
		if k <= 0 {
			k = 16
		}
		return dataset.FewDistinct(d.N, k, d.Seed), nil
	case "zipf":
		k, s := d.K, d.S
		if k <= 0 {
			k = 1024
		}
		if s <= 0 {
			s = 1.2
		}
		return dataset.Zipf(d.N, k, s, d.Seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset kind %q", d.Kind)
	}
}

// normalize validates the request and applies defaults in place. maxN
// bounds the input size the server will accept.
func (r *SortRequest) normalize(maxN int) error {
	if (len(r.Keys) > 0) == (r.Dataset != nil) {
		return fmt.Errorf("provide exactly one of keys or dataset")
	}
	n := len(r.Keys)
	if r.Dataset != nil {
		if err := r.Dataset.validate(); err != nil {
			return err
		}
		n = r.Dataset.N
	}
	if n <= 0 {
		return fmt.Errorf("input must have at least one key")
	}
	if n > maxN {
		return fmt.Errorf("input size %d exceeds the server limit %d", n, maxN)
	}
	if r.ReturnKeys && n > maxReturnKeys {
		return fmt.Errorf("return_keys allowed only up to %d keys, got %d", maxReturnKeys, n)
	}
	switch r.Mode {
	case "":
		r.Mode = ModeAuto
	case ModeAuto, ModeHybrid, ModePrecise:
	default:
		return fmt.Errorf("unknown mode %q (want auto, hybrid or precise)", r.Mode)
	}
	if r.Algorithm == "" {
		r.Algorithm = "auto"
	}
	if r.Bits != 0 && (r.Bits < 1 || r.Bits > 16) {
		return fmt.Errorf("bits = %d out of range [1, 16]", r.Bits)
	}
	if _, err := r.algorithm(); err != nil {
		return err // *sorts.UnknownAlgorithmError → 400 with the roster
	}
	b, pt, t, err := resolveBackendPoint(r.Backend, r.Params, r.T)
	if err != nil {
		return err // *memmodel.UnknownBackendError → 400
	}
	r.Backend, r.backend, r.point, r.T = b.Name(), b, pt, t
	return nil
}

// resolveBackendPoint resolves a request's backend name, parameter map
// and legacy T shorthand against the memmodel registry, returning the
// normalized operating point and the resolved half-width to echo (0 for
// non-pcm-mlc backends). Shared by the in-memory and streaming request
// paths.
func resolveBackendPoint(name string, params map[string]float64, t float64) (memmodel.Backend, memmodel.Point, float64, error) {
	b, err := memmodel.Get(name)
	if err != nil {
		return nil, memmodel.Point{}, 0, err // *memmodel.UnknownBackendError → 400
	}
	pt := memmodel.Point{Backend: b.Name(), Params: params}
	if t != 0 {
		if b.Name() != memmodel.PCMMLC {
			return nil, memmodel.Point{}, 0, fmt.Errorf("t applies only to the %s backend; parameterize %s via params",
				memmodel.PCMMLC, b.Name())
		}
		if _, dup := pt.Param("t"); dup {
			return nil, memmodel.Point{}, 0, fmt.Errorf("provide the half-width as t or params.t, not both")
		}
		merged := map[string]float64{"t": t}
		for k, v := range pt.Params {
			merged[k] = v
		}
		pt.Params = merged
	}
	pt, err = b.Normalize(pt)
	if err != nil {
		return nil, memmodel.Point{}, 0, err
	}
	if b.Name() == memmodel.PCMMLC {
		t, _ = pt.Param("t") // echo the resolved half-width in the legacy column
	}
	return b, pt, t, nil
}

// autoAlgorithm reports whether the request delegates the algorithm
// choice to the auto planner.
func (r *SortRequest) autoAlgorithm() bool { return r.Algorithm == "auto" || r.Algorithm == "" }

// algorithm resolves the request's algorithm through the sorts registry.
// "auto" resolves to the paper's default (6-bit MSD, the Figure 9
// winner) — the fallback every pre-registry job ran; the in-memory
// executor overrides it with the auto planner's registry-driven choice.
// Unknown names return *sorts.UnknownAlgorithmError, whose message
// carries the registered roster.
func (r *SortRequest) algorithm() (sorts.Algorithm, error) {
	name := r.Algorithm
	if r.autoAlgorithm() {
		name = "msd"
	}
	return sorts.New(name, r.Bits)
}

// inputSize returns the job's n.
func (r *SortRequest) inputSize() int {
	if r.Dataset != nil {
		return r.Dataset.N
	}
	return len(r.Keys)
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Job kinds.
const (
	// KindSort is an in-memory POST /v1/sort job (the zero value, omitted
	// from JSON for compatibility).
	KindSort = ""
	// KindStream is an out-of-core POST /v1/sort/stream job.
	KindStream = "stream"
	// KindSharded is a multi-node POST /v1/sort/sharded job, fanned
	// across the configured shard fleet by the cluster coordinator.
	KindSharded = "sharded"
)

// Execution modes.
const (
	ModeAuto    = "auto"
	ModeHybrid  = "hybrid"
	ModePrecise = "precise"
)

// PlanView is the planner verdict echoed in a job result.
type PlanView struct {
	// Algorithm is the registry name the auto planner chose; empty when
	// the request fixed the algorithm and the planner only routed the mode.
	Algorithm     string  `json:"algorithm,omitempty"`
	UseHybrid     bool    `json:"use_hybrid"`
	PredictedWR   float64 `json:"predicted_wr"`
	P             float64 `json:"p"`
	PilotRemRatio float64 `json:"pilot_rem_ratio"`
	PredictedRem  int     `json:"predicted_rem"`
	PilotSize     int     `json:"pilot_size"`
}

// WriteCounts breaks a run's word writes down by memory kind.
type WriteCounts struct {
	Approx   int `json:"approx"`
	Precise  int `json:"precise"`
	Baseline int `json:"baseline,omitempty"`
}

// JobResult is the completed job's payload.
type JobResult struct {
	Algorithm string `json:"algorithm"`
	Mode      string `json:"mode"` // hybrid or precise (auto resolved)
	N         int    `json:"n"`
	// Backend and Params echo the resolved memory model and its
	// normalized operating point; T is the legacy pcm-mlc half-width
	// column (0 for other backends).
	Backend string             `json:"backend"`
	Params  map[string]float64 `json:"params,omitempty"`
	T       float64            `json:"t"`

	// Plan is present when the job consulted the planner (mode auto).
	Plan *PlanView `json:"plan,omitempty"`

	// Extsort is the external-sort section of a streaming job's result:
	// run formation, merge structure, disk ledger, and the (M, B, ω)
	// planner verdict.
	Extsort *ExtsortView `json:"extsort,omitempty"`

	// Cluster is the multi-node section of a sharded job's result: the
	// per-shard ledger, splitters, the (M, B, ω, S) plan, and the
	// cross-shard merge accounting.
	Cluster *cluster.Stats `json:"cluster,omitempty"`

	// Rem is the refine stage's heuristic remainder Rem~ (hybrid only).
	Rem int `json:"rem"`
	// Writes counts word writes by memory kind; Baseline is the
	// precise-only reference when one was run.
	Writes WriteCounts `json:"writes"`
	// PredictedWR is Equation 4's verdict (mode auto only; otherwise 0),
	// ActualWR the measured Equation 2 reduction versus the baseline.
	PredictedWR float64 `json:"predicted_wr"`
	ActualWR    float64 `json:"actual_wr"`
	// WriteNanos is the modelled total memory write latency (TMWL).
	WriteNanos float64 `json:"write_nanos"`
	// PCMNanos is the CPU-visible clock of the run's access stream
	// driven through the Table 1 cache hierarchy + banked PCM device.
	PCMNanos float64 `json:"pcm_nanos"`
	// Sorted confirms the output passed the precision check.
	Sorted bool `json:"sorted"`
	// Verified confirms the run passed the full internal/verify audit:
	// differential oracle, permutation and record-identity checks, and
	// (hybrid mode) the refine write-budget and stage-accounting
	// identities. A job that fails verification fails outright, so a
	// done job always reports true; the field makes the contract
	// visible in the API.
	Verified bool `json:"verified"`
	// Keys is the sorted output, when return_keys was set.
	Keys []uint32 `json:"keys,omitempty"`
}

// sanitize clamps non-finite floats so the result is always JSON-encodable
// (encoding/json rejects NaN and ±Inf).
func (r *JobResult) sanitize() {
	for _, f := range []*float64{&r.PredictedWR, &r.ActualWR, &r.WriteNanos, &r.PCMNanos} {
		if math.IsNaN(*f) {
			*f = 0
		} else if math.IsInf(*f, 1) {
			*f = math.MaxFloat64
		} else if math.IsInf(*f, -1) {
			*f = -math.MaxFloat64
		}
	}
	if r.Plan != nil {
		for _, f := range []*float64{&r.Plan.PredictedWR, &r.Plan.P, &r.Plan.PilotRemRatio} {
			if math.IsNaN(*f) {
				*f = 0
			} else if math.IsInf(*f, 1) {
				*f = math.MaxFloat64
			} else if math.IsInf(*f, -1) {
				*f = -math.MaxFloat64
			}
		}
	}
}

// Job is one unit of work flowing queue → worker → store.
type Job struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Kind distinguishes in-memory sorts from streaming jobs.
	Kind string `json:"kind,omitempty"`

	// Echoed request coordinates, for list/debug views.
	Algorithm string  `json:"algorithm"`
	Mode      string  `json:"mode"`
	Backend   string  `json:"backend"`
	N         int     `json:"n"`
	T         float64 `json:"t"`

	// Progress is a streaming job's live progress (nil otherwise),
	// refreshed by the worker mid-run.
	Progress *JobProgress `json:"progress,omitempty"`
	// OutputBytes is a finished streaming job's downloadable output size.
	OutputBytes int64 `json:"output_bytes,omitempty"`

	Result *JobResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`

	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`

	// done closes when the job reaches a terminal state; req (in-memory),
	// stream (streaming) or sharded (multi-node) carries the work; dir is
	// the job's on-disk state, records its input count, tenant its
	// sharded-quota identity. Unexported: none serialize.
	done    chan struct{}
	req     *SortRequest
	stream  *StreamRequest
	sharded *ShardedRequest
	tenant  string
	dir     string
	records int64
}
