package server

import (
	"net/http"

	"approxsort/internal/sorts"
)

// AlgorithmView is one entry of GET /v1/algorithms: a registered sort
// algorithm, its declared cost profile, and whether the mode=auto /
// algorithm=auto planner considers it — everything a client needs to
// pick a valid "algorithm" field for POST /v1/sort.
type AlgorithmView struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
	// Radix marks digit sorts, whose per-element write count is set by
	// the digit width (the request's "bits" field; 0 = DefaultBits).
	Radix       bool `json:"radix"`
	DefaultBits int  `json:"default_bits,omitempty"`
	// Auto marks algorithms the registry nominates as mode=auto
	// candidates.
	Auto   bool `json:"auto"`
	Passes int  `json:"passes,omitempty"`
	// WritesPerElement is α(n)/n at the reference n below — the cost the
	// planner compares across candidates (before the backend's hybrid
	// rescaling). Zero when the algorithm declares no analytic α.
	WritesPerElement float64 `json:"writes_per_element,omitempty"`
	// ExactWrites marks algorithms whose approximate-stage write count
	// is asserted to equal α(n) exactly on every served hybrid job.
	ExactWrites bool `json:"exact_writes"`
}

// AlgorithmsResponse is the body of GET /v1/algorithms.
type AlgorithmsResponse struct {
	// Default names the algorithm an explicit-mode request gets when it
	// names none ("auto" requests instead run the planner's selection).
	Default string `json:"default"`
	// ReferenceN is the element count at which writes_per_element is
	// evaluated (α is size-dependent for the comparison sorts).
	ReferenceN int             `json:"reference_n"`
	Algorithms []AlgorithmView `json:"algorithms"`
}

// referenceN pins the writes_per_element column to one comparable size.
const referenceN = 1 << 20

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/algorithms"
	resp := AlgorithmsResponse{Default: "msd", ReferenceN: referenceN}
	for _, in := range sorts.Infos() {
		view := AlgorithmView{
			Name:        in.Name,
			Doc:         in.Doc,
			Radix:       in.Radix,
			DefaultBits: in.DefaultBits,
			Auto:        in.Auto,
		}
		if alg, err := sorts.New(in.Name, 0); err == nil {
			if prof, ok := sorts.ProfileOf(alg); ok {
				view.Passes = prof.Passes
				view.ExactWrites = prof.ExactWrites
				view.WritesPerElement = prof.WritesPerElement(referenceN)
			}
		}
		resp.Algorithms = append(resp.Algorithms, view)
	}
	s.writeJSON(w, route, http.StatusOK, resp)
}
