// Package server is the serving subsystem behind the sortd daemon: an
// HTTP/JSON facade over the approx-refine machinery, turning the paper's
// Section 4.3 switch decision into a per-request routing choice.
//
// Request flow:
//
//	POST /v1/sort ─► bounded queue (parallel.Pool) ─► worker ─► executor
//	                   │ full → 429 + Retry-After        │
//	                   ▼                                 ▼
//	              /metrics registry ◄──── counters, latency histograms
//
// Each job materializes its input (inline keys or a dataset spec), runs
// the planner pilot when the mode is "auto", executes either the hybrid
// approx-refine pipeline or the precise-only sort, and records the
// planner verdict, write accounting, predicted vs. actual write
// reduction, and the simulated PCM clock. GET /v1/jobs/{id} serves the
// job record; GET /healthz reports readiness and flips to 503 while
// draining; GET /metrics renders Prometheus text, including the shared
// mlc.TableCache hit/miss counters that prove concurrent jobs at the same
// T reuse one calibrated transition table.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"approxsort/internal/mlc"
	"approxsort/internal/parallel"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the worker-pool size (0 = one per CPU).
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs
	// (default 64). A full queue rejects with 429.
	QueueDepth int
	// PilotSize overrides the planner sample size (0 = planner default).
	PilotSize int
	// MaxN bounds accepted input sizes (default 8M keys).
	MaxN int
	// RetainJobs caps how many finished job records are kept for
	// GET /v1/jobs (default 4096; oldest evicted first).
	RetainJobs int
	// MaxBodyBytes bounds a request body (default 64 MB, enough for a
	// maxReturnKeys inline array with JSON overhead).
	MaxBodyBytes int64
	// StreamDir is where streaming jobs keep their spooled input, run
	// spill, and downloadable output (default: the OS temp dir). Each job
	// gets its own subdirectory, removed when the job record is evicted.
	StreamDir string
	// MaxStreamBytes is the per-job disk quota for streaming jobs:
	// spooled input, live spill, and output are each held under it
	// (default 1 GiB). Requests may lower it per job, never raise it.
	MaxStreamBytes int64
	// ShardNodes are the shard sortd base URLs this instance coordinates
	// (cmd/sortd -shards). Empty disables POST /v1/sort/sharded.
	ShardNodes []string
	// TenantMaxInflight caps concurrent sharded sorts per tenant
	// (default 2); past it the endpoint rejects with 429 + Retry-After.
	TenantMaxInflight int
	// ShardSortTimeout bounds one sharded sort's whole fan-out — shard
	// submission, polling, output merge and table relay — with a
	// deadline-bearing context (default 10m). Without it a hung shard
	// node would pin the job, its tenant slot and a worker forever;
	// graceful drain still lets in-flight fan-outs run to completion,
	// they just cannot outlive this budget.
	ShardSortTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxN <= 0 {
		c.MaxN = 8 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.StreamDir == "" {
		c.StreamDir = os.TempDir()
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 1 << 30
	}
	if c.TenantMaxInflight <= 0 {
		c.TenantMaxInflight = 2
	}
	if c.ShardSortTimeout <= 0 {
		c.ShardSortTimeout = 10 * time.Minute
	}
	return c
}

// Server is the sortd serving core. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg  Config
	pool *parallel.Pool

	mu             sync.Mutex
	jobs           map[string]*Job
	order          []string // retained terminal jobs, oldest first
	seq            uint64
	tenantInflight map[string]int // sharded sorts inflight per tenant
	draining       atomic.Bool
	inflight       atomic.Int64

	metrics      *Registry
	requests     *CounterVec   // route, code
	jobsTotal    *CounterVec   // backend, algorithm, mode, status
	jobLatency   *HistogramVec // backend, algorithm, mode
	queueRejects *Counter

	// External-sort (streaming job) counters.
	extsortRecords     *Counter
	extsortRuns        *Counter
	extsortMergePasses *Counter
	extsortSpillBytes  *Counter

	// Cluster (sharded job) counters.
	clusterShards  *Counter
	clusterRecords *Counter
	tenantRejects  *Counter

	// testHookBeforeExec, when non-nil, runs on the worker goroutine
	// before a job executes — the lifecycle tests use it to hold jobs
	// in-flight deterministically.
	testHookBeforeExec func(*Job)
}

// New returns a ready server; its workers are running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    parallel.NewPool(cfg.Workers, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		metrics: NewRegistry(),
	}
	m := s.metrics
	s.requests = m.CounterVec("sortd_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	s.jobsTotal = m.CounterVec("sortd_jobs_total",
		"Completed jobs by memory backend, algorithm, resolved execution mode and status.",
		"backend", "algorithm", "mode", "status")
	s.jobLatency = m.HistogramVec("sortd_job_duration_seconds",
		"Job execution latency (dequeue to completion).",
		DefaultLatencyBuckets, "backend", "algorithm", "mode")
	s.queueRejects = m.Counter("sortd_queue_rejected_total",
		"Jobs rejected with 429 because the queue was full.")
	s.extsortRecords = m.Counter("sortd_extsort_records_total",
		"Records sorted by completed streaming (external-sort) jobs.")
	s.extsortRuns = m.Counter("sortd_extsort_runs_total",
		"Level-0 runs formed by completed streaming jobs.")
	s.extsortMergePasses = m.Counter("sortd_extsort_merge_passes_total",
		"Merge passes executed by completed streaming jobs.")
	s.extsortSpillBytes = m.Counter("sortd_extsort_spill_bytes_total",
		"Bytes spilled to disk by completed streaming jobs (runs + intermediate merges).")
	s.clusterShards = m.Counter("sortd_cluster_shards_total",
		"Shard jobs fanned out by completed sharded sorts.")
	s.clusterRecords = m.Counter("sortd_cluster_records_total",
		"Records sorted by completed sharded (multi-node) sorts.")
	s.tenantRejects = m.Counter("sortd_tenant_rejected_total",
		"Sharded sorts rejected with 429 by the per-tenant inflight cap.")
	m.GaugeFunc("sortd_queue_depth", "Accepted jobs not yet started.",
		func() float64 { return float64(s.pool.Queued()) })
	m.GaugeFunc("sortd_queue_capacity", "Bounded queue capacity.",
		func() float64 { return float64(s.pool.Cap()) })
	m.GaugeFunc("sortd_jobs_inflight", "Jobs currently executing.",
		func() float64 { return float64(s.inflight.Load()) })
	m.GaugeFunc("sortd_draining", "1 while the server refuses new jobs and drains.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	// The shared transition-table cache is process-wide on purpose: every
	// job at the same (T, samples) draws noise through one calibrated
	// table. Exporting its counters makes the sharing observable — two
	// concurrent jobs at one T must show one miss, not two.
	tables := mlc.SharedTables()
	m.CounterFunc("sortd_mlc_table_cache_hits_total",
		"Shared MLC transition-table cache hits.", tables.Hits)
	m.CounterFunc("sortd_mlc_table_cache_misses_total",
		"Shared MLC transition-table cache misses (tables built).", tables.Misses)
	m.GaugeFunc("sortd_mlc_table_cache_size",
		"Calibrated transition tables resident in the shared cache.",
		func() float64 { return float64(tables.Len()) })
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sort", s.handleSort)
	mux.HandleFunc("POST /v1/sort/stream", s.handleSortStream)
	mux.HandleFunc("POST /v1/sort/sharded", s.handleSortSharded)
	mux.HandleFunc("GET /v1/tables", s.handleTablesGet)
	mux.HandleFunc("POST /v1/tables", s.handleTablesPost)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleJobOutput)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown drains: new jobs are refused (healthz flips to 503), queued and
// in-flight jobs run to completion, then Shutdown returns. A cancelled ctx
// abandons the wait (workers keep finishing in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sortd: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics exposes the registry (for embedding hosts and tests).
func (s *Server) Metrics() *Registry { return s.metrics }

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, route string, code int, v any) {
	s.requests.With(route, fmt.Sprintf("%d", code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleSort(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/sort"
	if s.draining.Load() {
		s.writeJSON(w, route, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	var req SortRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeJSON(w, route, code, apiError{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.normalize(s.cfg.MaxN); err != nil {
		s.writeJSON(w, route, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	job := &Job{
		Status:     StatusQueued,
		Algorithm:  req.Algorithm,
		Mode:       req.Mode,
		Backend:    req.Backend,
		N:          req.inputSize(),
		T:          req.T,
		EnqueuedAt: time.Now().UTC(), //nolint:detrand // wall-clock by design: job timestamps are service metadata, not simulated results
		done:       make(chan struct{}),
		req:        &req,
	}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("job-%08d", s.seq)
	s.jobs[job.ID] = job
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(job) }) {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		s.queueRejects.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, route, http.StatusTooManyRequests,
			apiError{Error: "queue full, retry later"})
		return
	}

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.done:
			s.writeJSON(w, route, http.StatusOK, s.snapshot(job))
		case <-r.Context().Done():
			// Client gave up; the job keeps running and remains pollable.
			s.requests.With(route, "499").Inc()
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, route, http.StatusAccepted, s.snapshot(job))
}

// runJob executes one job on a pool worker.
func (s *Server) runJob(job *Job) {
	if hook := s.testHookBeforeExec; hook != nil {
		hook(job)
	}
	s.inflight.Add(1)
	start := time.Now() //nolint:detrand // wall-clock by design: job latency is a service metric, not a simulated result
	s.mu.Lock()
	job.Status = StatusRunning
	job.StartedAt = start.UTC()
	s.mu.Unlock()

	var res *JobResult
	var err error
	switch job.Kind {
	case KindStream:
		res, err = s.executeStream(job)
	case KindSharded:
		res, err = s.executeSharded(job)
	default:
		res, err = execute(job.req, s.cfg.PilotSize)
	}

	elapsed := time.Since(start) //nolint:detrand // wall-clock by design: feeds the latency histogram only
	s.mu.Lock()
	job.FinishedAt = time.Now().UTC() //nolint:detrand // wall-clock by design: job timestamps are service metadata
	mode := job.Mode
	if res != nil {
		mode = res.Mode
		job.Mode = res.Mode
		job.Result = res
	}
	if err != nil {
		job.Status = StatusFailed
		job.Error = err.Error()
	} else {
		job.Status = StatusDone
	}
	status := job.Status
	evicted := s.retainLocked(job)
	s.mu.Unlock()
	if err != nil && job.dir != "" {
		// A failed streaming job keeps its record but not its files.
		os.RemoveAll(job.dir)
	}
	for _, dir := range evicted {
		os.RemoveAll(dir)
	}

	s.inflight.Add(-1)
	if job.tenant != "" {
		s.releaseTenant(job.tenant)
	}
	s.jobsTotal.With(job.Backend, job.Algorithm, mode, status).Inc()
	s.jobLatency.With(job.Backend, job.Algorithm, mode).Observe(elapsed.Seconds())
	close(job.done)
}

// retainLocked appends a terminal job to the retention ring, evicting the
// oldest records past the cap. It returns the evicted jobs' stream
// directories for the caller to remove outside the lock — eviction is the
// moment a streaming job's output stops being downloadable, so its disk
// state dies with its record. Caller holds s.mu.
func (s *Server) retainLocked(job *Job) (evictedDirs []string) {
	s.order = append(s.order, job.ID)
	for len(s.order) > s.cfg.RetainJobs {
		if old, ok := s.jobs[s.order[0]]; ok && old.dir != "" {
			evictedDirs = append(evictedDirs, old.dir)
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	return evictedDirs
}

// snapshot copies a job's public state under the store lock, so handlers
// never marshal a record a worker is mutating.
func (s *Server) snapshot(job *Job) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/jobs"
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.writeJSON(w, route, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return
	}
	s.writeJSON(w, route, http.StatusOK, s.snapshot(job))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	const route = "/healthz"
	if s.draining.Load() {
		s.writeJSON(w, route, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, route, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/metrics", "200").Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Render(w)
}
