package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal, dependency-free metrics registry rendering the
// Prometheus text exposition format (version 0.0.4). Three instrument
// kinds cover the daemon's needs: monotonically increasing counters
// (optionally labelled), callback-backed gauges, and fixed-bucket latency
// histograms. All instruments are safe for concurrent use; the registry
// renders families in registration order and label sets in sorted order so
// /metrics output is stable for tests and diffing.

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative; counters never go down).
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a family of counters keyed by the values of a fixed label
// set. Unobserved label combinations are absent from the rendering.
type CounterVec struct {
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// declared label, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := labelString(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// Histogram is a cumulative-bucket latency histogram with fixed upper
// bounds (in seconds, like Prometheus convention).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	count  atomic.Uint64
	sumMu  sync.Mutex
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0..1) from
// the bucket counts: the smallest bucket bound whose cumulative count
// covers q. Returns +Inf when the quantile lands in the overflow bucket
// and 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// HistogramVec is a family of histograms sharing bucket bounds.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := labelString(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// DefaultLatencyBuckets spans 100 µs to ~100 s, wide enough for both a
// five-key toy job and a multi-million-key radix run through the MLC
// simulator.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// family is one registered metric family.
type family struct {
	name, help, kind string
	render           func(w io.Writer, name string)
}

// Registry holds metric families and renders them in registration order.
type Registry struct {
	mu       sync.Mutex
	families []family
	seen     map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

func (r *Registry) register(name, help, kind string, render func(io.Writer, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic(fmt.Sprintf("metrics: duplicate family %q", name))
	}
	r.seen[name] = true
	r.families = append(r.families, family{name: name, help: help, kind: kind, render: render})
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		for _, key := range sortedKeys(v) {
			v.mu.Lock()
			c := v.children[key]
			v.mu.Unlock()
			fmt.Fprintf(w, "%s{%s} %d\n", n, key, c.Value())
		}
	})
	return v
}

// GaugeFunc registers a gauge whose value is read from fn at render time —
// the natural shape for queue depth, in-flight counts, and cache sizes
// that already live elsewhere.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	})
}

// CounterFunc registers a counter whose value is read from fn at render
// time, for monotone values maintained by another package (e.g. the
// mlc.TableCache hit/miss counters).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// HistogramVec registers and returns a labelled histogram family with the
// given bucket upper bounds (seconds).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{labels: labels, bounds: bounds, children: make(map[string]*Histogram)}
	r.register(name, help, "histogram", func(w io.Writer, n string) {
		for _, key := range sortedKeys2(v) {
			v.mu.Lock()
			h := v.children[key]
			v.mu.Unlock()
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", n, key, formatFloat(b), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", n, key, cum)
			h.sumMu.Lock()
			sum := h.sum
			h.sumMu.Unlock()
			fmt.Fprintf(w, "%s_sum{%s} %s\n", n, key, formatFloat(sum))
			fmt.Fprintf(w, "%s_count{%s} %d\n", n, key, h.Count())
		}
	})
	return v
}

// Render writes the whole registry in the Prometheus text format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	fams := make([]family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.render(w, f.name)
	}
}

func labelString(labels, values []string) string {
	parts := make([]string, len(labels))
	for i := range labels {
		parts[i] = fmt.Sprintf("%s=%q", labels[i], values[i])
	}
	return strings.Join(parts, ",")
}

func sortedKeys(v *CounterVec) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys2(v *HistogramVec) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatFloat renders floats the way Prometheus clients do: integral
// values without a decimal point, everything else in shortest form.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
