package mem_test

// Zero-allocation pins for the per-access primitives: one accounted
// access must never touch the heap. These are the operations the sort
// inner loops issue per element, so even a single allocation here is a
// hot-path regression (see DESIGN.md §13).

import (
	"testing"

	"approxsort/internal/mem"
)

func TestAccessPrimitivesAllocFree(t *testing.T) {
	approx := mem.NewApproxSpaceAt(0.055, 3)
	precise := mem.NewPreciseSpace()
	buf := make([]uint32, 256)
	cases := []struct {
		name string
		w    mem.Words
	}{
		{"approx", approx.Alloc(1024)},
		{"precise", precise.Alloc(1024)},
	}
	for _, tc := range cases {
		i := 0
		for name, f := range map[string]func(){
			"Set":      func() { tc.w.Set(i&1023, uint32(i)); i++ },
			"Get":      func() { _ = tc.w.Get(i & 1023); i++ },
			"SetSlice": func() { mem.SetSlice(tc.w, 0, buf) },
			"GetSlice": func() { mem.GetSlice(tc.w, 0, buf) },
		} {
			if got := testing.AllocsPerRun(50, f); got != 0 {
				t.Errorf("%s %s: %v allocs per op, want 0", tc.name, name, got)
			}
		}
	}
}
