package mem

import (
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// Latency constants re-exported from the cell model for local use.
const (
	readNanos         = mlc.ReadNanos
	preciseWriteNanos = mlc.PreciseWriteNanos
)

// ApproxSpace is the approximate-PCM region of the hybrid system. Every
// word write runs through an mlc.WordModel, which may corrupt the stored
// value and reports the P&V pulse count that determines write latency and
// energy.
type ApproxSpace struct {
	model mlc.WordModel
	r     *rng.Source
	stats Stats
	addrs AddressAllocator
	sink  Sink
}

// NewApproxSpace returns an approximate space backed by model, drawing
// randomness from a fresh stream seeded with seed.
func NewApproxSpace(model mlc.WordModel, seed uint64) *ApproxSpace {
	return &ApproxSpace{model: model, r: rng.New(seed)}
}

// NewApproxSpaceAt is a convenience constructor: a table-driven MLC model
// at target half-width T with default calibration sampling. The model
// comes from the shared mlc table cache under the fixed calibration seed,
// so every space at the same T reuses one calibrated table; seed drives
// only this space's noise stream.
func NewApproxSpaceAt(t float64, seed uint64) *ApproxSpace {
	return NewApproxSpace(mlc.CachedTable(mlc.Approximate(t), 0, mlc.CalibrationSeed), seed)
}

// SetSink attaches a trace sink receiving every access in this space.
func (s *ApproxSpace) SetSink(sink Sink) { s.sink = sink }

// Model returns the word model behind the space.
func (s *ApproxSpace) Model() mlc.WordModel { return s.model }

// Alloc implements Space.
func (s *ApproxSpace) Alloc(n int) Words {
	return &approxWords{
		space: s,
		base:  s.addrs.Take(n),
		data:  make([]uint32, n),
	}
}

// Stats implements Space.
func (s *ApproxSpace) Stats() Stats { return s.stats }

// ResetStats clears the aggregate counters.
func (s *ApproxSpace) ResetStats() { s.stats = Stats{} }

// Approximate implements Space.
func (s *ApproxSpace) Approximate() bool { return true }

type approxWords struct {
	space *ApproxSpace
	base  uint64
	data  []uint32
	stats Stats
}

func (w *approxWords) Len() int { return len(w.data) }

func (w *approxWords) Get(i int) uint32 {
	w.stats.Reads++
	w.stats.ReadNanos += readNanos
	w.space.stats.Reads++
	w.space.stats.ReadNanos += readNanos
	if w.space.sink != nil {
		w.space.sink.Access(OpRead, w.base+uint64(i)*4, 4)
	}
	return w.data[i]
}

func (w *approxWords) Set(i int, v uint32) {
	stored, iters := w.space.model.WriteWord(w.space.r, v)
	nanos := mlc.WordLatencyNanos(iters, w.space.model.CellsPerWord())
	energy := nanos / mlc.PreciseWriteNanos

	w.stats.Writes++
	w.stats.WriteNanos += nanos
	w.stats.WriteEnergy += energy
	w.stats.Iters += iters
	w.space.stats.Writes++
	w.space.stats.WriteNanos += nanos
	w.space.stats.WriteEnergy += energy
	w.space.stats.Iters += iters
	if stored != v {
		w.stats.Corrupted++
		w.space.stats.Corrupted++
	}
	if w.space.sink != nil {
		w.space.sink.Access(OpWrite, w.base+uint64(i)*4, 4)
	}
	w.data[i] = stored
}

func (w *approxWords) Stats() Stats { return w.stats }

// Peek implements Peeker.
func (w *approxWords) Peek(i int) uint32 { return w.data[i] }
