package mem

import (
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// Latency constants re-exported from the cell model for local use.
const (
	readNanos         = mlc.ReadNanos
	preciseWriteNanos = mlc.PreciseWriteNanos
)

// ApproxSpace is the approximate-PCM region of the hybrid system. Every
// word write runs through an mlc.WordModel, which may corrupt the stored
// value and reports the P&V pulse count that determines write latency and
// energy.
//
// Accounting is batched: the hot path mutates only the owning array's Raw
// integer counters, and Stats derives the latency/energy aggregate across
// every array the space has allocated via the space's Fold. Each write is
// counted by exactly one array, so the aggregate charges it exactly once
// no matter how often Stats or ResetStats run.
type ApproxSpace struct {
	model mlc.WordModel
	// table devirtualizes the common case: when the model is the
	// calibrated *mlc.Table, the hot path calls it directly instead of
	// through the WordModel interface.
	table *mlc.Table
	r     *rng.Source
	fold  Fold
	addrs AddressAllocator
	sink  Sink
	// words is the registry of every array allocated from this space:
	// the Stats aggregate folds over it, and SetSink patches each
	// array's cached sink so tracing can attach after allocation.
	words []*approxWords
	// base snapshots the registry's raw totals at the last ResetStats.
	base Raw
}

// NewApproxSpace returns an approximate space backed by model, drawing
// randomness from a fresh stream seeded with seed.
func NewApproxSpace(model mlc.WordModel, seed uint64) *ApproxSpace {
	table, _ := model.(*mlc.Table)
	return &ApproxSpace{
		model: model,
		table: table,
		r:     rng.New(seed),
		fold:  Fold{ReadNanos: readNanos, PulseCells: model.CellsPerWord()},
	}
}

// NewApproxSpaceAt is a convenience constructor: a table-driven MLC model
// at target half-width T with default calibration sampling. The model
// comes from the shared mlc table cache under the fixed calibration seed,
// so every space at the same T reuses one calibrated table; seed drives
// only this space's noise stream.
func NewApproxSpaceAt(t float64, seed uint64) *ApproxSpace {
	return NewApproxSpace(mlc.CachedTable(mlc.Approximate(t), 0, mlc.CalibrationSeed), seed)
}

// SetSink attaches a trace sink receiving every access in this space,
// including accesses to arrays allocated before the attach (their cached
// sink binding is patched through the registry). Pass nil to detach.
func (s *ApproxSpace) SetSink(sink Sink) {
	s.sink = sink
	for _, w := range s.words {
		w.sink = sink
	}
}

// Model returns the word model behind the space.
func (s *ApproxSpace) Model() mlc.WordModel { return s.model }

// Fold returns the space's cost recipe.
func (s *ApproxSpace) Fold() Fold { return s.fold }

// Alloc implements Space. The returned array's sink binding is chosen
// here (and re-chosen by SetSink), so the access hot path tests one
// array-local field instead of chasing the space pointer.
func (s *ApproxSpace) Alloc(n int) Words {
	w := &approxWords{
		space: s,
		sink:  s.sink,
		base:  s.addrs.Take(n),
		data:  make([]uint32, n),
	}
	s.words = append(s.words, w)
	return w
}

// rawTotal sums the raw counters across the array registry.
func (s *ApproxSpace) rawTotal() Raw {
	var total Raw
	for _, w := range s.words {
		total.Add(w.raw)
	}
	return total
}

// Stats implements Space: the aggregate across every array the space
// ever allocated, derived once from raw counts by the space's Fold.
func (s *ApproxSpace) Stats() Stats { return s.fold.Stats(s.rawTotal().Sub(s.base)) }

// ResetStats zeroes the aggregate by snapshotting the current raw totals
// as the new baseline. Arrays allocated before the reset stay usable and
// their later accesses fold into the post-reset aggregate exactly once:
// each access mutates a single raw counter on its array, and the baseline
// subtraction removes precisely the accesses made before the reset.
func (s *ApproxSpace) ResetStats() { s.base = s.rawTotal() }

// Approximate implements Space.
func (s *ApproxSpace) Approximate() bool { return true }

type approxWords struct {
	space *ApproxSpace
	// sink caches the space's sink (nil when untraced) so the hot path
	// branches on one local field; SetSink keeps it current.
	sink Sink
	base uint64
	data []uint32
	raw  Raw
}

func (w *approxWords) Len() int { return len(w.data) }

//memlint:hotpath
func (w *approxWords) Get(i int) uint32 {
	w.raw.Reads++
	if w.sink != nil {
		w.sink.Access(OpRead, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	return w.data[i]
}

//memlint:hotpath
func (w *approxWords) Set(i int, v uint32) {
	s := w.space
	var stored uint32
	var iters int
	if s.table != nil {
		stored, iters = s.table.WriteWord(s.r, v)
	} else {
		stored, iters = s.model.WriteWord(s.r, v) //nolint:hotpath // foreign word models only; *mlc.Table is devirtualized above
	}
	w.raw.Writes++
	w.raw.Iters += iters
	if stored != v {
		w.raw.Corrupted++
	}
	if w.sink != nil {
		w.sink.Access(OpWrite, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	w.data[i] = stored
}

// GetSlice implements BulkWords. Reads never draw model randomness, so
// the bulk path is a copy plus one counter bump; traced arrays fall back
// to per-element Gets to emit the identical event stream.
func (w *approxWords) GetSlice(i int, dst []uint32) {
	if w.sink != nil {
		for j := range dst {
			dst[j] = w.Get(i + j)
		}
		return
	}
	w.raw.Reads += len(dst)
	copy(dst, w.data[i:i+len(dst)])
}

// SetSlice implements BulkWords: the batch runs through the model in
// index order, consuming the noise stream exactly as len(src) Set calls
// would, with accounting amortized over the batch.
func (w *approxWords) SetSlice(i int, src []uint32) {
	s := w.space
	if w.sink != nil || s.table == nil {
		for j, v := range src {
			w.Set(i+j, v)
		}
		return
	}
	dst := w.data[i : i+len(src)]
	w.raw.Iters += s.table.WriteWords(s.r, dst, src)
	w.raw.Writes += len(src)
	corrupted := 0
	for j, v := range src {
		if dst[j] != v {
			corrupted++
		}
	}
	w.raw.Corrupted += corrupted
}

// Reorderable implements BulkWords: MLC reads are noiseless, so an
// untraced array's accesses commute with other arrays'.
func (w *approxWords) Reorderable() bool { return w.sink == nil }

// Stats returns the accesses charged to this array, folded under the
// space's cost recipe.
func (w *approxWords) Stats() Stats { return w.space.fold.Stats(w.raw) }

// Peek implements Peeker.
func (w *approxWords) Peek(i int) uint32 { return w.data[i] }
