// Package mem provides the instrumented memory arrays every sorting
// algorithm in this repository runs against: precise PCM arrays and
// approximate (MLC-model-backed) arrays, with per-array and per-space
// accounting of access counts, latencies and write energy.
//
// The hybrid system of the paper (Figure 3) is modelled as two Spaces —
// one precise, one approximate — from which algorithms allocate Words
// arrays. Every Get/Set is charged to the owning space, optionally mirrored
// to a trace Sink so the cache + PCM bank simulator can replay it.
package mem

import (
	"fmt"

	"approxsort/internal/mlc"
)

// Op distinguishes the two access types reported to a Sink.
type Op uint8

// Access operation kinds.
const (
	OpRead Op = iota
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Sink receives every memory access performed through an instrumented
// array. Implementations include the trace writer and the cache + PCM
// pipeline. Addr is a byte address in the simulated physical address space
// and size is the access width in bytes.
type Sink interface {
	Access(op Op, addr uint64, size int)
}

// Raw is the integer access accounting mutated on the hot path. The
// instrumented arrays touch only these counters per access; latency and
// energy floats are derived from them at stage boundaries by the owning
// space's Fold (see DESIGN.md §13), so a Get costs one increment and a
// Set two or three instead of ~10 field updates.
type Raw struct {
	// Reads and Writes count word accesses.
	Reads, Writes int
	// Iters is the total number of P&V pulses issued (pulse-count-model
	// arrays only; zero otherwise).
	Iters int
	// Corrupted counts word writes whose stored value differs from the
	// written value.
	Corrupted int
}

// Add accumulates other into r.
func (r *Raw) Add(other Raw) {
	r.Reads += other.Reads
	r.Writes += other.Writes
	r.Iters += other.Iters
	r.Corrupted += other.Corrupted
}

// Sub returns the component-wise difference r − other.
func (r Raw) Sub(other Raw) Raw {
	return Raw{
		Reads:     r.Reads - other.Reads,
		Writes:    r.Writes - other.Writes,
		Iters:     r.Iters - other.Iters,
		Corrupted: r.Corrupted - other.Corrupted,
	}
}

// Fold is a space's cost recipe: it derives latency/energy Stats from
// raw integer access counts. Counts and read latency are exact (integer
// multiples of the device read latency are exactly representable at any
// realistic count); write latency/energy derived once from the batch
// differ from a per-access running float sum only by the summation
// rounding the running sum itself accrued — within 1e-12 relative, see
// TestShadowAccounting — and satisfy the verify-subsystem identities by
// construction.
type Fold struct {
	// ReadNanos is the device read latency charged per word read.
	ReadNanos float64
	// PulseCells, when nonzero, selects pulse-count costing (the MLC
	// P&V model): WriteNanos = mlc.WordLatencyNanos(Iters, PulseCells),
	// and energy tracks latency (WriteEnergy = WriteNanos /
	// mlc.PreciseWriteNanos), exactly as charging each write its own
	// WordLatencyNanos would, since the formula is linear in Iters.
	PulseCells int
	// WriteNanos and EnergyPerWrite are the fixed per-write costs used
	// when PulseCells == 0 (precise PCM, spintronic).
	WriteNanos     float64
	EnergyPerWrite float64
}

// Stats derives the full accounting for raw under the fold's recipe.
func (f Fold) Stats(raw Raw) Stats {
	st := Stats{
		Reads:     raw.Reads,
		Writes:    raw.Writes,
		Iters:     raw.Iters,
		Corrupted: raw.Corrupted,
		ReadNanos: float64(raw.Reads) * f.ReadNanos,
	}
	if f.PulseCells > 0 {
		st.WriteNanos = mlc.WordLatencyNanos(raw.Iters, f.PulseCells)
		st.WriteEnergy = st.WriteNanos / mlc.PreciseWriteNanos
	} else {
		st.WriteNanos = float64(raw.Writes) * f.WriteNanos
		st.WriteEnergy = float64(raw.Writes) * f.EnergyPerWrite
	}
	return st
}

// Stats accumulates the access accounting for an array or a space.
type Stats struct {
	// Reads and Writes count word accesses.
	Reads, Writes int
	// ReadNanos and WriteNanos accumulate device latency. WriteNanos is
	// the paper's "total memory write latency" (TMWL) contribution.
	ReadNanos, WriteNanos float64
	// WriteEnergy accumulates write energy in units of one precise
	// write. For the MLC model energy tracks latency (both are
	// proportional to pulse count); the spintronic model charges its
	// own per-write saving.
	WriteEnergy float64
	// Iters is the total number of P&V pulses issued (approximate MLC
	// arrays only; zero for precise arrays).
	Iters int
	// Corrupted counts word writes whose stored value differs from the
	// written value.
	Corrupted int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadNanos += other.ReadNanos
	s.WriteNanos += other.WriteNanos
	s.WriteEnergy += other.WriteEnergy
	s.Iters += other.Iters
	s.Corrupted += other.Corrupted
}

// Sub returns the component-wise difference s − other, used to extract
// per-stage deltas from space-level aggregates.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Reads:       s.Reads - other.Reads,
		Writes:      s.Writes - other.Writes,
		ReadNanos:   s.ReadNanos - other.ReadNanos,
		WriteNanos:  s.WriteNanos - other.WriteNanos,
		WriteEnergy: s.WriteEnergy - other.WriteEnergy,
		Iters:       s.Iters - other.Iters,
		Corrupted:   s.Corrupted - other.Corrupted,
	}
}

// AccessNanos returns the total device time spent in reads and writes.
func (s Stats) AccessNanos() float64 { return s.ReadNanos + s.WriteNanos }

// EquivalentPreciseWrites expresses the accumulated write latency in units
// of one precise write (the quantity the cost model of Section 4.3 calls
// "total equivalent number of precise memory writes", TEPMW).
func (s Stats) EquivalentPreciseWrites() float64 {
	return s.WriteNanos / mlc.PreciseWriteNanos
}

// String implements fmt.Stringer with a compact summary.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d readNs=%.0f writeNs=%.0f energy=%.1f corrupted=%d",
		s.Reads, s.Writes, s.ReadNanos, s.WriteNanos, s.WriteEnergy, s.Corrupted)
}

// Words is a fixed-length array of 32-bit words with instrumented access.
// Implementations are not safe for concurrent use.
type Words interface {
	// Len returns the number of words.
	Len() int
	// Get reads word i.
	Get(i int) uint32
	// Set writes word i.
	Set(i int, v uint32)
	// Stats returns the accesses charged to this array so far.
	Stats() Stats
}

// Space is a memory region (precise or approximate) from which instrumented
// arrays are allocated. Stats aggregate across every array the space ever
// allocated, which is what the paper's per-stage accounting needs (bucket
// queues come and go during radix sort but their writes still count).
type Space interface {
	// Alloc returns a zeroed array of n words charged to this space.
	Alloc(n int) Words
	// Stats returns the aggregate access statistics of the space.
	Stats() Stats
	// Approximate reports whether writes to this space may corrupt data.
	Approximate() bool
}

// pageBytes is the allocation granularity (Table 1: 4 KB pages).
const pageBytes = 4096

// AddressAllocator hands out page-aligned base addresses for arrays so
// traced accesses land in non-overlapping regions. It is exported so
// sibling space implementations (internal/spintronic, future memmodel
// backends) share the same physical-address layout as the PCM spaces
// here. The zero value is ready to use.
type AddressAllocator struct {
	next uint64
}

// Take reserves `words` 32-bit words and returns their page-aligned base
// byte address. Even a zero-length array consumes one page, so distinct
// arrays never alias.
func (a *AddressAllocator) Take(words int) uint64 {
	base := a.next
	bytes := uint64(words) * 4
	pages := (bytes + pageBytes - 1) / pageBytes
	if pages == 0 {
		pages = 1
	}
	a.next += pages * pageBytes
	return base
}

// BulkWords is optionally implemented by Words that support slice-at-once
// access. A bulk call charges exactly the accesses the equivalent
// per-element Get/Set loop would — same counts, same model randomness in
// the same order, same trace events when a sink is attached — while
// amortizing interface dispatch and accounting over the batch.
type BulkWords interface {
	// GetSlice reads words [i, i+len(dst)) into dst.
	GetSlice(i int, dst []uint32)
	// SetSlice writes src into words [i, i+len(src)).
	SetSlice(i int, src []uint32)
	// Reorderable reports whether this array's accesses may be reordered
	// relative to *other* arrays' accesses without observable effect: no
	// trace sink is attached, and reads do not consume the space's noise
	// stream. Within one bulk call the per-element order is always
	// preserved, so single-array bulk access needs no such check.
	Reorderable() bool
}

// GetSlice reads w[i : i+len(dst)] into dst, via BulkWords when available
// and a per-element adapter loop for foreign implementations.
func GetSlice(w Words, i int, dst []uint32) {
	if b, ok := w.(BulkWords); ok {
		b.GetSlice(i, dst)
		return
	}
	for j := range dst {
		dst[j] = w.Get(i + j)
	}
}

// SetSlice writes src into w[i : i+len(src)], via BulkWords when
// available and a per-element adapter loop otherwise.
func SetSlice(w Words, i int, src []uint32) {
	if b, ok := w.(BulkWords); ok {
		b.SetSlice(i, src)
		return
	}
	for j, v := range src {
		w.Set(i+j, v)
	}
}

// Reorderable reports whether w's accesses may be reordered relative to
// other arrays' accesses (see BulkWords.Reorderable). Foreign Words
// implementations are conservatively order-sensitive.
func Reorderable(w Words) bool {
	b, ok := w.(BulkWords)
	return ok && b.Reorderable()
}

// copyChunkWords is the scratch-buffer size of a bulk Copy: 4 KB of
// uint32s, one simulated page, small enough to stay on the stack.
const copyChunkWords = 1024

// Copy copies src into dst, charging one read per source word and one write
// per destination word. It panics if lengths differ, mirroring the built-in
// copy contract for full-array copies used by the approx-preparation stage.
// When both arrays support reorderable bulk access the copy runs in chunks
// (read a chunk, write a chunk) — identical counts and write-noise stream,
// since writes still land in index order; when either array is traced or
// order-sensitive it falls back to the read/write-interleaved per-element
// loop so the access stream is byte-identical to the historical one.
func Copy(dst, src Words) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("mem: Copy length mismatch %d != %d", dst.Len(), src.Len()))
	}
	n := src.Len()
	bs, okS := src.(BulkWords)
	bd, okD := dst.(BulkWords)
	if okS && okD && bs.Reorderable() && bd.Reorderable() {
		var buf [copyChunkWords]uint32
		for i := 0; i < n; i += copyChunkWords {
			m := n - i
			if m > copyChunkWords {
				m = copyChunkWords
			}
			bs.GetSlice(i, buf[:m])
			bd.SetSlice(i, buf[:m])
		}
		return
	}
	for i := 0; i < n; i++ {
		dst.Set(i, src.Get(i))
	}
}

// Peeker is implemented by arrays that allow uncharged inspection of their
// stored contents. Metrics code (Rem ratios, error rates) uses Peek so that
// measuring an experiment does not perturb its accounting.
type Peeker interface {
	// Peek returns word i without charging latency, stats or traces.
	Peek(i int) uint32
}

// PeekAll returns the current contents of w without charging accesses when
// w supports Peeker, falling back to charged reads otherwise.
func PeekAll(w Words) []uint32 {
	out := make([]uint32, w.Len())
	if p, ok := w.(Peeker); ok {
		for i := range out {
			out[i] = p.Peek(i)
		}
		return out
	}
	for i := range out {
		out[i] = w.Get(i)
	}
	return out
}

// ReadAll returns the current contents of w as a plain slice, charging
// reads for every word. Single-array bulk access preserves per-element
// order, so this is safe even for traced arrays.
func ReadAll(w Words) []uint32 {
	out := make([]uint32, w.Len())
	GetSlice(w, 0, out)
	return out
}

// Load writes the contents of src into w, charging writes.
func Load(w Words, src []uint32) {
	if w.Len() != len(src) {
		panic(fmt.Sprintf("mem: Load length mismatch %d != %d", w.Len(), len(src)))
	}
	SetSlice(w, 0, src)
}
