package mem

// PreciseSpace is the precise-PCM region of the hybrid system. Writes never
// corrupt; each write costs mlc.PreciseWriteNanos and one energy unit, each
// read costs mlc.ReadNanos. Accounting follows the same batched Raw/Fold
// scheme as ApproxSpace: the hot path mutates integer counters on the
// owning array, and Stats folds the registry once per call.
type PreciseSpace struct {
	fold  Fold
	addrs AddressAllocator
	sink  Sink
	words []*preciseWords
	base  Raw
}

// NewPreciseSpace returns an empty precise space.
func NewPreciseSpace() *PreciseSpace {
	return &PreciseSpace{
		fold: Fold{ReadNanos: readNanos, WriteNanos: preciseWriteNanos, EnergyPerWrite: 1},
	}
}

// SetSink attaches a trace sink receiving every access in this space,
// including accesses to arrays allocated before the attach. Pass nil to
// detach.
func (s *PreciseSpace) SetSink(sink Sink) {
	s.sink = sink
	for _, w := range s.words {
		w.sink = sink
	}
}

// Alloc implements Space.
func (s *PreciseSpace) Alloc(n int) Words {
	w := &preciseWords{
		space: s,
		sink:  s.sink,
		base:  s.addrs.Take(n),
		data:  make([]uint32, n),
	}
	s.words = append(s.words, w)
	return w
}

func (s *PreciseSpace) rawTotal() Raw {
	var total Raw
	for _, w := range s.words {
		total.Add(w.raw)
	}
	return total
}

// Stats implements Space.
func (s *PreciseSpace) Stats() Stats { return s.fold.Stats(s.rawTotal().Sub(s.base)) }

// ResetStats zeroes the aggregate by snapshotting the current raw totals
// as the new baseline (arrays remain usable; their subsequent accesses
// fold into the post-reset aggregate exactly once). Used between
// experiment stages.
func (s *PreciseSpace) ResetStats() { s.base = s.rawTotal() }

// Approximate implements Space.
func (s *PreciseSpace) Approximate() bool { return false }

type preciseWords struct {
	space *PreciseSpace
	sink  Sink
	base  uint64
	data  []uint32
	raw   Raw
}

func (w *preciseWords) Len() int { return len(w.data) }

//memlint:hotpath
func (w *preciseWords) Get(i int) uint32 {
	w.raw.Reads++
	if w.sink != nil {
		w.sink.Access(OpRead, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	return w.data[i]
}

//memlint:hotpath
func (w *preciseWords) Set(i int, v uint32) {
	w.raw.Writes++
	if w.sink != nil {
		w.sink.Access(OpWrite, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	w.data[i] = v
}

// GetSlice implements BulkWords.
func (w *preciseWords) GetSlice(i int, dst []uint32) {
	if w.sink != nil {
		for j := range dst {
			dst[j] = w.Get(i + j)
		}
		return
	}
	w.raw.Reads += len(dst)
	copy(dst, w.data[i:i+len(dst)])
}

// SetSlice implements BulkWords.
func (w *preciseWords) SetSlice(i int, src []uint32) {
	if w.sink != nil {
		for j, v := range src {
			w.Set(i+j, v)
		}
		return
	}
	w.raw.Writes += len(src)
	copy(w.data[i:i+len(src)], src)
}

// Reorderable implements BulkWords: precise accesses are deterministic,
// so an untraced array's accesses commute with other arrays'.
func (w *preciseWords) Reorderable() bool { return w.sink == nil }

// Stats returns the accesses charged to this array, folded under the
// space's cost recipe.
func (w *preciseWords) Stats() Stats { return w.space.fold.Stats(w.raw) }

// Peek implements Peeker.
func (w *preciseWords) Peek(i int) uint32 { return w.data[i] }
