package mem

// PreciseSpace is the precise-PCM region of the hybrid system. Writes never
// corrupt; each write costs mlc.PreciseWriteNanos and one energy unit, each
// read costs mlc.ReadNanos.
type PreciseSpace struct {
	stats Stats
	addrs AddressAllocator
	sink  Sink
}

// NewPreciseSpace returns an empty precise space.
func NewPreciseSpace() *PreciseSpace { return &PreciseSpace{} }

// SetSink attaches a trace sink receiving every access in this space.
// Pass nil to detach.
func (s *PreciseSpace) SetSink(sink Sink) { s.sink = sink }

// Alloc implements Space.
func (s *PreciseSpace) Alloc(n int) Words {
	return &preciseWords{
		space: s,
		base:  s.addrs.Take(n),
		data:  make([]uint32, n),
	}
}

// Stats implements Space.
func (s *PreciseSpace) Stats() Stats { return s.stats }

// ResetStats clears the aggregate counters (arrays remain usable; their
// subsequent accesses start fresh accounting). Used between experiment
// stages.
func (s *PreciseSpace) ResetStats() { s.stats = Stats{} }

// Approximate implements Space.
func (s *PreciseSpace) Approximate() bool { return false }

type preciseWords struct {
	space *PreciseSpace
	base  uint64
	data  []uint32
	stats Stats
}

func (w *preciseWords) Len() int { return len(w.data) }

func (w *preciseWords) Get(i int) uint32 {
	w.stats.Reads++
	w.stats.ReadNanos += readNanos
	w.space.stats.Reads++
	w.space.stats.ReadNanos += readNanos
	if w.space.sink != nil {
		w.space.sink.Access(OpRead, w.base+uint64(i)*4, 4)
	}
	return w.data[i]
}

func (w *preciseWords) Set(i int, v uint32) {
	w.stats.Writes++
	w.stats.WriteNanos += preciseWriteNanos
	w.stats.WriteEnergy++
	w.space.stats.Writes++
	w.space.stats.WriteNanos += preciseWriteNanos
	w.space.stats.WriteEnergy++
	if w.space.sink != nil {
		w.space.sink.Access(OpWrite, w.base+uint64(i)*4, 4)
	}
	w.data[i] = v
}

func (w *preciseWords) Stats() Stats { return w.stats }

// Peek implements Peeker.
func (w *preciseWords) Peek(i int) uint32 { return w.data[i] }
