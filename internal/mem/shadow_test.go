package mem_test

// Shadow-accounting property test (DESIGN.md §13): the batched Raw/Fold
// fast path must agree with a retained naive reference model that
// charges every access the moment it happens, the way the pre-batching
// accounting did. Counts must match exactly; the folded latency/energy
// floats must match the naive running sums to 1e-12 relative — the only
// daylight between the two is summation order (the fold derives one
// product from integer totals, the naive model accumulates per-access
// rounding).

import (
	"math"
	"testing"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/spintronic"
)

// shadowStats is the naive reference accumulator.
type shadowStats struct {
	reads, writes, iters, corrupted int
	readNanos, writeNanos, energy   float64
}

func (s *shadowStats) sub(base shadowStats) shadowStats {
	return shadowStats{
		reads: s.reads - base.reads, writes: s.writes - base.writes,
		iters: s.iters - base.iters, corrupted: s.corrupted - base.corrupted,
		readNanos: s.readNanos - base.readNanos, writeNanos: s.writeNanos - base.writeNanos,
		energy: s.energy - base.energy,
	}
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

func checkShadow(t *testing.T, label string, got mem.Stats, want shadowStats) {
	t.Helper()
	if got.Reads != want.reads || got.Writes != want.writes ||
		got.Iters != want.iters || got.Corrupted != want.corrupted {
		t.Fatalf("%s: counts (R=%d W=%d I=%d C=%d) != shadow (R=%d W=%d I=%d C=%d)",
			label, got.Reads, got.Writes, got.Iters, got.Corrupted,
			want.reads, want.writes, want.iters, want.corrupted)
	}
	if !relClose(got.ReadNanos, want.readNanos) ||
		!relClose(got.WriteNanos, want.writeNanos) ||
		!relClose(got.WriteEnergy, want.energy) {
		t.Fatalf("%s: floats (%g, %g, %g) not within 1e-12 of shadow (%g, %g, %g)",
			label, got.ReadNanos, got.WriteNanos, got.WriteEnergy,
			want.readNanos, want.writeNanos, want.energy)
	}
}

// driveShadow runs a randomized access sequence over several arrays of
// space, mirroring every access into the naive model via the callbacks,
// and cross-checks space.Stats against the shadow at random points and
// across a mid-sequence ResetStats.
func driveShadow(t *testing.T, label string, space mem.Space, resetStats func(),
	onRead func(arr, i int) uint32, onWrite func(arr, i int, v uint32), sh *shadowStats, opSeed uint64) {
	t.Helper()
	const arrays, words, ops = 3, 64, 3000
	ws := make([]mem.Words, arrays)
	for a := range ws {
		ws[a] = space.Alloc(words)
	}
	r := rng.New(opSeed)
	var base shadowStats
	for op := 0; op < ops; op++ {
		a := int(r.Uint64() % arrays)
		i := int(r.Uint64() % words)
		switch r.Uint64() % 8 {
		case 0, 1, 2: // point read
			got := ws[a].Get(i)
			if want := onRead(a, i); got != want {
				t.Fatalf("%s: Get(%d,%d) = %#x, shadow predicts %#x", label, a, i, got, want)
			}
		case 3, 4: // point write
			v := uint32(r.Uint64())
			ws[a].Set(i, v)
			onWrite(a, i, v)
		case 5: // bulk read
			n := int(r.Uint64()%16) + 1
			if i+n > words {
				n = words - i
			}
			dst := make([]uint32, n)
			mem.GetSlice(ws[a], i, dst)
			for j := 0; j < n; j++ {
				if want := onRead(a, i+j); dst[j] != want {
					t.Fatalf("%s: GetSlice(%d,%d)[%d] = %#x, shadow predicts %#x", label, a, i, j, dst[j], want)
				}
			}
		case 6: // bulk write
			n := int(r.Uint64()%16) + 1
			if i+n > words {
				n = words - i
			}
			src := make([]uint32, n)
			for j := range src {
				src[j] = uint32(r.Uint64())
			}
			mem.SetSlice(ws[a], i, src)
			for j, v := range src {
				onWrite(a, i+j, v)
			}
		case 7: // cross-check, occasionally resetting the aggregate
			checkShadow(t, label, space.Stats(), sh.sub(base))
			if r.Uint64()%4 == 0 {
				resetStats()
				base = *sh
			}
		}
	}
	checkShadow(t, label, space.Stats(), sh.sub(base))
}

// TestShadowAccountingApprox drives the MLC approx space against a
// shadow that replays every write through its own clone of the
// calibrated table and RNG stream, charging the old per-access costs.
func TestShadowAccountingApprox(t *testing.T) {
	for trial, tHalf := range []float64{0.01, 0.03, 0.055, 0.08, 0.11, mlc.MaxT} {
		seed := 0xabcd00 + uint64(trial)
		space := mem.NewApproxSpaceAt(tHalf, seed)
		tab := mlc.CachedTable(mlc.Approximate(tHalf), 0, mlc.CalibrationSeed)
		rShadow := rng.New(seed) // the space's noise stream, cloned
		stored := make([][]uint32, 3)
		for a := range stored {
			stored[a] = make([]uint32, 64)
		}
		var sh shadowStats
		driveShadow(t, "approx", space, space.ResetStats,
			func(arr, i int) uint32 {
				sh.reads++
				sh.readNanos += mlc.ReadNanos
				return stored[arr][i]
			},
			func(arr, i int, v uint32) {
				got, iters := tab.WriteWord(rShadow, v)
				stored[arr][i] = got
				sh.writes++
				sh.iters += iters
				if got != v {
					sh.corrupted++
				}
				wl := mlc.WordLatencyNanos(iters, tab.CellsPerWord())
				sh.writeNanos += wl
				sh.energy += wl / mlc.PreciseWriteNanos
			},
			&sh, 0x0b5e55ed+uint64(trial))
	}
}

// TestShadowAccountingPrecise drives the precise space against the naive
// fixed-cost model.
func TestShadowAccountingPrecise(t *testing.T) {
	space := mem.NewPreciseSpace()
	stored := make([][]uint32, 3)
	for a := range stored {
		stored[a] = make([]uint32, 64)
	}
	var sh shadowStats
	driveShadow(t, "precise", space, space.ResetStats,
		func(arr, i int) uint32 {
			sh.reads++
			sh.readNanos += mlc.ReadNanos
			return stored[arr][i]
		},
		func(arr, i int, v uint32) {
			stored[arr][i] = v
			sh.writes++
			sh.writeNanos += mlc.PreciseWriteNanos
			sh.energy++
		},
		&sh, 0x9e3779)
}

// TestShadowAccountingSpintronic drives every Appendix A operating point
// against the naive per-write energy model. Stored values (and with
// them the corruption count) are cross-checked through Peek, since the
// backend's costs do not depend on the flip outcomes.
func TestShadowAccountingSpintronic(t *testing.T) {
	for trial, cfg := range spintronic.Presets() {
		space := spintronic.NewSpace(cfg, 0x5150+uint64(trial))
		var sh shadowStats
		var arrs []mem.Words
		driveShadow(t, "spintronic", spaceHook{space, &arrs}, space.ResetStats,
			func(arr, i int) uint32 {
				sh.reads++
				sh.readNanos += mlc.ReadNanos
				return arrs[arr].(mem.Peeker).Peek(i)
			},
			func(arr, i int, v uint32) {
				sh.writes++
				sh.writeNanos += mlc.PreciseWriteNanos
				sh.energy += 1 - cfg.Saving
				if arrs[arr].(mem.Peeker).Peek(i) != v {
					sh.corrupted++
				}
			},
			&sh, 0xfeedface+uint64(trial))
	}
}

// spaceHook exposes the arrays a space hands out so the spintronic
// shadow can Peek stored values.
type spaceHook struct {
	mem.Space
	arrs *[]mem.Words
}

func (h spaceHook) Alloc(n int) mem.Words {
	w := h.Space.Alloc(n)
	*h.arrs = append(*h.arrs, w)
	return w
}
