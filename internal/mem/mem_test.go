package mem

import (
	"math"
	"testing"
	"testing/quick"

	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

func TestPreciseRoundTrip(t *testing.T) {
	s := NewPreciseSpace()
	w := s.Alloc(100)
	for i := 0; i < 100; i++ {
		w.Set(i, uint32(i)*7)
	}
	for i := 0; i < 100; i++ {
		if got := w.Get(i); got != uint32(i)*7 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, uint32(i)*7)
		}
	}
	st := w.Stats()
	if st.Reads != 100 || st.Writes != 100 {
		t.Errorf("stats reads=%d writes=%d, want 100/100", st.Reads, st.Writes)
	}
	if st.WriteNanos != 100*mlc.PreciseWriteNanos {
		t.Errorf("WriteNanos = %v, want %v", st.WriteNanos, 100*mlc.PreciseWriteNanos)
	}
	if st.ReadNanos != 100*mlc.ReadNanos {
		t.Errorf("ReadNanos = %v, want %v", st.ReadNanos, 100*mlc.ReadNanos)
	}
	if st.WriteEnergy != 100 {
		t.Errorf("WriteEnergy = %v, want 100", st.WriteEnergy)
	}
	if st.Corrupted != 0 {
		t.Errorf("precise memory reported %d corruptions", st.Corrupted)
	}
	if s.Approximate() {
		t.Error("precise space claims to be approximate")
	}
}

func TestSpaceAggregatesAcrossArrays(t *testing.T) {
	s := NewPreciseSpace()
	a, b := s.Alloc(10), s.Alloc(10)
	for i := 0; i < 10; i++ {
		a.Set(i, 1)
		b.Set(i, 2)
		_ = a.Get(i)
	}
	st := s.Stats()
	if st.Writes != 20 || st.Reads != 10 {
		t.Errorf("aggregate writes=%d reads=%d, want 20/10", st.Writes, st.Reads)
	}
	s.ResetStats()
	if st := s.Stats(); st.Writes != 0 || st.Reads != 0 {
		t.Errorf("ResetStats left writes=%d reads=%d", st.Writes, st.Reads)
	}
}

func TestApproxNearPreciseRoundTrip(t *testing.T) {
	s := NewApproxSpaceAt(mlc.PreciseT, 1)
	w := s.Alloc(2000)
	r := rng.New(2)
	vals := make([]uint32, w.Len())
	for i := range vals {
		vals[i] = r.Uint32()
		w.Set(i, vals[i])
	}
	errs := 0
	for i := range vals {
		if w.Get(i) != vals[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("approx space at precise T corrupted %d/2000 words", errs)
	}
	if !s.Approximate() {
		t.Error("approx space claims to be precise")
	}
	st := s.Stats()
	if st.Iters < 2000*16 {
		t.Errorf("Iters = %d, want at least one pulse per cell", st.Iters)
	}
	// At T = 0.025 the per-write latency must be about the precise write
	// latency.
	perWrite := st.WriteNanos / float64(st.Writes)
	if math.Abs(perWrite-mlc.PreciseWriteNanos) > 0.05*mlc.PreciseWriteNanos {
		t.Errorf("per-write latency %v ns, want ~%v", perWrite, mlc.PreciseWriteNanos)
	}
}

func TestApproxCorruptsAtHighT(t *testing.T) {
	s := NewApproxSpaceAt(0.12, 3)
	w := s.Alloc(3000)
	r := rng.New(4)
	diff := 0
	for i := 0; i < w.Len(); i++ {
		v := r.Uint32()
		w.Set(i, v)
		if w.Get(i) != v {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("no corruption at T=0.12; model wiring broken")
	}
	if got := s.Stats().Corrupted; got != diff {
		t.Errorf("Corrupted stat %d != observed %d", got, diff)
	}
	// Approximate writes must be cheaper than precise ones.
	st := s.Stats()
	perWrite := st.WriteNanos / float64(st.Writes)
	if perWrite >= 0.6*mlc.PreciseWriteNanos {
		t.Errorf("approx per-write latency %v ns not cheaper than precise", perWrite)
	}
}

func TestApproxReadsAreStable(t *testing.T) {
	// With write-time materialization, repeated reads agree (contrast
	// mlc.AnalogArray).
	s := NewApproxSpaceAt(0.12, 5)
	w := s.Alloc(100)
	for i := 0; i < 100; i++ {
		w.Set(i, 0xdeadbeef)
	}
	for i := 0; i < 100; i++ {
		first := w.Get(i)
		for k := 0; k < 5; k++ {
			if w.Get(i) != first {
				t.Fatalf("read of word %d unstable", i)
			}
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, ReadNanos: 3, WriteNanos: 4, WriteEnergy: 5, Iters: 6, Corrupted: 7}
	b := a
	a.Add(b)
	want := Stats{Reads: 2, Writes: 4, ReadNanos: 6, WriteNanos: 8, WriteEnergy: 10, Iters: 12, Corrupted: 14}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestEquivalentPreciseWrites(t *testing.T) {
	s := Stats{WriteNanos: 2500}
	if got := s.EquivalentPreciseWrites(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("EquivalentPreciseWrites = %v, want 2.5", got)
	}
}

func TestCopyLoadReadAll(t *testing.T) {
	s := NewPreciseSpace()
	src, dst := s.Alloc(5), s.Alloc(5)
	Load(src, []uint32{5, 4, 3, 2, 1})
	Copy(dst, src)
	got := ReadAll(dst)
	for i, v := range []uint32{5, 4, 3, 2, 1} {
		if got[i] != v {
			t.Fatalf("ReadAll[%d] = %d, want %d", i, got[i], v)
		}
	}
	st := s.Stats()
	// Load: 5 writes. Copy: 5 reads + 5 writes. ReadAll: 5 reads.
	if st.Writes != 10 || st.Reads != 10 {
		t.Errorf("writes=%d reads=%d, want 10/10", st.Writes, st.Reads)
	}
}

func TestCopyPanicsOnMismatch(t *testing.T) {
	s := NewPreciseSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("Copy with mismatched lengths did not panic")
		}
	}()
	Copy(s.Alloc(3), s.Alloc(4))
}

func TestLoadPanicsOnMismatch(t *testing.T) {
	s := NewPreciseSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("Load with mismatched lengths did not panic")
		}
	}()
	Load(s.Alloc(3), []uint32{1, 2})
}

type recordingSink struct {
	ops   []Op
	addrs []uint64
}

func (r *recordingSink) Access(op Op, addr uint64, size int) {
	r.ops = append(r.ops, op)
	r.addrs = append(r.addrs, addr)
}

func TestSinkReceivesAccesses(t *testing.T) {
	s := NewPreciseSpace()
	sink := &recordingSink{}
	s.SetSink(sink)
	w := s.Alloc(4)
	w.Set(0, 1)
	w.Set(3, 2)
	_ = w.Get(3)
	if len(sink.ops) != 3 {
		t.Fatalf("sink saw %d accesses, want 3", len(sink.ops))
	}
	if sink.ops[0] != OpWrite || sink.ops[2] != OpRead {
		t.Errorf("ops = %v", sink.ops)
	}
	if sink.addrs[1] != sink.addrs[0]+12 {
		t.Errorf("addresses %v not 12 bytes apart", sink.addrs[:2])
	}
	if sink.addrs[2] != sink.addrs[1] {
		t.Errorf("read address %d != write address %d", sink.addrs[2], sink.addrs[1])
	}
}

func TestArraysGetDistinctPageAlignedAddresses(t *testing.T) {
	s := NewApproxSpaceAt(0.055, 6)
	sink := &recordingSink{}
	s.SetSink(sink)
	a, b := s.Alloc(1), s.Alloc(5000)
	a.Set(0, 1)
	b.Set(0, 1)
	if len(sink.addrs) != 2 {
		t.Fatalf("sink saw %d accesses", len(sink.addrs))
	}
	if sink.addrs[0] == sink.addrs[1] {
		t.Error("two arrays share a base address")
	}
	if sink.addrs[1]%4096 != 0 {
		t.Errorf("second array base %d not page aligned", sink.addrs[1])
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Errorf("Op strings: %q %q", OpRead, OpWrite)
	}
}

func TestPreciseWordsAlwaysReadBack(t *testing.T) {
	s := NewPreciseSpace()
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		w := s.Alloc(len(vals))
		Load(w, vals)
		for i, v := range vals {
			if w.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
