package experiments

import (
	"approxsort/internal/histsort"
	"approxsort/internal/sorts"
)

// HistAlgorithms returns the Appendix B roster: histogram-based LSD and
// MSD at the given bin widths (3–6 bits by default, as in Figure 15).
func HistAlgorithms(bits ...int) []sorts.Algorithm {
	if len(bits) == 0 {
		bits = []int{3, 4, 5, 6}
	}
	algs := make([]sorts.Algorithm, 0, 2*len(bits))
	for _, b := range bits {
		algs = append(algs, histsort.HistLSD{Bits: b})
	}
	for _, b := range bits {
		algs = append(algs, histsort.HistMSD{Bits: b})
	}
	return algs
}

// Fig15 sweeps T for the histogram-based radix sorts under approx-refine
// (Figure 15). The rows are RefineRows like Figure 9's, but ModelWR is
// zero: Appendix B's implementation has no closed-form α in the paper.
func Fig15(ts []float64, n int, seed uint64, workers int) ([]RefineRow, error) {
	return RefineGrid(HistAlgorithms(), mlcPoints(ts), n, seed, workers)
}
