package experiments

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/hybrid"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/pcm"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// AccessTimeRow compares end-to-end memory access time between the hybrid
// approx-refine execution and the traditional precise-only sort, in two
// senses:
//
//   - LatencyReduction sums per-access device latencies (reads 50 ns,
//     writes 1 µs scaled by p(t)) — the paper's "total memory access
//     time" metric behind the abstract's "up to 11%".
//   - QueueAwareReduction drives the same access streams through the
//     Table 1 cache hierarchy and banked PCM device with posted writes
//     and read-priority scheduling, and compares CPU-visible clocks.
//     Because posted writes overlap with computation until a queue fills,
//     this metric is read-bound and typically *smaller* (the refine
//     stage's extra reads can even push it negative) — a system-level
//     observation the paper's latency-sum metric does not capture.
type AccessTimeRow struct {
	Algorithm string
	T         float64
	N         int
	// LatencyReduction is 1 − hybrid/baseline over summed device
	// latencies.
	LatencyReduction float64
	// HybridClockNanos and BaselineClockNanos are the CPU-visible
	// times through the cache + banked-PCM pipeline.
	HybridClockNanos, BaselineClockNanos float64
	// QueueAwareReduction is 1 − HybridClock/BaselineClock.
	QueueAwareReduction float64
	// HybridStats carries the hybrid run's system counters (cache hits,
	// queue stalls) for inspection.
	HybridStats hybrid.Stats
}

// AccessTime drives one algorithm at half-width T through the full memory
// system with the Table 1 device configuration. The approximate region's
// device write time is the model's p(t)-scaled latency (its calibrated
// mean pulse count over the precise anchor).
func AccessTime(alg sorts.Algorithm, t float64, n int, seed uint64) (AccessTimeRow, error) {
	return AccessTimeWithDevice(alg, t, n, seed, pcm.DefaultConfig())
}

// AccessTimeWithDevice is AccessTime with a custom PCM device
// configuration — notably Config.SeqWriteFactor, the Section 5 future-work
// refinement distinguishing sequential from random writes. The paper
// conjectures the discount should favour the refine stage's sequential
// output writes; measurement shows both executions speed up alike,
// because the baseline radix copy-backs are equally sequential (see
// EXPERIMENTS.md, extension studies).
func AccessTimeWithDevice(alg sorts.Algorithm, t float64, n int, seed uint64, dev pcm.Config) (AccessTimeRow, error) {
	keys := dataset.Uniform(n, seed)

	// Hybrid run: approx-refine with both spaces sinked into one system.
	// The un-sinked precise baseline inside Run provides the latency-sum
	// denominator.
	table := mlc.CachedTable(mlc.Approximate(t), 0, mlc.CalibrationSeed)
	approxWriteNanos := table.AvgP() / mlc.ReferenceAvgP * mlc.PreciseWriteNanos
	sys := hybrid.NewWithConfig(dev)
	res, err := core.Run(keys, core.Config{
		Algorithm:   alg,
		T:           t,
		Seed:        seed,
		PreciseSink: sys.Region("precise", mlc.PreciseWriteNanos),
		ApproxSink:  sys.Region("approx", approxWriteNanos),
	})
	if err != nil {
		return AccessTimeRow{}, err
	}
	if err := verify.Check(keys, res).Err(); err != nil {
		return AccessTimeRow{}, fmt.Errorf("experiments: %s T=%g n=%d: %w", alg.Name(), t, n, err)
	}
	hybridClock := sys.Clock()

	// Queue-aware baseline: the traditional sort, precise space sinked
	// into its own fresh system; the warm-up load's clock is excluded,
	// matching the hybrid run (core.Run attaches sinks after warm-up).
	base := hybrid.NewWithConfig(dev)
	space := mem.NewPreciseSpace()
	space.SetSink(base.Region("precise", mlc.PreciseWriteNanos))
	p := sorts.Pair{Keys: space.Alloc(n), IDs: space.Alloc(n)}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(n))
	loadNanos := base.Clock()
	alg.Sort(p, sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(seed ^ 0x13)})
	baselineClock := base.Clock() - loadNanos

	row := AccessTimeRow{
		Algorithm:          alg.Name(),
		T:                  t,
		N:                  n,
		LatencyReduction:   res.Report.AccessTimeReduction(),
		HybridClockNanos:   hybridClock,
		BaselineClockNanos: baselineClock,
		HybridStats:        sys.Stats(),
	}
	if baselineClock > 0 {
		row.QueueAwareReduction = 1 - hybridClock/baselineClock
	}
	return row, nil
}
