// Package experiments implements the paper's evaluation campaigns — one
// function per table or figure — shared by the cmd/ harnesses and the
// repository benchmarks so both always run identical code paths.
//
// Every function takes an explicit problem size; the paper's headline runs
// use n = 16,000,000, which these campaigns reproduce shape-faithfully at
// much smaller n (the cost model of Section 4.3 is size-aware, and
// Figure 10's n-sweep is itself one of the experiments). See EXPERIMENTS.md
// for the sizes used in the recorded results.
//
// Every sweep runs its grid points on the shared bounded worker pool
// (internal/parallel); workers <= 0 means one worker per CPU. Per-point
// RNG streams are keyed by the point's coordinates via rng.Split — never
// by loop index — so each sweep's rows are bit-identical for any worker
// count and stable under roster reordering, and the shared mlc table cache
// means a sweep touching A algorithms × K T-points calibrates K transition
// tables instead of A×K.
package experiments

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// algT is one (algorithm, T) point of a row-major flattened study grid.
type algT struct {
	alg sorts.Algorithm
	t   float64
}

func algTGrid(algs []sorts.Algorithm, ts []float64) []algT {
	pts := make([]algT, 0, len(algs)*len(ts))
	for _, alg := range algs {
		for _, t := range ts {
			pts = append(pts, algT{alg, t})
		}
	}
	return pts
}

// StudyAlgorithms returns the algorithm roster of the Section 3 and 5
// studies: quicksort, mergesort, and LSD/MSD at every evaluated bin width.
func StudyAlgorithms(bits ...int) []sorts.Algorithm {
	if len(bits) == 0 {
		bits = []int{3, 4, 5, 6}
	}
	return sorts.Standard(bits...)
}

// Fig2 runs the Figure 2 Monte-Carlo campaign: per-T average P&V pulse
// count (panel a) and cell/word error rates (panel b). words is the number
// of 32-bit writes per point (the paper uses ~6M words ≙ 1e8 cells).
// Points run on the worker pool; results are identical for any workers.
func Fig2(words int, seed uint64, extended bool, workers int) []mlc.Stats {
	return mlc.SweepParallel(mlc.Precise(), mlc.StandardTs(extended), words, seed, workers)
}

// SortOnlyRow is one point of the Section 3 approximate-only study
// (Figure 4 panels a–c and Table 3).
type SortOnlyRow struct {
	Algorithm string
	T         float64
	N         int
	// ErrorRate is the fraction of elements whose value deviates from
	// the original after sorting (Figure 4a).
	ErrorRate float64
	// RemRatio is Rem/n of the post-sort sequence (Figure 4b, Table 3).
	RemRatio float64
	// WriteReduction is Equation 1: saved key-write latency versus the
	// same sort in precise memory (Figure 4c).
	WriteReduction float64
}

// SortOnly sorts keys entirely in approximate memory at half-width T and
// measures the Section 3 quantities. A shadow record-ID array (in its own
// uncharged space) tracks element identity for the error-rate metric; the
// paper's Section 3 runs likewise exclude the payload from the latency
// accounting. The run is audited by verify.CheckApproxRun before its row
// is reported: a sort that loses or duplicates records must fail loudly,
// not feed garbage into the Figure 4 metrics.
func SortOnly(alg sorts.Algorithm, t float64, keys []uint32, seed uint64) (SortOnlyRow, error) {
	n := len(keys)
	approx := mem.NewApproxSpaceAt(t, seed)
	shadow := mem.NewPreciseSpace() // IDs: instrumentation only
	p := sorts.Pair{Keys: approx.Alloc(n), IDs: shadow.Alloc(n)}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(n))
	approx.ResetStats()
	env := sorts.Env{KeySpace: approx, IDSpace: shadow, R: rng.New(seed ^ 0xabcd)}
	alg.Sort(p, env)
	approxNanos := approx.Stats().WriteNanos

	// Reference: the identical sort on precise memory.
	precise := mem.NewPreciseSpace()
	q := sorts.Pair{Keys: precise.Alloc(n)}
	mem.Load(q.Keys, keys)
	precise.ResetStats()
	alg.Sort(q, sorts.Env{KeySpace: precise, IDSpace: shadow, R: rng.New(seed ^ 0xabcd)})
	preciseNanos := precise.Stats().WriteNanos

	out := mem.PeekAll(p.Keys)   //nolint:memescape // measurement-only peek after the accounted run; charged reads would perturb Eq. 1
	idsRaw := mem.PeekAll(p.IDs) //nolint:memescape // shadow IDs live in an uncharged instrumentation space
	ids := make([]int, n)
	for i, v := range idsRaw {
		ids[i] = int(v)
	}
	if err := verify.CheckApproxRun(keys, out, ids).Err(); err != nil {
		return SortOnlyRow{}, fmt.Errorf("experiments: %s T=%g n=%d: %w", alg.Name(), t, n, err)
	}
	row := SortOnlyRow{
		Algorithm: alg.Name(),
		T:         t,
		N:         n,
		ErrorRate: sortedness.ErrorRate(out, ids, keys),
		RemRatio:  sortedness.RemRatio(out),
	}
	if preciseNanos > 0 {
		row.WriteReduction = 1 - approxNanos/preciseNanos
	}
	return row, nil
}

// Fig4 sweeps T over the standard grid for each algorithm (Figure 4; the
// T ∈ {0.03, 0.055, 0.1} rows are Table 3). Per-point seeds are keyed by
// the (algorithm, T) coordinates, so a row's numbers survive roster edits.
func Fig4(algs []sorts.Algorithm, ts []float64, n int, seed uint64, workers int) ([]SortOnlyRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algTGrid(algs, ts), workers, func(_ int, p algT) (SortOnlyRow, error) {
		return SortOnly(p.alg, p.t, keys, rng.Split(seed, p.alg.Name(), p.t))
	})
}

// Shape returns the post-sort sequence X itself — the data behind the
// scatter plots of Figures 5–7 (the paper visualizes n = 160,000).
func Shape(alg sorts.Algorithm, t float64, n int, seed uint64) []uint32 {
	keys := dataset.Uniform(n, seed)
	approx := mem.NewApproxSpaceAt(t, seed^0x5151)
	p := sorts.Pair{Keys: approx.Alloc(n)}
	mem.Load(p.Keys, keys)
	alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: mem.NewPreciseSpace(), R: rng.New(seed ^ 0x3333)})
	return mem.PeekAll(p.Keys) //nolint:memescape // the scatter-plot data is the raw stored sequence; nothing downstream is accounted
}

// RefineRow is one point of the Section 5 approx-refine study
// (Figures 9–11).
type RefineRow struct {
	Algorithm string
	T         float64
	N         int
	// WriteReduction is Equation 2 (measured).
	WriteReduction float64
	// ModelWR is Equation 4 evaluated with the measured p(t) and Rem~.
	ModelWR float64
	// RemTildeRatio is Rem~/n.
	RemTildeRatio float64
	// ApproxWriteNanos and RefineWriteNanos decompose the hybrid run's
	// total write latency (Figure 11's two bar segments).
	ApproxWriteNanos, RefineWriteNanos float64
	// BaselineWriteNanos is the precise-only sort's write latency.
	BaselineWriteNanos float64
	// EnergySaving is the write-energy analogue (Appendix A metric).
	EnergySaving float64
	// Sorted confirms the precision contract held.
	Sorted bool
}

// Refine runs approx-refine once and derives the Figure 9–11 quantities.
// Every run is audited by the invariant checker before its row is
// reported: a sweep cannot silently emit figure data from a run that
// violated the precision contract or the write-accounting identities.
func Refine(alg sorts.Algorithm, t float64, keys []uint32, seed uint64) (RefineRow, error) {
	res, err := core.Run(keys, core.Config{Algorithm: alg, T: t, Seed: seed})
	if err != nil {
		return RefineRow{}, err
	}
	if err := verify.Check(keys, res).Err(); err != nil {
		return RefineRow{}, fmt.Errorf("experiments: %s T=%g n=%d: %w", alg.Name(), t, len(keys), err)
	}
	r := res.Report
	row := RefineRow{
		Algorithm:          r.Algorithm,
		T:                  t,
		N:                  r.N,
		WriteReduction:     r.WriteReduction(),
		RemTildeRatio:      r.RemTildeRatio(),
		ApproxWriteNanos:   r.ApproxPhase().WriteNanos(),
		RefineWriteNanos:   r.RefinePhase().WriteNanos(),
		BaselineWriteNanos: r.Baseline.WriteNanos,
		EnergySaving:       r.EnergySaving(),
		Sorted:             r.Sorted,
	}
	if alpha, err := core.AlphaFor(alg); err == nil {
		p := measuredP(r)
		row.ModelWR = core.CostModel{P: p, Alpha: alpha}.WriteReduction(r.N, r.RemTilde)
	}
	return row, nil
}

// measuredP extracts p(t) from the run itself: the mean approximate write
// latency over the precise write latency.
func measuredP(r *core.Report) float64 {
	a := r.ApproxPhase().Approx
	if a.Writes == 0 {
		return 1
	}
	return a.WriteNanos / float64(a.Writes) / mlc.PreciseWriteNanos
}

// Fig9 sweeps T for each algorithm at fixed n (Figure 9).
func Fig9(algs []sorts.Algorithm, ts []float64, n int, seed uint64, workers int) ([]RefineRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algTGrid(algs, ts), workers, func(_ int, p algT) (RefineRow, error) {
		return Refine(p.alg, p.t, keys, rng.Split(seed, p.alg.Name(), p.t))
	})
}

// Fig10 sweeps n for each algorithm at fixed T (Figure 10; the paper uses
// T = 0.055 and n from 1.6K to 16M in decades). Every algorithm sorts the
// same keys at a given n: the key material is keyed by the n coordinate
// alone.
func Fig10(algs []sorts.Algorithm, t float64, ns []int, seed uint64, workers int) ([]RefineRow, error) {
	type point struct {
		alg sorts.Algorithm
		n   int
	}
	pts := make([]point, 0, len(algs)*len(ns))
	for _, alg := range algs {
		for _, n := range ns {
			pts = append(pts, point{alg, n})
		}
	}
	return parallel.Map(pts, workers, func(_ int, p point) (RefineRow, error) {
		keys := dataset.Uniform(p.n, rng.Split(seed, "keys", p.n))
		return Refine(p.alg, t, keys, rng.Split(seed, p.alg.Name(), p.n))
	})
}

// Fig11 runs every algorithm at the sweet spot T and returns the rows
// whose Approx/Refine write-latency split is Figure 11 (normalize to the
// first row's approx segment when plotting, as the paper does with
// 3-bit LSD).
func Fig11(algs []sorts.Algorithm, t float64, n int, seed uint64, workers int) ([]RefineRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algs, workers, func(_ int, alg sorts.Algorithm) (RefineRow, error) {
		return Refine(alg, t, keys, rng.Split(seed, alg.Name()))
	})
}
