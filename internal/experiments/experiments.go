// Package experiments implements the paper's evaluation campaigns — one
// function per table or figure — shared by the cmd/ harnesses and the
// repository benchmarks so both always run identical code paths.
//
// Every function takes an explicit problem size; the paper's headline runs
// use n = 16,000,000, which these campaigns reproduce shape-faithfully at
// much smaller n (the cost model of Section 4.3 is size-aware, and
// Figure 10's n-sweep is itself one of the experiments). See EXPERIMENTS.md
// for the sizes used in the recorded results.
//
// Every sweep runs its grid points on the shared bounded worker pool
// (internal/parallel); workers <= 0 means one worker per CPU. Per-point
// RNG streams are keyed by the point's coordinates via rng.Split — never
// by loop index — so each sweep's rows are bit-identical for any worker
// count and stable under roster reordering, and the shared mlc table cache
// means a sweep touching A algorithms × K T-points calibrates K transition
// tables instead of A×K.
//
// The campaigns are device-agnostic: the generic entry points in
// backend.go (SortOnlyAt, RefineAt, and their grid sweeps) take a
// memmodel.Point and resolve the device model through the memmodel
// registry. The MLC-flavored functions here (SortOnly, Fig4, Refine,
// Fig9–11, Shape) and the spintronic Appendix A functions in spin.go are
// thin wrappers over that one pipeline.
package experiments

import (
	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
)

// StudyAlgorithms returns the algorithm roster of the Section 3 and 5
// studies: quicksort, mergesort, and LSD/MSD at every evaluated bin width.
func StudyAlgorithms(bits ...int) []sorts.Algorithm {
	if len(bits) == 0 {
		bits = []int{3, 4, 5, 6}
	}
	return sorts.Standard(bits...)
}

// Fig2 runs the Figure 2 Monte-Carlo campaign: per-T average P&V pulse
// count (panel a) and cell/word error rates (panel b). words is the number
// of 32-bit writes per point (the paper uses ~6M words ≙ 1e8 cells).
// Points run on the worker pool; results are identical for any workers.
func Fig2(words int, seed uint64, extended bool, workers int) []mlc.Stats {
	return mlc.SweepParallel(mlc.Precise(), mlc.StandardTs(extended), words, seed, workers)
}

// SortOnlyRow is one point of the approximate-only sorting studies
// (Figure 4 panels a–c and Table 3 for MLC PCM; Figure 12 for
// spintronic).
type SortOnlyRow struct {
	Algorithm string
	// Backend and Point identify the memory model and operating point the
	// row was measured at.
	Backend string
	Point   memmodel.Point
	// T is the MLC target half-width for pcm-mlc points and 0 for every
	// other backend (legacy column, kept for the Figure 4 consumers).
	T float64
	N int
	// ErrorRate is the fraction of elements whose value deviates from
	// the original after sorting (Figure 4a).
	ErrorRate float64
	// RemRatio is Rem/n of the post-sort sequence (Figure 4b, Table 3).
	RemRatio float64
	// WriteReduction is Equation 1: saved key-write latency versus the
	// same sort in precise memory (Figure 4c).
	WriteReduction float64
}

// SortOnly sorts keys entirely in approximate MLC PCM at half-width T and
// measures the Section 3 quantities; see SortOnlyAt for the audited
// backend-generic pipeline this wraps.
func SortOnly(alg sorts.Algorithm, t float64, keys []uint32, seed uint64) (SortOnlyRow, error) {
	return SortOnlyAt(alg, memmodel.MLC(t), keys, seed)
}

// Fig4 sweeps T over the standard grid for each algorithm (Figure 4; the
// T ∈ {0.03, 0.055, 0.1} rows are Table 3). Per-point seeds are keyed by
// the (algorithm, T) coordinates, so a row's numbers survive roster edits.
func Fig4(algs []sorts.Algorithm, ts []float64, n int, seed uint64, workers int) ([]SortOnlyRow, error) {
	return SortOnlyGrid(algs, mlcPoints(ts), n, seed, workers)
}

// Shape returns the post-sort sequence X itself — the data behind the
// scatter plots of Figures 5–7 (the paper visualizes n = 160,000) — for
// approximate MLC PCM at half-width T.
func Shape(alg sorts.Algorithm, t float64, n int, seed uint64) []uint32 {
	out, err := ShapeAt(alg, memmodel.MLC(t), n, seed)
	if err != nil {
		panic(err) // the registry always has pcm-mlc; an invalid T is a programming error
	}
	return out
}

// RefineRow is one point of the approx-refine studies (Figures 9–11 for
// MLC PCM; Figures 13–14 for spintronic).
type RefineRow struct {
	Algorithm string
	// Backend and Point identify the memory model and operating point the
	// row was measured at.
	Backend string
	Point   memmodel.Point
	// T is the MLC target half-width for pcm-mlc points and 0 for every
	// other backend (legacy column, kept for the Figure 9–11 consumers).
	T float64
	N int
	// WriteReduction is Equation 2 (measured).
	WriteReduction float64
	// ModelWR is Equation 4 evaluated with the measured p(t) and Rem~.
	ModelWR float64
	// RemTildeRatio is Rem~/n.
	RemTildeRatio float64
	// ApproxWriteNanos and RefineWriteNanos decompose the hybrid run's
	// total write latency (Figure 11's two bar segments).
	ApproxWriteNanos, RefineWriteNanos float64
	// BaselineWriteNanos is the precise-only sort's write latency.
	BaselineWriteNanos float64
	// ApproxEnergy and RefineEnergy decompose the hybrid run's write
	// energy in precise-write units (Figure 14's bar segments).
	ApproxEnergy, RefineEnergy float64
	// EnergySaving is the write-energy analogue of Equation 2
	// (Figure 13 / Appendix A metric).
	EnergySaving float64
	// Sorted confirms the precision contract held.
	Sorted bool
}

// Refine runs approx-refine once on the MLC PCM model at half-width T;
// see RefineAt for the audited backend-generic pipeline this wraps.
func Refine(alg sorts.Algorithm, t float64, keys []uint32, seed uint64) (RefineRow, error) {
	return RefineAt(alg, memmodel.MLC(t), keys, seed)
}

// measuredP extracts p(t) from the run itself: the mean approximate write
// latency over the precise write latency.
func measuredP(r *core.Report) float64 {
	a := r.ApproxPhase().Approx
	if a.Writes == 0 {
		return 1
	}
	return a.WriteNanos / float64(a.Writes) / mlc.PreciseWriteNanos
}

// Fig9 sweeps T for each algorithm at fixed n (Figure 9).
func Fig9(algs []sorts.Algorithm, ts []float64, n int, seed uint64, workers int) ([]RefineRow, error) {
	return RefineGrid(algs, mlcPoints(ts), n, seed, workers)
}

// Fig10 sweeps n for each algorithm at fixed T (Figure 10; the paper uses
// T = 0.055 and n from 1.6K to 16M in decades). Every algorithm sorts the
// same keys at a given n: the key material is keyed by the n coordinate
// alone.
func Fig10(algs []sorts.Algorithm, t float64, ns []int, seed uint64, workers int) ([]RefineRow, error) {
	type point struct {
		alg sorts.Algorithm
		n   int
	}
	pts := make([]point, 0, len(algs)*len(ns))
	for _, alg := range algs {
		for _, n := range ns {
			pts = append(pts, point{alg, n})
		}
	}
	return parallel.Map(pts, workers, func(_ int, p point) (RefineRow, error) {
		keys := dataset.Uniform(p.n, rng.Split(seed, "keys", p.n))
		return RefineAt(p.alg, memmodel.MLC(t), keys, rng.Split(seed, p.alg.Name(), p.n))
	})
}

// Fig11 runs every algorithm at the sweet spot T and returns the rows
// whose Approx/Refine write-latency split is Figure 11 (normalize to the
// first row's approx segment when plotting, as the paper does with
// 3-bit LSD).
func Fig11(algs []sorts.Algorithm, t float64, n int, seed uint64, workers int) ([]RefineRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algs, workers, func(_ int, alg sorts.Algorithm) (RefineRow, error) {
		return RefineAt(alg, memmodel.MLC(t), keys, rng.Split(seed, alg.Name()))
	})
}
