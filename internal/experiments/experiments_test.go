package experiments

import (
	"testing"

	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

func TestFig2Shape(t *testing.T) {
	rows := Fig2(4000, 1, true, 0)
	if len(rows) < 16 {
		t.Fatalf("Fig2 returned %d points", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgP >= rows[i-1].AvgP {
			t.Errorf("avg #P not decreasing at T=%v", rows[i].T)
		}
	}
	if first, last := rows[0], rows[len(rows)-1]; first.WordErrorRate > 0.001 || last.WordErrorRate < 0.2 {
		t.Errorf("error-rate endpoints implausible: %v .. %v", first.WordErrorRate, last.WordErrorRate)
	}
}

func TestFig4TableThreeOrdering(t *testing.T) {
	algs := []sorts.Algorithm{sorts.Quicksort{}, sorts.Mergesort{}, sorts.LSD{Bits: 6}, sorts.MSD{Bits: 6}}
	rows, err := Fig4(algs, []float64{0.03, 0.055, 0.1}, 20000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, T float64) SortOnlyRow {
		for _, r := range rows {
			if r.Algorithm == name && r.T == T {
				return r
			}
		}
		t.Fatalf("row %s/%v missing", name, T)
		return SortOnlyRow{}
	}
	// Table 3 anchors (shape): at T=0.03 everything nearly sorted; at
	// T=0.055 quicksort/LSD/MSD < few %, mergesort huge; at T=0.1 all
	// high.
	for _, name := range []string{"Quicksort", "6-bit LSD", "6-bit MSD", "Mergesort"} {
		if r := get(name, 0.03); r.RemRatio > 0.01 {
			t.Errorf("%s Rem ratio at 0.03 = %v", name, r.RemRatio)
		}
	}
	for _, name := range []string{"Quicksort", "6-bit LSD", "6-bit MSD"} {
		if r := get(name, 0.055); r.RemRatio > 0.10 {
			t.Errorf("%s Rem ratio at 0.055 = %v, want nearly sorted", name, r.RemRatio)
		}
	}
	if ms := get("Mergesort", 0.055); ms.RemRatio < 0.2 {
		t.Errorf("mergesort Rem ratio at 0.055 = %v, want catastrophic (paper: 0.558)", ms.RemRatio)
	}
	for _, name := range []string{"Quicksort", "6-bit LSD", "Mergesort"} {
		if r := get(name, 0.1); r.RemRatio < 0.5 {
			t.Errorf("%s Rem ratio at 0.1 = %v, want chaos (paper: >0.8)", name, r.RemRatio)
		}
	}
	// Figure 4(c): write reduction grows with T.
	if a, b := get("Quicksort", 0.03).WriteReduction, get("Quicksort", 0.1).WriteReduction; a >= b {
		t.Errorf("write reduction not increasing: %v at 0.03 vs %v at 0.1", a, b)
	}
	if wr := get("Quicksort", 0.055).WriteReduction; wr < 0.25 || wr > 0.45 {
		t.Errorf("quicksort write reduction at 0.055 = %v, paper reports ~33%%", wr)
	}
}

func TestShapeLooksSorted(t *testing.T) {
	xs := Shape(sorts.Quicksort{}, 0.03, 5000, 3)
	if len(xs) != 5000 {
		t.Fatalf("Shape length %d", len(xs))
	}
	desc := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			desc++
		}
	}
	if desc > 250 {
		t.Errorf("Shape at T=0.03 has %d descents, want nearly sorted", desc)
	}
}

func TestFig9SweetSpot(t *testing.T) {
	rows, err := Fig9([]sorts.Algorithm{sorts.MSD{Bits: 3}}, []float64{0.025, 0.055, 0.09}, 30000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	byT := map[float64]RefineRow{}
	for _, r := range rows {
		if !r.Sorted {
			t.Fatalf("unsorted output at T=%v", r.T)
		}
		byT[r.T] = r
	}
	if byT[0.025].WriteReduction >= 0 {
		t.Errorf("WR at precise T = %v, want negative", byT[0.025].WriteReduction)
	}
	if byT[0.055].WriteReduction <= 0 {
		t.Errorf("WR at 0.055 = %v, want positive (paper ~10%%)", byT[0.055].WriteReduction)
	}
	if byT[0.055].WriteReduction <= byT[0.09].WriteReduction {
		t.Errorf("WR should peak near 0.055: %v vs %v at 0.09",
			byT[0.055].WriteReduction, byT[0.09].WriteReduction)
	}
	// Model and measurement agree reasonably at the sweet spot.
	if d := byT[0.055].ModelWR - byT[0.055].WriteReduction; d > 0.12 || d < -0.12 {
		t.Errorf("model %v vs measured %v diverge", byT[0.055].ModelWR, byT[0.055].WriteReduction)
	}
}

func TestFig10GrowsWithNForQuicksort(t *testing.T) {
	rows, err := Fig10([]sorts.Algorithm{sorts.Quicksort{}}, 0.055, []int{1600, 16000, 160000}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].WriteReduction >= rows[2].WriteReduction {
		t.Errorf("quicksort WR not growing with n: %v (1.6K) vs %v (160K)",
			rows[0].WriteReduction, rows[2].WriteReduction)
	}
}

func TestFig11RefineOverheadSmallExceptMergesort(t *testing.T) {
	rows, err := Fig11([]sorts.Algorithm{sorts.LSD{Bits: 6}, sorts.Mergesort{}}, 0.055, 20000, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsd, ms := rows[0], rows[1]
	if frac := lsd.RefineWriteNanos / (lsd.ApproxWriteNanos + lsd.RefineWriteNanos); frac > 0.35 {
		t.Errorf("LSD refine fraction = %v, want small", frac)
	}
	msFrac := ms.RefineWriteNanos / (ms.ApproxWriteNanos + ms.RefineWriteNanos)
	lsdFrac := lsd.RefineWriteNanos / (lsd.ApproxWriteNanos + lsd.RefineWriteNanos)
	if msFrac <= lsdFrac {
		t.Errorf("mergesort refine fraction %v not worse than LSD %v", msFrac, lsdFrac)
	}
}

func TestFig12SpintronicRemGrowsWithAggressiveness(t *testing.T) {
	rows, err := Fig12([]sorts.Algorithm{sorts.Mergesort{}}, spintronic.Presets(), 20000, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].RemRatio > 0.01 {
		t.Errorf("Rem at 5%% point = %v, want ~0", rows[0].RemRatio)
	}
	if rows[3].RemRatio <= rows[1].RemRatio {
		t.Errorf("Rem not growing with aggressiveness: %v vs %v", rows[3].RemRatio, rows[1].RemRatio)
	}
}

func TestFig13EnergySweetSpot(t *testing.T) {
	rows, err := Fig13([]sorts.Algorithm{sorts.MSD{Bits: 3}}, spintronic.Presets(), 30000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Appendix A: the 20% and 33% points save energy; radix peaks around
	// 13%.
	var at20, at33, at5 SpinRefineRow
	for _, r := range rows {
		if !r.Sorted {
			t.Fatal("unsorted spintronic output")
		}
		switch r.Saving {
		case 0.20:
			at20 = r
		case 0.33:
			at33 = r
		case 0.05:
			at5 = r
		}
	}
	if at20.EnergySaving <= 0 && at33.EnergySaving <= 0 {
		t.Errorf("no energy saving at either sweet spot: %v / %v", at20.EnergySaving, at33.EnergySaving)
	}
	if at5.EnergySaving >= at33.EnergySaving {
		t.Errorf("5%% point (%v) should save less than 33%% point (%v)", at5.EnergySaving, at33.EnergySaving)
	}
}

func TestFig15HistRadixStillWins(t *testing.T) {
	rows, err := Fig15([]float64{0.055}, 20000, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	positive := 0
	for _, r := range rows {
		if !r.Sorted {
			t.Fatalf("%s: unsorted", r.Algorithm)
		}
		if r.WriteReduction > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("no histogram-radix configuration shows write reduction at T=0.055")
	}
}

func TestAccessTimeReduction(t *testing.T) {
	row, err := AccessTime(sorts.MSD{Bits: 3}, 0.055, 30000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if row.LatencyReduction <= 0 {
		t.Errorf("latency-sum access-time reduction = %v, want positive (abstract: up to 11%%)",
			row.LatencyReduction)
	}
	if row.HybridStats.Clock != row.HybridClockNanos {
		t.Error("stats clock mismatch")
	}
	if row.HybridStats.L1Hits == 0 {
		t.Error("cache hierarchy seemingly bypassed")
	}
	if row.BaselineClockNanos <= 0 || row.HybridClockNanos <= 0 {
		t.Error("queue-aware clocks missing")
	}
}
