package experiments

import (
	"testing"

	"approxsort/internal/sorts"
)

// TestPriorityStudyImprovesSortQuality checks the Section 2 claim end to
// end: at the same mean precision, prioritizing high-order bits shrinks
// both the error magnitude and the resulting disorder after sorting.
func TestPriorityStudyImprovesSortQuality(t *testing.T) {
	row, err := PriorityStudy(sorts.Quicksort{}, 0.075, 0.03, 0.12, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Uniform.ErrorRate == 0 || row.Priority.ErrorRate == 0 {
		t.Fatal("no errors at T=0.075; study inconclusive")
	}
	if row.Priority.MeanAbsDeviation >= row.Uniform.MeanAbsDeviation/4 {
		t.Errorf("priority deviation %v not well below uniform %v",
			row.Priority.MeanAbsDeviation, row.Uniform.MeanAbsDeviation)
	}
	if row.Priority.RemRatio >= row.Uniform.RemRatio {
		t.Errorf("priority Rem ratio %v not below uniform %v",
			row.Priority.RemRatio, row.Uniform.RemRatio)
	}
}
