package experiments

// Parity tests for the memmodel seam: the spintronic wrappers must
// reproduce the pre-seam pipeline (which derived its own seeds and ran
// its own parallel sweep) field-for-field, and the generic entry points
// must behave identically under every registered backend. The pinned
// literals below were captured from the dedicated spintronic pipeline
// before it was collapsed into backend.go.

import (
	"errors"
	"reflect"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/memmodel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

const (
	parityN    = 600
	paritySeed = 97531
)

func parityAlgs() []sorts.Algorithm {
	return []sorts.Algorithm{sorts.MSD{Bits: 6}, sorts.Quicksort{}}
}

// TestSpinRefineParity replays every (algorithm, preset) cell with the
// pre-seam seed derivation and compares the rows field-for-field —
// including exact float equality — against pinned values. Counts,
// Rem~ ratios and sortedness are pinned from the dedicated pipeline
// before the memmodel refactor; the energy floats were re-pinned when
// accounting moved to the Raw/Fold scheme (mem.Fold), which derives
// aggregate energy as the exact product writes × perWrite instead of a
// per-access running sum — same value up to the old sum's accumulated
// rounding (≈1e-13 relative), with the integer-valued fields unchanged.
func TestSpinRefineParity(t *testing.T) {
	want := []SpinRefineRow{
		{Algorithm: "6-bit MSD", Saving: 0.05, BitErrorProb: 1e-07, N: 600, EnergySaving: -0.2703938584779706, ApproxEnergy: 6412.2, RefineEnergy: 1200, RemTildeRatio: 0, Sorted: true},
		{Algorithm: "6-bit MSD", Saving: 0.2, BitErrorProb: 1e-06, N: 600, EnergySaving: -0.18037383177570088, ApproxEnergy: 5872.8, RefineEnergy: 1200, RemTildeRatio: 0, Sorted: true},
		{Algorithm: "6-bit MSD", Saving: 0.33, BitErrorProb: 1e-05, N: 600, EnergySaving: -0.10196428571428551, ApproxEnergy: 5396.969999999999, RefineEnergy: 1206, RemTildeRatio: 0.0033333333333333335, Sorted: true},
		{Algorithm: "6-bit MSD", Saving: 0.5, BitErrorProb: 0.0001, N: 600, EnergySaving: -0.0011682242990653791, ApproxEnergy: 4797, RefineEnergy: 1202, RemTildeRatio: 0.0016666666666666668, Sorted: true},
		{Algorithm: "Quicksort", Saving: 0.05, BitErrorProb: 1e-07, N: 600, EnergySaving: -0.19802299495232734, ApproxEnergy: 7344.299999999999, RefineEnergy: 1200, RemTildeRatio: 0, Sorted: true},
		{Algorithm: "Quicksort", Saving: 0.2, BitErrorProb: 1e-06, N: 600, EnergySaving: -0.12495803021824292, ApproxEnergy: 6841.200000000001, RefineEnergy: 1200, RemTildeRatio: 0, Sorted: true},
		{Algorithm: "Quicksort", Saving: 0.33, BitErrorProb: 1e-05, N: 600, EnergySaving: -0.06484632896983489, ApproxEnergy: 6283.74, RefineEnergy: 1200, RemTildeRatio: 0, Sorted: true},
		{Algorithm: "Quicksort", Saving: 0.5, BitErrorProb: 0.0001, N: 600, EnergySaving: 0.035042735042735029, ApproxEnergy: 5544, RefineEnergy: 1230, RemTildeRatio: 0.011666666666666667, Sorted: true},
	}

	keys := dataset.Uniform(parityN, paritySeed)
	i := 0
	for _, alg := range parityAlgs() {
		for _, cfg := range spintronic.Presets() {
			// The pre-seam per-cell derivation (the removed splitSpin).
			seed := rng.Split(paritySeed, alg.Name(), cfg.Saving, cfg.BitErrorProb)
			got, err := SpinRefine(alg, cfg, keys, seed)
			if err != nil {
				t.Fatalf("%s save=%g: %v", alg.Name(), cfg.Saving, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s save=%g:\n got  %+v\n want %+v", alg.Name(), cfg.Saving, got, want[i])
			}
			i++
		}
	}
}

// TestFig12Parity pins the sortedness metrics of the sort-only spintronic
// sweep against pre-seam values, at a non-serial worker count.
func TestFig12Parity(t *testing.T) {
	rows, err := Fig12(parityAlgs(), spintronic.Presets(), parityN, paritySeed, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRem := []float64{
		0, 0, 0, 0, // 6-bit MSD
		0, 0, 0, 0.0033333333333333335, // Quicksort
	}
	wantErr := []float64{
		0, 0, 0.0033333333333333335, 0.014999999999999999,
		0, 0, 0.0033333333333333335, 0.014999999999999999,
	}
	if len(rows) != len(wantRem) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantRem))
	}
	for i, r := range rows {
		if r.RemRatio != wantRem[i] || r.ErrorRate != wantErr[i] {
			t.Errorf("%s save=%g: RemRatio=%v ErrorRate=%v, want %v / %v",
				r.Algorithm, r.Saving, r.RemRatio, r.ErrorRate, wantRem[i], wantErr[i])
		}
	}
}

// TestShapeAtRunsUnderEveryRegisteredBackend drives the Figure 5–7 shape
// probe through the registry for every backend, at its default operating
// point: the output must be a full-length, nearly sorted sequence under
// each device model.
func TestShapeAtRunsUnderEveryRegisteredBackend(t *testing.T) {
	const n, seed = 4000, 777
	for _, name := range memmodel.Names() {
		b := memmodel.MustGet(name)
		out, err := ShapeAt(sorts.MSD{Bits: 6}, b.DefaultPoint(), n, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != n {
			t.Fatalf("%s: len=%d, want %d", name, len(out), n)
		}
		if rem := sortedness.RemRatio(out); rem > 0.1 {
			t.Errorf("%s: RemRatio=%v at the default point; expected nearly sorted", name, rem)
		}
	}
}

// TestShapeWrapperBitIdentical asserts the legacy T-parameterized Shape
// is exactly the generic probe at the corresponding pcm-mlc point.
func TestShapeWrapperBitIdentical(t *testing.T) {
	const n, seed, tHalf = 2000, 42, 0.07
	want, err := ShapeAt(sorts.Quicksort{}, memmodel.MLC(tHalf), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := Shape(sorts.Quicksort{}, tHalf, n, seed)
	if !reflect.DeepEqual(got, want) {
		t.Error("Shape(alg, t) diverged from ShapeAt(alg, MLC(t))")
	}
}

// TestSortOnlyAtUnknownBackend asserts the typed registry error survives
// the experiments layer, so callers can map it to a 4xx.
func TestSortOnlyAtUnknownBackend(t *testing.T) {
	_, err := SortOnlyAt(sorts.Quicksort{}, memmodel.Point{Backend: "memristor"}, []uint32{3, 1, 2}, 1)
	var unknown *memmodel.UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *memmodel.UnknownBackendError", err)
	}
	if _, err := RefineAt(sorts.Quicksort{}, memmodel.Point{Backend: "memristor"}, []uint32{3, 1, 2}, 1); !errors.As(err, &unknown) {
		t.Fatalf("RefineAt err = %v, want *memmodel.UnknownBackendError", err)
	}
}
