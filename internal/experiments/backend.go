package experiments

// This file is the backend-generic core of the evaluation campaigns:
// every figure function in experiments.go and spin.go is a thin wrapper
// over SortOnlyAt / RefineAt / the *Grid sweeps here, parameterized by a
// memmodel.Point instead of a concrete device model. Seed derivations and
// stage accounting are pinned byte-identically by cmd/regress, so the
// wrappers reproduce the exact pre-seam golden rows for both registered
// backends.

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// algPoint is one (algorithm, backend operating point) cell of a
// row-major flattened study grid.
type algPoint struct {
	alg sorts.Algorithm
	pt  memmodel.Point
}

func algPointGrid(algs []sorts.Algorithm, pts []memmodel.Point) []algPoint {
	grid := make([]algPoint, 0, len(algs)*len(pts))
	for _, alg := range algs {
		for _, pt := range pts {
			grid = append(grid, algPoint{alg, pt})
		}
	}
	return grid
}

// resolvePoint resolves and normalizes a point against the registry.
func resolvePoint(pt memmodel.Point) (memmodel.Backend, memmodel.Point, error) {
	b, err := memmodel.Get(pt.Backend)
	if err != nil {
		return nil, memmodel.Point{}, err
	}
	npt, err := b.Normalize(pt)
	if err != nil {
		return nil, memmodel.Point{}, err
	}
	return b, npt, nil
}

// mlcT returns the half-width for pcm-mlc points and 0 for every other
// backend — the legacy RefineRow/SortOnlyRow T column.
func mlcT(pt memmodel.Point) float64 {
	if pt.Backend != memmodel.PCMMLC {
		return 0
	}
	t, _ := pt.Param("t")
	return t
}

// SortOnlyAt sorts keys entirely in approximate memory at the given
// backend point and measures the Section 3 / Appendix A sort-only
// quantities. A shadow record-ID array (in its own uncharged precise
// space) tracks element identity for the error-rate metric, and the
// identical sort on precise memory provides the write-reduction
// reference. The run is audited by verify.CheckApproxRun — including the
// backend's accounting identities — before its row is reported. seed is
// the point's stream seed; the backend's pinned SortOnlySeeds schedule
// derives the space and sort streams from it.
func SortOnlyAt(alg sorts.Algorithm, pt memmodel.Point, keys []uint32, seed uint64) (SortOnlyRow, error) {
	b, pt, err := resolvePoint(pt)
	if err != nil {
		return SortOnlyRow{}, fmt.Errorf("experiments: %w", err)
	}
	n := len(keys)
	spaceSeed, sortSeed := b.SortOnlySeeds(seed)
	approx := b.NewApprox(pt, spaceSeed)
	shadow := mem.NewPreciseSpace() // IDs: instrumentation only
	p := sorts.Pair{Keys: approx.Alloc(n), IDs: shadow.Alloc(n)}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(n))
	approx.ResetStats() // accounting starts after warm-up
	alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: shadow, R: rng.New(sortSeed)})
	approxStats := approx.Stats()

	// Reference: the identical sort on precise memory, from an identical
	// pivot stream.
	precise := b.NewPrecise()
	q := sorts.Pair{Keys: precise.Alloc(n)}
	mem.Load(q.Keys, keys)
	precise.ResetStats()
	alg.Sort(q, sorts.Env{KeySpace: precise, IDSpace: shadow, R: rng.New(sortSeed)})
	preciseNanos := precise.Stats().WriteNanos

	out := mem.PeekAll(p.Keys)   //nolint:memescape // measurement-only peek after the accounted run; charged reads would perturb Eq. 1
	idsRaw := mem.PeekAll(p.IDs) //nolint:memescape // shadow IDs live in an uncharged instrumentation space
	ids := make([]int, n)
	for i, v := range idsRaw {
		ids[i] = int(v)
	}
	if err := verify.CheckApproxRun(keys, out, ids, approxStats, b.Identities(pt)).Err(); err != nil {
		return SortOnlyRow{}, fmt.Errorf("experiments: %s %s n=%d: %w", alg.Name(), pt, n, err)
	}
	row := SortOnlyRow{
		Algorithm: alg.Name(),
		Backend:   b.Name(),
		Point:     pt,
		T:         mlcT(pt),
		N:         n,
		ErrorRate: sortedness.ErrorRate(out, ids, keys),
		RemRatio:  sortedness.RemRatio(out),
	}
	if preciseNanos > 0 {
		row.WriteReduction = 1 - approxStats.WriteNanos/preciseNanos
	}
	return row, nil
}

// SortOnlyGrid sweeps every (algorithm, point) cell of the sort-only
// study on the worker pool. Per-cell streams are keyed by the cell's
// coordinates (memmodel.SplitPoint), so rows are bit-identical for any
// worker count and stable under roster reordering.
func SortOnlyGrid(algs []sorts.Algorithm, pts []memmodel.Point, n int, seed uint64, workers int) ([]SortOnlyRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algPointGrid(algs, pts), workers, func(_ int, p algPoint) (SortOnlyRow, error) {
		b, pt, err := resolvePoint(p.pt)
		if err != nil {
			return SortOnlyRow{}, fmt.Errorf("experiments: %w", err)
		}
		return SortOnlyAt(p.alg, pt, keys, memmodel.SplitPoint(seed, p.alg.Name(), b, pt))
	})
}

// RefineAt runs approx-refine once at the given backend point and derives
// the Figure 9–11 / 13–14 quantities. Every run is audited by
// verify.CheckRefineRun against the backend's identity set before its row
// is reported: a sweep cannot silently emit figure data from a run that
// violated the precision contract or the write-accounting identities.
func RefineAt(alg sorts.Algorithm, pt memmodel.Point, keys []uint32, seed uint64) (RefineRow, error) {
	b, pt, err := resolvePoint(pt)
	if err != nil {
		return RefineRow{}, fmt.Errorf("experiments: %w", err)
	}
	res, err := core.Run(keys, core.Config{
		Algorithm: alg,
		NewSpace:  func(s uint64) core.Space { return b.NewApprox(pt, s) },
		Seed:      seed,
	})
	if err != nil {
		return RefineRow{}, err
	}
	if err := verify.CheckRefineRun(keys, res, b.Identities(pt)).Err(); err != nil {
		return RefineRow{}, fmt.Errorf("experiments: %s %s n=%d: %w", alg.Name(), pt, len(keys), err)
	}
	if err := verify.CheckAlgorithmWrites(alg, res.Report).Err(); err != nil {
		return RefineRow{}, fmt.Errorf("experiments: %s %s n=%d: %w", alg.Name(), pt, len(keys), err)
	}
	r := res.Report
	row := RefineRow{
		Algorithm:          r.Algorithm,
		Backend:            b.Name(),
		Point:              pt,
		T:                  mlcT(pt),
		N:                  r.N,
		WriteReduction:     r.WriteReduction(),
		RemTildeRatio:      r.RemTildeRatio(),
		ApproxWriteNanos:   r.ApproxPhase().WriteNanos(),
		RefineWriteNanos:   r.RefinePhase().WriteNanos(),
		BaselineWriteNanos: r.Baseline.WriteNanos,
		ApproxEnergy:       r.ApproxPhase().WriteEnergy(),
		RefineEnergy:       r.RefinePhase().WriteEnergy(),
		EnergySaving:       r.EnergySaving(),
		Sorted:             r.Sorted,
	}
	if alpha, err := core.AlphaFor(alg); err == nil {
		p := measuredP(r)
		row.ModelWR = core.CostModel{P: p, Alpha: alpha}.WriteReduction(r.N, r.RemTilde)
	}
	return row, nil
}

// RefineGrid sweeps every (algorithm, point) cell of the approx-refine
// study on the worker pool, with the same coordinate-keyed determinism
// contract as SortOnlyGrid.
func RefineGrid(algs []sorts.Algorithm, pts []memmodel.Point, n int, seed uint64, workers int) ([]RefineRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algPointGrid(algs, pts), workers, func(_ int, p algPoint) (RefineRow, error) {
		b, pt, err := resolvePoint(p.pt)
		if err != nil {
			return RefineRow{}, fmt.Errorf("experiments: %w", err)
		}
		return RefineAt(p.alg, pt, keys, memmodel.SplitPoint(seed, p.alg.Name(), b, pt))
	})
}

// ShapeAt returns the post-sort sequence X itself — the data behind the
// scatter plots of Figures 5–7 — at any backend point.
func ShapeAt(alg sorts.Algorithm, pt memmodel.Point, n int, seed uint64) ([]uint32, error) {
	b, pt, err := resolvePoint(pt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	keys := dataset.Uniform(n, seed)
	approx := b.NewApprox(pt, seed^0x5151)
	p := sorts.Pair{Keys: approx.Alloc(n)}
	mem.Load(p.Keys, keys)
	alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: b.NewPrecise(), R: rng.New(seed ^ 0x3333)})
	return mem.PeekAll(p.Keys), nil //nolint:memescape // the scatter-plot data is the raw stored sequence; nothing downstream is accounted
}

// mlcPoints lifts a T grid into pcm-mlc registry points.
func mlcPoints(ts []float64) []memmodel.Point {
	pts := make([]memmodel.Point, len(ts))
	for i, t := range ts {
		pts[i] = memmodel.MLC(t)
	}
	return pts
}
