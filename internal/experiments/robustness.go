package experiments

import (
	"fmt"

	"approxsort/internal/dataset"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
)

// Distribution names a key-distribution generator for the robustness
// study. The paper evaluates uniform keys only (Section 3.2); real
// database columns are frequently skewed, presorted or duplicate-heavy,
// and the refine stage's cost depends on Rem~, which these shapes stress
// differently (duplicates lengthen the non-decreasing LIS; presorted
// inputs minimize quicksort's writes; skew shrinks radix buckets).
type Distribution string

// The evaluated distributions.
const (
	DistUniform     Distribution = "uniform"
	DistSorted      Distribution = "sorted"
	DistReverse     Distribution = "reverse"
	DistZipf        Distribution = "zipf"
	DistFewDistinct Distribution = "fewdistinct"
)

// Distributions returns the full roster.
func Distributions() []Distribution {
	return []Distribution{DistUniform, DistSorted, DistReverse, DistZipf, DistFewDistinct}
}

// Generate materializes n keys of the distribution.
func (d Distribution) Generate(n int, seed uint64) ([]uint32, error) {
	switch d {
	case DistUniform:
		return dataset.Uniform(n, seed), nil
	case DistSorted:
		return dataset.Sorted(n), nil
	case DistReverse:
		return dataset.Reverse(n), nil
	case DistZipf:
		return dataset.Zipf(n, maxInt(n/16, 1), 1.2, seed), nil
	case DistFewDistinct:
		return dataset.FewDistinct(n, 16, seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown distribution %q", d)
	}
}

// RobustnessRow extends RefineRow with the input distribution.
type RobustnessRow struct {
	Distribution Distribution
	RefineRow
}

// Robustness runs approx-refine over every distribution at one (algorithm,
// T, n) point — the extension study behind DESIGN.md's workload-generator
// inventory. A row with Sorted == false would indicate a precision bug;
// none should ever appear.
func Robustness(algs []sorts.Algorithm, t float64, n int, seed uint64, workers int) ([]RobustnessRow, error) {
	type point struct {
		alg sorts.Algorithm
		d   Distribution
	}
	pts := make([]point, 0, len(algs)*len(Distributions()))
	for _, alg := range algs {
		for _, d := range Distributions() {
			pts = append(pts, point{alg, d})
		}
	}
	return parallel.Map(pts, workers, func(_ int, p point) (RobustnessRow, error) {
		keys, err := p.d.Generate(n, rng.Split(seed, "keys", string(p.d)))
		if err != nil {
			return RobustnessRow{}, err
		}
		row, err := Refine(p.alg, t, keys, rng.Split(seed, p.alg.Name(), string(p.d)))
		if err != nil {
			return RobustnessRow{}, err
		}
		return RobustnessRow{Distribution: p.d, RefineRow: row}, nil
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
