package experiments

import (
	"reflect"
	"testing"

	"approxsort/internal/mlc"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

// Every sweep in this package must be a pure function of its arguments:
// the worker count only changes wall-clock time, never a single bit of
// the result. Each test runs the same sweep at workers=1 and workers=8
// and requires reflect.DeepEqual equality.

const (
	detN    = 3000
	detSeed = 0x5eed
)

func detAlgs() []sorts.Algorithm {
	return []sorts.Algorithm{sorts.LSD{Bits: 3}, sorts.Quicksort{}}
}

func detTs() []float64 { return []float64{0.03, 0.055} }

func TestFig2WorkerInvariant(t *testing.T) {
	seq := Fig2(2000, detSeed, false, 1)
	par := Fig2(2000, detSeed, false, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig2: workers=8 differs from workers=1")
	}
}

func TestFig4WorkerInvariant(t *testing.T) {
	seq, err := Fig4(detAlgs(), detTs(), detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig4(detAlgs(), detTs(), detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig4: workers=8 differs from workers=1")
	}
}

func TestFig9WorkerInvariant(t *testing.T) {
	seq, err := Fig9(detAlgs(), detTs(), detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig9(detAlgs(), detTs(), detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig9: workers=8 differs from workers=1")
	}
}

func TestFig10WorkerInvariant(t *testing.T) {
	ns := []int{1000, 3000}
	seq, err := Fig10(detAlgs(), 0.055, ns, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(detAlgs(), 0.055, ns, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig10: workers=8 differs from workers=1")
	}
}

func TestFig11WorkerInvariant(t *testing.T) {
	seq, err := Fig11(detAlgs(), 0.055, detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig11(detAlgs(), 0.055, detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig11: workers=8 differs from workers=1")
	}
}

func TestMeasureComparisonWorkerInvariant(t *testing.T) {
	seq, err := MeasureComparison(sorts.Quicksort{}, detTs(), detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureComparison(sorts.Quicksort{}, detTs(), detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("MeasureComparison: workers=8 differs from workers=1")
	}
}

func TestRobustnessWorkerInvariant(t *testing.T) {
	seq, err := Robustness(detAlgs(), 0.055, detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Robustness(detAlgs(), 0.055, detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Robustness: workers=8 differs from workers=1")
	}
}

func TestFig12WorkerInvariant(t *testing.T) {
	cfgs := spintronic.Presets()[:2]
	seq, err := Fig12(detAlgs(), cfgs, detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig12(detAlgs(), cfgs, detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig12: workers=8 differs from workers=1")
	}
}

func TestFig13WorkerInvariant(t *testing.T) {
	cfgs := spintronic.Presets()[:2]
	seq, err := Fig13(detAlgs(), cfgs, detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13(detAlgs(), cfgs, detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig13: workers=8 differs from workers=1")
	}
}

func TestFig15WorkerInvariant(t *testing.T) {
	seq, err := Fig15(detTs(), detN, detSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig15(detTs(), detN, detSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig15: workers=8 differs from workers=1")
	}
}

// The shared table cache must be a pure performance optimization: running
// a sweep with the cache disabled has to produce byte-identical rows.
func TestFig9CacheInvariant(t *testing.T) {
	cached, err := Fig9(detAlgs(), detTs(), detN, detSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := mlc.SetSharedTableCache(false)
	defer mlc.SetSharedTableCache(prev)
	uncached, err := Fig9(detAlgs(), detTs(), detN, detSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, uncached) {
		t.Error("Fig9 with the shared cache differs from Fig9 without it")
	}
}

// A sweep of A algorithms over K precision points must build exactly K
// transition tables: the table is a calibration artifact of its Params,
// shared across algorithms and run seeds.
func TestFig9BuildsOneTablePerT(t *testing.T) {
	algs := detAlgs()
	ts := detTs()
	mlc.SharedTables().Reset()
	if _, err := Fig9(algs, ts, detN, detSeed, 4); err != nil {
		t.Fatal(err)
	}
	misses := mlc.SharedTables().Misses()
	if misses != uint64(len(ts)) {
		t.Errorf("built %d tables for %d T-points (%d algorithms); want exactly %d",
			misses, len(ts), len(algs), len(ts))
	}
	if hits := mlc.SharedTables().Hits(); hits < uint64((len(algs)-1)*len(ts)) {
		t.Errorf("hits = %d, want at least %d", hits, (len(algs)-1)*len(ts))
	}
}
