package experiments

import (
	"testing"

	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

// TestPaperShapes is the consolidated regression over every qualitative
// claim EXPERIMENTS.md records, at sizes chosen to run in roughly a
// minute. It is skipped under -short; the per-figure tests elsewhere in
// this package cover the same ground piecewise at smaller sizes.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression skipped in -short mode")
	}
	const n = 60000
	const seed = 20260706

	t.Run("Fig2", func(t *testing.T) {
		rows := Fig2(20000, seed, false, 0)
		first, mid, last := rows[0], rows[6], rows[len(rows)-1]
		if first.AvgP < 2.8 || first.AvgP > 3.2 {
			t.Errorf("avg #P at precise T = %v, want ~2.98", first.AvgP)
		}
		if wr := mid.WriteReduction(); wr < 0.28 || wr > 0.38 {
			t.Errorf("write reduction at T=0.055 = %v, want ~0.33", wr)
		}
		if p := last.PRatio(); p < 0.45 || p > 0.55 {
			t.Errorf("p(0.1) = %v, want ~0.5", p)
		}
	})

	t.Run("Table3", func(t *testing.T) {
		algs := []sorts.Algorithm{sorts.Quicksort{}, sorts.Mergesort{}, sorts.LSD{Bits: 6}, sorts.MSD{Bits: 6}}
		rows, err := Fig4(algs, []float64{0.055, 0.1}, n, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			switch {
			case r.T == 0.055 && r.Algorithm != "Mergesort":
				if r.RemRatio > 0.05 {
					t.Errorf("%s Rem at 0.055 = %v, want nearly sorted", r.Algorithm, r.RemRatio)
				}
			case r.T == 0.055:
				if r.RemRatio < 0.3 {
					t.Errorf("mergesort Rem at 0.055 = %v, want catastrophic", r.RemRatio)
				}
			case r.T == 0.1:
				if r.RemRatio < 0.5 {
					t.Errorf("%s Rem at 0.1 = %v, want chaos", r.Algorithm, r.RemRatio)
				}
			}
		}
	})

	t.Run("Fig9", func(t *testing.T) {
		rows, err := Fig9([]sorts.Algorithm{sorts.LSD{Bits: 3}, sorts.Mergesort{}},
			[]float64{0.025, 0.055, 0.09}, n, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !r.Sorted {
				t.Fatalf("%s T=%v unsorted", r.Algorithm, r.T)
			}
			switch {
			case r.Algorithm == "3-bit LSD" && r.T == 0.055:
				if r.WriteReduction < 0.05 {
					t.Errorf("3-bit LSD WR at sweet spot = %v, want ~0.10", r.WriteReduction)
				}
			case r.T == 0.025:
				if r.WriteReduction >= 0 {
					t.Errorf("%s WR at precise T = %v, want negative", r.Algorithm, r.WriteReduction)
				}
			case r.Algorithm == "Mergesort" && r.T >= 0.055:
				if r.WriteReduction > 0 {
					t.Errorf("mergesort WR = %v at T=%v, want never positive here", r.WriteReduction, r.T)
				}
			}
		}
	})

	t.Run("Fig13", func(t *testing.T) {
		rows, err := Fig13([]sorts.Algorithm{sorts.LSD{Bits: 3}}, spintronic.Presets()[1:3], n, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		won := false
		for _, r := range rows {
			if !r.Sorted {
				t.Fatal("spintronic output unsorted")
			}
			if r.EnergySaving > 0 {
				won = true
			}
		}
		if !won {
			t.Error("no spintronic operating point saved energy for 3-bit LSD")
		}
	})

	t.Run("Fig15", func(t *testing.T) {
		rows, err := Fig15([]float64{0.055}, n, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		var hist3 float64
		for _, r := range rows {
			if r.Algorithm == "3-bit hist-LSD" {
				hist3 = r.WriteReduction
			}
		}
		if hist3 <= 0 {
			t.Errorf("3-bit hist-LSD WR = %v, want positive at sweet spot", hist3)
		}
	})

	t.Run("AccessTime", func(t *testing.T) {
		row, err := AccessTime(sorts.LSD{Bits: 3}, 0.055, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if row.LatencyReduction <= 0.02 {
			t.Errorf("latency-sum reduction = %v, want clearly positive", row.LatencyReduction)
		}
	})
}
