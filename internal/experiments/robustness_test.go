package experiments

import (
	"testing"

	"approxsort/internal/sorts"
)

func TestDistributionsGenerate(t *testing.T) {
	for _, d := range Distributions() {
		keys, err := d.Generate(1000, 1)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(keys) != 1000 {
			t.Errorf("%s: got %d keys", d, len(keys))
		}
	}
	if _, err := Distribution("nope").Generate(10, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestRobustnessPrecisionAcrossDistributions(t *testing.T) {
	rows, err := Robustness([]sorts.Algorithm{sorts.Quicksort{}, sorts.LSD{Bits: 6}}, 0.08, 5000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Distributions()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Sorted {
			t.Errorf("%s on %s: output not sorted", r.Algorithm, r.Distribution)
		}
	}
}

func TestMeasureComparisonJustifiesRem(t *testing.T) {
	rows, err := MeasureComparison(sorts.Quicksort{}, []float64{0.055, 0.08}, 10000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, high := rows[0], rows[1]
	// At the sweet spot Rem is a tiny fraction of n while Inv is already
	// enormous relative to Rem — the write-limited refine budget must be
	// based on Rem, not Inv.
	if ratio := float64(mid.Rem) / float64(mid.N); ratio > 0.05 {
		t.Errorf("Rem/n at 0.055 = %v, want small", ratio)
	}
	if mid.Inv < uint64(mid.Rem)*100 {
		t.Errorf("Inv (%d) does not dwarf Rem (%d) at 0.055", mid.Inv, mid.Rem)
	}
	// Dis saturates early: a single far-displaced corrupted element
	// pushes it near n even while the sequence is 99% sorted.
	if mid.Dis < mid.Rem {
		t.Errorf("Dis (%d) should exceed Rem (%d) under sparse far corruption", mid.Dis, mid.Rem)
	}
	// All measures grow with T.
	if high.Rem <= mid.Rem || high.Inv <= mid.Inv || high.Ham <= mid.Ham {
		t.Errorf("measures did not grow with T: %+v vs %+v", mid.Measures, high.Measures)
	}
}

func TestRobustnessDuplicatesShrinkRemainder(t *testing.T) {
	// With 16 distinct values a non-decreasing LIS survives most
	// corruption (a flipped key often still fits the run), so Rem~ on
	// fewdistinct inputs should undercut uniform at the same T.
	rows, err := Robustness([]sorts.Algorithm{sorts.Quicksort{}}, 0.07, 20000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var uniform, few RobustnessRow
	for _, r := range rows {
		switch r.Distribution {
		case DistUniform:
			uniform = r
		case DistFewDistinct:
			few = r
		}
	}
	if few.RemTildeRatio >= uniform.RemTildeRatio {
		t.Errorf("fewdistinct Rem~ ratio %v not below uniform %v",
			few.RemTildeRatio, uniform.RemTildeRatio)
	}
}
