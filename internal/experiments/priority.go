package experiments

import (
	"fmt"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// PriorityRow compares uniform-precision approximate storage against the
// bit-priority configuration of Section 2 at the same mean target
// half-width: identical write budgets, errors pushed into low-order bits.
type PriorityRow struct {
	Algorithm string
	MeanT     float64
	N         int
	// Uniform and Priority hold the post-sort measurements for the two
	// configurations.
	Uniform, Priority struct {
		RemRatio  float64
		ErrorRate float64
		// MeanAbsDeviation is the mean |corrupted − original| over
		// deviating elements — the "magnitude of errors" that bit
		// priority minimizes.
		MeanAbsDeviation float64
	}
}

// PriorityStudy sorts in approximate memory only, once with a uniform T
// and once with a bit-priority schedule of the same mean, and measures
// both sortedness and error magnitude. Each of the two runs is audited
// by verify.CheckApproxRun before its measurements enter the row.
func PriorityStudy(alg sorts.Algorithm, meanT, tLow, tHigh float64, n int, seed uint64) (PriorityRow, error) {
	keys := dataset.Uniform(n, seed)
	row := PriorityRow{Algorithm: alg.Name(), MeanT: meanT, N: n}

	measure := func(model mlc.WordModel, spaceSeed uint64) (rem, errRate, dev float64, err error) {
		approx := mem.NewApproxSpace(model, spaceSeed)
		shadow := mem.NewPreciseSpace()
		p := sorts.Pair{Keys: approx.Alloc(n), IDs: shadow.Alloc(n)}
		mem.Load(p.Keys, keys)
		mem.Load(p.IDs, dataset.IDs(n))
		alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: shadow, R: rng.New(seed ^ 0x99)})
		out := mem.PeekAll(p.Keys)   //nolint:memescape // measurement-only peek after the accounted run
		idsRaw := mem.PeekAll(p.IDs) //nolint:memescape // shadow IDs live in an uncharged instrumentation space
		ids := make([]int, n)
		for i, v := range idsRaw {
			ids[i] = int(v)
		}
		mlcID := memmodel.MustGet(memmodel.PCMMLC).Identities(memmodel.Point{})
		if err := verify.CheckApproxRun(keys, out, ids, approx.Stats(), mlcID).Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("experiments: %s meanT=%g n=%d: %w", alg.Name(), meanT, n, err)
		}
		var devSum float64
		devs := 0
		for i := range ids {
			orig := keys[ids[i]]
			if out[i] != orig {
				d := float64(out[i]) - float64(orig)
				if d < 0 {
					d = -d
				}
				devSum += d
				devs++
			}
		}
		if devs > 0 {
			dev = devSum / float64(devs)
		}
		return sortedness.RemRatio(out), sortedness.ErrorRate(out, ids, keys), dev, nil
	}

	var err error
	row.Uniform.RemRatio, row.Uniform.ErrorRate, row.Uniform.MeanAbsDeviation, err =
		measure(mlc.CachedTable(mlc.Approximate(meanT), 0, mlc.CalibrationSeed), seed^0x2)
	if err != nil {
		return PriorityRow{}, err
	}
	row.Priority.RemRatio, row.Priority.ErrorRate, row.Priority.MeanAbsDeviation, err =
		measure(mlc.NewPriority(mlc.Approximate(meanT), tLow, tHigh), seed^0x3)
	if err != nil {
		return PriorityRow{}, err
	}
	return row, nil
}
