package experiments

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
	"approxsort/internal/verify"
)

// algCfg is one (algorithm, operating point) grid point of the Appendix A
// studies.
type algCfg struct {
	alg sorts.Algorithm
	cfg spintronic.Config
}

func algCfgGrid(algs []sorts.Algorithm, cfgs []spintronic.Config) []algCfg {
	pts := make([]algCfg, 0, len(algs)*len(cfgs))
	for _, alg := range algs {
		for _, cfg := range cfgs {
			pts = append(pts, algCfg{alg, cfg})
		}
	}
	return pts
}

// splitSpin keys a point's seed by its coordinates: the algorithm name and
// the operating point's (saving, error-probability) pair.
func splitSpin(seed uint64, p algCfg) uint64 {
	return rng.Split(seed, p.alg.Name(), p.cfg.Saving, p.cfg.BitErrorProb)
}

// SpinSortRow is one point of the Appendix A sorting-only study
// (Figure 12): sortedness after sorting entirely in approximate spintronic
// memory.
type SpinSortRow struct {
	Algorithm string
	// Saving is the per-write energy saving fraction of the operating
	// point; BitErrorProb its per-bit error probability.
	Saving       float64
	BitErrorProb float64
	N            int
	RemRatio     float64
	ErrorRate    float64
}

// Fig12 sorts in approximate spintronic memory only, per operating point
// (Figure 12). Every run is audited by verify.CheckApproxRun before its
// row is emitted.
func Fig12(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64, workers int) ([]SpinSortRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algCfgGrid(algs, cfgs), workers, func(_ int, p algCfg) (SpinSortRow, error) {
		ps := splitSpin(seed, p)
		space := spintronic.NewSpace(p.cfg, rng.Split(ps, "space"))
		shadow := mem.NewPreciseSpace()
		pair := sorts.Pair{Keys: space.Alloc(n), IDs: shadow.Alloc(n)}
		mem.Load(pair.Keys, keys)
		mem.Load(pair.IDs, dataset.IDs(n))
		p.alg.Sort(pair, sorts.Env{KeySpace: space, IDSpace: shadow, R: rng.New(rng.Split(ps, "sort"))})
		out := mem.PeekAll(pair.Keys)   //nolint:memescape // measurement-only peek after the accounted run
		idsRaw := mem.PeekAll(pair.IDs) //nolint:memescape // shadow IDs live in an uncharged instrumentation space
		ids := make([]int, n)
		for j, v := range idsRaw {
			ids[j] = int(v)
		}
		if err := verify.CheckApproxRun(keys, out, ids).Err(); err != nil {
			return SpinSortRow{}, fmt.Errorf("experiments: %s spin(%g,%g) n=%d: %w",
				p.alg.Name(), p.cfg.Saving, p.cfg.BitErrorProb, n, err)
		}
		return SpinSortRow{
			Algorithm:    p.alg.Name(),
			Saving:       p.cfg.Saving,
			BitErrorProb: p.cfg.BitErrorProb,
			N:            n,
			RemRatio:     sortedness.RemRatio(out),
			ErrorRate:    sortedness.ErrorRate(out, ids, keys),
		}, nil
	})
}

// SpinRefineRow is one point of the Appendix A approx-refine study
// (Figures 13 and 14).
type SpinRefineRow struct {
	Algorithm    string
	Saving       float64
	BitErrorProb float64
	N            int
	// EnergySaving is the total write-energy saving versus the
	// precise-only baseline (Figure 13).
	EnergySaving float64
	// ApproxEnergy and RefineEnergy decompose the hybrid run's write
	// energy (Figure 14's bar segments, precise-write units).
	ApproxEnergy, RefineEnergy float64
	RemTildeRatio              float64
	Sorted                     bool
}

// SpinRefine runs approx-refine on the spintronic model at one operating
// point. Like Refine, the run is audited by the invariant checker (the
// checker skips the MLC-only energy identities for custom spaces).
func SpinRefine(alg sorts.Algorithm, cfg spintronic.Config, keys []uint32, seed uint64) (SpinRefineRow, error) {
	res, err := core.Run(keys, core.Config{
		Algorithm: alg,
		NewSpace:  func(s uint64) core.Space { return spintronic.NewSpace(cfg, s) },
		Seed:      seed,
	})
	if err != nil {
		return SpinRefineRow{}, err
	}
	if err := verify.Check(keys, res).Err(); err != nil {
		return SpinRefineRow{}, fmt.Errorf("experiments: %s spin(%g,%g) n=%d: %w",
			alg.Name(), cfg.Saving, cfg.BitErrorProb, len(keys), err)
	}
	r := res.Report
	return SpinRefineRow{
		Algorithm:     r.Algorithm,
		Saving:        cfg.Saving,
		BitErrorProb:  cfg.BitErrorProb,
		N:             r.N,
		EnergySaving:  r.EnergySaving(),
		ApproxEnergy:  r.ApproxPhase().WriteEnergy(),
		RefineEnergy:  r.RefinePhase().WriteEnergy(),
		RemTildeRatio: r.RemTildeRatio(),
		Sorted:        r.Sorted,
	}, nil
}

// Fig13 sweeps the operating points for each algorithm (Figure 13; the
// same rows' energy decomposition at the 33% point is Figure 14).
func Fig13(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64, workers int) ([]SpinRefineRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(algCfgGrid(algs, cfgs), workers, func(_ int, p algCfg) (SpinRefineRow, error) {
		return SpinRefine(p.alg, p.cfg, keys, splitSpin(seed, p))
	})
}
