package experiments

import (
	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

// SpinSortRow is one point of the Appendix A sorting-only study
// (Figure 12): sortedness after sorting entirely in approximate spintronic
// memory.
type SpinSortRow struct {
	Algorithm string
	// Saving is the per-write energy saving fraction of the operating
	// point; BitErrorProb its per-bit error probability.
	Saving       float64
	BitErrorProb float64
	N            int
	RemRatio     float64
	ErrorRate    float64
}

// Fig12 sorts in approximate spintronic memory only, per operating point
// (Figure 12).
func Fig12(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64) []SpinSortRow {
	keys := dataset.Uniform(n, seed)
	rows := make([]SpinSortRow, 0, len(algs)*len(cfgs))
	for _, alg := range algs {
		for i, cfg := range cfgs {
			space := spintronic.NewSpace(cfg, seed+uint64(i)*13)
			shadow := mem.NewPreciseSpace()
			p := sorts.Pair{Keys: space.Alloc(n), IDs: shadow.Alloc(n)}
			mem.Load(p.Keys, keys)
			mem.Load(p.IDs, dataset.IDs(n))
			alg.Sort(p, sorts.Env{KeySpace: space, IDSpace: shadow, R: rng.New(seed ^ 0x77)})
			out := mem.PeekAll(p.Keys)
			idsRaw := mem.PeekAll(p.IDs)
			ids := make([]int, n)
			for j, v := range idsRaw {
				ids[j] = int(v)
			}
			rows = append(rows, SpinSortRow{
				Algorithm:    alg.Name(),
				Saving:       cfg.Saving,
				BitErrorProb: cfg.BitErrorProb,
				N:            n,
				RemRatio:     sortedness.RemRatio(out),
				ErrorRate:    sortedness.ErrorRate(out, ids, keys),
			})
		}
	}
	return rows
}

// SpinRefineRow is one point of the Appendix A approx-refine study
// (Figures 13 and 14).
type SpinRefineRow struct {
	Algorithm    string
	Saving       float64
	BitErrorProb float64
	N            int
	// EnergySaving is the total write-energy saving versus the
	// precise-only baseline (Figure 13).
	EnergySaving float64
	// ApproxEnergy and RefineEnergy decompose the hybrid run's write
	// energy (Figure 14's bar segments, precise-write units).
	ApproxEnergy, RefineEnergy float64
	RemTildeRatio              float64
	Sorted                     bool
}

// SpinRefine runs approx-refine on the spintronic model at one operating
// point.
func SpinRefine(alg sorts.Algorithm, cfg spintronic.Config, keys []uint32, seed uint64) (SpinRefineRow, error) {
	res, err := core.Run(keys, core.Config{
		Algorithm: alg,
		NewSpace:  func(s uint64) core.Space { return spintronic.NewSpace(cfg, s) },
		Seed:      seed,
	})
	if err != nil {
		return SpinRefineRow{}, err
	}
	r := res.Report
	return SpinRefineRow{
		Algorithm:     r.Algorithm,
		Saving:        cfg.Saving,
		BitErrorProb:  cfg.BitErrorProb,
		N:             r.N,
		EnergySaving:  r.EnergySaving(),
		ApproxEnergy:  r.ApproxPhase().WriteEnergy(),
		RefineEnergy:  r.RefinePhase().WriteEnergy(),
		RemTildeRatio: r.RemTildeRatio(),
		Sorted:        r.Sorted,
	}, nil
}

// Fig13 sweeps the operating points for each algorithm (Figure 13; the
// same rows' energy decomposition at the 33% point is Figure 14).
func Fig13(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64) ([]SpinRefineRow, error) {
	keys := dataset.Uniform(n, seed)
	rows := make([]SpinRefineRow, 0, len(algs)*len(cfgs))
	for _, alg := range algs {
		for i, cfg := range cfgs {
			row, err := SpinRefine(alg, cfg, keys, seed+uint64(i)*37)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
