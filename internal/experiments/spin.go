package experiments

// Appendix A: the spintronic-memory studies. Since the memmodel seam,
// these are conversion wrappers over the backend-generic pipeline in
// backend.go — Fig12 is SortOnlyGrid and SpinRefine/Fig13 are
// RefineAt/RefineGrid at "spintronic" registry points. The wrappers keep
// the pre-seam call signatures, row types, and seed schedule (the
// spintronic backend's SeedCoords and SortOnlySeeds reproduce the old
// splitSpin/space/sort derivations bit-for-bit, pinned by tests and
// cmd/regress).

import (
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

// spinPoints lifts Appendix A operating points into spintronic registry
// points.
func spinPoints(cfgs []spintronic.Config) []memmodel.Point {
	pts := make([]memmodel.Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = memmodel.Spintronic(cfg)
	}
	return pts
}

// spinParams recovers the (saving, error-probability) coordinates from a
// normalized spintronic point.
func spinParams(pt memmodel.Point) (saving, bitErrorProb float64) {
	saving, _ = pt.Param("saving")
	bitErrorProb, _ = pt.Param("bit_error_prob")
	return saving, bitErrorProb
}

// SpinSortRow is one point of the Appendix A sorting-only study
// (Figure 12): sortedness after sorting entirely in approximate spintronic
// memory.
type SpinSortRow struct {
	Algorithm string
	// Saving is the per-write energy saving fraction of the operating
	// point; BitErrorProb its per-bit error probability.
	Saving       float64
	BitErrorProb float64
	N            int
	RemRatio     float64
	ErrorRate    float64
}

// Fig12 sorts in approximate spintronic memory only, per operating point
// (Figure 12). Every run is audited by verify.CheckApproxRun before its
// row is emitted.
func Fig12(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64, workers int) ([]SpinSortRow, error) {
	rows, err := SortOnlyGrid(algs, spinPoints(cfgs), n, seed, workers)
	if err != nil {
		return nil, err
	}
	out := make([]SpinSortRow, len(rows))
	for i, r := range rows {
		saving, prob := spinParams(r.Point)
		out[i] = SpinSortRow{
			Algorithm:    r.Algorithm,
			Saving:       saving,
			BitErrorProb: prob,
			N:            r.N,
			RemRatio:     r.RemRatio,
			ErrorRate:    r.ErrorRate,
		}
	}
	return out, nil
}

// SpinRefineRow is one point of the Appendix A approx-refine study
// (Figures 13 and 14).
type SpinRefineRow struct {
	Algorithm    string
	Saving       float64
	BitErrorProb float64
	N            int
	// EnergySaving is the total write-energy saving versus the
	// precise-only baseline (Figure 13).
	EnergySaving float64
	// ApproxEnergy and RefineEnergy decompose the hybrid run's write
	// energy (Figure 14's bar segments, precise-write units).
	ApproxEnergy, RefineEnergy float64
	RemTildeRatio              float64
	Sorted                     bool
}

func toSpinRefineRow(r RefineRow) SpinRefineRow { //nolint:verifygate // pure field conversion of a row RefineAt already audited
	saving, prob := spinParams(r.Point)
	return SpinRefineRow{
		Algorithm:     r.Algorithm,
		Saving:        saving,
		BitErrorProb:  prob,
		N:             r.N,
		EnergySaving:  r.EnergySaving,
		ApproxEnergy:  r.ApproxEnergy,
		RefineEnergy:  r.RefineEnergy,
		RemTildeRatio: r.RemTildeRatio,
		Sorted:        r.Sorted,
	}
}

// SpinRefine runs approx-refine on the spintronic model at one operating
// point. Like Refine, the run is audited by the invariant checker —
// against the spintronic backend's accounting identities (fixed write
// latency, per-write energy of 1−Saving).
func SpinRefine(alg sorts.Algorithm, cfg spintronic.Config, keys []uint32, seed uint64) (SpinRefineRow, error) {
	row, err := RefineAt(alg, memmodel.Spintronic(cfg), keys, seed)
	if err != nil {
		return SpinRefineRow{}, err
	}
	return toSpinRefineRow(row), nil
}

// Fig13 sweeps the operating points for each algorithm (Figure 13; the
// same rows' energy decomposition at the 33% point is Figure 14).
func Fig13(algs []sorts.Algorithm, cfgs []spintronic.Config, n int, seed uint64, workers int) ([]SpinRefineRow, error) {
	rows, err := RefineGrid(algs, spinPoints(cfgs), n, seed, workers)
	if err != nil {
		return nil, err
	}
	out := make([]SpinRefineRow, len(rows))
	for i, r := range rows {
		out[i] = toSpinRefineRow(r)
	}
	return out, nil
}
