package experiments

import (
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

// MeasureRow evaluates every implemented disorder measure on the output
// of one approximate-memory sort — the measure-comparison study behind
// the paper's Section 3.3 choice of Rem over the alternatives surveyed in
// its reference [20].
type MeasureRow struct {
	Algorithm string
	T         float64
	sortedness.Measures
}

// MeasureComparison sorts keys in approximate memory at each T and
// measures the output under all measures. The study's point: Rem counts
// exactly the records the refine stage must handle (it tracks Rem~ and
// the refine write bill), while Inv and Osc blow up quadratically under
// the same corruption and Dis/Max saturate almost immediately — so they
// cannot budget a write-limited refinement.
func MeasureComparison(alg sorts.Algorithm, ts []float64, n int, seed uint64, workers int) []MeasureRow {
	keys := dataset.Uniform(n, seed)
	rows, _ := parallel.Map(ts, workers, func(_ int, t float64) (MeasureRow, error) {
		s := rng.Split(seed, alg.Name(), t)
		approx := mem.NewApproxSpaceAt(t, s)
		p := sorts.Pair{Keys: approx.Alloc(n)}
		mem.Load(p.Keys, keys)
		alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: mem.NewPreciseSpace(), R: rng.New(rng.Split(s, "sort"))})
		return MeasureRow{
			Algorithm: alg.Name(),
			T:         t,
			Measures:  sortedness.MeasureAll(mem.PeekAll(p.Keys)),
		}, nil
	})
	return rows
}
