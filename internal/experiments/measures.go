package experiments

import (
	"fmt"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
	"approxsort/internal/verify"
)

// MeasureRow evaluates every implemented disorder measure on the output
// of one approximate-memory sort — the measure-comparison study behind
// the paper's Section 3.3 choice of Rem over the alternatives surveyed in
// its reference [20].
type MeasureRow struct {
	Algorithm string
	T         float64
	sortedness.Measures
}

// MeasureComparison sorts keys in approximate memory at each T and
// measures the output under all measures. The study's point: Rem counts
// exactly the records the refine stage must handle (it tracks Rem~ and
// the refine write bill), while Inv and Osc blow up quadratically under
// the same corruption and Dis/Max saturate almost immediately — so they
// cannot budget a write-limited refinement.
//
// A shadow record-ID array (its own uncharged space, exactly as in
// SortOnly) tracks element identity so verify.CheckApproxRun can audit
// the run before the row is emitted; the measured key space's accounting
// is untouched.
func MeasureComparison(alg sorts.Algorithm, ts []float64, n int, seed uint64, workers int) ([]MeasureRow, error) {
	keys := dataset.Uniform(n, seed)
	return parallel.Map(ts, workers, func(_ int, t float64) (MeasureRow, error) {
		s := rng.Split(seed, alg.Name(), t)
		approx := mem.NewApproxSpaceAt(t, s)
		shadow := mem.NewPreciseSpace()
		p := sorts.Pair{Keys: approx.Alloc(n), IDs: shadow.Alloc(n)}
		mem.Load(p.Keys, keys)
		mem.Load(p.IDs, dataset.IDs(n))
		alg.Sort(p, sorts.Env{KeySpace: approx, IDSpace: shadow, R: rng.New(rng.Split(s, "sort"))})
		out := mem.PeekAll(p.Keys)   //nolint:memescape // measurement-only peek after the accounted run
		idsRaw := mem.PeekAll(p.IDs) //nolint:memescape // shadow IDs live in an uncharged instrumentation space
		ids := make([]int, n)
		for i, v := range idsRaw {
			ids[i] = int(v)
		}
		mlcID := memmodel.MustGet(memmodel.PCMMLC).Identities(memmodel.Point{})
		if err := verify.CheckApproxRun(keys, out, ids, approx.Stats(), mlcID).Err(); err != nil {
			return MeasureRow{}, fmt.Errorf("experiments: %s T=%g n=%d: %w", alg.Name(), t, n, err)
		}
		return MeasureRow{
			Algorithm: alg.Name(),
			T:         t,
			Measures:  sortedness.MeasureAll(out),
		}, nil
	})
}
