package sortedness

import "sort"

// This file implements the additional disorder measures from the survey
// the paper cites when motivating its choice of Rem (Estivill-Castro and
// Wood, "A survey of adaptive sorting algorithms", ACM Computing Surveys
// 1992 — reference [20]): Ham, Dis, Max and Osc. Together with Rem, Inv
// and Runs they let the measure-comparison experiment show why Rem is the
// right yardstick for the refine stage: Rem counts exactly the elements
// the refine stage must re-sort, while Inv and Osc explode quadratically
// under the same corruption.

// rankOf returns, for each position i, the position xs[i] would occupy in
// the sorted permutation, breaking ties by original position (the standard
// stable ranking used to define permutation-based measures on multisets).
func rankOf(xs []uint32) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	rank := make([]int, len(xs))
	for pos, i := range idx {
		rank[i] = pos
	}
	return rank
}

// Ham returns the Hamming distance from sortedness: the number of elements
// that are not at their sorted position (ties resolved stably).
func Ham(xs []uint32) int {
	out := 0
	for i, r := range rankOf(xs) {
		if r != i {
			out++
		}
	}
	return out
}

// Dis returns the largest distance an element must travel to reach its
// sorted position: max_i |rank(i) − i|.
func Dis(xs []uint32) int {
	out := 0
	for i, r := range rankOf(xs) {
		d := r - i
		if d < 0 {
			d = -d
		}
		if d > out {
			out = d
		}
	}
	return out
}

// Max is the survey's Max measure: the largest difference between an
// element and the element that should be at its position, normalized here
// as the maximum absolute key error against the sorted sequence. It is 0
// exactly when the sequence is sorted.
func Max(xs []uint32) uint32 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]uint32(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out uint32
	for i, v := range xs {
		var d uint32
		if v > sorted[i] {
			d = v - sorted[i]
		} else {
			d = sorted[i] - v
		}
		if d > out {
			out = d
		}
	}
	return out
}

// Osc returns Levcopoulos and Petersson's oscillation measure: the total
// number of times consecutive-position intervals cross element values —
// computed here in its common O(n log n) formulation as the sum over
// adjacent pairs of how many elements lie strictly between them.
func Osc(xs []uint32) uint64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	sorted := append([]uint32(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	countBetween := func(lo, hi uint32) uint64 {
		if lo > hi {
			lo, hi = hi, lo
		}
		// Elements v with lo < v < hi.
		a := sort.Search(n, func(i int) bool { return sorted[i] > lo })
		b := sort.Search(n, func(i int) bool { return sorted[i] >= hi })
		if b < a {
			return 0
		}
		return uint64(b - a)
	}
	var out uint64
	for i := 0; i+1 < n; i++ {
		out += countBetween(xs[i], xs[i+1])
	}
	return out
}

// Measures bundles every implemented disorder measure of a sequence for
// the measure-comparison study.
type Measures struct {
	N    int
	Rem  int
	Inv  uint64
	Runs int
	Ham  int
	Dis  int
	Max  uint32
	Osc  uint64
}

// MeasureAll evaluates all measures on xs.
func MeasureAll(xs []uint32) Measures {
	return Measures{
		N:    len(xs),
		Rem:  Rem(xs),
		Inv:  Inv(xs),
		Runs: Runs(xs),
		Ham:  Ham(xs),
		Dis:  Dis(xs),
		Max:  Max(xs),
		Osc:  Osc(xs),
	}
}
