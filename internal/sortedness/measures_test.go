package sortedness

import (
	"testing"
	"testing/quick"
)

func TestHamKnown(t *testing.T) {
	cases := []struct {
		xs   []uint32
		want int
	}{
		{nil, 0},
		{[]uint32{1, 2, 3}, 0},
		{[]uint32{2, 1, 3}, 2},
		{[]uint32{3, 1, 2}, 3},
		{[]uint32{1, 1, 1}, 0}, // stable ranking keeps ties in place
	}
	for _, tc := range cases {
		if got := Ham(tc.xs); got != tc.want {
			t.Errorf("Ham(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestDisKnown(t *testing.T) {
	cases := []struct {
		xs   []uint32
		want int
	}{
		{nil, 0},
		{[]uint32{1, 2, 3, 4}, 0},
		{[]uint32{4, 1, 2, 3}, 3}, // the 4 must travel to the end
		{[]uint32{2, 1}, 1},
	}
	for _, tc := range cases {
		if got := Dis(tc.xs); got != tc.want {
			t.Errorf("Dis(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestMaxKnown(t *testing.T) {
	if got := Max([]uint32{1, 2, 3}); got != 0 {
		t.Errorf("Max(sorted) = %d", got)
	}
	if got := Max([]uint32{10, 1}); got != 9 {
		t.Errorf("Max([10 1]) = %d, want 9", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %d", got)
	}
}

func TestOscKnown(t *testing.T) {
	if got := Osc([]uint32{1, 2, 3, 4}); got != 0 {
		t.Errorf("Osc(sorted) = %d, want 0", got)
	}
	// (1,4) brackets 2 and 3; (4,2) brackets 3; (2,3) brackets nothing.
	if got := Osc([]uint32{1, 4, 2, 3}); got != 3 {
		t.Errorf("Osc([1 4 2 3]) = %d, want 3", got)
	}
	if got := Osc([]uint32{7}); got != 0 {
		t.Errorf("Osc(single) = %d", got)
	}
}

func TestMeasuresZeroOnSorted(t *testing.T) {
	xs := []uint32{1, 2, 2, 3, 9}
	m := MeasureAll(xs)
	if m.Rem != 0 || m.Inv != 0 || m.Ham != 0 || m.Dis != 0 || m.Max != 0 || m.Osc != 0 {
		t.Errorf("sorted sequence has nonzero measures: %+v", m)
	}
	if m.Runs != 1 || m.N != 5 {
		t.Errorf("Runs/N wrong: %+v", m)
	}
}

func TestMeasureRelations(t *testing.T) {
	// Classic inequalities: Rem <= Ham (removing every misplaced element
	// sorts), Dis <= n-1, Ham <= n, and all zero iff sorted.
	f := func(xs []uint32) bool {
		if len(xs) > 200 {
			xs = xs[:200]
		}
		m := MeasureAll(xs)
		if m.Rem > m.Ham {
			return false
		}
		if len(xs) > 0 && (m.Dis > len(xs)-1 || m.Ham > len(xs)) {
			return false
		}
		sortedAll := IsSorted(xs)
		zeroAll := m.Inv == 0 && m.Dis == 0 && m.Max == 0
		return sortedAll == zeroAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHamStableUnderDuplicates(t *testing.T) {
	// All-equal sequences are sorted for every measure.
	xs := make([]uint32, 100)
	m := MeasureAll(xs)
	if m.Ham != 0 || m.Dis != 0 || m.Rem != 0 || m.Osc != 0 {
		t.Errorf("all-equal sequence measured as disordered: %+v", m)
	}
}

func BenchmarkMeasureAll(b *testing.B) {
	xs := make([]uint32, 20000)
	for i := range xs {
		xs[i] = uint32(i*2654435761) ^ 0x5bd1e995
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeasureAll(xs)
	}
}
