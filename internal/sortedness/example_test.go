package sortedness_test

import (
	"fmt"

	"approxsort/internal/sortedness"
)

// Rem is the paper's sortedness measure: the number of elements whose
// removal leaves a sorted sequence.
func ExampleRem() {
	nearlySorted := []uint32{1, 2, 9, 3, 4, 5}       // remove the 9
	fmt.Println(sortedness.Rem(nearlySorted))        // 1
	fmt.Println(sortedness.Rem([]uint32{5, 4, 3}))   // keep one element
	fmt.Println(sortedness.RemRatio([]uint32{2, 1})) // 1 of 2
	// Output:
	// 1
	// 2
	// 0.5
}

// MeasureAll evaluates every implemented disorder measure at once.
func ExampleMeasureAll() {
	m := sortedness.MeasureAll([]uint32{1, 4, 2, 3})
	fmt.Printf("Rem=%d Inv=%d Runs=%d Ham=%d Dis=%d\n", m.Rem, m.Inv, m.Runs, m.Ham, m.Dis)
	// Output:
	// Rem=1 Inv=2 Runs=2 Ham=3 Dis=2
}
