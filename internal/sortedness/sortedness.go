// Package sortedness implements the disorder measures used by the paper's
// Section 3.3 study: Rem (the number of elements that must be removed to
// leave a sorted sequence, i.e. n minus the length of the longest
// non-decreasing subsequence), the classical inversion count Inv, and the
// ascending-run count Runs, plus the post-sort error-rate metric of
// Figure 4(a).
package sortedness

import "sort"

// LNDSLength returns the length of the longest non-decreasing subsequence
// of xs in O(n log n) using patience sorting. Non-decreasing (rather than
// strictly increasing) is the right notion for sort outputs, which may
// contain duplicate keys.
func LNDSLength(xs []uint32) int {
	// tails[k] is the smallest possible tail of a non-decreasing
	// subsequence of length k+1.
	tails := make([]uint32, 0, 64)
	for _, x := range xs {
		// Find the first tail strictly greater than x and replace it;
		// if none, extend.
		i := sort.Search(len(tails), func(i int) bool { return tails[i] > x })
		if i == len(tails) {
			tails = append(tails, x)
		} else {
			tails[i] = x
		}
	}
	return len(tails)
}

// Rem returns the Rem measure of xs (Section 3.3):
//
//	Rem(X) = n − max{k | X has a non-decreasing subsequence of length k}.
//
// A sorted sequence has Rem = 0; a strictly decreasing one has Rem = n−1.
func Rem(xs []uint32) int { return len(xs) - LNDSLength(xs) }

// RemRatio returns Rem(xs)/n, the normalized measure plotted in Figure 4(b)
// and Table 3. It returns 0 for an empty sequence.
func RemRatio(xs []uint32) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(Rem(xs)) / float64(len(xs))
}

// Inv returns the number of inversion pairs (i < j with xs[i] > xs[j])
// counted by merge sort in O(n log n). The paper cites Inv as the
// alternative measure it decided against; it is provided for the
// measure-comparison study.
func Inv(xs []uint32) uint64 {
	buf := make([]uint32, len(xs))
	work := make([]uint32, len(xs))
	copy(work, xs)
	return invCount(work, buf)
}

func invCount(xs, buf []uint32) uint64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := invCount(xs[:mid], buf[:mid]) + invCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			// xs[i..mid) all exceed xs[j].
			inv += uint64(mid - i)
			buf[k] = xs[j]
			j++
		}
		k++
	}
	copy(buf[k:], xs[i:mid])
	copy(buf[k+(mid-i):], xs[j:])
	copy(xs, buf[:n])
	return inv
}

// Runs returns the number of maximal non-decreasing runs in xs. A sorted
// sequence has Runs = 1 (or 0 when empty).
func Runs(xs []uint32) int {
	if len(xs) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			runs++
		}
	}
	return runs
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []uint32) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// ErrorRate returns the proportion of positions whose key value deviates
// from the original value of the record occupying that position — the
// "imprecise elements rate" of Figure 4(a). keys[i] is the (possibly
// corrupted) key at position i after sorting, ids[i] identifies the record,
// and original[id] is the record's precise key.
func ErrorRate(keys []uint32, ids []int, original []uint32) float64 {
	if len(keys) == 0 {
		return 0
	}
	errs := 0
	for i, k := range keys {
		if original[ids[i]] != k {
			errs++
		}
	}
	return float64(errs) / float64(len(keys))
}

// SameMultiset reports whether a and b contain the same values with the
// same multiplicities. Used by tests to check that sorting permutes.
func SameMultiset(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[uint32]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	return true
}
