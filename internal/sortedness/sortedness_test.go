package sortedness

import (
	"sort"
	"testing"
	"testing/quick"

	"approxsort/internal/rng"
)

// bruteLNDS computes the longest non-decreasing subsequence in O(n²).
func bruteLNDS(xs []uint32) int {
	if len(xs) == 0 {
		return 0
	}
	best := make([]int, len(xs))
	m := 0
	for i := range xs {
		best[i] = 1
		for j := 0; j < i; j++ {
			if xs[j] <= xs[i] && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > m {
			m = best[i]
		}
	}
	return m
}

// bruteInv counts inversions in O(n²).
func bruteInv(xs []uint32) uint64 {
	var inv uint64
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] > xs[j] {
				inv++
			}
		}
	}
	return inv
}

func TestLNDSKnown(t *testing.T) {
	cases := []struct {
		xs   []uint32
		want int
	}{
		{nil, 0},
		{[]uint32{5}, 1},
		{[]uint32{1, 2, 3, 4}, 4},
		{[]uint32{4, 3, 2, 1}, 1},
		{[]uint32{2, 2, 2}, 3},
		{[]uint32{3, 1, 2, 5, 4}, 3},
		{[]uint32{1, 3, 2, 2, 4}, 4}, // duplicates extend a non-decreasing run
	}
	for _, tc := range cases {
		if got := LNDSLength(tc.xs); got != tc.want {
			t.Errorf("LNDSLength(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestLNDSMatchesBrute(t *testing.T) {
	f := func(xs []uint32) bool {
		if len(xs) > 200 {
			xs = xs[:200]
		}
		return LNDSLength(xs) == bruteLNDS(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLNDSSmallAlphabet(t *testing.T) {
	// Duplicate-heavy inputs stress the non-decreasing (vs strictly
	// increasing) boundary.
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		xs := make([]uint32, 60)
		for i := range xs {
			xs[i] = uint32(r.Intn(4))
		}
		if got, want := LNDSLength(xs), bruteLNDS(xs); got != want {
			t.Fatalf("LNDS(%v) = %d, want %d", xs, got, want)
		}
	}
}

func TestRemProperties(t *testing.T) {
	f := func(xs []uint32) bool {
		if len(xs) > 300 {
			xs = xs[:300]
		}
		r := Rem(xs)
		if r < 0 || r > len(xs) {
			return false
		}
		sorted := append([]uint32(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return Rem(sorted) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRemRatio(t *testing.T) {
	if RemRatio(nil) != 0 {
		t.Error("RemRatio(nil) != 0")
	}
	if got := RemRatio([]uint32{1, 2, 3, 4}); got != 0 {
		t.Errorf("RemRatio(sorted) = %v", got)
	}
	if got := RemRatio([]uint32{4, 3, 2, 1}); got != 0.75 {
		t.Errorf("RemRatio(reverse of 4) = %v, want 0.75", got)
	}
}

func TestInvKnown(t *testing.T) {
	cases := []struct {
		xs   []uint32
		want uint64
	}{
		{nil, 0},
		{[]uint32{1, 2, 3}, 0},
		{[]uint32{3, 2, 1}, 3},
		{[]uint32{2, 1, 3}, 1},
		{[]uint32{2, 2, 1}, 2},
	}
	for _, tc := range cases {
		if got := Inv(tc.xs); got != tc.want {
			t.Errorf("Inv(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestInvMatchesBruteAndDoesNotMutate(t *testing.T) {
	f := func(xs []uint32) bool {
		if len(xs) > 150 {
			xs = xs[:150]
		}
		orig := append([]uint32(nil), xs...)
		got := Inv(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false // Inv must not mutate its input
			}
		}
		return got == bruteInv(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRemAtMostInv(t *testing.T) {
	// Removing one endpoint of every inversion pair sorts the sequence,
	// so Rem <= Inv always.
	f := func(xs []uint32) bool {
		if len(xs) > 150 {
			xs = xs[:150]
		}
		return uint64(Rem(xs)) <= Inv(xs) || len(xs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRuns(t *testing.T) {
	cases := []struct {
		xs   []uint32
		want int
	}{
		{nil, 0},
		{[]uint32{1}, 1},
		{[]uint32{1, 2, 3}, 1},
		{[]uint32{3, 2, 1}, 3},
		{[]uint32{1, 3, 2, 4}, 2},
		{[]uint32{2, 2, 1, 1}, 2},
	}
	for _, tc := range cases {
		if got := Runs(tc.xs); got != tc.want {
			t.Errorf("Runs(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]uint32{1}) || !IsSorted([]uint32{1, 1, 2}) {
		t.Error("IsSorted false negative")
	}
	if IsSorted([]uint32{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func TestRunsConsistentWithIsSorted(t *testing.T) {
	f := func(xs []uint32) bool {
		if len(xs) == 0 {
			return Runs(xs) == 0
		}
		return (Runs(xs) == 1) == IsSorted(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrorRate(t *testing.T) {
	original := []uint32{10, 20, 30, 40}
	keys := []uint32{30, 10, 21, 40} // position 2 deviates (id 1 should be 20)
	ids := []int{2, 0, 1, 3}
	if got := ErrorRate(keys, ids, original); got != 0.25 {
		t.Errorf("ErrorRate = %v, want 0.25", got)
	}
	if ErrorRate(nil, nil, nil) != 0 {
		t.Error("ErrorRate(empty) != 0")
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]uint32{1, 2, 2}, []uint32{2, 1, 2}) {
		t.Error("false negative")
	}
	if SameMultiset([]uint32{1, 2, 2}, []uint32{1, 1, 2}) {
		t.Error("false positive: multiplicity")
	}
	if SameMultiset([]uint32{1}, []uint32{1, 1}) {
		t.Error("false positive: length")
	}
}

func BenchmarkLNDS(b *testing.B) {
	r := rng.New(1)
	xs := make([]uint32, 100000)
	for i := range xs {
		xs[i] = r.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LNDSLength(xs)
	}
}

func BenchmarkInv(b *testing.B) {
	r := rng.New(1)
	xs := make([]uint32, 100000)
	for i := range xs {
		xs[i] = r.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Inv(xs)
	}
}
