package dataset

import (
	"sort"
	"testing"
)

func reservoirOver(keys []uint32, k int, seed uint64) *Reservoir {
	rv := NewReservoir(k, seed)
	rv.AddAll(keys)
	return rv
}

// shardShares partitions keys by the splitters (boundary keys go to the
// lower shard, matching the router's (lo, hi] ranges) and returns the
// per-shard counts.
func shardShares(keys []uint32, splitters []uint32) []int {
	counts := make([]int, len(splitters)+1)
	for _, k := range keys {
		i := sort.Search(len(splitters), func(i int) bool { return splitters[i] >= k })
		counts[i]++
	}
	return counts
}

func TestReservoirDeterministic(t *testing.T) {
	keys := Uniform(50000, 7)
	a := reservoirOver(keys, 512, 42).Sample()
	b := reservoirOver(keys, 512, 42).Sample()
	if len(a) != 512 {
		t.Fatalf("sample size %d, want 512", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverge at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := reservoirOver(keys, 512, 43).Sample()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestReservoirShortStream(t *testing.T) {
	rv := reservoirOver([]uint32{5, 3, 9}, 16, 1)
	if got := rv.Sample(); len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("short-stream sample = %v", got)
	}
	if rv.Seen() != 3 {
		t.Fatalf("Seen = %d", rv.Seen())
	}
}

func TestSplittersBalanceUniform(t *testing.T) {
	keys := Uniform(200000, 11)
	for _, shards := range []int{2, 3, 5, 8} {
		sp, err := reservoirOver(keys, 1024, 9).Splitters(shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(sp) != shards-1 {
			t.Fatalf("%d shards: %d splitters", shards, len(sp))
		}
		if !sort.SliceIsSorted(sp, func(i, j int) bool { return sp[i] < sp[j] }) {
			t.Fatalf("splitters not sorted: %v", sp)
		}
		ideal := len(keys) / shards
		for i, c := range shardShares(keys, sp) {
			// A 1024-key sample holds quantiles to a few percent; 35%
			// relative slack keeps the test sharp without flaking.
			if c < ideal*65/100 || c > ideal*135/100 {
				t.Errorf("%d shards: shard %d got %d keys, ideal %d", shards, i, c, ideal)
			}
		}
	}
}

func TestSplittersBalanceSkewed(t *testing.T) {
	// Zipf-like skew: quantile splitters must still cut near-equal
	// shares, because boundaries move with the mass.
	keys := Zipf(150000, 1<<20, 1.2, 13)
	sp, err := reservoirOver(keys, 2048, 17).Splitters(4)
	if err != nil {
		t.Fatal(err)
	}
	ideal := len(keys) / 4
	for i, c := range shardShares(keys, sp) {
		if c < ideal/2 || c > ideal*2 {
			t.Errorf("skewed shard %d got %d keys, ideal %d", i, c, ideal)
		}
	}
}

func TestSplittersConstantInput(t *testing.T) {
	// A constant stream yields equal splitters; they must be preserved
	// (not deduplicated) so the router can round-robin boundary ties
	// across all shards instead of dropping shards.
	keys := make([]uint32, 10000)
	for i := range keys {
		keys[i] = 77
	}
	sp, err := reservoirOver(keys, 256, 3).Splitters(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 3 {
		t.Fatalf("got %d splitters, want 3", len(sp))
	}
	for _, s := range sp {
		if s != 77 {
			t.Fatalf("constant input splitters = %v", sp)
		}
	}
}

func TestSplittersEdgeCases(t *testing.T) {
	rv := reservoirOver(Uniform(100, 1), 64, 1)
	if sp, err := rv.Splitters(1); err != nil || sp != nil {
		t.Fatalf("Splitters(1) = %v, %v; want nil, nil", sp, err)
	}
	if _, err := rv.Splitters(0); err == nil {
		t.Fatal("Splitters(0) accepted")
	}
	if _, err := NewReservoir(8, 1).Splitters(2); err == nil {
		t.Fatal("empty reservoir accepted")
	}
	// More shards than sampled keys still yields sorted boundaries.
	tiny := reservoirOver([]uint32{10, 20}, 4, 1)
	sp, err := tiny.Splitters(5)
	if err != nil || len(sp) != 4 {
		t.Fatalf("tiny sample: %v, %v", sp, err)
	}
	if !sort.SliceIsSorted(sp, func(i, j int) bool { return sp[i] < sp[j] }) {
		t.Fatalf("tiny splitters not sorted: %v", sp)
	}
}
