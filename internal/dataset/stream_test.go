package dataset

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func drain(t *testing.T, sp StreamSpec, chunk int) []uint32 {
	t.Helper()
	r, err := sp.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for {
		p := make([]byte, chunk)
		n, err := r.Read(p)
		buf.Write(p[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 4*sp.N {
		t.Fatalf("stream produced %d bytes, want %d", buf.Len(), 4*sp.N)
	}
	out := make([]uint32, sp.N)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf.Bytes()[4*i:])
	}
	return out
}

// TestStreamMatchesMaterialized pins the contract that a streamed dataset
// is byte-for-byte the in-memory generator's output.
func TestStreamMatchesMaterialized(t *testing.T) {
	const n = 5000
	for _, tc := range []struct {
		sp   StreamSpec
		want []uint32
	}{
		{StreamSpec{Kind: "uniform", N: n, Seed: 7}, Uniform(n, 7)},
		{StreamSpec{Kind: "", N: n, Seed: 7}, Uniform(n, 7)},
		{StreamSpec{Kind: "sorted", N: n}, Sorted(n)},
		{StreamSpec{Kind: "reverse", N: n}, Reverse(n)},
		{StreamSpec{Kind: "fewdistinct", N: n, Seed: 3, K: 9}, FewDistinct(n, 9, 3)},
		{StreamSpec{Kind: "fewdistinct", N: n, Seed: 3}, FewDistinct(n, 16, 3)},
		{StreamSpec{Kind: "zipf", N: n, Seed: 5, K: 100, S: 1.5}, Zipf(n, 100, 1.5, 5)},
		{StreamSpec{Kind: "zipf", N: n, Seed: 5}, Zipf(n, 1024, 1.2, 5)},
	} {
		for _, chunk := range []int{4096, 4, 3, 7} { // word-aligned and not
			got := drain(t, tc.sp, chunk)
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("%s chunk=%d: key %d = %d, want %d", tc.sp.Kind, chunk, i, got[i], tc.want[i])
				}
			}
		}
	}
}

func TestStreamRejectsUnstreamable(t *testing.T) {
	if _, err := (StreamSpec{Kind: "nearlysorted", N: 10}).Stream(); err == nil {
		t.Error("nearlysorted stream accepted")
	}
	if _, err := (StreamSpec{Kind: "bogus", N: 10}).Stream(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (StreamSpec{Kind: "uniform", N: -1}).Stream(); err == nil {
		t.Error("negative n accepted")
	}
}

func TestStreamEmpty(t *testing.T) {
	got := drain(t, StreamSpec{Kind: "uniform", N: 0}, 16)
	if len(got) != 0 {
		t.Errorf("empty stream produced %d keys", len(got))
	}
}
