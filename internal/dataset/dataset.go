// Package dataset generates the sorting workloads used by the paper's
// methodology (Section 3.2: uniformly distributed 32-bit integer keys with
// record-ID payloads) plus additional distributions for robustness studies.
package dataset

import (
	"fmt"
	"math"

	"approxsort/internal/rng"
)

// Uniform returns n keys drawn uniformly from the full 32-bit range — the
// paper's workload.
func Uniform(n int, seed uint64) []uint32 {
	r := rng.New(seed)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = r.Uint32()
	}
	return keys
}

// Sorted returns n evenly spaced keys in increasing order.
func Sorted(n int) []uint32 {
	keys := make([]uint32, n)
	if n == 0 {
		return keys
	}
	step := uint64(math.MaxUint32) / uint64(n)
	for i := range keys {
		keys[i] = uint32(uint64(i) * step)
	}
	return keys
}

// Reverse returns n evenly spaced keys in decreasing order — the worst case
// for disorder measures.
func Reverse(n int) []uint32 {
	keys := Sorted(n)
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// NearlySorted returns a sorted sequence with `swaps` random transpositions
// applied — the kind of input the refine stage is designed around.
func NearlySorted(n int, swaps int, seed uint64) []uint32 {
	keys := Sorted(n)
	r := rng.New(seed)
	for s := 0; s < swaps && n > 1; s++ {
		i, j := r.Intn(n), r.Intn(n)
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// FewDistinct returns n keys drawn uniformly from only k distinct values,
// stressing duplicate handling in the sorts and the non-decreasing LIS.
func FewDistinct(n, k int, seed uint64) []uint32 {
	if k < 1 {
		panic(fmt.Sprintf("dataset: FewDistinct needs k >= 1, got %d", k))
	}
	r := rng.New(seed)
	values := make([]uint32, k)
	for i := range values {
		values[i] = r.Uint32()
	}
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = values[r.Intn(k)]
	}
	return keys
}

// Zipf returns n keys where key popularity follows a Zipf(s) distribution
// over k distinct values, modelling the skew common in database columns.
// s must be > 0 and k >= 1.
func Zipf(n, k int, s float64, seed uint64) []uint32 {
	if k < 1 || s <= 0 {
		panic(fmt.Sprintf("dataset: Zipf needs k >= 1 and s > 0, got k=%d s=%v", k, s))
	}
	r := rng.New(seed)
	// Build the CDF over ranks.
	cdf := make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	values := make([]uint32, k)
	for i := range values {
		values[i] = r.Uint32()
	}
	keys := make([]uint32, n)
	for i := range keys {
		u := r.Float64()
		lo, hi := 0, k-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		keys[i] = values[lo]
	}
	return keys
}

// IDs returns the identity record-ID payload 0..n−1, matching the paper's
// setup where IDs index back into the original key array.
func IDs(n int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}
