package dataset

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"approxsort/internal/rng"
)

// StreamSpec names a workload to generate as a byte stream instead of a
// materialized slice, so out-of-core sorts can consume datasets far larger
// than memory. Every streamable kind replicates its in-memory generator's
// draw sequence exactly: decoding a Stream yields byte-for-byte the keys
// of the corresponding slice function at the same parameters, which is
// what keeps streaming jobs comparable with (and verifiable against) the
// in-memory experiments.
type StreamSpec struct {
	// Kind: uniform|sorted|reverse|fewdistinct|zipf. nearlysorted is
	// deliberately not streamable — its random transpositions touch
	// arbitrary positions, so it requires the materialized array.
	Kind string
	N    int
	Seed uint64
	// K is the distinct-value count for fewdistinct/zipf (defaults 16 and
	// 1024 as in the API's DatasetSpec); S the Zipf exponent (default 1.2).
	K int
	S float64
}

// Bytes returns the stream's total length: 4 bytes per key.
func (sp StreamSpec) Bytes() int64 { return 4 * int64(sp.N) }

// Stream returns a reader producing the spec's keys as little-endian
// uint32 words — the wire format of the extsort pipeline and the
// /v1/sort/stream endpoint.
func (sp StreamSpec) Stream() (io.Reader, error) {
	if sp.N < 0 {
		return nil, fmt.Errorf("dataset: stream n = %d is negative", sp.N)
	}
	n := sp.N
	switch sp.Kind {
	case "uniform", "":
		r := rng.New(sp.Seed)
		return newKeyReader(n, func(int) uint32 { return r.Uint32() }), nil
	case "sorted":
		step := sortedStep(n)
		return newKeyReader(n, func(i int) uint32 { return uint32(uint64(i) * step) }), nil
	case "reverse":
		step := sortedStep(n)
		return newKeyReader(n, func(i int) uint32 { return uint32(uint64(n-1-i) * step) }), nil
	case "fewdistinct":
		k := sp.K
		if k <= 0 {
			k = 16
		}
		// Same draw order as FewDistinct: the k values first, then one
		// Intn per key.
		r := rng.New(sp.Seed)
		values := make([]uint32, k)
		for i := range values {
			values[i] = r.Uint32()
		}
		return newKeyReader(n, func(int) uint32 { return values[r.Intn(k)] }), nil
	case "zipf":
		k, s := sp.K, sp.S
		if k <= 0 {
			k = 1024
		}
		if s <= 0 {
			s = 1.2
		}
		r := rng.New(sp.Seed)
		cdf := make([]float64, k)
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += 1 / math.Pow(float64(i+1), s)
			cdf[i] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		values := make([]uint32, k)
		for i := range values {
			values[i] = r.Uint32()
		}
		return newKeyReader(n, func(int) uint32 {
			u := r.Float64()
			lo, hi := 0, k-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return values[lo]
		}), nil
	case "nearlysorted":
		return nil, fmt.Errorf("dataset: nearlysorted is not streamable (transpositions need the materialized array)")
	default:
		return nil, fmt.Errorf("unknown dataset kind %q", sp.Kind)
	}
}

func sortedStep(n int) uint64 {
	if n == 0 {
		return 0
	}
	return uint64(math.MaxUint32) / uint64(n)
}

// keyReader adapts a next-key function to io.Reader, encoding keys on
// demand. Reads of any size are supported; a word split across Read calls
// is carried in the 4-byte fragment buffer.
type keyReader struct {
	next  func(i int) uint32
	n, i  int
	frag  [4]byte
	nfrag int // unread bytes of frag, right-aligned at 4-nfrag
}

func newKeyReader(n int, next func(i int) uint32) *keyReader {
	return &keyReader{next: next, n: n}
}

func (kr *keyReader) Read(p []byte) (int, error) {
	if kr.nfrag == 0 && kr.i >= kr.n {
		return 0, io.EOF
	}
	total := 0
	for len(p) > 0 {
		if kr.nfrag > 0 {
			c := copy(p, kr.frag[4-kr.nfrag:])
			kr.nfrag -= c
			p = p[c:]
			total += c
			continue
		}
		if kr.i >= kr.n {
			break
		}
		if len(p) >= 4 {
			binary.LittleEndian.PutUint32(p, kr.next(kr.i))
			kr.i++
			p = p[4:]
			total += 4
			continue
		}
		binary.LittleEndian.PutUint32(kr.frag[:], kr.next(kr.i))
		kr.i++
		kr.nfrag = 4
	}
	if total == 0 {
		return 0, io.EOF
	}
	return total, nil
}
