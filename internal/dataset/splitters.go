package dataset

import (
	"fmt"
	"sort"

	"approxsort/internal/rng"
)

// This file supports range partitioning for the cluster coordinator: a
// deterministic reservoir sampled while the input spools, then shard
// boundary keys read off the sample's quantiles. Determinism matters —
// the same input, seed and shard count must partition identically on
// every coordinator, so regression runs stay bit-reproducible.

// Reservoir is a fixed-capacity uniform sample over a key stream of
// unknown length (Vitter's Algorithm R with the repo's deterministic
// generator). The zero value is not valid; use NewReservoir.
type Reservoir struct {
	sample []uint32
	seen   int64
	r      *rng.Source
}

// NewReservoir returns a reservoir holding at most k keys, seeded
// deterministically; identical (k, seed) and Add sequences yield
// identical samples.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{
		sample: make([]uint32, 0, k),
		r:      rng.New(rng.Split(seed, "dataset", "reservoir", k)),
	}
}

// Add offers one key to the sample.
func (rv *Reservoir) Add(key uint32) {
	rv.seen++
	if len(rv.sample) < cap(rv.sample) {
		rv.sample = append(rv.sample, key)
		return
	}
	// Replace a random slot with probability k/seen. seen fits an int on
	// 64-bit builds; inputs beyond 2^31 keys arrive in practice as int64
	// counts well below that on the sampled prefix alone, and Intn's
	// argument only needs the running total.
	if j := rv.r.Intn(int(rv.seen)); j < cap(rv.sample) {
		rv.sample[j] = key
	}
}

// AddAll offers every key in keys.
func (rv *Reservoir) AddAll(keys []uint32) {
	for _, k := range keys {
		rv.Add(k)
	}
}

// Seen reports how many keys have been offered.
func (rv *Reservoir) Seen() int64 { return rv.seen }

// Keys returns the current sample in reservoir order — an unbiased
// random subsequence of the stream, suitable as a planner pilot sample
// (Sample's sorted order would make the pilot measure a sorted input).
// The caller owns the returned slice.
func (rv *Reservoir) Keys() []uint32 {
	return append([]uint32(nil), rv.sample...)
}

// Sample returns the current sample, sorted ascending. The caller owns
// the returned slice.
func (rv *Reservoir) Sample() []uint32 {
	out := append([]uint32(nil), rv.sample...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Splitters returns shards−1 boundary keys that cut the sampled
// distribution into shards near-equal ranges: shard i takes keys in
// (splitters[i−1], splitters[i]] with the open ends at the extremes.
// Boundaries are read off the sample's quantiles, so skew in the input
// (zipf, clustered) moves the boundaries instead of overloading a
// shard. Duplicate quantiles — constant or few-valued inputs — are NOT
// deduplicated: the router breaks boundary ties by round-robin, and
// collapsing equal splitters here would silently drop shards instead.
func (rv *Reservoir) Splitters(shards int) ([]uint32, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dataset: Splitters(%d): need at least one shard", shards)
	}
	if shards == 1 {
		return nil, nil
	}
	s := rv.Sample()
	if len(s) == 0 {
		return nil, fmt.Errorf("dataset: Splitters(%d): empty reservoir", shards)
	}
	out := make([]uint32, shards-1)
	for i := 1; i < shards; i++ {
		idx := i * len(s) / shards
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i-1] = s[idx]
	}
	return out, nil
}
