package dataset

import (
	"testing"

	"approxsort/internal/sortedness"
)

func TestUniformDeterministicAndSpread(t *testing.T) {
	a := Uniform(1000, 1)
	b := Uniform(1000, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Uniform not deterministic for equal seeds")
		}
	}
	c := Uniform(1000, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 positions", same)
	}
	// A uniform sample should use high bits: some values above 2^31.
	high := 0
	for _, v := range a {
		if v >= 1<<31 {
			high++
		}
	}
	if high < 400 || high > 600 {
		t.Errorf("high-bit count %d/1000, distribution looks skewed", high)
	}
}

func TestSortedAndReverse(t *testing.T) {
	s := Sorted(100)
	if !sortedness.IsSorted(s) {
		t.Error("Sorted output is not sorted")
	}
	r := Reverse(100)
	if sortedness.Runs(r) != 100 {
		t.Errorf("Reverse(100) has %d runs, want 100", sortedness.Runs(r))
	}
	if len(Sorted(0)) != 0 || len(Reverse(0)) != 0 {
		t.Error("zero-length generators misbehave")
	}
}

func TestNearlySorted(t *testing.T) {
	ns := NearlySorted(1000, 10, 3)
	if got := sortedness.Rem(ns); got > 40 {
		t.Errorf("NearlySorted(1000, 10 swaps) Rem = %d, want small", got)
	}
	if sortedness.IsSorted(ns) {
		t.Error("NearlySorted with 10 swaps should (almost surely) have disorder")
	}
	if !sortedness.SameMultiset(ns, Sorted(1000)) {
		t.Error("NearlySorted changed the multiset")
	}
}

func TestFewDistinct(t *testing.T) {
	ks := FewDistinct(500, 3, 4)
	distinct := map[uint32]bool{}
	for _, v := range ks {
		distinct[v] = true
	}
	if len(distinct) > 3 {
		t.Errorf("FewDistinct(k=3) produced %d values", len(distinct))
	}
	defer func() {
		if recover() == nil {
			t.Error("FewDistinct(k=0) did not panic")
		}
	}()
	FewDistinct(10, 0, 1)
}

func TestZipfSkew(t *testing.T) {
	ks := Zipf(5000, 50, 1.5, 5)
	counts := map[uint32]int{}
	for _, v := range ks {
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/10 {
		t.Errorf("Zipf(1.5) most popular value has %d/5000 occurrences, expected heavy skew", max)
	}
	defer func() {
		if recover() == nil {
			t.Error("Zipf with s=0 did not panic")
		}
	}()
	Zipf(10, 5, 0, 1)
}

func TestIDs(t *testing.T) {
	ids := IDs(5)
	for i, v := range ids {
		if v != uint32(i) {
			t.Fatalf("IDs[%d] = %d", i, v)
		}
	}
}
