package memmodel

import (
	"strings"
	"testing"

	"approxsort/internal/memristive"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

func TestMemristiveRegistered(t *testing.T) {
	b := MustGet(MemristiveName)
	if b.Name() != MemristiveName {
		t.Fatalf("Name() = %q, want %q", b.Name(), MemristiveName)
	}
	specs := b.Params()
	if len(specs) != 2 || specs[0].Name != "current_scale" || specs[1].Name != "switch_fail_prob" {
		t.Fatalf("Params() = %+v, want current_scale then switch_fail_prob", specs)
	}
	for _, s := range specs {
		if !s.Seed {
			t.Errorf("param %q must be Seed-flagged: both shape the noise stream", s.Name)
		}
	}
}

func TestMemristiveNormalize(t *testing.T) {
	b := MustGet(MemristiveName)
	pt := b.DefaultPoint()
	scale, _ := pt.Param("current_scale")
	fail, _ := pt.Param("switch_fail_prob")
	if scale != 0.7 || fail != 1e-5 {
		t.Fatalf("DefaultPoint = (%v, %v), want (0.7, 1e-5)", scale, fail)
	}

	got, err := b.Normalize(Memristive(memristive.Config{CurrentScale: 0.5, SwitchFailProb: 1e-4}))
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Param("current_scale"); s != 0.5 {
		t.Errorf("normalized current_scale = %v, want 0.5", s)
	}

	for _, bad := range []Point{
		{Backend: MemristiveName, Params: map[string]float64{"current_scale": 0}},
		{Backend: MemristiveName, Params: map[string]float64{"current_scale": 1.5}},
		{Backend: MemristiveName, Params: map[string]float64{"switch_fail_prob": 0.9}},
		{Backend: MemristiveName, Params: map[string]float64{"t": 0.055}},
	} {
		if _, err := b.Normalize(bad); err == nil {
			t.Errorf("Normalize(%v) accepted an out-of-schema point", bad)
		}
	}
}

func TestMemristiveIdentities(t *testing.T) {
	b := MustGet(MemristiveName)
	pt, err := b.Normalize(Memristive(memristive.Config{CurrentScale: 0.6, SwitchFailProb: 1e-5}))
	if err != nil {
		t.Fatal(err)
	}
	id := b.Identities(pt)
	if !id.FixedWriteLatency || id.EnergyTracksLatency || id.PulsePerWrite {
		t.Errorf("memristive identities = %+v, want fixed-latency only", id)
	}
	if id.EnergyPerWrite != 0.6 {
		t.Errorf("EnergyPerWrite = %v, want the current_scale 0.6", id.EnergyPerWrite)
	}
	if id.ReadNanosPerRead != memristive.ReadNanos {
		t.Errorf("ReadNanosPerRead = %v, want the ReRAM read latency %v", id.ReadNanosPerRead, memristive.ReadNanos)
	}
	if got := b.ApproxWriteNanos(pt); got != mlc.PreciseWriteNanos {
		t.Errorf("ApproxWriteNanos = %v, want the precise latency %v", got, mlc.PreciseWriteNanos)
	}
}

// TestMemristiveSeedCoords pins the grid-cell RNG derivation: exactly
// the Seed-flagged parameters in schema order, so golden rows survive
// any future non-seed parameter additions.
func TestMemristiveSeedCoords(t *testing.T) {
	b := MustGet(MemristiveName)
	pt := b.DefaultPoint()
	coords := b.SeedCoords(pt)
	if len(coords) != 2 || coords[0] != 0.7 || coords[1] != 1e-5 {
		t.Fatalf("SeedCoords = %v, want [0.7 1e-5]", coords)
	}
	space, sort := b.SortOnlySeeds(99)
	if space != rng.Split(99, "space") || sort != rng.Split(99, "sort") {
		t.Errorf("SortOnlySeeds must use the labelled space/sort splits")
	}
}

func TestMemristiveSpaces(t *testing.T) {
	b := MustGet(MemristiveName)
	pt := b.DefaultPoint()
	approx := b.NewApprox(pt, 7)
	if !approx.Approximate() {
		t.Error("NewApprox space must report Approximate")
	}
	if ms, ok := approx.(*memristive.Space); !ok {
		t.Errorf("NewApprox returned %T, want the concrete *memristive.Space (devirtualized inner loops)", approx)
	} else if ms.Config().CurrentScale != 0.7 {
		t.Errorf("space built at CurrentScale %v, want the point's 0.7", ms.Config().CurrentScale)
	}
	if precise := b.NewPrecise(); precise.Approximate() {
		t.Error("NewPrecise space must not be approximate")
	}
}

func TestMemristivePresets(t *testing.T) {
	pts := MemristivePresets()
	if len(pts) != len(memristive.Presets()) {
		t.Fatalf("MemristivePresets returned %d points, want %d", len(pts), len(memristive.Presets()))
	}
	b := MustGet(MemristiveName)
	for i, pt := range pts {
		if pt.Backend != MemristiveName {
			t.Errorf("preset %d backend = %q", i, pt.Backend)
		}
		if _, err := b.Normalize(pt); err != nil {
			t.Errorf("preset %d does not normalize: %v", i, err)
		}
	}
	if !strings.Contains(pts[1].String(), "current_scale=0.7") {
		t.Errorf("default preset string = %q, want current_scale=0.7 in it", pts[1].String())
	}
}
