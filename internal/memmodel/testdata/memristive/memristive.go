// Package memristive is the DESIGN.md §12 worked example: the smallest
// complete Backend registration. It sketches a memristive (ReRAM) device
// model — approximate writes use a reduced programming current, trading
// energy for a per-cell switching-failure probability — with the device
// physics left as stubs, so the seam obligations stand out.
//
// It lives in testdata (not compiled into the tree) because it is
// documentation: a template to copy when adding a real backend. To
// activate a copy: move it under internal/<model>/, implement the real
// space (internal/spintronic is the closest template), and import the
// package for side effect (or call Register from an init) — everything
// downstream (experiments grids, sortd routing, /v1/backends, the
// verifier) picks it up through the registry with no further wiring.
package memristive

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// Name is the registry key. Must be unique across the process.
const Name = "memristive"

// backend must be a stateless value: methods are called concurrently from
// grid workers, and all run state belongs in the spaces it constructs.
type backend struct{}

// Registration is an init-time act; a real model's package init does this.
func init() { memmodel.Register(backend{}) }

func (backend) Name() string { return Name }

// Params is the single source of truth for the parameter schema:
// Normalize enforces it, GET /v1/backends serves it, and the Seed flags
// below fix the grid seed derivation forever (see SeedCoords).
func (backend) Params() []memmodel.ParamSpec {
	return []memmodel.ParamSpec{
		{
			Name:    "current_scale",
			Doc:     "programming current relative to the precise write (lower = cheaper, less reliable)",
			Default: 0.7,
			Min:     0,
			Max:     1,
			MinExclusive: true,
			Seed:    true,
		},
		{
			Name:    "switch_fail_prob",
			Doc:     "per-cell probability that a reduced-current write fails to switch",
			Default: 1e-5,
			Min:     0,
			Max:     0.5,
			Seed:    true,
		},
	}
}

func (b backend) DefaultPoint() memmodel.Point {
	pt, err := b.Normalize(memmodel.Point{Backend: Name})
	if err != nil {
		panic(err) // unreachable: the defaults are in range
	}
	return pt
}

// Normalize may lean entirely on the schema (memmodel exports a helper to
// registered backends internally; external packages spell out the loop or
// validate via a concrete config type, as internal/spintronic does).
// Obligations: fill defaults, reject unknown parameter names, reject
// out-of-range values, never mutate the caller's map.
func (b backend) Normalize(pt memmodel.Point) (memmodel.Point, error) {
	out := memmodel.Point{Backend: Name, Params: map[string]float64{}}
	specs := map[string]memmodel.ParamSpec{}
	for _, spec := range b.Params() {
		specs[spec.Name] = spec
		out.Params[spec.Name] = spec.Default
	}
	if pt.Backend != "" && pt.Backend != Name {
		return memmodel.Point{}, fmt.Errorf("memristive: point names backend %q", pt.Backend)
	}
	for name, v := range pt.Params {
		spec, ok := specs[name]
		if !ok {
			return memmodel.Point{}, fmt.Errorf("memristive: unknown parameter %q", name)
		}
		if v < spec.Min || v > spec.Max || (spec.MinExclusive && v == spec.Min) {
			return memmodel.Point{}, fmt.Errorf("memristive: %s=%g out of range", name, v)
		}
		out.Params[name] = v
	}
	return out, nil
}

// NewApprox is where the device physics lives. The stub returns a precise
// space (i.e. a model with no corruption and no savings); a real model
// wraps the storage with a corrupter drawing from rng.New(seed) — see
// internal/spintronic/space.go for the canonical shape. The returned type
// must satisfy memmodel.Space (mem.Space + ResetStats + SetSink).
func (backend) NewApprox(pt memmodel.Point, seed uint64) memmodel.Space {
	_ = pt // real model: configure failure prob & energy from the point
	_ = seed
	return mem.NewPreciseSpace()
}

func (backend) NewPrecise() memmodel.Space { return mem.NewPreciseSpace() }

// SeedCoords must return exactly the Seed-flagged parameters, in schema
// order. This keys every grid cell's RNG stream; once golden rows are
// pinned it can never change, which is why parameters added later (like
// spintronic's read_bit_error_prob) are registered with Seed: false.
func (backend) SeedCoords(pt memmodel.Point) []any {
	scale, _ := pt.Param("current_scale")
	fail, _ := pt.Param("switch_fail_prob")
	return []any{scale, fail}
}

// SortOnlySeeds derives the (space, sort) stream pair for sort-only runs.
// New backends should use labelled splits; the pcm-mlc backend's XOR
// schedule is a legacy derivation kept only for its pinned goldens.
func (backend) SortOnlySeeds(pointSeed uint64) (uint64, uint64) {
	return rng.Split(pointSeed, "space"), rng.Split(pointSeed, "sort")
}

// Identities tells the verifier which accounting invariants to hold the
// approximate space to. Reduced-current writes keep the precise latency
// and cost a current_scale fraction of the precise energy.
func (backend) Identities(pt memmodel.Point) memmodel.Identities {
	scale, _ := pt.Param("current_scale")
	return memmodel.Identities{
		FixedWriteLatency: true,
		EnergyPerWrite:    scale,
	}
}

// ApproxWriteNanos is the device clock sortd charges for the approximate
// region (reduced current does not shorten the switching pulse).
func (backend) ApproxWriteNanos(memmodel.Point) float64 { return mlc.PreciseWriteNanos }
