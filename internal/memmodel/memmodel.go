// Package memmodel is the pluggable seam between the approx-refine
// machinery and the approximate-memory device models. The paper's core
// mechanism (Sections 4–5) is backend-agnostic: it needs an approximate
// space to sort in, a precise space to refine into, and a set of
// per-backend accounting identities the verifier can hold the run to.
// This package captures exactly that contract as the Backend interface
// plus a name-keyed registry, so the experiment sweeps, the verifier and
// the sortd service all route through one code path — and a new device
// model is a ~100-line registration instead of a pipeline fork.
//
// Three backends register at init: "pcm-mlc" (the Table 2 MLC PCM model,
// internal/mem + internal/mlc), "spintronic" (the Appendix A model,
// internal/spintronic), and "memristive" (the reduced-current ReRAM
// model, internal/memristive). DESIGN.md §12 walks through what a
// registration owes the seam, with the memristive backend as the worked
// example.
package memmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
)

// Point is one operating point of a backend: a backend name plus the
// backend-specific parameters (MLC's target half-width T, the spintronic
// model's saving/error-probability pair, …). It subsumes the scalar `t`
// and spintronic.Config arguments the pre-seam pipelines took.
type Point struct {
	Backend string             `json:"backend"`
	Params  map[string]float64 `json:"params,omitempty"`
}

// Param returns the named parameter and whether it is set.
func (p Point) Param(name string) (float64, bool) {
	v, ok := p.Params[name]
	return v, ok
}

// String renders the point compactly, parameters in schema order when the
// backend is registered (sorted by name otherwise).
func (p Point) String() string {
	names := make([]string, 0, len(p.Params))
	if b, err := Get(p.Backend); err == nil {
		for _, spec := range b.Params() {
			if _, ok := p.Params[spec.Name]; ok {
				names = append(names, spec.Name)
			}
		}
	} else {
		for name := range p.Params {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%g", name, p.Params[name]))
	}
	return p.Backend + "(" + strings.Join(parts, ",") + ")"
}

// clone returns a deep copy of the point, so Normalize never aliases
// caller-owned maps.
func (p Point) clone() Point {
	out := Point{Backend: p.Backend, Params: make(map[string]float64, len(p.Params))}
	for k, v := range p.Params {
		out.Params[k] = v
	}
	return out
}

// ParamSpec documents one backend parameter: GET /v1/backends serves the
// schema, Normalize enforces it.
type ParamSpec struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
	// Default is applied by Normalize when the parameter is absent.
	Default float64 `json:"default"`
	// Min and Max bound the accepted values. MinExclusive marks an open
	// lower bound (e.g. MLC's T must be strictly positive).
	Min          float64 `json:"min"`
	Max          float64 `json:"max"`
	MinExclusive bool    `json:"min_exclusive,omitempty"`
	// Seed marks parameters that key a grid point's RNG stream (see
	// Backend.SeedCoords). Parameters added after a golden grid was
	// pinned stay out of the seed derivation so the goldens survive.
	Seed bool `json:"seed"`
}

// Identities is the set of per-backend accounting invariants the verifier
// enforces on approximate-space stats. The zero value asserts only the
// backend-independent identities (non-negative counters, read-latency
// accounting, corrupted ≤ writes).
type Identities struct {
	// EnergyTracksLatency asserts WriteEnergy × PreciseWriteNanos ==
	// WriteNanos — the MLC model, where both are proportional to the P&V
	// pulse count.
	EnergyTracksLatency bool
	// PulsePerWrite asserts Iters ≥ Writes: every P&V write issues at
	// least one pulse (MLC).
	PulsePerWrite bool
	// FixedWriteLatency asserts WriteNanos == Writes × PreciseWriteNanos:
	// approximate writes save energy, not time (spintronic).
	FixedWriteLatency bool
	// EnergyPerWrite, when positive, asserts WriteEnergy == Writes ×
	// EnergyPerWrite (spintronic: 1 − Saving per write).
	EnergyPerWrite float64
	// ReadNanosPerRead, when positive, overrides the per-read latency the
	// verifier asserts for the approximate region: ReadNanos == Reads ×
	// ReadNanosPerRead. Zero keeps the default mlc.ReadNanos (the PCM
	// array read every pre-existing backend charges); the memristive
	// backend sets it to its faster ReRAM read.
	ReadNanosPerRead float64
}

// Space is the contract the unified pipeline needs from a memory space:
// allocation and accounting (mem.Space) plus stage-reset and tracing.
// Both *mem.ApproxSpace and *spintronic.Space satisfy it, as does
// *mem.PreciseSpace.
type Space interface {
	mem.Space
	// ResetStats clears the aggregate counters (between pipeline stages).
	ResetStats()
	// SetSink attaches a trace sink receiving every access.
	SetSink(mem.Sink)
}

// Compile-time seam checks: the concrete spaces satisfy the contract.
var (
	_ Space = (*mem.ApproxSpace)(nil)
	_ Space = (*mem.PreciseSpace)(nil)
)

// Backend is one approximate-memory device model. Implementations must be
// stateless values: every method must be safe for concurrent use, and all
// run state lives in the spaces they construct.
type Backend interface {
	// Name is the registry key ("pcm-mlc", "spintronic", …).
	Name() string
	// Params documents the backend's parameter schema, in display order.
	Params() []ParamSpec
	// DefaultPoint returns the backend's reference operating point (the
	// paper's sweet spot), fully parameterized.
	DefaultPoint() Point
	// Normalize fills defaulted parameters, rejects unknown names and
	// out-of-range values, and returns a fully-parameterized copy. Every
	// other Backend method requires a normalized point.
	Normalize(pt Point) (Point, error)
	// NewApprox constructs an approximate space at pt, drawing noise from
	// a stream seeded with seed. It panics on a non-normalized point
	// (programming error, mirroring the concrete constructors).
	NewApprox(pt Point, seed uint64) Space
	// NewPrecise constructs the matching precise space.
	NewPrecise() Space
	// SeedCoords returns the rng.Split coordinates that identify pt in a
	// sweep grid (the parameters whose ParamSpec.Seed is set, in schema
	// order). Grid runners key per-point streams by these, never by loop
	// index, so rows are bit-identical for any worker count.
	SeedCoords(pt Point) []any
	// SortOnlySeeds derives the (space, sort) seed pair for a sort-only
	// run from the point's stream seed. The schedules are pinned per
	// backend by the golden regression gate — they reproduce the exact
	// derivations the pre-seam pipelines used — so they must never change
	// for a registered backend.
	SortOnlySeeds(pointSeed uint64) (spaceSeed, sortSeed uint64)
	// Identities returns the accounting invariants the verifier enforces
	// on this backend's approximate-space stats at pt.
	Identities(pt Point) Identities
	// ApproxWriteNanos returns the modelled mean latency of one
	// approximate word write at pt — the device clock the sortd memory
	// system charges for the approximate region.
	ApproxWriteNanos(pt Point) float64
}

// WriteCostRatio returns ω: the ratio of the backend's modelled mean
// approximate-write latency at pt to the precise-write latency. It is the
// write-cost parameter of the (M, B, ω) external-sort cost model
// (core.PlanExternal, DESIGN.md §14): ω < 1 means approximate writes are
// cheap and run formation should lean on the approx stage; ω = 1 means
// the device clock offers no write asymmetry to exploit.
func WriteCostRatio(b Backend, pt Point) float64 {
	return b.ApproxWriteNanos(pt) / mlc.PreciseWriteNanos
}

// DefaultName is the backend assumed when a request names none: the MLC
// PCM model the paper's main body evaluates.
const DefaultName = "pcm-mlc"

// UnknownBackendError is returned by Get for names absent from the
// registry. sortd surfaces it as HTTP 400.
type UnknownBackendError struct {
	Name string
}

func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("memmodel: unknown backend %q (registered: %s)",
		e.Name, strings.Join(Names(), ", "))
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend under its Name. It panics on a duplicate or
// empty name (registration is an init-time programming act).
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("memmodel: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("memmodel: duplicate backend %q", name))
	}
	registry[name] = b
}

// Get returns the backend registered under name. The empty name resolves
// to DefaultName. Unknown names yield *UnknownBackendError.
func Get(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, &UnknownBackendError{Name: name}
	}
	return b, nil
}

// MustGet is Get for names known at compile time; it panics on unknown
// names.
func MustGet(name string) Backend {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
