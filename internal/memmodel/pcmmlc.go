package memmodel

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// PCMMLC is the registry name of the MLC PCM backend (Table 2, the
// paper's main-body device model).
const PCMMLC = "pcm-mlc"

// mlcBackend adapts internal/mem + internal/mlc to the Backend seam. Its
// single parameter is the target half-width T; the transition table at a
// given T comes from the shared mlc table cache under the fixed
// calibration seed, so a sweep touching K T-points calibrates K tables
// no matter how many grid cells or jobs share them.
type mlcBackend struct{}

func init() { Register(mlcBackend{}) }

func (mlcBackend) Name() string { return PCMMLC }

func (mlcBackend) Params() []ParamSpec {
	return []ParamSpec{{
		Name:         "t",
		Doc:          "target resistance half-width T; larger is more approximate",
		Default:      0.055, // the Figure 9 sweet spot
		Min:          0,
		MinExclusive: true,
		Max:          mlc.MaxT,
		Seed:         true,
	}}
}

// MLC returns the pcm-mlc point at target half-width t.
func MLC(t float64) Point {
	return Point{Backend: PCMMLC, Params: map[string]float64{"t": t}}
}

func (b mlcBackend) DefaultPoint() Point {
	pt, err := b.Normalize(Point{Backend: PCMMLC})
	if err != nil {
		panic(err) // unreachable: the default is in range
	}
	return pt
}

func (b mlcBackend) Normalize(pt Point) (Point, error) {
	return normalizeAgainst(b, pt)
}

// t extracts the half-width from a normalized point.
func (mlcBackend) t(pt Point) float64 {
	v, ok := pt.Param("t")
	if !ok {
		panic(fmt.Sprintf("memmodel: %v is not normalized (missing t)", pt))
	}
	return v
}

func (b mlcBackend) NewApprox(pt Point, seed uint64) Space {
	return mem.NewApproxSpaceAt(b.t(pt), seed)
}

func (mlcBackend) NewPrecise() Space { return mem.NewPreciseSpace() }

func (b mlcBackend) SeedCoords(pt Point) []any { return []any{b.t(pt)} }

// SortOnlySeeds reproduces the Section 3 study's original derivation —
// the space consumes the point seed directly, the sort stream a fixed
// XOR of it — pinned by the Figure 4 golden rows.
func (mlcBackend) SortOnlySeeds(pointSeed uint64) (uint64, uint64) {
	return pointSeed, pointSeed ^ 0xabcd
}

func (mlcBackend) Identities(Point) Identities {
	return Identities{EnergyTracksLatency: true, PulsePerWrite: true}
}

func (b mlcBackend) ApproxWriteNanos(pt Point) float64 {
	table := mlc.CachedTable(mlc.Approximate(b.t(pt)), 0, mlc.CalibrationSeed)
	return table.AvgWriteNanos()
}

// normalizeAgainst is the shared schema-driven Normalize implementation:
// unknown parameters are rejected, absent ones defaulted, and every value
// checked against its spec's range.
func normalizeAgainst(b Backend, pt Point) (Point, error) {
	if pt.Backend != "" && pt.Backend != b.Name() {
		return Point{}, fmt.Errorf("memmodel: point names backend %q, want %q", pt.Backend, b.Name())
	}
	specs := b.Params()
	known := make(map[string]bool, len(specs))
	for _, spec := range specs {
		known[spec.Name] = true
	}
	for name := range pt.Params {
		if !known[name] {
			return Point{}, fmt.Errorf("memmodel: %s: unknown parameter %q", b.Name(), name)
		}
	}
	out := pt.clone()
	out.Backend = b.Name()
	for _, spec := range specs {
		v, ok := out.Params[spec.Name]
		if !ok {
			v = spec.Default
			out.Params[spec.Name] = v
		}
		if v < spec.Min || v > spec.Max || (spec.MinExclusive && v == spec.Min) { //nolint:floatord // range check on a configured parameter, not an accumulated sum
			open := "["
			if spec.MinExclusive {
				open = "("
			}
			return Point{}, fmt.Errorf("memmodel: %s: %s = %v out of %s%v, %v]",
				b.Name(), spec.Name, v, open, spec.Min, spec.Max)
		}
	}
	return out, nil
}

// SplitPoint keys a grid cell's RNG stream by its coordinates: the
// algorithm name followed by the backend's seed-bearing parameters. It is
// the single seed-derivation rule behind every backend sweep (formerly
// duplicated as inline rng.Split calls and the spin pipeline's splitSpin
// helper), pinned bit-identically by the golden gate.
func SplitPoint(seed uint64, algName string, b Backend, pt Point) uint64 {
	coords := append([]any{algName}, b.SeedCoords(pt)...)
	return rng.Split(seed, coords...)
}
