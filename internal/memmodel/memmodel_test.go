package memmodel

import (
	"errors"
	"strings"
	"testing"

	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/spintronic"
)

func TestRegistryHasBothPaperBackends(t *testing.T) {
	names := Names()
	for _, want := range []string{PCMMLC, SpintronicName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry %v missing %q", names, want)
		}
	}
}

func TestGetEmptyNameResolvesToDefault(t *testing.T) {
	b, err := Get("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != DefaultName || b.Name() != PCMMLC {
		t.Errorf("Get(\"\") = %q, want %q", b.Name(), PCMMLC)
	}
}

func TestGetUnknownBackendTypedError(t *testing.T) {
	_, err := Get("memristor")
	if err == nil {
		t.Fatal("Get(memristor) succeeded")
	}
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %T is not *UnknownBackendError", err)
	}
	if unknown.Name != "memristor" {
		t.Errorf("unknown.Name = %q", unknown.Name)
	}
	// The message must list the registered names, so a typo'd request is
	// self-diagnosing at the API boundary.
	for _, want := range []string{"memristor", PCMMLC, SpintronicName} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestMLCNormalizeDefaultsAndBounds(t *testing.T) {
	b := MustGet(PCMMLC)

	pt, err := b.Normalize(Point{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Backend != PCMMLC {
		t.Errorf("normalized backend = %q", pt.Backend)
	}
	if v, ok := pt.Param("t"); !ok || v != 0.055 {
		t.Errorf("default t = %v (ok=%v), want the 0.055 sweet spot", v, ok)
	}
	if got := b.DefaultPoint(); got.Params["t"] != 0.055 {
		t.Errorf("DefaultPoint t = %v", got.Params["t"])
	}

	for _, bad := range []Point{
		MLC(0),             // T strictly positive (open lower bound)
		MLC(-0.01),         // negative
		MLC(mlc.MaxT + 1),  // above the model's ceiling
		{Backend: PCMMLC, Params: map[string]float64{"saving": 0.3}}, // foreign parameter
		{Backend: SpintronicName}, // point names another backend
	} {
		if _, err := b.Normalize(bad); err == nil {
			t.Errorf("Normalize(%v) accepted", bad)
		}
	}
}

func TestNormalizeDoesNotMutateCallerPoint(t *testing.T) {
	b := MustGet(SpintronicName)
	in := Point{Backend: SpintronicName, Params: map[string]float64{"saving": 0.2}}
	out, err := b.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Params) != 1 {
		t.Errorf("Normalize mutated the caller's map: %v", in.Params)
	}
	if _, ok := out.Param("bit_error_prob"); !ok {
		t.Error("normalized point missing defaulted bit_error_prob")
	}
}

func TestSpintronicNormalizeBounds(t *testing.T) {
	b := MustGet(SpintronicName)
	if _, err := b.Normalize(Point{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []Point{
		{Backend: SpintronicName, Params: map[string]float64{"saving": 1}},
		{Backend: SpintronicName, Params: map[string]float64{"saving": -0.1}},
		{Backend: SpintronicName, Params: map[string]float64{"bit_error_prob": 0.6}},
		{Backend: SpintronicName, Params: map[string]float64{"read_bit_error_prob": -0.1}},
		{Backend: SpintronicName, Params: map[string]float64{"t": 0.055}}, // MLC's parameter
	}
	for _, bad := range cases {
		if _, err := b.Normalize(bad); err == nil {
			t.Errorf("Normalize(%v) accepted", bad)
		}
	}
}

// TestSortOnlySeedsPinned pins each backend's sort-only seed schedule:
// these reproduce the pre-seam pipelines' derivations and back the golden
// regression grid, so they must never change for a registered backend.
func TestSortOnlySeedsPinned(t *testing.T) {
	const ps = 0xfeedbeef
	if space, sortSeed := MustGet(PCMMLC).SortOnlySeeds(ps); space != ps || sortSeed != ps^0xabcd {
		t.Errorf("pcm-mlc seeds = (%#x, %#x), want (%#x, %#x)", space, sortSeed, uint64(ps), uint64(ps^0xabcd))
	}
	wantSpace, wantSort := rng.Split(ps, "space"), rng.Split(ps, "sort")
	if space, sortSeed := MustGet(SpintronicName).SortOnlySeeds(ps); space != wantSpace || sortSeed != wantSort {
		t.Errorf("spintronic seeds = (%#x, %#x), want (%#x, %#x)", space, sortSeed, wantSpace, wantSort)
	}
}

// TestSplitPointMatchesLegacyDerivations asserts the unified grid seed
// rule is bit-identical to the two derivations it replaced: the inline
// rng.Split(seed, alg, t) of the MLC sweeps and the splitSpin helper of
// the spintronic pipeline.
func TestSplitPointMatchesLegacyDerivations(t *testing.T) {
	const seed, alg = 1729, "6-bit MSD"

	mlcB := MustGet(PCMMLC)
	pt, err := mlcB.Normalize(MLC(0.055))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SplitPoint(seed, alg, mlcB, pt), rng.Split(seed, alg, 0.055); got != want {
		t.Errorf("pcm-mlc SplitPoint = %#x, legacy = %#x", got, want)
	}

	spinB := MustGet(SpintronicName)
	cfg := spintronic.Config{Saving: 0.33, BitErrorProb: 1e-5}
	spt, err := spinB.Normalize(Spintronic(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SplitPoint(seed, alg, spinB, spt), rng.Split(seed, alg, cfg.Saving, cfg.BitErrorProb); got != want {
		t.Errorf("spintronic SplitPoint = %#x, legacy splitSpin = %#x", got, want)
	}
	// read_bit_error_prob postdates the pinned goldens, so it must stay
	// out of the seed derivation.
	withRead, err := spinB.Normalize(Spintronic(spintronic.Config{Saving: 0.33, BitErrorProb: 1e-5, ReadBitErrorProb: 0.01}))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SplitPoint(seed, alg, spinB, withRead), rng.Split(seed, alg, cfg.Saving, cfg.BitErrorProb); got != want {
		t.Errorf("read_bit_error_prob leaked into the seed derivation: %#x != %#x", got, want)
	}
}

func TestIdentitiesPerBackend(t *testing.T) {
	id := MustGet(PCMMLC).Identities(Point{})
	if !id.EnergyTracksLatency || !id.PulsePerWrite || id.FixedWriteLatency || id.EnergyPerWrite != 0 {
		t.Errorf("pcm-mlc identities = %+v", id)
	}
	b := MustGet(SpintronicName)
	pt, err := b.Normalize(Spintronic(spintronic.Config{Saving: 0.33, BitErrorProb: 1e-5}))
	if err != nil {
		t.Fatal(err)
	}
	id = b.Identities(pt)
	if !id.FixedWriteLatency || id.EnergyTracksLatency || id.PulsePerWrite {
		t.Errorf("spintronic identities = %+v", id)
	}
	saving := 0.33
	if want := 1 - saving; id.EnergyPerWrite != want {
		t.Errorf("spintronic EnergyPerWrite = %v, want %v", id.EnergyPerWrite, want)
	}
}

func TestApproxWriteNanos(t *testing.T) {
	b := MustGet(PCMMLC)
	pt, err := b.Normalize(MLC(0.055))
	if err != nil {
		t.Fatal(err)
	}
	table := mlc.CachedTable(mlc.Approximate(0.055), 0, mlc.CalibrationSeed)
	if got, want := b.ApproxWriteNanos(pt), table.AvgWriteNanos(); got != want {
		t.Errorf("pcm-mlc ApproxWriteNanos = %v, want %v", got, want)
	}
	if got := MustGet(SpintronicName).ApproxWriteNanos(Point{}); got != mlc.PreciseWriteNanos {
		t.Errorf("spintronic ApproxWriteNanos = %v, want precise latency %v", got, mlc.PreciseWriteNanos)
	}
}

func TestPointString(t *testing.T) {
	if got := MLC(0.07).String(); got != "pcm-mlc(t=0.07)" {
		t.Errorf("MLC point string = %q", got)
	}
	pt := Spintronic(spintronic.Config{Saving: 0.2, BitErrorProb: 1e-6})
	if got := pt.String(); got != "spintronic(saving=0.2,bit_error_prob=1e-06)" {
		t.Errorf("spintronic point string = %q", got)
	}
}

func TestSpintronicPresetsMatchAppendix(t *testing.T) {
	pts := SpintronicPresets()
	if len(pts) != 4 {
		t.Fatalf("presets = %d points, want 4", len(pts))
	}
	cfgs := spintronic.Presets()
	for i, pt := range pts {
		if s, _ := pt.Param("saving"); s != cfgs[i].Saving {
			t.Errorf("preset %d saving = %v, want %v", i, s, cfgs[i].Saving)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(mlcBackend{})
}
