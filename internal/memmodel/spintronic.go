package memmodel

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/spintronic"
)

// SpintronicName is the registry name of the Appendix A spintronic
// backend (after Ranjan et al., DAC'15).
const SpintronicName = "spintronic"

// spinBackend adapts internal/spintronic to the Backend seam. Its
// approximate writes cost full precise latency but a reduced energy
// (1 − saving), with independent per-bit flip errors — the dual of the
// MLC model, which saves latency and energy together.
type spinBackend struct{}

func init() { Register(spinBackend{}) }

func (spinBackend) Name() string { return SpintronicName }

func (spinBackend) Params() []ParamSpec {
	return []ParamSpec{
		{
			Name:    "saving",
			Doc:     "fraction of the precise write energy saved per approximate write",
			Default: 0.33, // the Figure 13/14 featured operating point
			Min:     0,
			Max:     1, // exclusive in practice: Config.Validate rejects saving == 1
			Seed:    true,
		},
		{
			Name:    "bit_error_prob",
			Doc:     "independent per-bit flip probability of one write",
			Default: 1e-5,
			Min:     0,
			Max:     0.5,
			Seed:    true,
		},
		{
			Name: "read_bit_error_prob",
			Doc:  "per-bit flip probability of one read (0 = reads precise, the appendix's assumption)",
			Min:  0,
			Max:  0.5,
			// Not a seed coordinate: the parameter postdates the pinned
			// spintronic goldens, whose streams are keyed by
			// (saving, bit_error_prob) alone.
		},
	}
}

// Spintronic returns the spintronic point at operating point cfg.
func Spintronic(cfg spintronic.Config) Point {
	params := map[string]float64{
		"saving":         cfg.Saving,
		"bit_error_prob": cfg.BitErrorProb,
	}
	if cfg.ReadBitErrorProb != 0 { //nolint:floatord // exact-zero test on a configured probability, not an accumulated sum
		params["read_bit_error_prob"] = cfg.ReadBitErrorProb
	}
	return Point{Backend: SpintronicName, Params: params}
}

// config converts a normalized point back to the concrete operating
// point.
func (spinBackend) config(pt Point) spintronic.Config {
	saving, ok1 := pt.Param("saving")
	eprob, ok2 := pt.Param("bit_error_prob")
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("memmodel: %v is not normalized (missing saving/bit_error_prob)", pt))
	}
	readProb, _ := pt.Param("read_bit_error_prob")
	return spintronic.Config{Saving: saving, BitErrorProb: eprob, ReadBitErrorProb: readProb}
}

func (b spinBackend) DefaultPoint() Point {
	pt, err := b.Normalize(Point{Backend: SpintronicName})
	if err != nil {
		panic(err) // unreachable: the default is in range
	}
	return pt
}

func (b spinBackend) Normalize(pt Point) (Point, error) {
	out, err := normalizeAgainst(b, pt)
	if err != nil {
		return Point{}, err
	}
	// Config.Validate is the authoritative range check; the schema bounds
	// mirror it, so this is a belt-and-braces consistency guard.
	if err := b.config(out).Validate(); err != nil {
		return Point{}, err
	}
	return out, nil
}

func (b spinBackend) NewApprox(pt Point, seed uint64) Space {
	return spintronic.NewSpace(b.config(pt), seed)
}

func (spinBackend) NewPrecise() Space { return mem.NewPreciseSpace() }

func (b spinBackend) SeedCoords(pt Point) []any {
	cfg := b.config(pt)
	return []any{cfg.Saving, cfg.BitErrorProb}
}

// SortOnlySeeds reproduces the Appendix A study's original derivation —
// labelled sub-streams split from the point seed — pinned by the
// Figure 12 golden rows.
func (spinBackend) SortOnlySeeds(pointSeed uint64) (uint64, uint64) {
	return rng.Split(pointSeed, "space"), rng.Split(pointSeed, "sort")
}

func (b spinBackend) Identities(pt Point) Identities {
	return Identities{
		FixedWriteLatency: true,
		EnergyPerWrite:    1 - b.config(pt).Saving,
	}
}

// ApproxWriteNanos: lowering the MTJ write voltage saves energy, not
// time — approximate writes keep the precise write latency.
func (spinBackend) ApproxWriteNanos(Point) float64 { return mlc.PreciseWriteNanos }

// Compile-time seam check: the spintronic space satisfies the contract.
var _ Space = (*spintronic.Space)(nil)

// SpintronicPresets returns the four Appendix A operating points as
// registry points, in increasing aggressiveness.
func SpintronicPresets() []Point {
	cfgs := spintronic.Presets()
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = Spintronic(cfg)
	}
	return pts
}
