package memmodel

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/memristive"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// MemristiveName is the registry name of the reduced-current ReRAM
// backend (internal/memristive).
const MemristiveName = "memristive"

// memristiveBackend adapts internal/memristive to the Backend seam. Its
// approximate writes keep the precise write latency but cost a
// current_scale fraction of the precise energy, with per-cell switching
// failures that leave failed cells at their PREVIOUS value —
// data-dependent corruption, unlike spintronic's independent XOR flips.
// Reads are precise and charge the faster ReRAM read latency, which the
// verifier pins through Identities.ReadNanosPerRead.
type memristiveBackend struct{}

func init() { Register(memristiveBackend{}) }

func (memristiveBackend) Name() string { return MemristiveName }

func (memristiveBackend) Params() []ParamSpec {
	return []ParamSpec{
		{
			Name:         "current_scale",
			Doc:          "programming current relative to the precise write (lower = cheaper, less reliable)",
			Default:      0.7,
			Min:          0,
			Max:          1,
			MinExclusive: true,
			Seed:         true,
		},
		{
			Name:    "switch_fail_prob",
			Doc:     "per-cell probability that a reduced-current write fails to switch",
			Default: 1e-5,
			Min:     0,
			Max:     0.5,
			Seed:    true,
		},
	}
}

// Memristive returns the registry point at operating point cfg.
func Memristive(cfg memristive.Config) Point {
	return Point{Backend: MemristiveName, Params: map[string]float64{
		"current_scale":    cfg.CurrentScale,
		"switch_fail_prob": cfg.SwitchFailProb,
	}}
}

// config converts a normalized point back to the concrete operating
// point.
func (memristiveBackend) config(pt Point) memristive.Config {
	scale, ok1 := pt.Param("current_scale")
	fail, ok2 := pt.Param("switch_fail_prob")
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("memmodel: %v is not normalized (missing current_scale/switch_fail_prob)", pt))
	}
	return memristive.Config{CurrentScale: scale, SwitchFailProb: fail}
}

func (b memristiveBackend) DefaultPoint() Point {
	pt, err := b.Normalize(Point{Backend: MemristiveName})
	if err != nil {
		panic(err) // unreachable: the defaults are in range
	}
	return pt
}

func (b memristiveBackend) Normalize(pt Point) (Point, error) {
	out, err := normalizeAgainst(b, pt)
	if err != nil {
		return Point{}, err
	}
	// Config.Validate is the authoritative range check; the schema bounds
	// mirror it, so this is a belt-and-braces consistency guard.
	if err := b.config(out).Validate(); err != nil {
		return Point{}, err
	}
	return out, nil
}

func (b memristiveBackend) NewApprox(pt Point, seed uint64) Space {
	return memristive.NewSpace(b.config(pt), seed)
}

func (memristiveBackend) NewPrecise() Space { return mem.NewPreciseSpace() }

// SeedCoords returns exactly the Seed-flagged parameters in schema order;
// this keys every grid cell's RNG stream and is pinned by the memristive
// golden rows.
func (b memristiveBackend) SeedCoords(pt Point) []any {
	cfg := b.config(pt)
	return []any{cfg.CurrentScale, cfg.SwitchFailProb}
}

// SortOnlySeeds derives the (space, sort) stream pair for sort-only runs
// via labelled splits, the convention for post-pcm-mlc backends.
func (memristiveBackend) SortOnlySeeds(pointSeed uint64) (uint64, uint64) {
	return rng.Split(pointSeed, "space"), rng.Split(pointSeed, "sort")
}

func (b memristiveBackend) Identities(pt Point) Identities {
	return Identities{
		FixedWriteLatency: true,
		EnergyPerWrite:    b.config(pt).CurrentScale,
		ReadNanosPerRead:  memristive.ReadNanos,
	}
}

// ApproxWriteNanos: reducing the programming current saves energy, not
// time — the switching pulse keeps the precise write latency.
func (memristiveBackend) ApproxWriteNanos(Point) float64 { return mlc.PreciseWriteNanos }

// Compile-time seam check: the memristive space satisfies the contract.
var _ Space = (*memristive.Space)(nil)

// MemristivePresets returns the three internal/memristive operating
// points as registry points, in increasing aggressiveness.
func MemristivePresets() []Point {
	cfgs := memristive.Presets()
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = Memristive(cfg)
	}
	return pts
}
