// Package cache implements the write-through cache hierarchy of the
// paper's simulator (Table 1): 32 KB L1, 2 MB 4-way L2, 32 MB 8-way L3
// with 10 ns access latency, all LRU with 64-byte lines. Write-through
// means every data write proceeds to main memory; the hierarchy only
// filters reads, which is the modelling assumption the paper's
// write-latency accounting rests on (Section 3.2).
package cache

import "fmt"

// LineBytes is the cache line size used throughout (64 B).
const LineBytes = 64

// Cache is one set-associative, LRU, write-through cache level.
type Cache struct {
	ways   int
	sets   int
	tags   [][]uint64 // tags[set] ordered most- to least-recently used
	hits   uint64
	misses uint64
}

// New returns a cache of the given total size and associativity with
// 64-byte lines. It panics if the geometry is inconsistent (programming
// error).
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || sizeBytes%(ways*LineBytes) != 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d", sizeBytes, ways))
	}
	sets := sizeBytes / (ways * LineBytes)
	c := &Cache{ways: ways, sets: sets, tags: make([][]uint64, sets)}
	for i := range c.tags {
		c.tags[i] = make([]uint64, 0, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(addr uint64) (int, uint64) {
	line := addr / LineBytes
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Access looks up addr, allocating the line (and evicting LRU) on a miss.
// It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	si, tag := c.set(addr)
	set := c.tags[si]
	for i, t := range set {
		if t == tag {
			// Move to front (most recently used).
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.tags[si] = set
	return false
}

// Touch updates the line's recency if present but does not allocate — the
// write-through, no-write-allocate policy for stores.
func (c *Cache) Touch(addr uint64) bool {
	si, tag := c.set(addr)
	set := c.tags[si]
	for i, t := range set {
		if t == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Level access latencies. Table 1 specifies only the L3 latency (10 ns);
// the L1/L2 values are the conventional magnitudes for those sizes and
// only matter for the total-access-time metric, never for write latency.
const (
	L1Nanos = 1.0
	L2Nanos = 4.0
	L3Nanos = 10.0
)

// Hierarchy is the three-level write-through hierarchy of Table 1.
type Hierarchy struct {
	L1, L2, L3 *Cache
}

// NewHierarchy returns the Table 1 configuration: 32 KB 8-way L1,
// 2 MB 4-way L2, 32 MB 8-way L3.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1: New(32<<10, 8),
		L2: New(2<<20, 4),
		L3: New(32<<20, 8),
	}
}

// Read services a load: it returns the level that hit (1–3) and the
// accumulated latency, or level 0 when the access misses everywhere and
// must go to memory (the returned latency then counts the traversal cost
// of all three levels).
func (h *Hierarchy) Read(addr uint64) (level int, nanos float64) {
	if h.L1.Access(addr) {
		return 1, L1Nanos
	}
	if h.L2.Access(addr) {
		return 2, L1Nanos + L2Nanos
	}
	if h.L3.Access(addr) {
		return 3, L1Nanos + L2Nanos + L3Nanos
	}
	return 0, L1Nanos + L2Nanos + L3Nanos
}

// Write services a store under write-through/no-write-allocate: present
// lines refresh their recency, nothing is allocated, and the store always
// proceeds to memory (the caller forwards it to the PCM simulator).
func (h *Hierarchy) Write(addr uint64) {
	h.L1.Touch(addr)
	h.L2.Touch(addr)
	h.L3.Touch(addr)
}
