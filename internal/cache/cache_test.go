package cache

import "testing"

func TestGeometry(t *testing.T) {
	c := New(32<<10, 8)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Errorf("32KB 8-way: sets=%d ways=%d, want 64/8", c.Sets(), c.Ways())
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	New(1000, 3) // not divisible by ways*line
}

func TestHitAfterMiss(t *testing.T) {
	c := New(4096, 2)
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next-line access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: two lines in a set survive, a third evicts the LRU.
	c := New(2*LineBytes, 2) // 1 set, 2 ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Access(b) {
		t.Error("b survived eviction")
	}
}

func TestTouchDoesNotAllocate(t *testing.T) {
	c := New(4096, 4)
	if c.Touch(0) {
		t.Error("Touch hit a cold cache")
	}
	if c.Access(0) {
		t.Error("Touch must not have allocated")
	}
	if !c.Touch(0) {
		t.Error("Touch missed a resident line")
	}
}

func TestTouchRefreshesRecency(t *testing.T) {
	c := New(2*LineBytes, 2)
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b) // order: b, a (a is LRU)
	c.Touch(a)  // order: a, b
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("touched line was evicted")
	}
}

func TestSetMapping(t *testing.T) {
	c := New(4096, 1) // 64 direct-mapped sets
	// Addresses one set apart must not conflict; addresses sets*line
	// apart must conflict.
	c.Access(0)
	c.Access(64)
	if !c.Access(0) {
		t.Error("different sets conflicted")
	}
	c.Access(64 * 64) // same set as 0 in a direct-mapped cache
	if c.Access(0) {
		t.Error("conflicting line did not evict in direct-mapped cache")
	}
}

func TestHierarchyInclusionPath(t *testing.T) {
	h := NewHierarchy()
	level, nanos := h.Read(0)
	if level != 0 {
		t.Fatalf("cold read hit level %d", level)
	}
	if nanos != L1Nanos+L2Nanos+L3Nanos {
		t.Errorf("cold read traversal = %v ns", nanos)
	}
	level, nanos = h.Read(0)
	if level != 1 || nanos != L1Nanos {
		t.Errorf("warm read: level=%d nanos=%v, want L1 hit", level, nanos)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy()
	h.Read(0)
	// Blow L1 (32 KB) with a 64 KB sweep, leaving L2 resident.
	for a := uint64(4096); a < 4096+64<<10; a += LineBytes {
		h.Read(a)
	}
	level, _ := h.Read(0)
	if level != 2 {
		t.Errorf("expected L2 hit after L1 flush, got level %d", level)
	}
}

func TestHierarchyWriteThrough(t *testing.T) {
	h := NewHierarchy()
	// A store to a cold line must not allocate it.
	h.Write(0)
	if level, _ := h.Read(0); level != 0 {
		t.Errorf("write allocated a line: read hit level %d", level)
	}
}

func BenchmarkHierarchyRead(b *testing.B) {
	h := NewHierarchy()
	for i := 0; i < b.N; i++ {
		h.Read(uint64(i*64) % (8 << 20))
	}
}
