package mlc

import (
	"testing"

	"approxsort/internal/rng"
)

// TestWriteWordAllocFree pins the dense sampler's zero-allocation
// contract: a word write draws from prebuilt threshold tables and the
// caller's RNG, nothing else (see DESIGN.md §13).
func TestWriteWordAllocFree(t *testing.T) {
	tab := CachedTable(Approximate(0.055), 0, CalibrationSeed)
	r := rng.New(1)
	i := uint32(0)
	if got := testing.AllocsPerRun(100, func() {
		_, _ = tab.WriteWord(r, i*2654435761)
		i++
	}); got != 0 {
		t.Errorf("WriteWord: %v allocs per write, want 0", got)
	}
	src := make([]uint32, 256)
	dst := make([]uint32, 256)
	if got := testing.AllocsPerRun(20, func() {
		_ = tab.WriteWords(r, dst, src)
	}); got != 0 {
		t.Errorf("WriteWords: %v allocs per batch, want 0", got)
	}
}
