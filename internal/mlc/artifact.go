package mlc

import (
	"fmt"
)

// A table calibration is deterministic in (Params, Samples, Seed), but it
// costs a Monte-Carlo campaign per level — the dominant cold-start cost
// of a sortd instance. TableArtifact is the wire form of a finished
// calibration: a coordinator fetches it from one warm shard and installs
// it on the rest, so an N-node cluster pays for one campaign instead of
// N. Only the empirical distributions travel; the dense fixed-point
// sampler state is derived locally by buildDense, which is a pure
// function of them, so an installed table is bit-identical to a locally
// built one.

// TableArtifact is a serializable calibrated table.
type TableArtifact struct {
	// Params, Samples and Seed are the calibration key; an installed
	// artifact lands in the cache under exactly this TableKey.
	Params  Params
	Samples int
	Seed    uint64

	// ResCum, ItersCum, AvgP and ErrProb mirror Table's calibrated
	// distributions (see Table's field docs).
	ResCum   [][]float64
	ItersCum [][]float64
	AvgP     float64
	ErrProb  []float64
}

// Artifact exports the table's calibration under the given (samples,
// seed) key. samples <= 0 normalizes to DefaultTableSamples, matching
// NewTable and TableCache.Get. The returned artifact shares no state
// with the table.
func (t *Table) Artifact(samples int, seed uint64) TableArtifact {
	if samples <= 0 {
		samples = DefaultTableSamples
	}
	a := TableArtifact{
		Params:   t.p,
		Samples:  samples,
		Seed:     seed,
		ResCum:   make([][]float64, len(t.resCum)),
		ItersCum: make([][]float64, len(t.itersCum)),
		AvgP:     t.avgP,
		ErrProb:  append([]float64(nil), t.errProb...),
	}
	for i := range t.resCum {
		a.ResCum[i] = append([]float64(nil), t.resCum[i]...)
	}
	for i := range t.itersCum {
		a.ItersCum[i] = append([]float64(nil), t.itersCum[i]...)
	}
	return a
}

// Validate checks the artifact's shape against its own Params: per-level
// distribution counts, row lengths, cumulative rows ending at exactly 1
// (the invariant cumulate enforces, which the dense sampler relies on),
// and probabilities in range. It does not re-run the calibration.
func (a TableArtifact) Validate() error {
	if err := a.Params.Validate(); err != nil {
		return fmt.Errorf("mlc: artifact params: %w", err)
	}
	L := a.Params.Levels
	if len(a.ResCum) != L || len(a.ItersCum) != L || len(a.ErrProb) != L {
		return fmt.Errorf("mlc: artifact has %d/%d/%d rows, want %d levels",
			len(a.ResCum), len(a.ItersCum), len(a.ErrProb), L)
	}
	checkRow := func(name string, row []float64, want int) error {
		if len(row) != want {
			return fmt.Errorf("mlc: artifact %s row has %d entries, want %d", name, len(row), want)
		}
		prev := 0.0
		for _, v := range row {
			if v < prev || v > 1 {
				return fmt.Errorf("mlc: artifact %s row not a cumulative distribution", name)
			}
			prev = v
		}
		if row[want-1] != 1 { //nolint:floatord // cumulate pins the last entry to exactly 1; the dense sampler relies on bit-exact termination
			return fmt.Errorf("mlc: artifact %s row ends at %v, want exactly 1", name, row[want-1])
		}
		return nil
	}
	for l := 0; l < L; l++ {
		if err := checkRow("ResCum", a.ResCum[l], L); err != nil {
			return err
		}
		if err := checkRow("ItersCum", a.ItersCum[l], a.Params.MaxIters); err != nil {
			return err
		}
		if a.ErrProb[l] < 0 || a.ErrProb[l] > 1 {
			return fmt.Errorf("mlc: artifact ErrProb[%d] = %v out of [0,1]", l, a.ErrProb[l])
		}
	}
	if a.AvgP < 1 {
		return fmt.Errorf("mlc: artifact AvgP = %v; every cell write takes at least one pulse", a.AvgP)
	}
	return nil
}

// Table reconstructs the calibrated table, deriving the dense sampler
// state locally. The result is bit-identical to NewTable(Params,
// Samples, Seed) when the artifact came from such a table.
func (a TableArtifact) Table() (*Table, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		p:        a.Params,
		resCum:   make([][]float64, len(a.ResCum)),
		itersCum: make([][]float64, len(a.ItersCum)),
		avgP:     a.AvgP,
		errProb:  append([]float64(nil), a.ErrProb...),
	}
	for i := range a.ResCum {
		t.resCum[i] = append([]float64(nil), a.ResCum[i]...)
	}
	for i := range a.ItersCum {
		t.itersCum[i] = append([]float64(nil), a.ItersCum[i]...)
	}
	t.buildDense()
	return t, nil
}

// Install places a reconstructed artifact table into the cache under the
// artifact's own key, so subsequent Get calls for that key return it
// without running a calibration campaign. A key whose table already
// exists (or is being built) is left untouched — the existing table is
// identical by construction — and Install reports false.
func (c *TableCache) Install(a TableArtifact) (bool, error) {
	t, err := a.Table()
	if err != nil {
		return false, err
	}
	samples := a.Samples
	if samples <= 0 {
		samples = DefaultTableSamples
	}
	key := TableKey{Params: a.Params, Samples: samples, Seed: a.Seed}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false, nil
	}
	e := &tableEntry{ready: make(chan struct{}), table: t}
	close(e.ready)
	c.entries[key] = e
	return true, nil
}
