package mlc

import (
	"testing"

	"approxsort/internal/rng"
)

func TestWithLevelsValidation(t *testing.T) {
	if err := WithLevels(2, 0.2).Validate(); err != nil {
		t.Errorf("SLC with wide T rejected: %v", err)
	}
	if err := WithLevels(16, 0.03).Validate(); err != nil {
		t.Errorf("16-level cell rejected: %v", err)
	}
	// 8-level cells carry 3 bits, which do not pack into 32-bit words.
	if err := WithLevels(8, 0.05).Validate(); err == nil {
		t.Error("8-level cell accepted despite 3-bit packing")
	}
}

func TestGuardFraction(t *testing.T) {
	p := GuardFraction(4, 1)
	if p.T != 0.125 {
		t.Errorf("full-band 4-level T = %v, want 0.125", p.T)
	}
	p = GuardFraction(16, 0.5)
	if want := 0.5 / 32; p.T != want {
		t.Errorf("half-band 16-level T = %v, want %v", p.T, want)
	}
}

func TestSLCRoundTrip(t *testing.T) {
	// Single-level cells with generous guard bands are extremely robust.
	p := GuardFraction(2, 0.2)
	model := NewExact(p)
	if model.CellsPerWord() != 32 {
		t.Fatalf("SLC CellsPerWord = %d, want 32", model.CellsPerWord())
	}
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		w := r.Uint32()
		stored, iters := model.WriteWord(r, w)
		if stored != w {
			t.Fatalf("SLC corrupted word %08x -> %08x", w, stored)
		}
		if iters < 32 {
			t.Fatalf("SLC word write used %d pulses", iters)
		}
	}
}

// TestDensityCostsPulses is the Sampson density trade-off: at the same
// guard fraction, denser cells (tighter absolute targets) need more P&V
// pulses per cell and suffer more read errors.
func TestDensityCostsPulses(t *testing.T) {
	const f = 0.4
	slc := MonteCarlo(GuardFraction(2, f), 4000, 2)
	mlc4 := MonteCarlo(GuardFraction(4, f), 4000, 3)
	mlc16 := MonteCarlo(GuardFraction(16, f), 4000, 4)

	if !(slc.AvgP < mlc4.AvgP && mlc4.AvgP < mlc16.AvgP) {
		t.Errorf("avg #P not increasing with density: %v / %v / %v",
			slc.AvgP, mlc4.AvgP, mlc16.AvgP)
	}
	if mlc16.CellErrorRate <= mlc4.CellErrorRate {
		t.Errorf("16-level error rate %v not above 4-level %v",
			mlc16.CellErrorRate, mlc4.CellErrorRate)
	}
	// Density pays off in cells: 16-level words need half the cells of
	// 4-level ones.
	if c4, c16 := Approximate(0.05).CellsPerWord(), WithLevels(16, 0.01).CellsPerWord(); c16 != c4/2 {
		t.Errorf("cells per word: 4-level %d, 16-level %d", c4, c16)
	}
}

// TestAnalogMarginalErrorMatchesMaterialized validates the DESIGN.md §3
// "error timing" decision: the first read of an analog cell has the same
// marginal error distribution as the write-time-materialized engines.
func TestAnalogMarginalErrorMatchesMaterialized(t *testing.T) {
	const T = 0.1
	const n = 4000
	a := NewAnalogArray(Approximate(T), n, 5)
	r := rng.New(6)
	want := make([]uint32, n)
	for i := range want {
		want[i] = r.Uint32()
		a.Set(i, want[i])
	}
	errs := 0
	for i := range want {
		if a.Get(i) != want[i] {
			errs++
		}
	}
	analogRate := float64(errs) / n

	exact := MonteCarlo(Approximate(T), n, 7)
	if d := analogRate - exact.WordErrorRate; d > 0.05 || d < -0.05 {
		t.Errorf("analog first-read word error %v vs materialized %v", analogRate, exact.WordErrorRate)
	}
}
