// Package mlc models multi-level-cell (MLC) phase change memory after
// Sampson et al. ("Approximate Storage in Solid-State Memories", MICRO'13)
// as adopted by Chen et al. (SIGMOD'16, Section 2).
//
// A cell stores an analog value in [0, 1], quantized into L evenly spaced
// levels. Writing is an iterative program-and-verify (P&V) process: each
// pulse moves the analog value toward the target with normally distributed
// error, and pulses repeat until the value lands within T of the target
// (T is half the width of the target range; the remainder of a level band
// is guard band). Reading adds drift noise and quantizes.
//
// Shrinking the guard band (raising T) is what makes the memory
// *approximate*: fewer P&V iterations per write (lower write latency) but a
// growing chance that drift pushes the stored value across a band boundary,
// corrupting the digital value.
//
// The package provides an exact Monte-Carlo cell model (Exact), a calibrated
// fast model driven by precomputed transition tables (Table), and an analog
// array that re-samples drift on every read for sensitivity studies
// (AnalogArray).
package mlc

import (
	"fmt"
	"math"

	"approxsort/internal/rng"
)

// Reference constants from the paper (Tables 1 and 2).
const (
	// ReferenceAvgP is the average number of P&V iterations per cell write
	// on precise memory (T = 0.025) reported in Table 2. It anchors the
	// latency normalization: one precise word write costs
	// PreciseWriteNanos and corresponds to ReferenceAvgP iterations.
	ReferenceAvgP = 2.98

	// PreciseWriteNanos is the latency of one precise PCM data write
	// (Table 1: 1 µs).
	PreciseWriteNanos = 1000.0

	// ReadNanos is the latency of one PCM data read (Table 1: 50 ns).
	ReadNanos = 50.0

	// PreciseT is the target-range half width at which the memory is
	// considered precise (Section 2.2).
	PreciseT = 0.025

	// MaxT is the largest meaningful T for a 4-level cell: at 1/8 the
	// guard bands vanish entirely (Section 2.1.1).
	MaxT = 0.125
)

// Params describes an MLC cell configuration (Table 2 of the paper).
type Params struct {
	// Levels is the number of levels L per cell. The paper uses L = 4
	// (a 2-bit cell). Must be a power of two.
	Levels int

	// Beta is the write fluctuation constant β: a P&V pulse from value v
	// toward target vd lands at v + N(vd−v, β·|vd−v|), where the second
	// parameter is the *variance*. β = 0.035 reproduces the paper's
	// avg #P = 2.98 at T = 0.025.
	Beta float64

	// T is half the width of the target analog range. T = 0.025 is
	// precise; larger T is approximate. Must satisfy 0 < T < 1/(2·Levels).
	T float64

	// ReadMu and ReadSigma parameterize the per-read drift coefficient
	// ν ~ N(ReadMu, ReadSigma) (Table 2: read fluctuation µ = 0.067,
	// σ = 0.027).
	ReadMu, ReadSigma float64

	// Elapsed is tw, the time in seconds since the cell write, entering
	// the drift term as log10(tw) (Table 2: 1e5 s).
	Elapsed float64

	// DriftScale converts the drift coefficient into analog-value units.
	// The paper's raw parameters (ν·log10(tw) ≈ 0.33) exceed a whole
	// level band and would corrupt even precise memory, so the authors
	// must have applied a scale they do not state; DriftScale is that
	// calibration constant. The default is chosen so precise memory has
	// a raw bit error rate below 1e-7 while the error curve reproduces
	// the knee at T ≈ 0.06 of Figure 2(b). See DESIGN.md §3.
	DriftScale float64

	// MaxIters bounds the P&V loop as a safety valve; the write is
	// forced onto the target after MaxIters pulses. With the default
	// parameters the loop converges in a handful of iterations.
	MaxIters int
}

// Default model parameters (Table 2 plus the calibrated DriftScale).
const (
	DefaultBeta       = 0.035
	DefaultReadMu     = 0.067
	DefaultReadSigma  = 0.027
	DefaultElapsed    = 1e5
	DefaultDriftScale = 0.1
	DefaultMaxIters   = 64
)

// Precise returns the precise-memory configuration (T = 0.025).
func Precise() Params { return Approximate(PreciseT) }

// Approximate returns a 4-level cell configuration with the given target
// half-width T. T must lie in (0, 0.125) for a 4-level cell.
func Approximate(t float64) Params { return WithLevels(4, t) }

// WithLevels returns a cell configuration with the given level count and
// target half-width — the density axis of the Sampson model (denser cells
// expose more bits but demand tighter targets). Levels must be a power of
// two whose bit width divides 32 (2, 4, 16, or 256-level cells).
func WithLevels(levels int, t float64) Params {
	return Params{
		Levels:     levels,
		Beta:       DefaultBeta,
		T:          t,
		ReadMu:     DefaultReadMu,
		ReadSigma:  DefaultReadSigma,
		Elapsed:    DefaultElapsed,
		DriftScale: DefaultDriftScale,
		MaxIters:   DefaultMaxIters,
	}
}

// GuardFraction returns the configuration whose target half-width is the
// fraction f of the full band half-width 1/(2L) — the density-fair way to
// compare cells with different level counts (f = 1 means no guard band).
func GuardFraction(levels int, f float64) Params {
	return WithLevels(levels, f/(2*float64(levels)))
}

// Validate reports whether the parameters describe a realizable cell.
func (p Params) Validate() error {
	if p.Levels < 2 || p.Levels&(p.Levels-1) != 0 {
		return fmt.Errorf("mlc: Levels must be a power of two >= 2, got %d", p.Levels)
	}
	if 32%p.BitsPerCell() != 0 {
		return fmt.Errorf("mlc: %d-level cells (%d bits) do not pack into 32-bit words",
			p.Levels, p.BitsPerCell())
	}
	if p.T <= 0 || p.T > 1/(2*float64(p.Levels)) {
		return fmt.Errorf("mlc: T = %v out of range (0, %v]", p.T, 1/(2*float64(p.Levels)))
	}
	if p.Beta <= 0 {
		return fmt.Errorf("mlc: Beta must be positive, got %v", p.Beta)
	}
	if p.Elapsed < 1 {
		return fmt.Errorf("mlc: Elapsed must be >= 1s, got %v", p.Elapsed)
	}
	if p.MaxIters < 1 {
		return fmt.Errorf("mlc: MaxIters must be >= 1, got %d", p.MaxIters)
	}
	return nil
}

// BitsPerCell returns log2(Levels).
func (p Params) BitsPerCell() int {
	b := 0
	for l := p.Levels; l > 1; l >>= 1 {
		b++
	}
	return b
}

// CellsPerWord returns the number of cells needed to store a 32-bit word
// (sixteen for a 2-bit cell, per Section 3.2).
func (p Params) CellsPerWord() int { return 32 / p.BitsPerCell() }

// LevelValue returns the analog center of level l: (2l+1)/(2L).
func (p Params) LevelValue(level int) float64 {
	return (2*float64(level) + 1) / (2 * float64(p.Levels))
}

// Quantize maps an analog value to the digital level whose band contains
// it. Bands are [k/L, (k+1)/L); values outside [0, 1) clamp to the extreme
// levels.
func (p Params) Quantize(v float64) int {
	level := int(v * float64(p.Levels))
	if level < 0 {
		return 0
	}
	if level >= p.Levels {
		return p.Levels - 1
	}
	return level
}

// driftShift draws the additive read perturbation:
// ν·log10(tw)·DriftScale with ν ~ N(ReadMu, ReadSigma). The mean is
// positive — drift is unidirectional (Yeo et al.) — so errors skew upward,
// and the top level cannot drift out of its band.
func (p Params) driftShift(r *rng.Source) float64 {
	nu := r.NormAt(p.ReadMu, p.ReadSigma)
	return nu * math.Log10(p.Elapsed) * p.DriftScale
}

// WriteCell performs one P&V cell write targeting digital level and returns
// the settled analog value together with the number of pulses used
// (Function WRITE in the paper).
func (p Params) WriteCell(r *rng.Source, level int) (v float64, iters int) {
	vd := p.LevelValue(level)
	v = 0
	for {
		delta := vd - v
		v += r.NormAt(delta, math.Sqrt(p.Beta*math.Abs(delta)))
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		iters++
		if math.Abs(v-vd) <= p.T {
			return v, iters
		}
		if iters >= p.MaxIters {
			return vd, iters
		}
	}
}

// ReadCell reads an analog value back as a digital level, applying drift
// noise (Section 2.1.2).
func (p Params) ReadCell(r *rng.Source, v float64) int {
	return p.Quantize(v + p.driftShift(r))
}

// WriteReadCell performs a write immediately followed by one read-back,
// returning the digital level observed and the pulse count. This is the
// cell-level primitive behind the word models: corruption is materialized
// at write time (see DESIGN.md §3, "Error timing").
func (p Params) WriteReadCell(r *rng.Source, level int) (got, iters int) {
	v, it := p.WriteCell(r, level)
	return p.ReadCell(r, v), it
}

// WordModel is the contract shared by the exact and table-driven engines:
// write one 32-bit word into approximate cells, returning the (possibly
// corrupted) value that will be read back and the total number of P&V
// pulses across the word's cells.
type WordModel interface {
	// WriteWord stores w and returns the value subsequent reads observe
	// plus the total P&V iterations summed over the word's cells.
	WriteWord(r *rng.Source, w uint32) (stored uint32, iters int)
	// CellsPerWord returns how many cells make up one 32-bit word.
	CellsPerWord() int
	// Params returns the cell configuration behind the model.
	Params() Params
}

// Exact is the reference WordModel: every cell write runs the full P&V
// Monte-Carlo loop and one drift read-back.
type Exact struct {
	P Params
}

// NewExact returns an exact word model for p. It panics if p is invalid,
// because a bad configuration is a programming error.
func NewExact(p Params) *Exact {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Exact{P: p}
}

// WriteWord implements WordModel.
func (e *Exact) WriteWord(r *rng.Source, w uint32) (uint32, int) {
	bits := e.P.BitsPerCell()
	mask := uint32(e.P.Levels - 1)
	var stored uint32
	total := 0
	for shift := 0; shift < 32; shift += bits {
		level := int(w >> shift & mask)
		got, iters := e.P.WriteReadCell(r, level)
		stored |= uint32(got) << shift
		total += iters
	}
	return stored, total
}

// CellsPerWord implements WordModel.
func (e *Exact) CellsPerWord() int { return e.P.CellsPerWord() }

// Params implements WordModel.
func (e *Exact) Params() Params { return e.P }

// WordLatencyNanos converts a word write's total pulse count into
// nanoseconds using the Table 1/2 anchor: a precise word write (avg
// ReferenceAvgP pulses per cell) takes PreciseWriteNanos.
func WordLatencyNanos(totalIters, cellsPerWord int) float64 {
	perCell := float64(totalIters) / float64(cellsPerWord)
	return perCell / ReferenceAvgP * PreciseWriteNanos
}
