package mlc

import "approxsort/internal/rng"

// Priority implements the bit-priority feature of the approximate-storage
// interface the paper adopts from Sampson et al. (quoted in Section 2):
// "accesses can also include a data element size ... in each element, the
// highest-order bits are most important. ... Bit priority helps the memory
// decide where to expend its error protection resources to minimize the
// magnitude of errors when they occur."
//
// Priority wraps a word-sized element: its cells do not share one target
// half-width T; instead T interpolates per cell from TLow (most
// significant cells — tight targets, nearly precise) to THigh (least
// significant cells — aggressive targets, fast). Total pulse budget is
// comparable to a uniform configuration between the two endpoints, but
// errors concentrate in low-order bits, shrinking the *magnitude* of value
// corruption — which for sorting converts catastrophic misplacements into
// local perturbations that the refine stage absorbs cheaply.
type Priority struct {
	base Params
	// perCellT[i] is the target half-width of cell i, where cell 0
	// holds the least significant bits.
	perCellT []float64
}

// NewPriority returns a bit-priority model derived from base: the word's
// most significant cell is written at tLow and the least significant at
// tHigh, with linear interpolation between. It panics on invalid
// configuration (programming error).
func NewPriority(base Params, tLow, tHigh float64) *Priority {
	check := base
	check.T = tLow
	if err := check.Validate(); err != nil {
		panic(err)
	}
	check.T = tHigh
	if err := check.Validate(); err != nil {
		panic(err)
	}
	cells := base.CellsPerWord()
	p := &Priority{base: base, perCellT: make([]float64, cells)}
	for i := 0; i < cells; i++ {
		// i = 0 is least significant → tHigh; i = cells−1 → tLow.
		frac := float64(i) / float64(cells-1)
		p.perCellT[i] = tHigh + frac*(tLow-tHigh)
	}
	return p
}

// WriteWord implements WordModel with the per-cell precision schedule.
func (p *Priority) WriteWord(r *rng.Source, w uint32) (uint32, int) {
	bits := p.base.BitsPerCell()
	mask := uint32(p.base.Levels - 1)
	var stored uint32
	total := 0
	cell := 0
	params := p.base
	for shift := 0; shift < 32; shift += bits {
		params.T = p.perCellT[cell]
		level := int(w >> shift & mask)
		got, iters := params.WriteReadCell(r, level)
		stored |= uint32(got) << shift
		total += iters
		cell++
	}
	return stored, total
}

// CellsPerWord implements WordModel.
func (p *Priority) CellsPerWord() int { return p.base.CellsPerWord() }

// Params implements WordModel; the returned T is the mean of the per-cell
// schedule.
func (p *Priority) Params() Params {
	out := p.base
	sum := 0.0
	for _, t := range p.perCellT {
		sum += t
	}
	out.T = sum / float64(len(p.perCellT))
	return out
}

// CellT returns the target half-width of cell i (0 = least significant).
func (p *Priority) CellT(i int) float64 { return p.perCellT[i] }
