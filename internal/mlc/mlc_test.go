package mlc

import (
	"math"
	"testing"
	"testing/quick"

	"approxsort/internal/rng"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		ok   bool
	}{
		{"default precise", func(p *Params) {}, true},
		{"max T", func(p *Params) { p.T = 0.125 }, true},
		{"zero T", func(p *Params) { p.T = 0 }, false},
		{"T beyond band", func(p *Params) { p.T = 0.2 }, false},
		{"three levels", func(p *Params) { p.Levels = 3 }, false},
		{"one level", func(p *Params) { p.Levels = 1 }, false},
		{"negative beta", func(p *Params) { p.Beta = -1 }, false},
		{"tiny elapsed", func(p *Params) { p.Elapsed = 0.5 }, false},
		{"no iterations", func(p *Params) { p.MaxIters = 0 }, false},
	}
	for _, tc := range cases {
		p := Precise()
		tc.mut(&p)
		err := p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestLevelGeometry(t *testing.T) {
	p := Precise()
	if p.BitsPerCell() != 2 {
		t.Fatalf("BitsPerCell = %d, want 2", p.BitsPerCell())
	}
	if p.CellsPerWord() != 16 {
		t.Fatalf("CellsPerWord = %d, want 16", p.CellsPerWord())
	}
	want := []float64{0.125, 0.375, 0.625, 0.875}
	for l, w := range want {
		if got := p.LevelValue(l); math.Abs(got-w) > 1e-12 {
			t.Errorf("LevelValue(%d) = %v, want %v", l, got, w)
		}
	}
}

func TestQuantizeBands(t *testing.T) {
	p := Precise()
	cases := []struct {
		v    float64
		want int
	}{
		{0.0, 0}, {0.1249, 0}, {0.2499, 0},
		{0.25, 1}, {0.375, 1}, {0.4999, 1},
		{0.5, 2}, {0.7499, 2},
		{0.75, 3}, {0.999, 3},
		{-0.3, 0}, {1.0, 3}, {1.7, 3},
	}
	for _, tc := range cases {
		if got := p.Quantize(tc.v); got != tc.want {
			t.Errorf("Quantize(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestQuantizeInvertsLevelValue(t *testing.T) {
	f := func(level uint8) bool {
		p := Precise()
		l := int(level) % p.Levels
		return p.Quantize(p.LevelValue(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteCellLandsInTargetRange(t *testing.T) {
	r := rng.New(1)
	for _, T := range []float64{0.025, 0.055, 0.1, 0.125} {
		p := Approximate(T)
		for level := 0; level < p.Levels; level++ {
			for i := 0; i < 200; i++ {
				v, iters := p.WriteCell(r, level)
				if iters < 1 || iters > p.MaxIters {
					t.Fatalf("T=%v level=%d: iters=%d out of bounds", T, level, iters)
				}
				if d := math.Abs(v - p.LevelValue(level)); d > T+1e-12 {
					t.Fatalf("T=%v level=%d: settled %v from target (> T)", T, level, d)
				}
			}
		}
	}
}

// TestPreciseAvgPMatchesPaper checks the Table 2 anchor: avg #P ≈ 2.98 at
// T = 0.025 with β = 0.035. This is the observation that pins down the
// "variance = β|vd−v|" reading of the paper's N(µ, σ²) notation.
func TestPreciseAvgPMatchesPaper(t *testing.T) {
	s := MonteCarlo(Precise(), 20000, 42)
	if math.Abs(s.AvgP-ReferenceAvgP) > 0.1 {
		t.Errorf("precise avg #P = %v, want %v ± 0.1", s.AvgP, ReferenceAvgP)
	}
}

// TestAvgPHalvesAtT01 checks the Section 2.2 claim that T = 0.1 halves the
// number of P&V iterations relative to precise memory.
func TestAvgPHalvesAtT01(t *testing.T) {
	s := MonteCarlo(Approximate(0.1), 20000, 43)
	if p := s.PRatio(); p < 0.40 || p > 0.60 {
		t.Errorf("p(0.1) = %v, want roughly 0.5 (Fig. 2a / §2.2)", p)
	}
}

// TestErrorRateShape checks the qualitative error curve of Fig. 2(b):
// negligible at precise T, small at 0.055, steep past 0.1.
func TestErrorRateShape(t *testing.T) {
	precise := MonteCarlo(Precise(), 30000, 44)
	mid := MonteCarlo(Approximate(0.055), 30000, 45)
	high := MonteCarlo(Approximate(0.1), 30000, 46)
	edge := MonteCarlo(Approximate(0.124), 30000, 47)

	if precise.CellErrorRate > 1e-4 {
		t.Errorf("precise cell error rate = %v, want ~0", precise.CellErrorRate)
	}
	if mid.CellErrorRate > 0.01 {
		t.Errorf("T=0.055 cell error rate = %v, want < 1%%", mid.CellErrorRate)
	}
	if high.CellErrorRate <= mid.CellErrorRate {
		t.Errorf("error rate not increasing: e(0.1)=%v <= e(0.055)=%v",
			high.CellErrorRate, mid.CellErrorRate)
	}
	if edge.CellErrorRate <= high.CellErrorRate {
		t.Errorf("error rate not increasing: e(0.124)=%v <= e(0.1)=%v",
			edge.CellErrorRate, high.CellErrorRate)
	}
	if edge.WordErrorRate < 0.2 {
		t.Errorf("T=0.124 word error rate = %v, want substantial (Fig. 2b)", edge.WordErrorRate)
	}
}

func TestAvgPMonotoneInT(t *testing.T) {
	stats := Sweep(Precise(), []float64{0.025, 0.04, 0.055, 0.07, 0.085, 0.1, 0.124}, 10000, 48)
	for i := 1; i < len(stats); i++ {
		if stats[i].AvgP >= stats[i-1].AvgP {
			t.Errorf("avg #P not decreasing: #P(%v)=%v >= #P(%v)=%v",
				stats[i].T, stats[i].AvgP, stats[i-1].T, stats[i-1].AvgP)
		}
	}
}

func TestExactWriteWordPreservesValueWhenPrecise(t *testing.T) {
	model := NewExact(Precise())
	r := rng.New(5)
	errs := 0
	const words = 5000
	for i := 0; i < words; i++ {
		w := r.Uint32()
		stored, iters := model.WriteWord(r, w)
		if iters < model.CellsPerWord() {
			t.Fatalf("word write used %d iters, less than one per cell", iters)
		}
		if stored != w {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("precise memory corrupted %d/%d words", errs, words)
	}
}

func TestDriftIsUpward(t *testing.T) {
	// With unidirectional drift, corrupted cells should predominantly
	// read back one level *higher* than written (except the top level,
	// which saturates).
	p := Approximate(0.12)
	r := rng.New(6)
	up, down := 0, 0
	for i := 0; i < 50000; i++ {
		level := r.Intn(p.Levels - 1) // exclude top level
		got, _ := p.WriteReadCell(r, level)
		switch {
		case got > level:
			up++
		case got < level:
			down++
		}
	}
	if up <= down*2 {
		t.Errorf("drift not predominantly upward: %d up vs %d down", up, down)
	}
}

func TestWordLatencyNanosAnchors(t *testing.T) {
	// A word whose 16 cells each used exactly ReferenceAvgP pulses (scaled
	// to integers) costs exactly the precise write latency.
	got := WordLatencyNanos(int(ReferenceAvgP*16*1000), 16*1000)
	if math.Abs(got-PreciseWriteNanos) > 1e-6 {
		t.Errorf("WordLatencyNanos anchor = %v, want %v", got, PreciseWriteNanos)
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	ts := []float64{0.03, 0.06, 0.09, 0.12}
	seq := Sweep(Precise(), ts, 3000, 77)
	par := SweepParallel(Precise(), ts, 3000, 77, 8)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestStandardTs(t *testing.T) {
	ts := StandardTs(false)
	if ts[0] != 0.025 || ts[len(ts)-1] != 0.1 {
		t.Fatalf("StandardTs(false) range = [%v, %v]", ts[0], ts[len(ts)-1])
	}
	if len(ts) != 16 {
		t.Fatalf("StandardTs(false) has %d points, want 16", len(ts))
	}
	ext := StandardTs(true)
	if ext[len(ext)-1] != 0.124 {
		t.Fatalf("StandardTs(true) must end at 0.124, got %v", ext[len(ext)-1])
	}
	for i := 1; i < len(ext); i++ {
		if ext[i] <= ext[i-1] {
			t.Fatalf("StandardTs not strictly increasing at %d: %v", i, ext)
		}
	}
}
