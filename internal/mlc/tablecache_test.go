package mlc

import (
	"reflect"
	"sync"
	"testing"
)

func TestTableCacheBuildsOnce(t *testing.T) {
	c := NewTableCache()
	p := Approximate(0.055)
	const callers = 16
	tables := make([]*Table, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i] = c.Get(p, 2000, 7)
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("caller %d received a different table instance", i)
		}
	}
	if got := c.Misses(); got != 1 {
		t.Errorf("misses (= builds) = %d, want exactly 1", got)
	}
	if got := c.Hits(); got != callers-1 {
		t.Errorf("hits = %d, want %d", got, callers-1)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestTableCacheDistinctKeys(t *testing.T) {
	c := NewTableCache()
	a := c.Get(Approximate(0.055), 1000, 1)
	b := c.Get(Approximate(0.06), 1000, 1)  // different T
	d := c.Get(Approximate(0.055), 2000, 1) // different samples
	e := c.Get(Approximate(0.055), 1000, 2) // different seed
	f := c.Get(GuardFraction(2, 0.4), 0, 1) // different geometry
	for i, tab := range []*Table{b, d, e, f} {
		if tab == a {
			t.Errorf("key variant %d shared the base entry", i)
		}
	}
	if c.Len() != 5 || c.Misses() != 5 {
		t.Errorf("Len/Misses = %d/%d, want 5/5", c.Len(), c.Misses())
	}
	// Re-fetching any of them hits.
	if c.Get(Approximate(0.06), 1000, 1) != b {
		t.Error("re-fetch did not hit the cached entry")
	}
	if c.Hits() != 1 {
		t.Errorf("hits = %d, want 1", c.Hits())
	}
}

func TestTableCacheNormalizesDefaultSamples(t *testing.T) {
	c := NewTableCache()
	a := c.Get(Approximate(0.1), 0, 3)
	b := c.Get(Approximate(0.1), DefaultTableSamples, 3)
	if a != b {
		t.Error("samples=0 and samples=DefaultTableSamples should share an entry")
	}
}

func TestTableCacheReset(t *testing.T) {
	c := NewTableCache()
	c.Get(Approximate(0.055), 500, 1)
	c.Get(Approximate(0.055), 500, 1)
	c.Reset()
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Errorf("Reset left Len/Hits/Misses = %d/%d/%d", c.Len(), c.Hits(), c.Misses())
	}
	c.Get(Approximate(0.055), 500, 1)
	if c.Misses() != 1 {
		t.Error("entry survived Reset")
	}
}

func TestCachedTableMatchesNewTable(t *testing.T) {
	p := Approximate(0.08)
	cached := CachedTable(p, 1500, 11)
	direct := NewTable(p, 1500, 11)
	if !reflect.DeepEqual(cached, direct) {
		t.Error("cached table differs from a directly built table with the same key")
	}
}

func TestSetSharedTableCacheDisables(t *testing.T) {
	prev := SetSharedTableCache(false)
	defer SetSharedTableCache(prev)
	a := CachedTable(Approximate(0.055), 800, 5)
	b := CachedTable(Approximate(0.055), 800, 5)
	if a == b {
		t.Error("disabled cache returned a shared instance")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("disabled cache built non-identical tables for the same key")
	}
	if on := SetSharedTableCache(true); on {
		t.Error("SetSharedTableCache did not report the disabled state")
	}
	SetSharedTableCache(false) // restore pre-defer state symmetry
}
