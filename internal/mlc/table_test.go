package mlc

import (
	"math"
	"testing"

	"approxsort/internal/rng"
)

func TestTableDistributionsAreProper(t *testing.T) {
	tab := NewTable(Approximate(0.08), 5000, 1)
	for level := 0; level < 4; level++ {
		res := tab.resCum[level]
		if res[len(res)-1] != 1 {
			t.Errorf("level %d: result CDF does not end at 1", level)
		}
		it := tab.itersCum[level]
		if it[len(it)-1] != 1 {
			t.Errorf("level %d: iteration CDF does not end at 1", level)
		}
		for i := 1; i < len(res); i++ {
			if res[i] < res[i-1] {
				t.Errorf("level %d: result CDF not monotone", level)
			}
		}
	}
}

// TestTableMatchesExact is the statistical-equivalence contract between the
// two engines promised in DESIGN.md: error rates and mean pulse counts must
// agree within Monte-Carlo tolerance.
func TestTableMatchesExact(t *testing.T) {
	for _, T := range []float64{0.025, 0.055, 0.09, 0.12} {
		p := Approximate(T)
		tab := NewTable(p, 60000, 2)
		exact := MonteCarlo(p, 30000, 3)

		if d := math.Abs(tab.AvgP() - exact.AvgP); d > 0.05 {
			t.Errorf("T=%v: table AvgP %v vs exact %v (|d|=%v)", T, tab.AvgP(), exact.AvgP, d)
		}
		tabErr := tab.MeanCellErrorProb()
		if d := math.Abs(tabErr - exact.CellErrorRate); d > 0.005+0.2*exact.CellErrorRate {
			t.Errorf("T=%v: table cell error %v vs exact %v", T, tabErr, exact.CellErrorRate)
		}

		// And the sampled word path must reproduce the word error rate.
		r := rng.New(4)
		wordErrs := 0
		const words = 30000
		for i := 0; i < words; i++ {
			w := r.Uint32()
			stored, iters := tab.WriteWord(r, w)
			if iters < tab.CellsPerWord() {
				t.Fatalf("table word write reported %d iters", iters)
			}
			if stored != w {
				wordErrs++
			}
		}
		got := float64(wordErrs) / words
		if d := math.Abs(got - exact.WordErrorRate); d > 0.01+0.2*exact.WordErrorRate {
			t.Errorf("T=%v: table word error %v vs exact %v", T, got, exact.WordErrorRate)
		}
	}
}

func TestTablePRatio(t *testing.T) {
	tab := NewTable(Approximate(0.1), 20000, 5)
	p := tab.PRatio(20000, 6)
	if p < 0.4 || p > 0.6 {
		t.Errorf("table p(0.1) = %v, want ~0.5", p)
	}
	precise := NewTable(Precise(), 20000, 7)
	if p := precise.PRatio(20000, 8); math.Abs(p-1) > 0.03 {
		t.Errorf("p(precise) = %v, want ~1", p)
	}
}

func TestCellErrorProbBounds(t *testing.T) {
	tab := NewTable(Approximate(0.1), 10000, 9)
	for level := 0; level < 4; level++ {
		e := tab.CellErrorProb(level)
		if e < 0 || e > 1 {
			t.Errorf("level %d error prob %v out of [0,1]", level, e)
		}
	}
	// Top level saturates upward, so with unidirectional drift its error
	// probability should be the lowest.
	top := tab.CellErrorProb(3)
	for level := 0; level < 3; level++ {
		if top > tab.CellErrorProb(level) {
			t.Errorf("top level error %v exceeds level %d error %v",
				top, level, tab.CellErrorProb(level))
		}
	}
}

func TestCellErrorProbPanicsOutOfRange(t *testing.T) {
	tab := NewTable(Precise(), 1000, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("CellErrorProb(-1) did not panic")
		}
	}()
	tab.CellErrorProb(-1)
}

func TestAnalogArrayRoundTripPrecise(t *testing.T) {
	a := NewAnalogArray(Precise(), 256, 11)
	r := rng.New(12)
	want := make([]uint32, a.Len())
	for i := range want {
		want[i] = r.Uint32()
		a.Set(i, want[i])
	}
	errs := 0
	for i := range want {
		if a.Get(i) != want[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("precise analog array corrupted %d/%d words", errs, len(want))
	}
	if a.Writes() != 256 || a.Reads() != 256 {
		t.Errorf("access counts writes=%d reads=%d, want 256/256", a.Writes(), a.Reads())
	}
	if a.TotalIters() < 256*16 {
		t.Errorf("TotalIters = %d, want at least one pulse per cell", a.TotalIters())
	}
	if a.WriteLatencyNanos() <= 0 {
		t.Error("WriteLatencyNanos must be positive")
	}
}

func TestAnalogArrayReadsResample(t *testing.T) {
	// At the guard-band edge repeated reads of the same cell should not
	// always agree — that is the property AnalogArray exists to model.
	a := NewAnalogArray(Approximate(0.124), 64, 13)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, 0x55555555) // level pattern 1111..., mid levels
	}
	diff := false
	for i := 0; i < a.Len() && !diff; i++ {
		first := a.Get(i)
		for k := 0; k < 8; k++ {
			if a.Get(i) != first {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("analog reads never disagreed at T=0.124; drift resampling looks broken")
	}
}

func BenchmarkExactWriteWord(b *testing.B) {
	model := NewExact(Approximate(0.055))
	r := rng.New(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		s, _ := model.WriteWord(r, uint32(i)*2654435761)
		sink ^= s
	}
	_ = sink
}

func BenchmarkTableWriteWord(b *testing.B) {
	tab := NewTable(Approximate(0.055), 0, 1)
	r := rng.New(1)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		s, _ := tab.WriteWord(r, uint32(i)*2654435761)
		sink ^= s
	}
	_ = sink
}
