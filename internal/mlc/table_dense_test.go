package mlc

import (
	"reflect"
	"testing"

	"approxsort/internal/rng"
)

// writeWordFloat is the retained float-path reference sampler: inverse-CDF
// sampling of resCum/itersCum through sampleCum, exactly as WriteWord ran
// before the dense fixed-point tables. It consumes two Float64-equivalent
// draws per cell in res-then-iters order.
func writeWordFloat(t *Table, r *rng.Source, w uint32) (uint32, int) {
	bits := uint(t.p.BitsPerCell())
	mask := uint32(t.p.Levels - 1)
	var stored uint32
	total := 0
	for shift := uint(0); shift < 32; shift += bits {
		level := int(w >> shift & mask)
		stored |= uint32(sampleCum(r, t.resCum[level])) << shift
		total += sampleCum(r, t.itersCum[level]) + 1
	}
	return stored, total
}

// TestTableDenseMatchesFloat pins the dense sampler's bit-equivalence:
// for identical RNG streams, WriteWord must return the same stored word
// and pulse count as the float inverse-CDF path for every draw, and must
// leave the stream at the same position. The threshold lift is exact —
// Float64() is float64(Uint64()>>11)·2⁻⁵³, so with k = Uint64()>>11 the
// comparison u < cum[i] is equivalent to k < ceil(cum[i]·2⁵³) — and this
// test guards that equivalence across operating points, level counts,
// and mixed word values.
func TestTableDenseMatchesFloat(t *testing.T) {
	cases := []Params{
		Approximate(0.01),
		Approximate(0.055),
		Approximate(0.1),
		Approximate(MaxT),
		WithLevels(2, 0.2),
		WithLevels(16, 0.02),
	}
	for _, p := range cases {
		tab := NewTable(p, 4000, CalibrationSeed)
		rDense := rng.New(0xd15ea5e)
		rFloat := rng.New(0xd15ea5e)
		for i := 0; i < 20000; i++ {
			w := uint32(i) * 2654435761
			gotV, gotIters := tab.WriteWord(rDense, w)
			wantV, wantIters := writeWordFloat(tab, rFloat, w)
			if gotV != wantV || gotIters != wantIters {
				t.Fatalf("L=%d T=%g word %#x: dense (%#x, %d) != float (%#x, %d)",
					p.Levels, p.T, w, gotV, gotIters, wantV, wantIters)
			}
		}
		if !reflect.DeepEqual(rDense, rFloat) {
			t.Fatalf("L=%d T=%g: RNG streams diverged after 20k words", p.Levels, p.T)
		}
	}
}
