package mlc

import (
	"encoding/json"
	"reflect"
	"testing"

	"approxsort/internal/rng"
)

func TestTableArtifactRoundTripBitIdentical(t *testing.T) {
	p := Approximate(0.07)
	built := NewTable(p, 2000, CalibrationSeed)
	a := built.Artifact(2000, CalibrationSeed)

	// The wire form is JSON; the round trip must survive encoding.
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back TableArtifact
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Table()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(built, got) {
		t.Fatal("reconstructed table differs from the built one")
	}

	// And the sampler must consume the RNG stream identically.
	r1, r2 := rng.New(5), rng.New(5)
	for i := 0; i < 2000; i++ {
		w := uint32(i * 2654435761)
		s1, it1 := built.WriteWord(r1, w)
		s2, it2 := got.WriteWord(r2, w)
		if s1 != s2 || it1 != it2 {
			t.Fatalf("WriteWord diverged at %d: (%x,%d) != (%x,%d)", i, s1, it1, s2, it2)
		}
	}
}

func TestTableArtifactValidate(t *testing.T) {
	p := Approximate(0.07)
	good := NewTable(p, 500, 1).Artifact(500, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*TableArtifact){
		"missing level row":   func(a *TableArtifact) { a.ResCum = a.ResCum[:1] },
		"short iters row":     func(a *TableArtifact) { a.ItersCum[0] = a.ItersCum[0][:2] },
		"non-monotone cum":    func(a *TableArtifact) { a.ResCum[1][0] = 2 },
		"cum not ending at 1": func(a *TableArtifact) { a.ResCum[0][len(a.ResCum[0])-1] = 0.999 },
		"errprob out of range": func(a *TableArtifact) {
			a.ErrProb[0] = 1.5
		},
		"impossible avgp": func(a *TableArtifact) { a.AvgP = 0.2 },
		"bad params":      func(a *TableArtifact) { a.Params.Levels = 3 },
	}
	for name, mutate := range cases {
		a := good
		// Deep-copy the rows the mutation may touch.
		a.ResCum = append([][]float64(nil), good.ResCum...)
		a.ResCum[0] = append([]float64(nil), good.ResCum[0]...)
		a.ResCum[1] = append([]float64(nil), good.ResCum[1]...)
		a.ItersCum = append([][]float64(nil), good.ItersCum...)
		a.ItersCum[0] = append([]float64(nil), good.ItersCum[0]...)
		a.ErrProb = append([]float64(nil), good.ErrProb...)
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTableCacheInstall(t *testing.T) {
	p := Approximate(0.08)
	a := NewTable(p, 600, 9).Artifact(600, 9)

	c := NewTableCache()
	installed, err := c.Install(a)
	if err != nil || !installed {
		t.Fatalf("Install = %v, %v", installed, err)
	}
	if got := c.Get(p, 600, 9); !reflect.DeepEqual(got.Artifact(600, 9), a) {
		t.Fatal("Get after Install returned a different calibration")
	}
	if c.Misses() != 0 {
		t.Fatalf("Get after Install built a table (misses = %d)", c.Misses())
	}
	// Idempotent: a second install leaves the existing entry in place.
	if installed, err = c.Install(a); err != nil || installed {
		t.Fatalf("re-Install = %v, %v; want false, nil", installed, err)
	}
	// Invalid artifacts never reach the cache.
	bad := a
	bad.AvgP = 0
	if _, err := c.Install(bad); err == nil {
		t.Fatal("invalid artifact installed")
	}
}
