package mlc

import "approxsort/internal/rng"

// AnalogArray stores 32-bit words as raw analog cell values and re-samples
// drift noise on every read. It is the most faithful rendering of the
// Sampson model — the stored value is the analog state, and each read sees
// fresh material nondeterminism — but it costs 4 bytes per cell (64 bytes
// per word), so it is intended for small-n sensitivity studies comparing
// against the write-time-materialization engines (see DESIGN.md §3,
// "Error timing").
type AnalogArray struct {
	p     Params
	r     *rng.Source
	cells []float32 // CellsPerWord entries per word

	writes, reads int
	totalIters    int
}

// NewAnalogArray allocates an analog array of n words under configuration
// p, drawing randomness from its own stream seeded with seed.
func NewAnalogArray(p Params, n int, seed uint64) *AnalogArray {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &AnalogArray{
		p:     p,
		r:     rng.New(seed),
		cells: make([]float32, n*p.CellsPerWord()),
	}
}

// Len returns the number of words in the array.
func (a *AnalogArray) Len() int { return len(a.cells) / a.p.CellsPerWord() }

// Set writes word w at index i through the P&V process, cell by cell.
func (a *AnalogArray) Set(i int, w uint32) {
	bits := a.p.BitsPerCell()
	mask := uint32(a.p.Levels - 1)
	cpw := a.p.CellsPerWord()
	base := i * cpw
	c := 0
	for shift := 0; shift < 32; shift += bits {
		level := int(w >> shift & mask)
		v, iters := a.p.WriteCell(a.r, level)
		a.cells[base+c] = float32(v)
		a.totalIters += iters
		c++
	}
	a.writes++
}

// Get reads word i, sampling fresh drift noise for every cell.
func (a *AnalogArray) Get(i int) uint32 {
	bits := a.p.BitsPerCell()
	cpw := a.p.CellsPerWord()
	base := i * cpw
	var w uint32
	c := 0
	for shift := 0; shift < 32; shift += bits {
		level := a.p.ReadCell(a.r, float64(a.cells[base+c]))
		w |= uint32(level) << shift
		c++
	}
	a.reads++
	return w
}

// Writes returns the number of word writes performed.
func (a *AnalogArray) Writes() int { return a.writes }

// Reads returns the number of word reads performed.
func (a *AnalogArray) Reads() int { return a.reads }

// TotalIters returns the total P&V pulses issued across all writes.
func (a *AnalogArray) TotalIters() int { return a.totalIters }

// WriteLatencyNanos returns the cumulative write latency in nanoseconds:
// the sum of per-word latencies, each proportional to that word's mean
// pulse count per cell.
func (a *AnalogArray) WriteLatencyNanos() float64 {
	return WordLatencyNanos(a.totalIters, a.p.CellsPerWord())
}
