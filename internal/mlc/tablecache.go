package mlc

import (
	"sync"
	"sync/atomic"
)

// CalibrationSeed is the fixed seed under which shared transition tables
// are calibrated. A Table is a calibration artifact of its Params: two
// spaces at the same cell configuration should sample the same empirical
// distributions, exactly as two banks of the same silicon share one
// datasheet. Pinning the seed is what lets a sweep of A algorithms × K
// T-points build K tables instead of A×K — the per-run seed then drives
// only the noise stream drawn *through* the table, never the table itself.
const CalibrationSeed uint64 = 0xa5a5a5a5

// TableKey identifies one calibrated table: the cell configuration, the
// per-level Monte-Carlo sample count, and the calibration seed.
type TableKey struct {
	Params  Params
	Samples int
	Seed    uint64
}

type tableEntry struct {
	ready chan struct{}
	table *Table
}

// TableCache is a concurrency-safe, build-once store of calibrated
// transition tables. Get is singleflight per key: the first caller builds
// the table, concurrent callers for the same key block until that build
// finishes, and every caller receives the identical *Table. Tables are
// immutable after construction and safe for concurrent WriteWord use (each
// caller supplies its own rng.Source), so sharing one across sweep workers
// is deterministic.
type TableCache struct {
	mu      sync.Mutex
	entries map[TableKey]*tableEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewTableCache returns an empty cache.
func NewTableCache() *TableCache {
	return &TableCache{entries: make(map[TableKey]*tableEntry)}
}

// Get returns the table for (p, samples, seed), building it at most once
// per key. samples <= 0 normalizes to DefaultTableSamples, so explicit and
// defaulted callers share an entry. Like NewTable, it panics on invalid
// params.
func (c *TableCache) Get(p Params, samples int, seed uint64) *Table {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if samples <= 0 {
		samples = DefaultTableSamples
	}
	key := TableKey{Params: p, Samples: samples, Seed: seed}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.table
	}
	e := &tableEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	e.table = NewTable(p, samples, seed)
	close(e.ready)
	return e.table
}

// Hits returns how many Get calls found an existing entry (including calls
// that blocked on an in-flight build).
func (c *TableCache) Hits() uint64 { return c.hits.Load() }

// Misses returns how many Get calls created an entry — equivalently, the
// number of tables this cache has built.
func (c *TableCache) Misses() uint64 { return c.misses.Load() }

// Len returns the number of cached tables, counting in-flight builds.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every cached table and zeroes the counters. In-flight builds
// complete against their old entries; subsequent Gets rebuild.
func (c *TableCache) Reset() {
	c.mu.Lock()
	c.entries = make(map[TableKey]*tableEntry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// shared is the process-wide cache behind CachedTable (and therefore
// behind mem.NewApproxSpaceAt and core.Run). sharedDisabled's zero value
// means the cache is on.
var (
	shared         = NewTableCache()
	sharedDisabled atomic.Bool
)

// SharedTables exposes the process-wide table cache, mainly so tests and
// harnesses can read its hit/miss counters or Reset it.
func SharedTables() *TableCache { return shared }

// SetSharedTableCache turns the process-wide cache on or off and returns
// the previous setting. Disabled, CachedTable builds a fresh table per
// call — byte-identical to the cached one (same params, samples, seed),
// just slower; the determinism tests and the cache benchmark compare the
// two modes.
func SetSharedTableCache(on bool) bool {
	prev := !sharedDisabled.Load()
	sharedDisabled.Store(!on)
	return prev
}

// CachedTable returns the calibrated table for (p, samples, seed) from the
// process-wide cache, or a freshly built identical table when the cache is
// disabled.
func CachedTable(p Params, samples int, seed uint64) *Table {
	if sharedDisabled.Load() {
		if samples <= 0 {
			samples = DefaultTableSamples
		}
		return NewTable(p, samples, seed)
	}
	return shared.Get(p, samples, seed)
}
