package mlc

import (
	"math"
	"testing"

	"approxsort/internal/rng"
)

func TestPrioritySchedule(t *testing.T) {
	p := NewPriority(Approximate(0.055), 0.03, 0.12)
	if got := p.CellT(0); got != 0.12 {
		t.Errorf("least significant cell T = %v, want 0.12", got)
	}
	if got := p.CellT(15); got != 0.03 {
		t.Errorf("most significant cell T = %v, want 0.03", got)
	}
	for i := 1; i < 16; i++ {
		if p.CellT(i) >= p.CellT(i-1) {
			t.Errorf("schedule not decreasing toward high bits at cell %d", i)
		}
	}
	if got := p.Params().T; math.Abs(got-0.075) > 1e-12 {
		t.Errorf("mean T = %v, want 0.075", got)
	}
	if p.CellsPerWord() != 16 {
		t.Errorf("CellsPerWord = %d", p.CellsPerWord())
	}
}

func TestPriorityPanicsOnBadEndpoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tHigh accepted")
		}
	}()
	NewPriority(Approximate(0.055), 0.03, 0.3)
}

// TestPriorityShrinksErrorMagnitude is the feature's reason to exist: with
// the same mean precision, bit-priority storage concentrates errors in low
// bits, so the typical value deviation is orders of magnitude smaller than
// under a uniform configuration.
func TestPriorityShrinksErrorMagnitude(t *testing.T) {
	const words = 30000
	uniform := NewExact(Approximate(0.075))
	priority := NewPriority(Approximate(0.075), 0.03, 0.12)

	meanAbsDev := func(m WordModel, seed uint64) (dev float64, errRate float64, avgIters float64) {
		r := rng.New(seed)
		var sum float64
		errs := 0
		iters := 0
		for i := 0; i < words; i++ {
			w := r.Uint32()
			stored, it := m.WriteWord(r, w)
			iters += it
			if stored != w {
				errs++
				d := float64(stored) - float64(w)
				sum += math.Abs(d)
			}
		}
		if errs == 0 {
			return 0, 0, float64(iters) / words
		}
		return sum / float64(errs), float64(errs) / words, float64(iters) / words
	}

	uDev, uErr, uIters := meanAbsDev(uniform, 1)
	pDev, pErr, pIters := meanAbsDev(priority, 2)

	if uErr == 0 || pErr == 0 {
		t.Fatal("campaign produced no errors; raise T")
	}
	if pDev >= uDev/8 {
		t.Errorf("priority mean |deviation| %v not well below uniform %v", pDev, uDev)
	}
	// The pulse budgets should be comparable (within 25%): priority
	// shifts pulses toward high-order cells rather than spending more.
	if r := pIters / uIters; r < 0.75 || r > 1.25 {
		t.Errorf("priority pulse budget ratio %v, want comparable to uniform", r)
	}
}

// TestPriorityHelpsSortedness: smaller error magnitudes translate into
// less disorder for the same write budget — measured end to end in
// mem_test-style integration below (see TestPrioritySpaceSortedness in
// package mem for the array-level version).
func TestPriorityErrorsAreLowBit(t *testing.T) {
	p := NewPriority(Approximate(0.075), 0.03, 0.12)
	r := rng.New(3)
	lowHalf, highHalf := 0, 0
	for i := 0; i < 40000; i++ {
		w := r.Uint32()
		stored, _ := p.WriteWord(r, w)
		diff := stored ^ w
		if diff == 0 {
			continue
		}
		if diff&0xffff0000 != 0 {
			highHalf++
		}
		if diff&0x0000ffff != 0 {
			lowHalf++
		}
	}
	if lowHalf == 0 {
		t.Fatal("no low-bit errors observed")
	}
	if highHalf*10 > lowHalf {
		t.Errorf("high-half errors (%d) not rare versus low-half (%d)", highHalf, lowHalf)
	}
}
