package mlc_test

import (
	"fmt"

	"approxsort/internal/mlc"
)

// The Monte-Carlo campaign behind Figure 2: configure a guard-band width
// and measure pulse count and error rate.
func ExampleMonteCarlo() {
	precise := mlc.MonteCarlo(mlc.Precise(), 20000, 42)
	aggressive := mlc.MonteCarlo(mlc.Approximate(0.1), 20000, 42)
	fmt.Printf("precise: avg #P ~3: %v, errors ~0: %v\n",
		precise.AvgP > 2.8 && precise.AvgP < 3.2,
		precise.WordErrorRate < 0.001)
	fmt.Printf("T=0.1: halved pulses: %v, substantial errors: %v\n",
		aggressive.PRatio() < 0.55,
		aggressive.WordErrorRate > 0.2)
	// Output:
	// precise: avg #P ~3: true, errors ~0: true
	// T=0.1: halved pulses: true, substantial errors: true
}
