package mlc

import (
	"fmt"

	"approxsort/internal/rng"
)

// Table is a calibrated fast WordModel. At construction it runs a
// Monte-Carlo campaign through the exact cell model and records, per target
// level, (a) the distribution of the digital level read back and (b) the
// distribution of P&V pulse counts. WriteWord then samples those empirical
// distributions instead of re-running the P&V loop, which is roughly an
// order of magnitude faster for multi-million-element sorting sweeps.
//
// The two distributions are sampled independently. That preserves the
// marginal error rate and the marginal latency exactly (the quantities
// every experiment in the paper reports); only the latency↔error
// correlation within a single cell write is lost, and nothing consumes it.
// TestTableMatchesExact asserts the statistical agreement.
//
// A Table is immutable after construction: WriteWord only reads the
// distributions and draws randomness from the caller-supplied source, so
// one table may be shared by any number of goroutines (see TableCache).
type Table struct {
	p Params

	// resCum[l] is the cumulative distribution over read-back levels for
	// a write targeting level l.
	resCum [][]float64
	// itersCum[l] is the cumulative distribution over pulse counts
	// (index i holds P(#P <= i+1)) for a write targeting level l.
	itersCum [][]float64
	// avgP is the mean pulse count per cell write across levels.
	avgP float64
	// errProb[l] is the probability that a write of level l reads back
	// as a different level.
	errProb []float64
}

// DefaultTableSamples is the per-level Monte-Carlo sample count used by
// NewTable when samples <= 0 is given. 40k samples bound the error-rate
// estimate's standard error below ~2.5e-3 per level, well under the effect
// sizes in the paper's figures.
const DefaultTableSamples = 40000

// NewTable builds a table-driven model for p using the given number of
// Monte-Carlo samples per level (DefaultTableSamples if samples <= 0) and
// a deterministic seed. It panics on invalid params.
func NewTable(p Params, samples int, seed uint64) *Table {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if samples <= 0 {
		samples = DefaultTableSamples
	}
	r := rng.New(seed)
	t := &Table{
		p:        p,
		resCum:   make([][]float64, p.Levels),
		itersCum: make([][]float64, p.Levels),
		errProb:  make([]float64, p.Levels),
	}
	totalIters := 0
	for level := 0; level < p.Levels; level++ {
		resCount := make([]int, p.Levels)
		iterCount := make([]int, p.MaxIters)
		errs := 0
		for s := 0; s < samples; s++ {
			got, iters := p.WriteReadCell(r, level)
			resCount[got]++
			if iters > p.MaxIters {
				iters = p.MaxIters
			}
			iterCount[iters-1]++
			totalIters += iters
			if got != level {
				errs++
			}
		}
		t.resCum[level] = cumulate(resCount, samples)
		t.itersCum[level] = cumulate(iterCount, samples)
		t.errProb[level] = float64(errs) / float64(samples)
	}
	t.avgP = float64(totalIters) / float64(p.Levels*samples)
	return t
}

func cumulate(counts []int, total int) []float64 {
	cum := make([]float64, len(counts))
	running := 0
	for i, c := range counts {
		running += c
		cum[i] = float64(running) / float64(total)
	}
	// Guard against floating point drift: force the final entry to 1 so
	// inverse-CDF sampling can never run off the end.
	cum[len(cum)-1] = 1
	return cum
}

// sampleCum draws an index from a cumulative distribution.
func sampleCum(r *rng.Source, cum []float64) int {
	u := r.Float64()
	// Distributions here are short (4 levels, few-tens iterations) and
	// front-loaded, so a linear scan beats binary search in practice.
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// WriteWord implements WordModel by sampling the per-level empirical
// distributions for each of the word's cells.
func (t *Table) WriteWord(r *rng.Source, w uint32) (uint32, int) {
	bits := t.p.BitsPerCell()
	mask := uint32(t.p.Levels - 1)
	var stored uint32
	total := 0
	for shift := 0; shift < 32; shift += bits {
		level := int(w >> shift & mask)
		got := sampleCum(r, t.resCum[level])
		iters := sampleCum(r, t.itersCum[level]) + 1
		stored |= uint32(got) << shift
		total += iters
	}
	return stored, total
}

// CellsPerWord implements WordModel.
func (t *Table) CellsPerWord() int { return t.p.CellsPerWord() }

// Params implements WordModel.
func (t *Table) Params() Params { return t.p }

// AvgP returns the calibrated mean P&V pulse count per cell write.
func (t *Table) AvgP() float64 { return t.avgP }

// AvgWriteNanos returns the calibrated mean word-write latency: AvgP
// scaled so the reference precise point (ReferenceAvgP pulses per cell)
// costs PreciseWriteNanos. It is the p(t)·(precise latency) device clock
// the serving layer charges for an approximate MLC region.
func (t *Table) AvgWriteNanos() float64 {
	return t.avgP / ReferenceAvgP * PreciseWriteNanos
}

// CellErrorProb returns the probability that a cell write targeting level
// reads back as a different level.
func (t *Table) CellErrorProb(level int) float64 {
	if level < 0 || level >= t.p.Levels {
		panic(fmt.Sprintf("mlc: level %d out of range [0,%d)", level, t.p.Levels))
	}
	return t.errProb[level]
}

// MeanCellErrorProb returns the cell error probability averaged over
// uniformly distributed target levels.
func (t *Table) MeanCellErrorProb() float64 {
	sum := 0.0
	for _, e := range t.errProb {
		sum += e
	}
	return sum / float64(len(t.errProb))
}

// WordErrorProb returns the probability that at least one cell of a
// uniformly random word is corrupted, assuming independent cells (each of
// the word's cells targets a uniformly distributed level).
func (t *Table) WordErrorProb() float64 {
	okCell := 1 - t.MeanCellErrorProb()
	p := 1.0
	for i := 0; i < t.CellsPerWord(); i++ {
		p *= okCell
	}
	return 1 - p
}

// PRatio returns p(t) as defined in Section 2.2: the ratio of the average
// pulse count under this configuration to the average pulse count on
// precise memory (same parameters, T = PreciseT).
func (t *Table) PRatio(samples int, seed uint64) float64 {
	precise := t.p
	precise.T = PreciseT
	ref := CachedTable(precise, samples, seed)
	return t.avgP / ref.avgP
}
