package mlc

import (
	"fmt"
	"math"

	"approxsort/internal/rng"
)

// Table is a calibrated fast WordModel. At construction it runs a
// Monte-Carlo campaign through the exact cell model and records, per target
// level, (a) the distribution of the digital level read back and (b) the
// distribution of P&V pulse counts. WriteWord then samples those empirical
// distributions instead of re-running the P&V loop, which is roughly an
// order of magnitude faster for multi-million-element sorting sweeps.
//
// The two distributions are sampled independently. That preserves the
// marginal error rate and the marginal latency exactly (the quantities
// every experiment in the paper reports); only the latency↔error
// correlation within a single cell write is lost, and nothing consumes it.
// TestTableMatchesExact asserts the statistical agreement.
//
// A Table is immutable after construction: WriteWord only reads the
// distributions and draws randomness from the caller-supplied source, so
// one table may be shared by any number of goroutines (see TableCache).
type Table struct {
	p Params

	// resCum[l] is the cumulative distribution over read-back levels for
	// a write targeting level l.
	resCum [][]float64
	// itersCum[l] is the cumulative distribution over pulse counts
	// (index i holds P(#P <= i+1)) for a write targeting level l.
	itersCum [][]float64
	// avgP is the mean pulse count per cell write across levels.
	avgP float64
	// errProb[l] is the probability that a write of level l reads back
	// as a different level.
	errProb []float64

	// Dense fixed-point sampler state, derived from resCum/itersCum at
	// construction. The RNG's Float64() is float64(Uint64()>>11)·2⁻⁵³
	// exactly, so with k = Uint64()>>11 the float comparison u < cum[i]
	// is equivalent to the integer comparison k < ceil(cum[i]·2⁵³) —
	// bit-for-bit, while consuming the identical stream. resThr holds
	// Levels consecutive blocks of Levels thresholds; itersThr holds
	// Levels blocks of MaxIters thresholds. The prefix tables map
	// (level, top 8 bits of k) to the first index the scan can possibly
	// select, so front-loaded distributions resolve in one compare.
	resThr   []uint64
	itersThr []uint64
	resPfx   []uint16 // Levels blocks of 256 entries
	itersPfx []uint16 // Levels blocks of 256 entries

	// bitsPerCell and levelMask cache the per-cell shift/mask state so
	// WriteWord does not re-derive it per word.
	bitsPerCell uint
	levelMask   uint32
}

// DefaultTableSamples is the per-level Monte-Carlo sample count used by
// NewTable when samples <= 0 is given. 40k samples bound the error-rate
// estimate's standard error below ~2.5e-3 per level, well under the effect
// sizes in the paper's figures.
const DefaultTableSamples = 40000

// NewTable builds a table-driven model for p using the given number of
// Monte-Carlo samples per level (DefaultTableSamples if samples <= 0) and
// a deterministic seed. It panics on invalid params.
func NewTable(p Params, samples int, seed uint64) *Table {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if samples <= 0 {
		samples = DefaultTableSamples
	}
	r := rng.New(seed)
	t := &Table{
		p:        p,
		resCum:   make([][]float64, p.Levels),
		itersCum: make([][]float64, p.Levels),
		errProb:  make([]float64, p.Levels),
	}
	totalIters := 0
	for level := 0; level < p.Levels; level++ {
		resCount := make([]int, p.Levels)
		iterCount := make([]int, p.MaxIters)
		errs := 0
		for s := 0; s < samples; s++ {
			got, iters := p.WriteReadCell(r, level)
			resCount[got]++
			if iters > p.MaxIters {
				iters = p.MaxIters
			}
			iterCount[iters-1]++
			totalIters += iters
			if got != level {
				errs++
			}
		}
		t.resCum[level] = cumulate(resCount, samples)
		t.itersCum[level] = cumulate(iterCount, samples)
		t.errProb[level] = float64(errs) / float64(samples)
	}
	t.avgP = float64(totalIters) / float64(p.Levels*samples)
	t.buildDense()
	return t
}

// buildDense derives the fixed-point threshold arrays and prefix tables
// from the float cumulative distributions.
func (t *Table) buildDense() {
	t.bitsPerCell = uint(t.p.BitsPerCell())
	t.levelMask = uint32(t.p.Levels - 1)
	t.resThr = make([]uint64, 0, t.p.Levels*t.p.Levels)
	t.itersThr = make([]uint64, 0, t.p.Levels*t.p.MaxIters)
	t.resPfx = make([]uint16, 0, t.p.Levels*256)
	t.itersPfx = make([]uint16, 0, t.p.Levels*256)
	for level := 0; level < t.p.Levels; level++ {
		rt := fixedThresholds(t.resCum[level])
		it := fixedThresholds(t.itersCum[level])
		t.resThr = append(t.resThr, rt...)
		t.itersThr = append(t.itersThr, it...)
		t.resPfx = append(t.resPfx, drawPrefix(rt)...)
		t.itersPfx = append(t.itersPfx, drawPrefix(it)...)
	}
}

// fixedThresholds lifts a float cumulative distribution onto the 53-bit
// draw lattice: thresholds[i] = ceil(cum[i]·2⁵³). cum[i]·2⁵³ is exact
// (power-of-two scaling of a float64 ≤ 1), so k < thresholds[i] holds
// for exactly the draws k whose Float64() image is < cum[i]. The final
// entry is 2⁵³ (cum ends at 1), strictly above every possible draw, so
// a threshold scan always terminates in range.
func fixedThresholds(cum []float64) []uint64 {
	thr := make([]uint64, len(cum))
	for i, c := range cum {
		thr[i] = uint64(math.Ceil(c * (1 << 53)))
	}
	return thr
}

// scanPfx flags a prefix entry whose bucket straddles a threshold
// boundary: the sampler must confirm by scanning thresholds from the
// encoded start index. Unflagged (pure) buckets resolve the draw with
// the single prefix load — no threshold is crossed inside the bucket,
// so every draw with that top byte selects the same index.
const scanPfx = 1 << 15

// drawPrefix builds the 256-entry top-bits lookup for one threshold
// array, keyed by the draw's top byte b = k>>45. A draw k with top byte
// b lies in [b<<45, (b+1)<<45); when that whole interval falls between
// two adjacent thresholds the entry holds the selected index directly,
// otherwise it holds scanPfx | firstCandidate. Distributions here are
// short and front-loaded, so almost all buckets are pure and the
// sampler's common path is one 16-bit load per draw.
func drawPrefix(thr []uint64) []uint16 {
	pfx := make([]uint16, 256)
	i := 0
	for b := 0; b < 256; b++ {
		lo := uint64(b) << 45
		for thr[i] <= lo {
			i++
		}
		if lo+1<<45 <= thr[i] {
			pfx[b] = uint16(i)
		} else {
			pfx[b] = scanPfx | uint16(i)
		}
	}
	return pfx
}

func cumulate(counts []int, total int) []float64 {
	cum := make([]float64, len(counts))
	running := 0
	for i, c := range counts {
		running += c
		cum[i] = float64(running) / float64(total)
	}
	// Guard against floating point drift: force the final entry to 1 so
	// inverse-CDF sampling can never run off the end.
	cum[len(cum)-1] = 1
	return cum
}

// sampleCum draws an index from a cumulative distribution.
func sampleCum(r *rng.Source, cum []float64) int {
	u := r.Float64()
	// Distributions here are short (4 levels, few-tens iterations) and
	// front-loaded, so a linear scan beats binary search in practice.
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// WriteWord implements WordModel by sampling the per-level empirical
// distributions for each of the word's cells. It runs on the dense
// fixed-point sampler: two Uint64 draws per cell (read-back level, then
// pulse count — the same stream order and count as inverse-CDF sampling
// of resCum/itersCum), each resolved by a prefix lookup plus a short
// threshold scan. TestTableDenseMatchesFloat pins bit-equivalence
// against the float path.
//
//memlint:hotpath
func (t *Table) WriteWord(r *rng.Source, w uint32) (uint32, int) {
	// The RNG state lives in locals for the word's 2·cells draws (the
	// inlined Uint64 otherwise reloads and spills all four state words
	// through the pointer on every draw), and is stored back once.
	local := *r
	var stored uint32
	total := 0
	levels := t.p.Levels
	maxIters := t.p.MaxIters
	resThr, itersThr := t.resThr, t.itersThr
	resPfx, itersPfx := t.resPfx, t.itersPfx
	bits, mask := t.bitsPerCell, t.levelMask
	for shift := uint(0); shift < 32; shift += bits {
		level := int(w >> shift & mask)
		k := local.Uint64() >> 11
		i := int(resPfx[level<<8|int(k>>45)])
		if i >= scanPfx {
			i &= scanPfx - 1
			for base := level * levels; k >= resThr[base+i]; {
				i++
			}
		}
		k = local.Uint64() >> 11
		j := int(itersPfx[level<<8|int(k>>45)])
		if j >= scanPfx {
			j &= scanPfx - 1
			for base := level * maxIters; k >= itersThr[base+j]; {
				j++
			}
		}
		stored |= uint32(i) << shift
		total += j + 1
	}
	*r = local
	return stored, total
}

// WriteWords writes each src word through the model, storing the
// read-back values in dst[i] and returning the total pulse count across
// the batch. It consumes the RNG stream exactly as len(src) sequential
// WriteWord calls would — bulk callers (mem.SetSlice) stay bit-identical
// to per-word loops — while amortizing the per-call state loads.
//
//memlint:hotpath
func (t *Table) WriteWords(r *rng.Source, dst, src []uint32) int {
	if len(dst) < len(src) {
		panic("mlc: WriteWords dst shorter than src")
	}
	total := 0
	for i, w := range src {
		stored, iters := t.WriteWord(r, w)
		dst[i] = stored
		total += iters
	}
	return total
}

// CellsPerWord implements WordModel.
func (t *Table) CellsPerWord() int { return t.p.CellsPerWord() }

// Params implements WordModel.
func (t *Table) Params() Params { return t.p }

// AvgP returns the calibrated mean P&V pulse count per cell write.
func (t *Table) AvgP() float64 { return t.avgP }

// AvgWriteNanos returns the calibrated mean word-write latency: AvgP
// scaled so the reference precise point (ReferenceAvgP pulses per cell)
// costs PreciseWriteNanos. It is the p(t)·(precise latency) device clock
// the serving layer charges for an approximate MLC region.
func (t *Table) AvgWriteNanos() float64 {
	return t.avgP / ReferenceAvgP * PreciseWriteNanos
}

// CellErrorProb returns the probability that a cell write targeting level
// reads back as a different level.
func (t *Table) CellErrorProb(level int) float64 {
	if level < 0 || level >= t.p.Levels {
		panic(fmt.Sprintf("mlc: level %d out of range [0,%d)", level, t.p.Levels))
	}
	return t.errProb[level]
}

// MeanCellErrorProb returns the cell error probability averaged over
// uniformly distributed target levels.
func (t *Table) MeanCellErrorProb() float64 {
	sum := 0.0
	for _, e := range t.errProb {
		sum += e
	}
	return sum / float64(len(t.errProb))
}

// WordErrorProb returns the probability that at least one cell of a
// uniformly random word is corrupted, assuming independent cells (each of
// the word's cells targets a uniformly distributed level).
func (t *Table) WordErrorProb() float64 {
	okCell := 1 - t.MeanCellErrorProb()
	p := 1.0
	for i := 0; i < t.CellsPerWord(); i++ {
		p *= okCell
	}
	return 1 - p
}

// PRatio returns p(t) as defined in Section 2.2: the ratio of the average
// pulse count under this configuration to the average pulse count on
// precise memory (same parameters, T = PreciseT).
func (t *Table) PRatio(samples int, seed uint64) float64 {
	precise := t.p
	precise.T = PreciseT
	ref := CachedTable(precise, samples, seed)
	return t.avgP / ref.avgP
}
