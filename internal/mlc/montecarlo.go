package mlc

import (
	"approxsort/internal/parallel"
	"approxsort/internal/rng"
)

// Stats summarizes a Monte-Carlo campaign over the cell model, matching
// the quantities plotted in Figure 2 of the paper.
type Stats struct {
	// T is the target half-width the campaign ran at.
	T float64
	// AvgP is the mean number of P&V pulses per cell write (Fig. 2a).
	AvgP float64
	// CellErrorRate is the fraction of cell writes whose read-back level
	// differed from the target (Fig. 2b, "2-bit" series).
	CellErrorRate float64
	// WordErrorRate is the fraction of 32-bit word writes with at least
	// one corrupted cell (Fig. 2b, "32-bit" series).
	WordErrorRate float64
	// CellWrites and WordWrites record the campaign sizes.
	CellWrites, WordWrites int
}

// PRatio returns p(t) = AvgP / ReferenceAvgP (Section 2.2), using the
// paper's precise-memory anchor as the denominator.
func (s Stats) PRatio() float64 { return s.AvgP / ReferenceAvgP }

// WriteReduction returns the write-latency reduction 1 − p(t) that sorting
// entirely in approximate memory can at best achieve (Equation 1 with every
// write approximate).
func (s Stats) WriteReduction() float64 { return 1 - s.PRatio() }

// MonteCarlo writes `words` uniformly random 32-bit values through the
// exact cell model at configuration p (the paper's campaign writes 1e8
// cells; see cmd/mlcstudy for the scaled default) and returns the observed
// statistics. The seed makes runs reproducible.
func MonteCarlo(p Params, words int, seed uint64) Stats {
	model := NewExact(p)
	r := rng.New(seed)
	cells := p.CellsPerWord()
	bits := p.BitsPerCell()
	mask := uint32(p.Levels - 1)
	totalIters := 0
	cellErrs := 0
	wordErrs := 0
	for i := 0; i < words; i++ {
		w := r.Uint32()
		stored, iters := model.WriteWord(r, w)
		totalIters += iters
		if stored != w {
			wordErrs++
			diff := stored ^ w
			for shift := 0; shift < 32; shift += bits {
				if diff>>shift&mask != 0 {
					cellErrs++
				}
			}
		}
	}
	return Stats{
		T:             p.T,
		AvgP:          float64(totalIters) / float64(words*cells),
		CellErrorRate: float64(cellErrs) / float64(words*cells),
		WordErrorRate: float64(wordErrs) / float64(words),
		CellWrites:    words * cells,
		WordWrites:    words,
	}
}

// Sweep runs MonteCarlo for each T in ts and returns the per-T statistics,
// reproducing both panels of Figure 2 in one pass. Each point's RNG stream
// is keyed by its T coordinate (rng.Split), so a point's numbers do not
// depend on where it sits in the grid.
func Sweep(base Params, ts []float64, words int, seed uint64) []Stats {
	out := make([]Stats, 0, len(ts))
	for _, t := range ts {
		p := base
		p.T = t
		out = append(out, MonteCarlo(p, words, rng.Split(seed, t)))
	}
	return out
}

// SweepParallel is Sweep on the shared bounded worker pool (workers <= 0
// means one per CPU). Point streams are coordinate-keyed, so the output is
// bit-identical to Sweep for every worker count. (The paper reports that
// multithreading had insignificant impact on the *studied metrics* — write
// counts are deterministic — which is exactly why parallel simulation is
// safe here.)
func SweepParallel(base Params, ts []float64, words int, seed uint64, workers int) []Stats {
	out, _ := parallel.Map(ts, workers, func(_ int, t float64) (Stats, error) {
		p := base
		p.T = t
		return MonteCarlo(p, words, rng.Split(seed, t)), nil
	})
	return out
}

// StandardTs returns the T grid used throughout the paper's figures:
// 0.025 to 0.1 in steps of 0.005, optionally extended to 0.124 (the Fig. 2
// x-axis runs past 0.1 even though the sorting studies stop there).
func StandardTs(extended bool) []float64 {
	var ts []float64
	for t := 0.025; t <= 0.1+1e-9; t += 0.005 {
		ts = append(ts, round3(t))
	}
	if extended {
		for t := 0.105; t <= 0.12+1e-9; t += 0.005 {
			ts = append(ts, round3(t))
		}
		ts = append(ts, 0.124)
	}
	return ts
}

func round3(t float64) float64 {
	return float64(int(t*1000+0.5)) / 1000
}
