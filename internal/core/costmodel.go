package core

import (
	"fmt"
	"math"

	"approxsort/internal/sorts"
)

// AlphaFunc is αalg(n): the expected number of key memory writes the
// algorithm issues to sort n elements (Section 4.3).
type AlphaFunc func(n int) float64

// AlphaQuicksort returns αquicksort(n) ≈ n·log2(n)/2. The formulas live
// with the algorithms' declared profiles in internal/sorts; these
// re-exports keep the cost-model vocabulary in one place for callers.
func AlphaQuicksort(n int) float64 { return sorts.AlphaQuicksort(n) }

// AlphaMergesort returns αmergesort(n) ≈ n·log2(n).
func AlphaMergesort(n int) float64 { return sorts.AlphaMergesort(n) }

// AlphaRadix returns αLSD/MSD(n) for queue-bucket radix with b-bit digits:
// two key writes per element per pass, ceil(32/b) passes.
func AlphaRadix(bits int) AlphaFunc { return sorts.AlphaRadix(bits) }

// AlphaFor returns the analytic α an algorithm declares in its registry
// profile (sorts.Profiled). Algorithms without a profile — or whose
// profile declares no analytic write model — cannot be routed by the
// planner and return an error.
func AlphaFor(alg sorts.Algorithm) (AlphaFunc, error) {
	prof, ok := sorts.ProfileOf(alg)
	if !ok || prof.Alpha == nil {
		return nil, fmt.Errorf("core: no analytic α for algorithm %q", alg.Name())
	}
	return prof.Alpha, nil
}

// CostModel is the Section 4.3 analysis of approx-refine. It predicts the
// write reduction WRalg(n, t) from the approximate memory's pulse-count
// ratio p(t), the heuristic remainder size Rem~, and αalg.
type CostModel struct {
	// P is p(t): one approximate write costs P precise writes.
	P float64
	// Alpha is αalg.
	Alpha AlphaFunc
}

// HybridWrites returns the total equivalent number of precise memory
// writes (TEPMW) the approx-refine execution performs:
//
//	(p+1)·α(n) + 2·Rem~ + (2+p)·n + α(Rem~)
//
// (approx preparation p·n; approx stage (p+1)·α(n); refine steps
// Rem~ + α(Rem~) + (Rem~ + 2n)).
func (c CostModel) HybridWrites(n, rem int) float64 {
	return (c.P+1)*c.Alpha(n) + 2*float64(rem) + (2+c.P)*float64(n) + c.Alpha(rem)
}

// BaselineWrites returns the traditional precise-only sort's write count,
// 2·α(n) (keys plus record IDs).
func (c CostModel) BaselineWrites(n int) float64 { return 2 * c.Alpha(n) }

// WriteReduction evaluates Equation 4:
//
//	WR = (1−p)/2 − (Rem~ + (1 + p/2)·n)/α(n) − α(Rem~)/(2·α(n))
//
// It returns negative infinity when α(n) is zero (n < 2 for the
// comparison sorts), where the hybrid pipeline is pure overhead.
func (c CostModel) WriteReduction(n, rem int) float64 {
	alphaN := c.Alpha(n)
	if alphaN == 0 { //nolint:floatord // α(n) = 0 is an exact structural sentinel (n < 2), not an accumulated sum
		return math.Inf(-1)
	}
	return (1-c.P)/2 -
		(float64(rem)+(1+0.5*c.P)*float64(n))/alphaN -
		c.Alpha(rem)/(2*alphaN)
}

// UseHybrid reports the Section 4.3 switch decision: run approx-refine
// only when the model predicts positive write reduction.
func (c CostModel) UseHybrid(n, rem int) bool {
	return c.WriteReduction(n, rem) > 0
}
