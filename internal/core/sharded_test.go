package core

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func shardPlan(t *testing.T, cfg ShardConfig) Plan {
	t.Helper()
	sample := dataset.Uniform(8192, 13)
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 99}}.PlanSharded(sample, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sharded == nil || plan.External == nil {
		t.Fatalf("PlanSharded left a verdict nil: %+v", plan)
	}
	return plan
}

func TestPlanShardedFansOutLargeInput(t *testing.T) {
	// A cross-shard merge costs one extra N-write pass, but splitting
	// 100M records across shards divides the whole per-shard pipeline,
	// so the planner must fan out and predict a real speedup.
	plan := shardPlan(t, ShardConfig{
		Ext:       ExtConfig{N: 100_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true},
		MaxShards: 4,
	})
	s := plan.Sharded
	if s.Shards < 2 {
		t.Fatalf("Shards = %d, want fan-out for 100M records", s.Shards)
	}
	if s.Speedup <= 1 {
		t.Fatalf("Speedup = %g, want > 1", s.Speedup)
	}
	if s.CrossPasses < 1 {
		t.Fatalf("CrossPasses = %d with %d shards", s.CrossPasses, s.Shards)
	}
	want := (int64(100_000_000) + int64(s.Shards) - 1) / int64(s.Shards)
	if s.ShardRecords != want {
		t.Fatalf("ShardRecords = %d, want ceil(N/S) = %d", s.ShardRecords, want)
	}
	if s.PerShard == nil || s.PerShard.N != want {
		t.Fatalf("PerShard plan not at shard size: %+v", s.PerShard)
	}
	if s.CriticalPath != s.ShardWrites+s.CrossWrites+s.PartitionWrites {
		t.Fatalf("CriticalPath %g != Shard %g + Cross %g + Partition %g",
			s.CriticalPath, s.ShardWrites, s.CrossWrites, s.PartitionWrites)
	}
	if s.PartitionWrites < float64(100_000_000) {
		t.Fatalf("PartitionWrites = %g, want at least one write per record", s.PartitionWrites)
	}
	if s.CriticalPath >= s.SingleNode {
		t.Fatalf("critical path %g not below single-node %g", s.CriticalPath, s.SingleNode)
	}
}

func TestPlanShardedSingleShardStaysLocal(t *testing.T) {
	plan := shardPlan(t, ShardConfig{
		Ext:       ExtConfig{N: 10_000_000, MemBudget: 1 << 17, Replacement: true},
		MaxShards: 1,
	})
	s := plan.Sharded
	if s.Shards != 1 || s.CrossPasses != 0 || s.CrossWrites != 0 {
		t.Fatalf("MaxShards=1 plan fanned out: %+v", s)
	}
	if s.Speedup != 1 {
		t.Fatalf("Speedup = %g, want 1 at S=1", s.Speedup)
	}
}

func TestPlanShardedTinyInputDeclinesFanOut(t *testing.T) {
	// When the whole input fits one in-memory run, sharding only adds a
	// cross-merge pass; the planner must keep S = 1.
	plan := shardPlan(t, ShardConfig{
		Ext:       ExtConfig{N: 50_000, MemBudget: 1 << 17, Replacement: true},
		MaxShards: 8,
	})
	if plan.Sharded.Shards != 1 {
		t.Fatalf("Shards = %d for a single-run input, want 1", plan.Sharded.Shards)
	}
}

func TestPlanShardedCrossFanInCap(t *testing.T) {
	plan := shardPlan(t, ShardConfig{
		Ext:        ExtConfig{N: 500_000_000, MemBudget: 1 << 17, Replacement: true},
		MaxShards:  8,
		CrossFanIn: 2,
	})
	s := plan.Sharded
	if s.CrossFanIn != 2 {
		t.Fatalf("CrossFanIn = %d, want cap 2", s.CrossFanIn)
	}
	if s.Shards > 2 && s.CrossPasses < 2 {
		t.Fatalf("CrossPasses = %d for %d shards at fan-in 2", s.CrossPasses, s.Shards)
	}
}

func TestPlanShardedValidation(t *testing.T) {
	pl := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 1}}
	if _, err := pl.PlanSharded(nil, ShardConfig{Ext: ExtConfig{N: 100, MemBudget: 1 << 16}}); err == nil {
		t.Fatal("expected error for MaxShards=0")
	}
	if _, err := pl.PlanSharded(nil, ShardConfig{Ext: ExtConfig{N: 0, MemBudget: 1 << 16}, MaxShards: 2}); err == nil {
		t.Fatal("expected error for N=0")
	}
}

func TestPlanShardedDeterministic(t *testing.T) {
	cfg := ShardConfig{
		Ext:       ExtConfig{N: 40_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true},
		MaxShards: 5,
	}
	a := shardPlan(t, cfg)
	b := shardPlan(t, cfg)
	if *a.Sharded.PerShard != *b.Sharded.PerShard {
		t.Fatalf("per-shard plans diverged:\n%+v\n%+v", a.Sharded.PerShard, b.Sharded.PerShard)
	}
	ap, bp := *a.Sharded, *b.Sharded
	ap.PerShard, bp.PerShard = nil, nil
	if ap != bp {
		t.Fatalf("sharded plans diverged:\n%+v\n%+v", ap, bp)
	}
}
