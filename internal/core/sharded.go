package core

import (
	"errors"
	"fmt"
	"math"

	"approxsort/internal/sorts"
)

// This file extends the (M, B, ω) external planner across machines: a
// cluster coordinator range-partitions the input over S shard sortd
// instances, each runs the single-node approx-refine external sort over
// ~N/S records, and the coordinator folds the S sorted shard streams
// through one cross-shard merge tournament. Shards sort concurrently, so
// the predicted wall cost is the per-shard critical path plus the
// coordinator's serial cross-merge; the planner picks the S that
// minimizes it and reports the predicted speedup over S = 1.

// ShardConfig parameterizes the multi-node planner on top of an
// ExtConfig describing each shard's local geometry.
type ShardConfig struct {
	// Ext is the single-node model; Ext.N is the TOTAL record count, and
	// Ext.MemBudget/Block/Omega describe one shard (nodes are assumed
	// homogeneous, which CI's localhost matrix makes literally true).
	Ext ExtConfig
	// MaxShards caps the candidate shard counts (the number of live
	// sortd nodes the coordinator can reach). At least 1.
	MaxShards int
	// CrossFanIn, when positive, caps the coordinator's cross-shard
	// merge fan-in below MaxShards (e.g. a socket budget); 0 means the
	// coordinator can hold every shard stream open at once.
	CrossFanIn int
	// JobOverhead is the predicted fixed cost of one shard job in
	// precise-write units (submission round trips, spool setup, table
	// warm-up relay). Non-positive selects ExtBlockDefault. Charged S
	// times when S > 1; a single-node sort bypasses the coordinator.
	JobOverhead float64
}

func (s ShardConfig) validate() error {
	if s.MaxShards < 1 {
		return fmt.Errorf("core: ShardConfig.MaxShards = %d; need at least 1", s.MaxShards)
	}
	return nil
}

// ShardedPlan is the multi-node verdict: how many shards to fan out
// over, the cross-shard merge shape, and the predicted write budgets
// that selected them. Write figures are equivalent precise word-writes.
type ShardedPlan struct {
	// Shards is the chosen fan-out (1 means "stay single-node").
	Shards int
	// ShardRecords is the per-shard input ceiling, ceil(N/Shards).
	ShardRecords int64
	// CrossFanIn and CrossPasses describe the coordinator's merge of the
	// Shards output streams (CrossPasses is 0 when Shards == 1).
	CrossFanIn  int
	CrossPasses int

	// PerShard is the single-node external plan at ShardRecords — the
	// geometry every shard job should be submitted with.
	PerShard *ExternalPlan

	// ShardWrites is one shard's predicted total (the parallel critical
	// path, shards being concurrent and balanced); CrossWrites is the
	// coordinator's serial cross-merge cost (CrossPasses × N).
	// PartitionWrites is the coordinator's range-partition pass — every
	// record written once into a shard spool — plus the per-job
	// overhead; both are zero at S = 1, where the sort runs directly.
	ShardWrites     float64
	CrossWrites     float64
	PartitionWrites float64
	// CriticalPath = ShardWrites + CrossWrites + PartitionWrites, the
	// predicted wall cost in precise-write units; SingleNode is the same
	// figure at S = 1, so Speedup = SingleNode / CriticalPath.
	CriticalPath float64
	SingleNode   float64
	Speedup      float64
}

// PlanSharded plans a multi-node sort of cfg.Ext.N records from a pilot
// over sample. For each candidate S it re-runs the external planner at
// the per-shard size ceil(N/S) — smaller shards may flip the run-size or
// refine-at-merge verdicts, not just scale them — prices the cross-shard
// merge at N writes per cross pass, and keeps the S minimizing the
// critical path. The returned Plan carries both verdicts: External is
// the per-shard geometry, Sharded the fan-out around it.
func (pl Planner) PlanSharded(sample []uint32, cfg ShardConfig) (Plan, error) {
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	if cfg.Ext.N <= 0 {
		return Plan{}, errors.New("core: ShardConfig.Ext.N must be positive")
	}
	overhead := cfg.JobOverhead
	if overhead <= 0 {
		overhead = float64(ExtBlockDefault)
	}

	var (
		bestPlan Plan
		best     ShardedPlan
		bestCost = math.Inf(1)
		single   = math.Inf(1)
	)
	for s := 1; s <= cfg.MaxShards; s++ {
		ext := cfg.Ext
		ext.N = (cfg.Ext.N + int64(s) - 1) / int64(s)
		if s > 1 && ext.N <= int64(ext.MemBudget) {
			// A shard this small fits one in-memory run; the write model
			// would still parallelize formation, but an input a single
			// node holds in memory gains nothing worth the coordination,
			// so fan-out candidates stop at out-of-core shard sizes.
			break
		}
		p, err := pl.PlanExternal(sample, ext)
		if err != nil {
			return Plan{}, err
		}
		per := p.External

		crossFan := s
		if cfg.CrossFanIn > 0 && crossFan > cfg.CrossFanIn {
			crossFan = cfg.CrossFanIn
		}
		if crossFan < 2 {
			crossFan = 2
		}
		crossPasses := 0
		for c := int64(s); c > 1; c = (c + int64(crossFan) - 1) / int64(crossFan) {
			crossPasses++
		}
		cross := float64(crossPasses) * float64(cfg.Ext.N)
		partition := 0.0
		if s > 1 {
			partition = float64(cfg.Ext.N) + float64(s)*overhead
		}
		crit := per.TotalWrites + cross + partition
		if s == 1 {
			single = crit
		}
		if crit < bestCost {
			bestCost = crit
			bestPlan = p
			best = ShardedPlan{
				Shards:          s,
				ShardRecords:    ext.N,
				CrossFanIn:      crossFan,
				CrossPasses:     crossPasses,
				PerShard:        per,
				ShardWrites:     per.TotalWrites,
				CrossWrites:     cross,
				PartitionWrites: partition,
				CriticalPath:    crit,
			}
		}
	}
	best.SingleNode = single
	best.Speedup = single / bestCost
	if math.IsInf(best.Speedup, 0) || math.IsNaN(best.Speedup) {
		best.Speedup = 1
	}
	bestPlan.Sharded = &best
	return bestPlan, nil
}

// PlanShardedAuto runs the multi-node planner for every candidate
// algorithm and returns the plan with the lowest predicted critical path —
// each candidate chose its own shard count and per-shard geometry. Ties
// break to the earlier candidate (sorted-name rosters are deterministic).
func (pl Planner) PlanShardedAuto(sample []uint32, cfg ShardConfig, candidates []sorts.Candidate) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, errors.New("core: PlanShardedAuto needs at least one candidate algorithm")
	}
	var best Plan
	bestCost := math.Inf(1)
	for _, c := range candidates {
		cpl := pl
		cpl.Config.Algorithm = c.Alg
		plan, err := cpl.PlanSharded(sample, cfg)
		if err != nil {
			return Plan{}, fmt.Errorf("core: auto candidate %q: %w", c.Name, err)
		}
		if plan.Sharded.CriticalPath < bestCost {
			bestCost = plan.Sharded.CriticalPath
			plan.Algorithm = c.Name
			best = plan
		}
	}
	return best, nil
}
