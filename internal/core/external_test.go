package core

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func extPlan(t *testing.T, alg sorts.Algorithm, T float64, ext ExtConfig) Plan {
	t.Helper()
	sample := dataset.Uniform(8192, 13)
	plan, err := Planner{Config: Config{Algorithm: alg, T: T, Seed: 99}}.PlanExternal(sample, ext)
	if err != nil {
		t.Fatal(err)
	}
	if plan.External == nil {
		t.Fatal("PlanExternal returned nil External")
	}
	return plan
}

func TestPlanExternalGeometryConsistent(t *testing.T) {
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true,
	})
	e := plan.External
	if e.RunSize < 1024 || e.RunSize > e.MemBudget {
		t.Fatalf("RunSize %d outside (1024, M=%d]", e.RunSize, e.MemBudget)
	}
	wantLen := e.RunSize * 2
	if int64(wantLen) > e.N {
		wantLen = int(e.N)
	}
	if e.RunLength != wantLen {
		t.Fatalf("replacement RunLength = %d, want 2×RunSize = %d", e.RunLength, wantLen)
	}
	if got := (e.N + int64(e.RunLength) - 1) / int64(e.RunLength); e.Runs != got {
		t.Fatalf("Runs = %d, want ceil(N/RunLength) = %d", e.Runs, got)
	}
	if e.FanIn < 2 {
		t.Fatalf("FanIn = %d", e.FanIn)
	}
	// M/B − 1 with defaults: 2^17/2^13 − 1 = 15.
	if e.FanIn != 15 {
		t.Fatalf("FanIn = %d, want M/B-1 = 15", e.FanIn)
	}
	if e.MergePasses < 1 {
		t.Fatalf("MergePasses = %d for a %d-run merge", e.MergePasses, e.Runs)
	}
	if e.TotalWrites != e.FormationWrites+e.MergeWrites {
		t.Fatalf("TotalWrites %g != Formation %g + Merge %g", e.TotalWrites, e.FormationWrites, e.MergeWrites)
	}
}

func TestPlanExternalHybridWinsAtSweetSpot(t *testing.T) {
	// At the paper's sweet spot (T≈0.055, ω≈0.5) hybrid formation must
	// beat precise-only formation, and the verdict must come with a
	// cheaper predicted total than the all-precise alternative.
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 50_000_000, MemBudget: 1 << 18, Replacement: true, AllowRefineAtMerge: true,
	})
	e := plan.External
	if !e.UseHybrid {
		t.Fatalf("expected hybrid verdict at sweet spot, got %+v", e)
	}
	if e.TotalWrites >= e.PreciseWrites {
		t.Fatalf("hybrid total %g not below precise %g", e.TotalWrites, e.PreciseWrites)
	}
}

func TestPlanExternalOmegaOneFavorsPrecise(t *testing.T) {
	// With ω forced to 1 the device clock offers no write asymmetry, so
	// hybrid formation is pure overhead and the planner must say precise.
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000_000, MemBudget: 1 << 17, Omega: 1, Replacement: true, AllowRefineAtMerge: true,
	})
	if plan.External.UseHybrid {
		t.Fatalf("expected precise verdict at ω=1, got %+v", plan.External)
	}
}

func TestPlanExternalRefineAtMergeGating(t *testing.T) {
	// The refine-at-merge variant must never be selected when the caller
	// cannot execute it.
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: false,
	})
	if plan.External.RefineAtMerge {
		t.Fatal("RefineAtMerge selected despite AllowRefineAtMerge=false")
	}
}

func TestPlanExternalRadixKeepsLargestRun(t *testing.T) {
	// Radix writes α(L)/L = const per element, so smaller runs buy no
	// cheaper formation — only more merge passes. The planner must keep
	// RunSize = M.
	plan := extPlan(t, sorts.LSD{Bits: 8}, 0.055, ExtConfig{
		N: 100_000_000, MemBudget: 1 << 16, Replacement: true,
	})
	if plan.External.RunSize != 1<<16 {
		t.Fatalf("radix RunSize = %d, want M = %d", plan.External.RunSize, 1<<16)
	}
}

func TestPlanExternalFanInCap(t *testing.T) {
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000_000, MemBudget: 1 << 17, MaxFanIn: 4, Replacement: true,
	})
	if plan.External.FanIn != 4 {
		t.Fatalf("FanIn = %d, want MaxFanIn cap 4", plan.External.FanIn)
	}
}

func TestPlanExternalSingleRun(t *testing.T) {
	// N ≤ run length: one run, no merge passes, merge cost zero.
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000, MemBudget: 1 << 17, Replacement: true,
	})
	e := plan.External
	if e.Runs != 1 || e.MergePasses != 0 || e.MergeWrites != 0 {
		t.Fatalf("single-run geometry wrong: %+v", e)
	}
}

func TestPlanExternalValidation(t *testing.T) {
	pl := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 1}}
	if _, err := pl.PlanExternal(nil, ExtConfig{N: 0, MemBudget: 1 << 16}); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := pl.PlanExternal(nil, ExtConfig{N: 100, MemBudget: 1}); err == nil {
		t.Fatal("expected error for MemBudget<2")
	}
	if _, err := pl.PlanExternal(dataset.Uniform(100, 1), ExtConfig{N: 100, MemBudget: 1 << 16}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := pl.PlanExternal(dataset.Uniform(100, 1), ExtConfig{N: 100, MemBudget: 1 << 16, Block: -1}); err == nil {
		t.Fatal("expected error for negative Block")
	}
}

func TestPlanExternalEmptySampleStillPlans(t *testing.T) {
	// No pilot data (empty sample): the planner falls back to ω from the
	// config or 1, and must still produce a usable geometry.
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 1}}.
		PlanExternal(nil, ExtConfig{N: 1_000_000, MemBudget: 1 << 16, Replacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.External == nil || plan.External.Runs < 1 {
		t.Fatalf("degenerate plan: %+v", plan.External)
	}
	if plan.External.UseHybrid {
		t.Fatal("hybrid verdict without pilot evidence at ω=1 fallback")
	}
}
