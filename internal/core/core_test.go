package core

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/sorts"
)

func sortedCopy(keys []uint32) []uint32 {
	out := append([]uint32(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkResult asserts the precision contract: output keys exactly equal
// the sorted input, and IDs are a permutation pointing each output key at
// its original record.
func checkResult(t *testing.T, keys []uint32, res Result) {
	t.Helper()
	want := sortedCopy(keys)
	if len(res.Keys) != len(want) {
		t.Fatalf("output length %d, want %d", len(res.Keys), len(want))
	}
	for i := range want {
		if res.Keys[i] != want[i] {
			t.Fatalf("output key[%d] = %d, want %d (precision violated)", i, res.Keys[i], want[i])
		}
	}
	seen := make([]bool, len(keys))
	for i, id := range res.IDs {
		if int(id) >= len(keys) || seen[id] {
			t.Fatalf("IDs not a permutation at %d", i)
		}
		seen[id] = true
		if keys[id] != res.Keys[i] {
			t.Fatalf("ID %d detached from key at position %d", id, i)
		}
	}
	if !res.Report.Sorted {
		t.Fatal("report claims output unsorted")
	}
}

func TestRunProducesPreciseOutput(t *testing.T) {
	keys := dataset.Uniform(5000, 1)
	for _, alg := range sorts.Standard(3, 6) {
		for _, T := range []float64{0.025, 0.055, 0.1} {
			res, err := Run(keys, Config{Algorithm: alg, T: T, Seed: 42})
			if err != nil {
				t.Fatalf("%s T=%v: %v", alg.Name(), T, err)
			}
			checkResult(t, keys, res)
		}
	}
}

func TestRunEdgeSizes(t *testing.T) {
	alg := sorts.Quicksort{}
	for _, n := range []int{0, 1, 2, 3, 7} {
		keys := dataset.Uniform(n, uint64(n)+2)
		res, err := Run(keys, Config{Algorithm: alg, T: 0.1, Seed: 7})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkResult(t, keys, res)
	}
}

func TestRunAdversarialInputs(t *testing.T) {
	inputs := map[string][]uint32{
		"sorted":   dataset.Sorted(2000),
		"reverse":  dataset.Reverse(2000),
		"allsame":  dataset.FewDistinct(2000, 1, 3),
		"two":      dataset.FewDistinct(2000, 2, 4),
		"extremes": {0xffffffff, 0, 0xffffffff, 0, 1, 0xfffffffe},
	}
	for name, keys := range inputs {
		for _, alg := range sorts.Standard(6) {
			res, err := Run(keys, Config{Algorithm: alg, T: 0.1, Seed: 5})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg.Name(), name, err)
			}
			checkResult(t, keys, res)
		}
	}
}

func TestRunQuickProperty(t *testing.T) {
	f := func(keys []uint32, seed uint64) bool {
		if len(keys) > 400 {
			keys = keys[:400]
		}
		res, err := Run(keys, Config{
			Algorithm:    sorts.Quicksort{},
			T:            0.12, // heavy corruption
			Seed:         seed,
			SkipBaseline: true,
		})
		if err != nil {
			return false
		}
		want := sortedCopy(keys)
		for i := range want {
			if res.Keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(nil, Config{T: 0.05}); err == nil {
		t.Error("missing algorithm not rejected")
	}
	if _, err := Run(nil, Config{Algorithm: sorts.Quicksort{}, T: 0}); err == nil {
		t.Error("zero T not rejected")
	}
	if _, err := Run(nil, Config{Algorithm: sorts.Quicksort{}, T: 0.2}); err == nil {
		t.Error("T beyond band not rejected")
	}
	// A custom space makes T irrelevant.
	if _, err := Run([]uint32{3, 1, 2}, Config{
		Algorithm: sorts.Quicksort{},
		NewSpace:  func(seed uint64) Space { return mem.NewApproxSpaceAt(0.05, seed) },
	}); err != nil {
		t.Errorf("custom space run failed: %v", err)
	}
}

func TestReportAccounting(t *testing.T) {
	keys := dataset.Uniform(4000, 9)
	res, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 11, MeasureSortedness: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report

	// Preparation stage: exactly n approximate writes and n precise reads.
	if r.Prep.Approx.Writes != 4000 {
		t.Errorf("prep approx writes = %d, want 4000", r.Prep.Approx.Writes)
	}
	if r.Prep.Precise.Reads != 4000 {
		t.Errorf("prep precise reads = %d, want 4000", r.Prep.Precise.Reads)
	}
	if r.Prep.Precise.Writes != 0 {
		t.Errorf("prep precise writes = %d, want 0", r.Prep.Precise.Writes)
	}

	// Approx stage writes keys approximately and IDs precisely.
	if r.ApproxSort.Approx.Writes == 0 || r.ApproxSort.Precise.Writes == 0 {
		t.Error("approx stage missing writes on one side")
	}

	// Refine step 1 writes exactly Rem~ words.
	if got := r.RefineFind.Precise.Writes; got != r.RemTilde {
		t.Errorf("refine find writes = %d, want Rem~ = %d", got, r.RemTilde)
	}
	if r.RefineFind.Approx.Writes != 0 {
		t.Error("refine stage wrote to approximate memory")
	}

	// Refine merge: 2n output writes + Rem~ set flags.
	if got, want := r.RefineMerge.Precise.Writes, 2*4000+r.RemTilde; got != want {
		t.Errorf("refine merge writes = %d, want %d", got, want)
	}

	// The refine stage in total stays below 3n + α(Rem~) ≈ 3n for small
	// Rem~ — the "fewer than 3n" claim of Section 4.2.
	refineWrites := r.RefineFind.Precise.Writes + r.RefineSort.Precise.Writes + r.RefineMerge.Precise.Writes
	if r.RemTilde < 400 && refineWrites >= 3*4000+r.RemTilde*40 {
		t.Errorf("refine writes = %d, not write-limited", refineWrites)
	}

	// Sortedness measurement populated.
	if r.PostApproxRem < 0 || r.PostApproxErrorRate < 0 {
		t.Error("MeasureSortedness did not populate metrics")
	}
	if r.PostApproxRem < r.RemTilde/50 {
		t.Errorf("exact Rem %d implausibly small versus Rem~ %d", r.PostApproxRem, r.RemTilde)
	}

	// Baseline populated and plausible: 2·α(n) writes.
	if r.Baseline.Writes == 0 {
		t.Error("baseline missing")
	}
	alpha := AlphaQuicksort(4000)
	if got := float64(r.Baseline.Writes); got < alpha || got > 4*alpha {
		t.Errorf("baseline writes = %v, want around 2·α = %v", got, 2*alpha)
	}
}

func TestReportString(t *testing.T) {
	keys := dataset.Uniform(1000, 51)
	res, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	for _, want := range []string{"Quicksort", "n=1000", "T=0.055", "sorted=true", "WR="} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q missing %q", s, want)
		}
	}
}

func TestHeuristicLISIsNonDecreasing(t *testing.T) {
	// Property: for an arbitrary permutation order of arbitrary keys, the
	// elements findREM keeps form a non-decreasing key sequence.
	f := func(keys []uint32, seed uint64) bool {
		n := len(keys)
		if n == 0 {
			return true
		}
		precise := mem.NewPreciseSpace()
		key0 := precise.Alloc(n)
		mem.Load(key0, keys)
		id := precise.Alloc(n)
		perm := dataset.Uniform(n, seed) // derive a permutation by sorting random ranks
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return perm[order[a]] < perm[order[b]] })
		for i, o := range order {
			id.Set(i, uint32(o))
		}
		remID := precise.Alloc(n)
		remCount := findREM(key0, id, remID)
		inREM := make(map[uint32]bool, remCount)
		for i := 0; i < remCount; i++ {
			inREM[remID.Get(i)] = true
		}
		last := uint32(0)
		first := true
		for i := 0; i < n; i++ {
			rid := id.Get(i)
			if inREM[rid] {
				continue
			}
			k := keys[rid]
			if !first && k < last {
				return false
			}
			last, first = k, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFindREMOnSortedOrderIsEmpty(t *testing.T) {
	precise := mem.NewPreciseSpace()
	keys := dataset.Sorted(100)
	key0 := precise.Alloc(100)
	mem.Load(key0, keys)
	id := precise.Alloc(100)
	mem.Load(id, dataset.IDs(100))
	remID := precise.Alloc(100)
	if got := findREM(key0, id, remID); got != 0 {
		t.Errorf("findREM on sorted order = %d, want 0", got)
	}
}

func TestFindREMPaperExample(t *testing.T) {
	// The running example of Figure 8: Key0 = {168,528,1,96,33,35,928,6},
	// post-approx ID order = {3,8,6,5,4,7,1,2} (1-based) and the refine
	// scan flags IDs 6 and 7 (keys 35 and 928) as REM.
	keys := []uint32{168, 528, 1, 96, 33, 35, 928, 6}
	order := []uint32{2, 7, 5, 4, 3, 6, 0, 1} // 0-based version of the paper's IDs
	precise := mem.NewPreciseSpace()
	key0 := precise.Alloc(len(keys))
	mem.Load(key0, keys)
	id := precise.Alloc(len(order))
	mem.Load(id, order)
	remID := precise.Alloc(len(order))
	remCount := findREM(key0, id, remID)
	if remCount != 2 {
		t.Fatalf("Rem~ = %d, want 2 (paper Figure 8)", remCount)
	}
	got := []uint32{remID.Get(0), remID.Get(1)}
	if got[0] != 5 || got[1] != 6 {
		t.Errorf("REMID = %v, want [5 6] (keys 35 and 928)", got)
	}
}

func TestRemTildeSmallAtModestT(t *testing.T) {
	keys := dataset.Uniform(20000, 13)
	res, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 17, SkipBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.Report.RemTildeRatio(); ratio > 0.15 {
		t.Errorf("Rem~ ratio at T=0.055 = %v, want small (near-sorted input to refine)", ratio)
	}
}

func TestWriteReductionSigns(t *testing.T) {
	// Qualitative Figure 9 shape at small n: at T=0.025 (p≈1) write
	// reduction must be negative; mergesort must not beat the baseline
	// anywhere.
	keys := dataset.Uniform(30000, 19)
	low, err := Run(keys, Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.025, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if wr := low.Report.WriteReduction(); wr >= 0 {
		t.Errorf("write reduction at precise T = %v, want negative", wr)
	}
	ms, err := Run(keys, Config{Algorithm: sorts.Mergesort{}, T: 0.055, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if wr := ms.Report.WriteReduction(); wr > 0.02 {
		t.Errorf("mergesort write reduction = %v, paper finds no benefit", wr)
	}
}

func TestStageBreakdownArithmetic(t *testing.T) {
	keys := dataset.Uniform(2000, 31)
	res, err := Run(keys, Config{Algorithm: sorts.LSD{Bits: 6}, T: 0.055, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	total := r.Total()
	sum := r.Prep.WriteNanos() + r.ApproxSort.WriteNanos() +
		r.RefineFind.WriteNanos() + r.RefineSort.WriteNanos() + r.RefineMerge.WriteNanos()
	if math.Abs(total.WriteNanos()-sum) > 1e-6 {
		t.Errorf("Total().WriteNanos %v != stage sum %v", total.WriteNanos(), sum)
	}
	if got := r.ApproxPhase().WriteNanos() + r.RefinePhase().WriteNanos(); math.Abs(got-sum) > 1e-6 {
		t.Errorf("phase split %v != stage sum %v", got, sum)
	}
	if total.Writes() <= 0 || total.AccessNanos() <= total.WriteNanos() {
		t.Error("breakdown totals inconsistent")
	}
}

func TestCostModelMatchesHandComputation(t *testing.T) {
	m := CostModel{P: 0.5, Alpha: func(n int) float64 { return float64(10 * n) }}
	// n=100, rem=10: hybrid = 1.5*1000 + 20 + 2.5*100 + 100 = 1870;
	// baseline = 2000; WR = 1 - 1870/2000 = 0.065.
	if got := m.HybridWrites(100, 10); math.Abs(got-1870) > 1e-9 {
		t.Errorf("HybridWrites = %v, want 1870", got)
	}
	if got := m.BaselineWrites(100); got != 2000 {
		t.Errorf("BaselineWrites = %v, want 2000", got)
	}
	wr := m.WriteReduction(100, 10)
	if math.Abs(wr-0.065) > 1e-9 {
		t.Errorf("WriteReduction = %v, want 0.065", wr)
	}
	if !m.UseHybrid(100, 10) {
		t.Error("UseHybrid should be true at positive WR")
	}
	if m.UseHybrid(100, 100) {
		t.Error("UseHybrid should be false when rem = n")
	}
}

func TestCostModelConsistency(t *testing.T) {
	// Equation 4 must equal 1 − hybrid/baseline for any inputs.
	f := func(nRaw, remRaw uint16, pRaw uint8) bool {
		n := int(nRaw)%10000 + 2
		rem := int(remRaw) % n
		p := float64(pRaw%100) / 100
		m := CostModel{P: p, Alpha: AlphaMergesort}
		direct := 1 - m.HybridWrites(n, rem)/m.BaselineWrites(n)
		return math.Abs(direct-m.WriteReduction(n, rem)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaFunctions(t *testing.T) {
	if AlphaQuicksort(1) != 0 || AlphaMergesort(0) != 0 {
		t.Error("α of trivial inputs should be 0")
	}
	if got := AlphaQuicksort(1024); math.Abs(got-1024*10/2) > 1e-9 {
		t.Errorf("AlphaQuicksort(1024) = %v, want 5120", got)
	}
	if got := AlphaMergesort(1024); math.Abs(got-10240) > 1e-9 {
		t.Errorf("AlphaMergesort(1024) = %v, want 10240", got)
	}
	if got := AlphaRadix(6)(100); got != 1200 {
		t.Errorf("AlphaRadix(6)(100) = %v, want 1200 (6 passes × 2n)", got)
	}
	if got := AlphaRadix(3)(100); got != 2200 {
		t.Errorf("AlphaRadix(3)(100) = %v, want 2200 (11 passes × 2n)", got)
	}
}

func TestAlphaFor(t *testing.T) {
	for _, alg := range sorts.Standard(3, 4, 5, 6) {
		a, err := AlphaFor(alg)
		if err != nil {
			t.Errorf("AlphaFor(%s): %v", alg.Name(), err)
			continue
		}
		if a(1000) <= 0 {
			t.Errorf("AlphaFor(%s)(1000) non-positive", alg.Name())
		}
	}
	if _, err := AlphaFor(fakeAlg{}); err == nil {
		t.Error("AlphaFor(unknown) should error")
	}
}

type fakeAlg struct{}

func (fakeAlg) Name() string               { return "fake" }
func (fakeAlg) Sort(sorts.Pair, sorts.Env) {}
func (fakeAlg) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env sorts.Env) {
}

func TestAnalyticWRTracksMeasuredSign(t *testing.T) {
	// The model and the measurement must agree on the sign of the write
	// reduction at the paper's sweet spot and at the precise end.
	keys := dataset.Uniform(50000, 41)
	for _, tc := range []struct {
		T    float64
		p    float64
		alg  sorts.Algorithm
		want bool // hybrid should win
	}{
		{0.055, 0.67, sorts.MSD{Bits: 3}, true},
		{0.025, 1.00, sorts.MSD{Bits: 3}, false},
	} {
		res, err := Run(keys, Config{Algorithm: tc.alg, T: tc.T, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		alpha, _ := AlphaFor(tc.alg)
		m := CostModel{P: tc.p, Alpha: alpha}
		model := m.WriteReduction(len(keys), res.Report.RemTilde)
		measured := res.Report.WriteReduction()
		if (model > 0) != tc.want || (measured > 0) != tc.want {
			t.Errorf("%s T=%v: model WR=%v measured WR=%v, want positive=%v",
				tc.alg.Name(), tc.T, model, measured, tc.want)
		}
		if math.Abs(model-measured) > 0.15 {
			t.Errorf("%s T=%v: model %v and measurement %v diverge", tc.alg.Name(), tc.T, model, measured)
		}
	}
}
