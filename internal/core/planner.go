package core

import (
	"errors"
	"fmt"
	"math"

	"approxsort/internal/mlc"
	"approxsort/internal/sorts"
)

// Planner implements the switch decision sketched at the end of
// Section 4.3: "With obtaining WR in the cost analysis, we can decide
// whether the approx-refine approach on the hybrid memory is better than
// the sorting algorithm on precise memory only, and switch between the two
// approaches accordingly."
//
// Rem~ and p(t) are not known before running, so the planner measures both
// on a small pilot: it runs approx-refine over a strided sample of the
// input, reads the pilot's Rem~ ratio and mean approximate write latency,
// extrapolates Rem~ to the full size (corruption per element scales with
// the algorithm's writes per element, α(n)/n), and evaluates Equation 4.
type Planner struct {
	// Config selects the algorithm and memory model exactly as for Run.
	// Baseline and sortedness measurement settings are ignored.
	Config Config

	// PilotSize is the sample size for the pilot run (default 4096,
	// clamped to the input size).
	PilotSize int
}

// Plan is the planner's verdict for a concrete input.
type Plan struct {
	// Algorithm is the registry name of the algorithm the plan evaluates.
	// Set only by the auto planners (PlanAuto and friends), which choose
	// it; single-algorithm plans leave it empty because the caller already
	// fixed the algorithm.
	Algorithm string `json:",omitempty"`
	// UseHybrid is true when approx-refine is predicted to beat the
	// precise-only sort.
	UseHybrid bool
	// PredictedWR is Equation 4 evaluated at the full size.
	PredictedWR float64
	// P is the measured p(t) from the pilot.
	P float64
	// PilotRemRatio and PredictedRem are the pilot's Rem~/m and the
	// extrapolated full-size remainder.
	PilotRemRatio float64
	PredictedRem  int
	// PilotSize is the sample size actually used.
	PilotSize int
	// External is the out-of-core geometry verdict, set only by
	// PlanExternal (nil for in-memory plans).
	External *ExternalPlan `json:",omitempty"`
	// Sharded is the multi-node fan-out verdict, set only by PlanSharded
	// (nil for single-node plans).
	Sharded *ShardedPlan `json:",omitempty"`
}

// Plan runs the pilot over a strided sample of keys and returns the
// verdict for sorting all of them.
func (pl Planner) Plan(keys []uint32) (Plan, error) {
	n := len(keys)
	cfg := pl.Config
	cfg.SkipBaseline = true
	cfg.MeasureSortedness = false
	cfg.PreciseSink, cfg.ApproxSink = nil, nil
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	alpha, err := AlphaFor(cfg.Algorithm)
	if err != nil {
		return Plan{}, fmt.Errorf("core: planner needs an analytic α: %w", err)
	}

	m := pl.PilotSize
	if m <= 0 {
		m = 4096
	}
	if m > n {
		m = n
	}
	if m < 2 {
		// Nothing to learn from; the hybrid pipeline is pure overhead
		// at these sizes anyway.
		return Plan{UseHybrid: false, PredictedWR: -1, P: 1, PilotSize: m}, nil
	}
	pilot := pilotSample(keys, m)

	res, err := Run(pilot, cfg)
	if err != nil {
		return Plan{}, err
	}
	r := res.Report
	p := measuredPilotP(r)
	pilotRatio := r.RemTildeRatio()

	// Corruption accumulates once per key write, so scale the remainder
	// ratio by the algorithms' writes-per-element ratio between the two
	// sizes (1 for radix, log(n)/log(m) for the comparison sorts).
	scale := 1.0
	if am := alpha(m); am > 0 {
		scale = (alpha(n) / float64(n)) / (am / float64(m))
	}
	predictedRatio := pilotRatio * scale
	if predictedRatio > 1 {
		predictedRatio = 1
	}
	predictedRem := int(predictedRatio * float64(n))

	model := CostModel{P: p, Alpha: alpha}
	wr := model.WriteReduction(n, predictedRem)
	// Service inputs must always yield a JSON-encodable verdict:
	// Equation 4 returns −Inf when α(n) is 0 (n < 2 for the comparison
	// sorts), which still means "don't use hybrid" — clamp it to the same
	// finite sentinel the tiny-input path uses.
	if math.IsInf(wr, 0) || math.IsNaN(wr) {
		wr = -1
	}
	return Plan{
		UseHybrid:     wr > 0,
		PredictedWR:   wr,
		P:             p,
		PilotRemRatio: pilotRatio,
		PredictedRem:  predictedRem,
		PilotSize:     m,
	}, nil
}

// PlanAuto runs the Plan pilot for every candidate algorithm and returns
// the plan of the one with the lowest predicted write cost on this
// backend: min(HybridWrites, BaselineWrites) at the measured p and the
// extrapolated remainder (the two arms of the Section 4.3 switch; Eq. 4's
// WR is exactly 1 − Hybrid/Baseline, so the chosen plan's UseHybrid mode
// already names the cheaper arm). Backend-awareness needs no extra
// plumbing: fixed-latency backends measure p = 1, which zeroes the hybrid
// advantage and reduces the contest to the smallest baseline 2·α(n), while
// write-asymmetric backends weight each candidate's α by its measured
// latency ratio. Ties break to the earlier candidate, so a sorted-name
// roster (sorts.AutoCandidates) makes the choice deterministic.
func (pl Planner) PlanAuto(keys []uint32, candidates []sorts.Candidate) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, errors.New("core: PlanAuto needs at least one candidate algorithm")
	}
	n := len(keys)
	var best Plan
	bestCost := math.Inf(1)
	for _, c := range candidates {
		cpl := pl
		cpl.Config.Algorithm = c.Alg
		plan, err := cpl.Plan(keys)
		if err != nil {
			return Plan{}, fmt.Errorf("core: auto candidate %q: %w", c.Name, err)
		}
		alpha, err := AlphaFor(c.Alg)
		if err != nil {
			return Plan{}, fmt.Errorf("core: auto candidate %q: %w", c.Name, err)
		}
		model := CostModel{P: plan.P, Alpha: alpha}
		cost := model.BaselineWrites(n)
		if plan.UseHybrid {
			cost = model.HybridWrites(n, plan.PredictedRem)
		}
		if cost < bestCost {
			bestCost = cost
			plan.Algorithm = c.Name
			best = plan
		}
	}
	return best, nil
}

// pilotSample draws an m-element even-spread sample: element i comes from
// index ⌊i·n/m⌋, so the sample covers the whole input even when m does not
// divide n. (A ⌊n/m⌋ stride degenerates to a prefix sample for any
// n < 2m — stride 1 reads only the first m keys — which skews the pilot
// badly on clustered or value-banded service inputs.)
func pilotSample(keys []uint32, m int) []uint32 {
	n := len(keys)
	pilot := make([]uint32, m)
	for i := 0; i < m; i++ {
		pilot[i] = keys[i*n/m]
	}
	return pilot
}

func measuredPilotP(r *Report) float64 {
	a := r.ApproxPhase().Approx
	if a.Writes == 0 {
		return 1
	}
	return a.WriteNanos / float64(a.Writes) / mlc.PreciseWriteNanos
}
