package core

import (
	"encoding/json"
	"strings"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

// TestPlanExternalExtraPassSingleRun pins the single-run case: a
// refine-at-merge plan whose data fits one run has no merge tree to ride
// in, so the LIS~/REM fold costs a whole pass — MergePasses is bumped
// 0 → 1 and the plan declares the extra pass explicitly.
func TestPlanExternalExtraPassSingleRun(t *testing.T) {
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true,
	})
	e := plan.External
	if !e.RefineAtMerge {
		t.Fatalf("refine-at-merge not selected for a single hybrid run: %+v", e)
	}
	if e.Runs != 1 || e.MergePasses != 1 {
		t.Fatalf("single parts run needs exactly one folding pass: %+v", e)
	}
	if !e.ExtraPass {
		t.Error("ExtraPass not set for the 0→1 pass bump")
	}
}

// TestPlanExternalExtraPassFragmentCollapse pins the many-runs case: once
// LIS~/REM part pairs exceed the fan-in, the fragment-collapse term is
// charged and surfaced as an extra pass.
func TestPlanExternalExtraPassFragmentCollapse(t *testing.T) {
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 50_000_000, MemBudget: 1 << 18, Replacement: true, AllowRefineAtMerge: true,
	})
	e := plan.External
	if !e.RefineAtMerge {
		t.Skipf("refine-at-merge not selected at this point: %+v", e)
	}
	if 2*e.Runs <= int64(e.FanIn) {
		t.Fatalf("test point too small to overflow the fan-in: %+v", e)
	}
	if !e.ExtraPass || e.CollapseWrites <= 0 {
		t.Errorf("fragment collapse not surfaced: ExtraPass=%v CollapseWrites=%g",
			e.ExtraPass, e.CollapseWrites)
	}
}

// TestPlanExternalExtraPassAbsent pins the negative: without
// refine-at-merge there is no deferred fold, so no extra pass, and the
// field serializes into plan JSON either way (sortd job payloads carry
// ExternalPlan verbatim).
func TestPlanExternalExtraPassAbsent(t *testing.T) {
	plan := extPlan(t, sorts.MSD{Bits: 6}, 0.055, ExtConfig{
		N: 10_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: false,
	})
	if plan.External.ExtraPass {
		t.Errorf("ExtraPass set without refine-at-merge: %+v", plan.External)
	}
	raw, err := json.Marshal(plan.External)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"ExtraPass":false`) {
		t.Errorf("plan JSON does not carry the ExtraPass verdict: %s", raw)
	}
}

// TestPlanExternalAutoPicksCheapestGeometry pins PlanExternalAuto against
// a hand-rolled argmin over the same candidates: the winner is the
// lowest predicted TotalWrites (whole geometries, not just α), labelled
// with its registry name.
func TestPlanExternalAutoPicksCheapestGeometry(t *testing.T) {
	sample := dataset.Uniform(8192, 13)
	ext := ExtConfig{N: 20_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true}
	pl := Planner{Config: Config{T: 0.055, Seed: 99}}
	cands := sorts.AutoCandidates()

	plan, err := pl.PlanExternalAuto(sample, ext, cands)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm == "" || plan.External == nil {
		t.Fatalf("auto plan incomplete: %+v", plan)
	}
	wantName, wantCost := "", 0.0
	for _, c := range cands {
		cpl := pl
		cpl.Config.Algorithm = c.Alg
		p, err := cpl.PlanExternal(sample, ext)
		if err != nil {
			t.Fatal(err)
		}
		if wantName == "" || p.External.TotalWrites < wantCost {
			wantName, wantCost = c.Name, p.External.TotalWrites
		}
	}
	if plan.Algorithm != wantName || plan.External.TotalWrites != wantCost {
		t.Errorf("auto picked %q at %g, want %q at %g",
			plan.Algorithm, plan.External.TotalWrites, wantName, wantCost)
	}
}

// TestPlanShardedAutoPicksShortestCriticalPath is the sharded analogue:
// lowest predicted critical path wins and carries its registry name.
func TestPlanShardedAutoPicksShortestCriticalPath(t *testing.T) {
	sample := dataset.Uniform(8192, 13)
	cfg := ShardConfig{
		Ext:       ExtConfig{N: 100_000_000, MemBudget: 1 << 17, Replacement: true, AllowRefineAtMerge: true},
		MaxShards: 4,
	}
	pl := Planner{Config: Config{T: 0.055, Seed: 99}}
	cands := sorts.AutoCandidates()

	plan, err := pl.PlanShardedAuto(sample, cfg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm == "" || plan.Sharded == nil {
		t.Fatalf("auto plan incomplete: %+v", plan)
	}
	for _, c := range cands {
		cpl := pl
		cpl.Config.Algorithm = c.Alg
		p, err := cpl.PlanSharded(sample, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Sharded.CriticalPath < plan.Sharded.CriticalPath {
			t.Errorf("candidate %q has shorter critical path %g than winner %q's %g",
				c.Name, p.Sharded.CriticalPath, plan.Algorithm, plan.Sharded.CriticalPath)
		}
	}
}

// TestPlanAutoVariantsRejectEmptyRoster pins the error contract shared
// by the three auto planners.
func TestPlanAutoVariantsRejectEmptyRoster(t *testing.T) {
	pl := Planner{Config: Config{T: 0.055, Seed: 1}}
	if _, err := pl.PlanExternalAuto(nil, ExtConfig{N: 100, MemBudget: 1 << 16}, nil); err == nil {
		t.Error("PlanExternalAuto accepted an empty roster")
	}
	if _, err := pl.PlanShardedAuto(nil, ShardConfig{Ext: ExtConfig{N: 100, MemBudget: 1 << 16}, MaxShards: 2}, nil); err == nil {
		t.Error("PlanShardedAuto accepted an empty roster")
	}
}
