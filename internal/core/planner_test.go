package core

import (
	"math"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func TestPlannerPicksHybridAtSweetSpot(t *testing.T) {
	keys := dataset.Uniform(500000, 1)
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.055, Seed: 2}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseHybrid {
		t.Errorf("planner rejected hybrid at the sweet spot: %+v", plan)
	}
	if plan.P < 0.55 || plan.P > 0.8 {
		t.Errorf("pilot p(t) = %v, want ~0.67", plan.P)
	}
	if plan.PilotSize != 4096 {
		t.Errorf("pilot size = %d", plan.PilotSize)
	}
}

func TestPlannerRejectsPreciseT(t *testing.T) {
	keys := dataset.Uniform(500000, 3)
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.025, Seed: 4}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Errorf("planner chose hybrid with p(t)≈1: %+v", plan)
	}
}

func TestPlannerRejectsMergesort(t *testing.T) {
	// Mergesort's pilot remainder is large enough that Eq. 4 goes
	// negative — matching Figure 9's finding.
	keys := dataset.Uniform(200000, 5)
	plan, err := Planner{Config: Config{Algorithm: sorts.Mergesort{}, T: 0.055, Seed: 6}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Errorf("planner chose hybrid for mergesort: %+v", plan)
	}
}

func TestPlannerTinyInput(t *testing.T) {
	plan, err := Planner{Config: Config{Algorithm: sorts.Quicksort{}, T: 0.055}}.Plan([]uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Error("planner chose hybrid for a single-element input")
	}
}

func TestPlannerValidatesConfig(t *testing.T) {
	if _, err := (Planner{Config: Config{T: 0.055}}).Plan(dataset.Uniform(10, 1)); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := (Planner{Config: Config{Algorithm: fakeAlg{}, T: 0.055}}).Plan(dataset.Uniform(10000, 1)); err == nil {
		t.Error("algorithm without analytic α accepted")
	}
}

func TestPlannerPredictionTracksMeasurement(t *testing.T) {
	keys := dataset.Uniform(120000, 7)
	cfg := Config{Algorithm: sorts.LSD{Bits: 3}, T: 0.055, Seed: 8}
	plan, err := Planner{Config: cfg, PilotSize: 8192}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := res.Report.WriteReduction()
	if (plan.PredictedWR > 0) != (measured > 0) {
		t.Errorf("plan WR=%v disagrees in sign with measured %v", plan.PredictedWR, measured)
	}
	if d := plan.PredictedWR - measured; d > 0.1 || d < -0.1 {
		t.Errorf("plan WR=%v far from measured %v", plan.PredictedWR, measured)
	}
}

func TestExactLISRefine(t *testing.T) {
	keys := dataset.Uniform(20000, 9)
	exact, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.07, Seed: 10, ExactLIS: true})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.07, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, keys, exact)
	// Identical seeds give an identical post-approx order, so exact LIS
	// must find a remainder no larger than the heuristic's.
	if exact.Report.RemTilde > heur.Report.RemTilde {
		t.Errorf("exact Rem %d > heuristic Rem~ %d", exact.Report.RemTilde, heur.Report.RemTilde)
	}
	// And it pays for the privilege in refine-stage writes.
	exactFind := exact.Report.RefineFind.Precise.Writes
	heurFind := heur.Report.RefineFind.Precise.Writes
	if exactFind <= heurFind {
		t.Errorf("exact LIS find writes %d not above heuristic %d", exactFind, heurFind)
	}
	if exactFind < exact.Report.N {
		t.Errorf("exact LIS should pay Θ(n) bookkeeping writes, got %d", exactFind)
	}
}

func TestExactLISOnCleanInput(t *testing.T) {
	// On an already sorted order the exact LIS covers everything.
	keys := dataset.Sorted(5000)
	res, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.025, Seed: 11, ExactLIS: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, keys, res)
	if res.Report.RemTilde != 0 {
		t.Errorf("exact LIS remainder on clean input = %d", res.Report.RemTilde)
	}
}

func TestExactLISQuickEquivalence(t *testing.T) {
	// Property: both refine variants produce the identical sorted output.
	for seed := uint64(0); seed < 8; seed++ {
		keys := dataset.Uniform(3000, seed+20)
		a, err := Run(keys, Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.1, Seed: seed, ExactLIS: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(keys, Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] {
				t.Fatalf("seed %d: outputs differ at %d", seed, i)
			}
		}
	}
}

// TestPlannerServiceInputs is the service-hardening table: every input a
// client can post — tiny, sub-pilot-sized, constant-key, clustered — must
// come back as a valid, JSON-encodable Plan (finite floats, remainder
// within [0, n], pilot no larger than the input), never an error or a
// skewed extrapolation.
func TestPlannerServiceInputs(t *testing.T) {
	constant := func(n int) []uint32 {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = 42
		}
		return keys
	}
	algs := []sorts.Algorithm{
		sorts.Quicksort{}, sorts.Mergesort{}, sorts.LSD{Bits: 6}, sorts.MSD{Bits: 6},
	}
	cases := []struct {
		name string
		keys []uint32
	}{
		{"empty", nil},
		{"single", []uint32{7}},
		{"pair", []uint32{9, 3}},
		{"three", []uint32{2, 2, 1}},
		{"tiny-constant", constant(5)},
		{"sub-pilot-uniform", dataset.Uniform(1000, 21)},
		{"sub-pilot-constant", constant(1000)},
		{"just-under-2x-pilot", dataset.Uniform(8000, 22)}, // old stride bug: prefix-only sample
		{"constant-large", constant(50000)},
		{"sorted-large", dataset.Sorted(50000)},
		{"fewdistinct", dataset.FewDistinct(30000, 2, 23)},
	}
	for _, alg := range algs {
		for _, tc := range cases {
			t.Run(alg.Name()+"/"+tc.name, func(t *testing.T) {
				n := len(tc.keys)
				plan, err := Planner{Config: Config{Algorithm: alg, T: 0.055, Seed: 3}}.Plan(tc.keys)
				if err != nil {
					t.Fatalf("planner failed on service input: %v", err)
				}
				for name, f := range map[string]float64{
					"PredictedWR":   plan.PredictedWR,
					"P":             plan.P,
					"PilotRemRatio": plan.PilotRemRatio,
				} {
					if math.IsNaN(f) || math.IsInf(f, 0) {
						t.Errorf("%s = %v not finite", name, f)
					}
				}
				if plan.PredictedRem < 0 || plan.PredictedRem > n {
					t.Errorf("PredictedRem = %d out of [0, %d]", plan.PredictedRem, n)
				}
				if plan.PilotSize > n {
					t.Errorf("PilotSize = %d exceeds n = %d", plan.PilotSize, n)
				}
				if plan.P < 0 || plan.P > 1.5 {
					t.Errorf("P = %v implausible", plan.P)
				}
			})
		}
	}
}

// TestPilotSampleSpansInput pins the even-spread sampling fix: for any
// n >= m the sample's indices must cover the whole input, in particular
// reaching the final n/m window. The old ⌊n/m⌋ stride degenerated to a
// prefix sample (stride 1, first m keys only) whenever n < 2m — exactly
// the sub-2×-pilot sizes a service sees all the time.
func TestPilotSampleSpansInput(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{4096, 4096}, // pilot == input
		{4097, 4096}, // barely larger
		{6000, 4096}, // old bug zone: stride would be 1
		{8191, 4096}, // largest pre-fix prefix-degenerate size
		{8192, 4096}, // exact 2×
		{100000, 4096},
		{5, 2},
		{7, 3},
	} {
		keys := make([]uint32, tc.n)
		for i := range keys {
			keys[i] = uint32(i) // key == index, so values reveal indices
		}
		pilot := pilotSample(keys, tc.m)
		if len(pilot) != tc.m {
			t.Fatalf("n=%d m=%d: sample length %d", tc.n, tc.m, len(pilot))
		}
		// The last sampled index must land in the final n/m window…
		last := int(pilot[tc.m-1])
		if last < tc.n-tc.n/tc.m-1 {
			t.Errorf("n=%d m=%d: last sampled index %d leaves a %d-key tail unseen",
				tc.n, tc.m, last, tc.n-1-last)
		}
		// …indices must be strictly increasing (order-preserving sample,
		// no repeats) and start at 0.
		if pilot[0] != 0 {
			t.Errorf("n=%d m=%d: sample does not start at index 0", tc.n, tc.m)
		}
		for i := 1; i < tc.m; i++ {
			if pilot[i] <= pilot[i-1] {
				t.Errorf("n=%d m=%d: sample indices not strictly increasing at %d", tc.n, tc.m, i)
				break
			}
		}
	}
}
