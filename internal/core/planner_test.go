package core

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func TestPlannerPicksHybridAtSweetSpot(t *testing.T) {
	keys := dataset.Uniform(500000, 1)
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.055, Seed: 2}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseHybrid {
		t.Errorf("planner rejected hybrid at the sweet spot: %+v", plan)
	}
	if plan.P < 0.55 || plan.P > 0.8 {
		t.Errorf("pilot p(t) = %v, want ~0.67", plan.P)
	}
	if plan.PilotSize != 4096 {
		t.Errorf("pilot size = %d", plan.PilotSize)
	}
}

func TestPlannerRejectsPreciseT(t *testing.T) {
	keys := dataset.Uniform(500000, 3)
	plan, err := Planner{Config: Config{Algorithm: sorts.MSD{Bits: 3}, T: 0.025, Seed: 4}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Errorf("planner chose hybrid with p(t)≈1: %+v", plan)
	}
}

func TestPlannerRejectsMergesort(t *testing.T) {
	// Mergesort's pilot remainder is large enough that Eq. 4 goes
	// negative — matching Figure 9's finding.
	keys := dataset.Uniform(200000, 5)
	plan, err := Planner{Config: Config{Algorithm: sorts.Mergesort{}, T: 0.055, Seed: 6}}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Errorf("planner chose hybrid for mergesort: %+v", plan)
	}
}

func TestPlannerTinyInput(t *testing.T) {
	plan, err := Planner{Config: Config{Algorithm: sorts.Quicksort{}, T: 0.055}}.Plan([]uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseHybrid {
		t.Error("planner chose hybrid for a single-element input")
	}
}

func TestPlannerValidatesConfig(t *testing.T) {
	if _, err := (Planner{Config: Config{T: 0.055}}).Plan(dataset.Uniform(10, 1)); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := (Planner{Config: Config{Algorithm: fakeAlg{}, T: 0.055}}).Plan(dataset.Uniform(10000, 1)); err == nil {
		t.Error("algorithm without analytic α accepted")
	}
}

func TestPlannerPredictionTracksMeasurement(t *testing.T) {
	keys := dataset.Uniform(120000, 7)
	cfg := Config{Algorithm: sorts.LSD{Bits: 3}, T: 0.055, Seed: 8}
	plan, err := Planner{Config: cfg, PilotSize: 8192}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := res.Report.WriteReduction()
	if (plan.PredictedWR > 0) != (measured > 0) {
		t.Errorf("plan WR=%v disagrees in sign with measured %v", plan.PredictedWR, measured)
	}
	if d := plan.PredictedWR - measured; d > 0.1 || d < -0.1 {
		t.Errorf("plan WR=%v far from measured %v", plan.PredictedWR, measured)
	}
}

func TestExactLISRefine(t *testing.T) {
	keys := dataset.Uniform(20000, 9)
	exact, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.07, Seed: 10, ExactLIS: true})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.07, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, keys, exact)
	// Identical seeds give an identical post-approx order, so exact LIS
	// must find a remainder no larger than the heuristic's.
	if exact.Report.RemTilde > heur.Report.RemTilde {
		t.Errorf("exact Rem %d > heuristic Rem~ %d", exact.Report.RemTilde, heur.Report.RemTilde)
	}
	// And it pays for the privilege in refine-stage writes.
	exactFind := exact.Report.RefineFind.Precise.Writes
	heurFind := heur.Report.RefineFind.Precise.Writes
	if exactFind <= heurFind {
		t.Errorf("exact LIS find writes %d not above heuristic %d", exactFind, heurFind)
	}
	if exactFind < exact.Report.N {
		t.Errorf("exact LIS should pay Θ(n) bookkeeping writes, got %d", exactFind)
	}
}

func TestExactLISOnCleanInput(t *testing.T) {
	// On an already sorted order the exact LIS covers everything.
	keys := dataset.Sorted(5000)
	res, err := Run(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.025, Seed: 11, ExactLIS: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, keys, res)
	if res.Report.RemTilde != 0 {
		t.Errorf("exact LIS remainder on clean input = %d", res.Report.RemTilde)
	}
}

func TestExactLISQuickEquivalence(t *testing.T) {
	// Property: both refine variants produce the identical sorted output.
	for seed := uint64(0); seed < 8; seed++ {
		keys := dataset.Uniform(3000, seed+20)
		a, err := Run(keys, Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.1, Seed: seed, ExactLIS: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(keys, Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] {
				t.Fatalf("seed %d: outputs differ at %d", seed, i)
			}
		}
	}
}
