package core

import "approxsort/internal/mem"

// findREM is Step 1 of the refine stage (Listing 1 of the paper): a single
// O(n) pass over the post-approx-stage ID order that keeps an element in
// the approximate longest increasing subsequence (LIS~) when its precise
// key is non-decreasing with respect to both the current LIS~ tail and its
// right neighbour, and otherwise appends its record ID to REMID.
//
// The kept subsequence is non-decreasing by construction (the tail check
// alone guarantees it; the neighbour check only makes the heuristic more
// selective, trading LIS~ length for robustness against isolated spikes).
// Precise keys are read through Key0[ID[i]] — the nearly sorted key view —
// so the scan costs reads only, plus exactly Rem~ writes into remID.
//
// It returns Rem~, the number of IDs placed in remID[0:Rem~].
//
// When the arrays are untraced (mem.Reorderable), the sequential ID
// reads are batched through GetSlice into a stack buffer — each ID word
// is still read exactly once and every Key0 lookup keeps its order, so
// the accounting is unchanged; only the per-element interface dispatch
// is amortized. Traced runs keep the per-element loop so the event
// stream stays byte-identical.
func findREM(key0, id, remID mem.Words) int {
	n := id.Len()
	if n < 2 {
		return 0
	}
	if mem.Reorderable(id) && mem.Reorderable(key0) {
		return findREMBulk(key0, id, remID)
	}
	rem := 0
	// The first element is always taken into LIS~ (Listing 1 line 9).
	tail := key0.Get(int(id.Get(0)))

	curID := id.Get(1)
	curKey := key0.Get(int(curID))
	for i := 1; i < n-1; i++ {
		nextID := id.Get(i + 1)
		nextKey := key0.Get(int(nextID))
		if curKey >= tail && curKey <= nextKey {
			tail = curKey
		} else {
			remID.Set(rem, curID) //nolint:hotpath // Rem~-bounded write, rare by construction
			rem++
		}
		curID, curKey = nextID, nextKey
	}
	// Last element (Listing 1 lines 19–21): it joins LIS~ unless it
	// breaks the tail order.
	if curKey < tail {
		remID.Set(rem, curID) //nolint:hotpath // Rem~-bounded write, rare by construction
		rem++
	}
	return rem
}

// refineChunkWords is the ID read batch size of the bulk findREM scan.
const refineChunkWords = 1024

// findREMBulk is findREM with the ID stream read in chunks. Same scan,
// same reads, same writes; see findREM for the equivalence argument.
//
//memlint:hotpath
func findREMBulk(key0, id, remID mem.Words) int {
	n := id.Len() //nolint:hotpath // one length read per scan, not per access
	var buf [refineChunkWords]uint32
	base := 0
	fill := min(n, refineChunkWords)
	mem.GetSlice(id, 0, buf[:fill])
	rem := 0
	tail := key0.Get(int(buf[0])) //nolint:hotpath // scattered data-dependent Key0 lookup; the paper trades these reads for writes
	curID := buf[1]
	curKey := key0.Get(int(curID)) //nolint:hotpath // scattered data-dependent Key0 lookup; the paper trades these reads for writes
	for i := 1; i < n-1; i++ {
		j := i + 1 - base
		if j >= fill {
			base += fill
			fill = min(n-base, refineChunkWords)
			mem.GetSlice(id, base, buf[:fill])
			j = i + 1 - base
		}
		nextID := buf[j]
		nextKey := key0.Get(int(nextID)) //nolint:hotpath // scattered data-dependent Key0 lookup; the paper trades these reads for writes
		if curKey >= tail && curKey <= nextKey {
			tail = curKey
		} else {
			remID.Set(rem, curID) //nolint:hotpath // Rem~-bounded write, rare by construction
			rem++
		}
		curID, curKey = nextID, nextKey
	}
	if curKey < tail {
		remID.Set(rem, curID) //nolint:hotpath // Rem~-bounded write, rare by construction
		rem++
	}
	return rem
}

// mergeRefine is Step 3 of the refine stage (Listing 2 of the paper): it
// merges the LIS~ stream (the IDs remaining in `id` order, skipping REM
// members) with the sorted REMID stream into finalKey/finalID.
//
// Membership in REMID is tracked with a flag array indexed by record ID
// (the paper's REMIDset), costing Rem~ writes to build and one read per
// probe. The merge re-reads precise keys through Key0 instead of
// materializing an intermediate key array — the paper's explicit
// write-limiting choice ("it deserves replacing a PCM write with a PCM
// read") — and issues exactly 2n precise data writes for the output
// arrays.
func mergeRefine(key0, id, remID mem.Words, remCount int, precise mem.Space, finalKey, finalID mem.Words) {
	n := id.Len()
	inREM := precise.Alloc(maxInt(n, 1))
	for i := 0; i < remCount; i++ {
		inREM.Set(int(remID.Get(i)), 1)
	}

	lisPtr, remPtr, out := 0, 0, 0
	for lisPtr < n {
		// Advance to the next LIS~ member (Listing 2 line 21).
		for lisPtr < n && inREM.Get(int(id.Get(lisPtr))) != 0 {
			lisPtr++
		}
		if lisPtr >= n {
			break
		}
		lisID := id.Get(lisPtr)
		lisKey := key0.Get(int(lisID))
		if remPtr < remCount {
			remIDv := remID.Get(remPtr)
			if remKey := key0.Get(int(remIDv)); remKey < lisKey {
				finalID.Set(out, remIDv)
				finalKey.Set(out, remKey)
				remPtr++
				out++
				continue
			}
		}
		finalID.Set(out, lisID)
		finalKey.Set(out, lisKey)
		lisPtr++
		out++
	}
	// Drain the REM stream (Listing 2 lines 34–37).
	for remPtr < remCount {
		remIDv := remID.Get(remPtr)
		finalID.Set(out, remIDv)
		finalKey.Set(out, key0.Get(int(remIDv)))
		remPtr++
		out++
	}
}
