package core

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

// mergeParts replays refine step 3 on the host: a 2-way merge of the LIS~
// and REM sequences must reconstruct the precise sort.
func mergeParts(p Parts) (keys, ids []uint32) {
	n := len(p.LisKeys) + len(p.RemKeys)
	keys = make([]uint32, 0, n)
	ids = make([]uint32, 0, n)
	i, j := 0, 0
	for i < len(p.LisKeys) || j < len(p.RemKeys) {
		if j >= len(p.RemKeys) || (i < len(p.LisKeys) && p.LisKeys[i] <= p.RemKeys[j]) {
			keys = append(keys, p.LisKeys[i])
			ids = append(ids, p.LisIDs[i])
			i++
		} else {
			keys = append(keys, p.RemKeys[j])
			ids = append(ids, p.RemIDs[j])
			j++
		}
	}
	return keys, ids
}

func TestRunPartsMergeReconstructsPreciseSort(t *testing.T) {
	keys := dataset.Uniform(5000, 7)
	for _, alg := range sorts.Standard(3, 6) {
		parts, err := RunParts(keys, Config{Algorithm: alg, T: 0.055, Seed: 21})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !parts.Report.Sorted {
			t.Fatalf("%s: parts not individually sorted", alg.Name())
		}
		if got := len(parts.RemKeys); got != parts.Report.RemTilde {
			t.Fatalf("%s: RemKeys length %d != RemTilde %d", alg.Name(), got, parts.Report.RemTilde)
		}
		merged, ids := mergeParts(parts)
		checkResult(t, keys, Result{Report: parts.Report, Keys: merged, IDs: ids})
	}
}

func TestRunPartsMatchesRunFrontHalf(t *testing.T) {
	// The shared pipeline contract: with identical config, RunParts and
	// Run must agree on everything up to refine step 3 — same Rem~, same
	// per-stage accounting, and an empty RefineMerge breakdown for parts.
	keys := dataset.Uniform(8000, 11)
	cfg := Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.07, Seed: 5, SkipBaseline: true}
	res, err := Run(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := RunParts(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, rr := parts.Report, res.Report
	if pr.RemTilde != rr.RemTilde {
		t.Fatalf("RemTilde %d != Run's %d", pr.RemTilde, rr.RemTilde)
	}
	for _, st := range []struct {
		name  string
		p, r  StageBreakdown
	}{
		{"Prep", pr.Prep, rr.Prep},
		{"ApproxSort", pr.ApproxSort, rr.ApproxSort},
		{"RefineFind", pr.RefineFind, rr.RefineFind},
		{"RefineSort", pr.RefineSort, rr.RefineSort},
	} {
		if st.p != st.r {
			t.Fatalf("%s breakdown diverged: %+v vs %+v", st.name, st.p, st.r)
		}
	}
	if pr.RefineMerge.Writes() != 0 || pr.RefineMerge.Approx.Reads != 0 || pr.RefineMerge.Precise.Reads != 0 {
		t.Fatalf("parts RefineMerge breakdown not empty: %+v", pr.RefineMerge)
	}
	// The deferred merge saves exactly refine step 3's traffic.
	if saved := rr.RefineMerge.Writes(); saved != 2*len(keys)+rr.RemTilde {
		t.Fatalf("Run's RefineMerge writes = %d, want 2n+Rem~ = %d", saved, 2*len(keys)+rr.RemTilde)
	}
}

func TestRunPartsDeterministic(t *testing.T) {
	keys := dataset.Uniform(4000, 3)
	cfg := Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 17}
	a, err := RunParts(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParts(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.LisKeys {
		if a.LisKeys[i] != b.LisKeys[i] || a.LisIDs[i] != b.LisIDs[i] {
			t.Fatalf("LIS diverged at %d between identical runs", i)
		}
	}
	for i := range a.RemKeys {
		if a.RemKeys[i] != b.RemKeys[i] || a.RemIDs[i] != b.RemIDs[i] {
			t.Fatalf("REM diverged at %d between identical runs", i)
		}
	}
}

func TestRunPartsEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		keys := dataset.Uniform(n, 9)
		parts, err := RunParts(keys, Config{Algorithm: sorts.LSD{Bits: 8}, T: 0.055, Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		merged, _ := mergeParts(parts)
		want := sortedCopy(keys)
		if len(merged) != len(want) {
			t.Fatalf("n=%d: merged length %d", n, len(merged))
		}
		for i := range want {
			if merged[i] != want[i] {
				t.Fatalf("n=%d: merged[%d] = %d, want %d", n, i, merged[i], want[i])
			}
		}
	}
}

func TestRunPartsValidatesConfig(t *testing.T) {
	if _, err := RunParts([]uint32{1, 2}, Config{}); err == nil {
		t.Fatal("expected config validation error")
	}
	if _, err := RunParts([]uint32{1, 2}, Config{Algorithm: sorts.Quicksort{}, T: -1}); err == nil {
		t.Fatal("expected T range error")
	}
}

// TestRunPartsBaselineNeverRuns pins the SkipBaseline override: parts have
// no Equation 2 denominator, so the report's baseline must stay zero even
// when the caller forgets to skip it.
func TestRunPartsBaselineNeverRuns(t *testing.T) {
	keys := dataset.Uniform(1000, 2)
	parts, err := RunParts(keys, Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 4, SkipBaseline: false})
	if err != nil {
		t.Fatal(err)
	}
	if parts.Report.Baseline.Writes != 0 {
		t.Fatalf("baseline ran for a parts run: %+v", parts.Report.Baseline)
	}
}
