package core

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
)

// planAutoAt runs registry-driven selection against a registered backend
// point with a pinned pilot seed.
func planAutoAt(t *testing.T, pt memmodel.Point, keys []uint32) Plan {
	t.Helper()
	b := memmodel.MustGet(pt.Backend)
	npt, err := b.Normalize(pt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Planner{Config: Config{
		NewSpace: func(s uint64) Space { return b.NewApprox(npt, s) },
		Seed:     1729,
	}}.PlanAuto(keys, sorts.AutoCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPlanAutoDivergesAcrossBackends pins the ISSUE's acceptance point:
// backend-aware selection must pick different algorithms on pcm-mlc vs
// memristive for at least one (n, distribution). At n=65536 on a
// few-distinct input, an approximate quicksort leaves almost no
// remainder (only same-key runs to re-join), so pcm-mlc's Equation 4
// pilot at T=0.08 finds hybrid quicksort cheapest; memristive writes at
// a fixed precise-equivalent latency (measured p = 1), hybrid can never
// pay there, and the precise-baseline contest goes to the 8-bit
// OneSweep (8 writes/element vs log2(65536)/2 = 8 for quicksort — a
// tie, broken to the earlier registry name).
func TestPlanAutoDivergesAcrossBackends(t *testing.T) {
	for _, n := range []int{1 << 16, 80000} {
		keys := dataset.FewDistinct(n, 16, 77)

		mlc := planAutoAt(t, memmodel.MLC(0.08), keys)
		if mlc.Algorithm != "quicksort" || !mlc.UseHybrid {
			t.Errorf("pcm-mlc T=0.08 n=%d picked %q (hybrid=%v), want hybrid quicksort",
				n, mlc.Algorithm, mlc.UseHybrid)
		}

		mr := planAutoAt(t, memmodel.MustGet(memmodel.MemristiveName).DefaultPoint(), keys)
		if mr.Algorithm != "onesweep-lsd" || mr.UseHybrid {
			t.Errorf("memristive n=%d picked %q (hybrid=%v), want precise onesweep-lsd",
				n, mr.Algorithm, mr.UseHybrid)
		}
		// Fixed write latency means the pilot must measure p = 1 exactly.
		if mr.P != 1 {
			t.Errorf("memristive pilot p = %v, want exactly 1", mr.P)
		}
	}
}

// TestPlanAutoSizeCrossover pins the n-driven regime change on one
// backend: uniform keys route to quicksort below the α crossover
// (log2(n)/2 < 8 writes/element) and to the OneSweep radix above it.
func TestPlanAutoSizeCrossover(t *testing.T) {
	pt := memmodel.MLC(0.055)
	small := planAutoAt(t, pt, dataset.Uniform(1<<14, 77))
	if small.Algorithm != "quicksort" {
		t.Errorf("n=2^14 picked %q, want quicksort", small.Algorithm)
	}
	large := planAutoAt(t, pt, dataset.Uniform(1<<17, 77))
	if large.Algorithm != "onesweep-lsd" {
		t.Errorf("n=2^17 picked %q, want onesweep-lsd", large.Algorithm)
	}
}

// TestPlanAutoDeterministic pins that selection is a pure function of
// (keys, backend, seed): identical calls yield identical plans.
func TestPlanAutoDeterministic(t *testing.T) {
	keys := dataset.Uniform(30000, 5)
	a := planAutoAt(t, memmodel.MLC(0.105), keys)
	b := planAutoAt(t, memmodel.MLC(0.105), keys)
	if a != b {
		t.Errorf("plans diverged:\n %+v\n %+v", a, b)
	}
}

// TestPlanAutoRequiresCandidates pins the empty-roster error.
func TestPlanAutoRequiresCandidates(t *testing.T) {
	_, err := Planner{Config: Config{T: 0.055, Seed: 1}}.PlanAuto(dataset.Uniform(100, 1), nil)
	if err == nil {
		t.Fatal("PlanAuto accepted an empty candidate roster")
	}
}
