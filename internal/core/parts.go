package core

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

// pipeline is the state of one approx-refine run between the shared front
// half (warm-up through refine step 2) and the two back halves: the final
// in-memory merge (Run) or parts extraction for a deferred merge
// (RunParts). Splitting here is exactly the paper's structural seam — the
// refine stage's step 3 is itself a 2-way merge, so an external sort can
// fold it into its own k-way merge instead of paying for it twice.
type pipeline struct {
	cfg     Config
	precise *mem.PreciseSpace
	approx  Space
	report  *Report

	key0, id mem.Words
	remID    mem.Words
	remCount int
	env      sorts.Env

	prevA, prevP mem.Stats
}

// takeDelta snapshots both spaces and returns the traffic since the last
// snapshot — the per-stage accounting device of Figure 8.
func (p *pipeline) takeDelta() StageBreakdown {
	a, pr := p.approx.Stats(), p.precise.Stats()
	d := StageBreakdown{Approx: a.Sub(p.prevA), Precise: pr.Sub(p.prevP)}
	p.prevA, p.prevP = a, pr
	return d
}

// startPipeline executes warm-up, approx preparation, the approx stage,
// and refine steps 1–2 (find REM, sort REMID), charging each stage to the
// report. The caller finishes the run with either the in-memory refine
// merge or parts extraction. The operation sequence is identical to the
// historical Run body, so existing goldens replay bit-for-bit.
func startPipeline(keys []uint32, cfg Config) (*pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(keys)
	p := &pipeline{cfg: cfg, precise: mem.NewPreciseSpace(), approx: cfg.newSpace()}
	if cfg.ApproxSink != nil {
		s, ok := p.approx.(sinkable)
		if !ok {
			return nil, fmt.Errorf("core: approximate space %T cannot attach a sink", p.approx)
		}
		s.SetSink(cfg.ApproxSink)
	}
	p.report = &Report{
		Algorithm:           cfg.Algorithm.Name(),
		N:                   n,
		T:                   cfg.T,
		ExactLIS:            cfg.ExactLIS,
		PostApproxRem:       -1,
		PostApproxErrorRate: -1,
	}
	if cfg.NewSpace != nil {
		p.report.T = 0
	}

	// Warm-up: Key0 and ID materialize in precise memory. The paper's
	// accounting starts after warm-up (the input is assumed resident),
	// so the load is not charged.
	p.key0 = p.precise.Alloc(n)
	mem.Load(p.key0, keys)
	p.id = p.precise.Alloc(n)
	mem.Load(p.id, iota32(n))
	p.precise.ResetStats()
	// The trace sink, like the accounting, starts after warm-up: the
	// paper assumes the input is already resident.
	if cfg.PreciseSink != nil {
		p.precise.SetSink(cfg.PreciseSink)
	}

	// Approx preparation: copy the keys into approximate memory.
	keyA := p.approx.Alloc(n)
	mem.Copy(keyA, p.key0)
	p.report.Prep = p.takeDelta()

	// Approx stage: sort <Key~, ID> with keys in approximate memory. The
	// Env is the run context: its Scratch is shared by the approx-stage
	// sort and the refine stage's SortIDs, so both reuse one set of bulk
	// staging buffers.
	p.env = sorts.Env{KeySpace: p.approx, IDSpace: p.precise, R: rng.New(cfg.Seed ^ 0x2545f4914f6cdd1d), Scratch: &sorts.Scratch{}}
	cfg.Algorithm.Sort(sorts.Pair{Keys: keyA, IDs: p.id}, p.env)
	p.report.ApproxSort = p.takeDelta()

	if cfg.MeasureSortedness {
		measureSortedness(p.report, keys, keyA, p.id)
	}

	// Refine step 1: one-pass approximate-LIS scan (Listing 1), or the
	// exact-LIS ablation variant.
	p.remID = p.precise.Alloc(maxInt(n, 1))
	if cfg.ExactLIS {
		p.remCount = findREMExact(p.key0, p.id, p.remID, p.precise)
	} else {
		p.remCount = findREM(p.key0, p.id, p.remID)
	}
	p.report.RemTilde = p.remCount
	p.report.RefineFind = p.takeDelta()

	// Refine step 2: sort REMID by key value with the same algorithm,
	// writing only IDs (Listing discussion, Section 4.2 Step 2).
	cfg.Algorithm.SortIDs(p.remID, p.remCount, func(rid uint32) uint32 {
		return p.key0.Get(int(rid))
	}, p.env)
	p.report.RefineSort = p.takeDelta()
	return p, nil
}

// Parts is the outcome of a run whose refine merge was deferred: the two
// sorted sequences that refine step 3 would have merged, extracted with
// record identity intact. Concatenating a merge of LisKeys and RemKeys
// yields exactly the precise sort of the input.
type Parts struct {
	// Report carries the accounting of the four executed stages; the
	// RefineMerge breakdown is zero by construction, and Sorted reports
	// whether both parts are individually non-decreasing.
	Report *Report
	// LisKeys/LisIDs is the kept LIS~ subsequence in post-approx order
	// (non-decreasing keys by the find-step invariant).
	LisKeys, LisIDs []uint32
	// RemKeys/RemIDs is the sorted remainder (refine step 2's output).
	RemKeys, RemIDs []uint32
}

// RunParts executes the approx-refine pipeline but stops before refine
// step 3, returning the sorted LIS~ and REM sequences instead of merging
// them. External sorting uses it as the refine-at-merge run formation: the
// 2n + Rem~ precise writes of the in-memory merge are deferred into the
// k-way run merge that has to stream every record anyway, so they are paid
// once, not twice (DESIGN.md §14). The baseline is never run (parts have
// no Equation 2 denominator); MeasureSortedness behaves as in Run.
func RunParts(keys []uint32, cfg Config) (Parts, error) {
	cfg.SkipBaseline = true
	p, err := startPipeline(keys, cfg)
	if err != nil {
		return Parts{}, err
	}
	n := len(keys)
	r := p.report

	// Extraction is instrumentation, not simulated traffic: like Run's
	// PeekAll result extraction, it must not perturb the accounting.
	idsRaw := mem.PeekAll(p.id)                 //nolint:memescape // result extraction after the run; charging these reads would perturb the parts accounting
	key0Raw := mem.PeekAll(p.key0)              //nolint:memescape // result extraction after the run; charging these reads would perturb the parts accounting
	remRaw := mem.PeekAll(p.remID)[:p.remCount] //nolint:memescape // result extraction after the run; charging these reads would perturb the parts accounting

	inREM := make([]bool, n)
	for _, rid := range remRaw {
		inREM[rid] = true
	}
	parts := Parts{
		Report:  r,
		LisKeys: make([]uint32, 0, n-p.remCount),
		LisIDs:  make([]uint32, 0, n-p.remCount),
		RemKeys: make([]uint32, p.remCount),
		RemIDs:  make([]uint32, p.remCount),
	}
	for _, rid := range idsRaw {
		if inREM[rid] {
			continue
		}
		parts.LisIDs = append(parts.LisIDs, rid)
		parts.LisKeys = append(parts.LisKeys, key0Raw[rid])
	}
	for i, rid := range remRaw {
		parts.RemIDs[i] = rid
		parts.RemKeys[i] = key0Raw[rid]
	}
	r.Sorted = sortedness.IsSorted(parts.LisKeys) && sortedness.IsSorted(parts.RemKeys)
	return parts, nil
}
