package core_test

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/sorts"
)

// The minimal end-to-end use: sort keys with the approx-refine mechanism
// and read the precision guarantee off the report.
func ExampleRun() {
	keys := []uint32{168, 528, 1, 96, 33, 35, 928, 6} // the paper's Figure 8 input

	res, err := core.Run(keys, core.Config{
		Algorithm: sorts.Quicksort{},
		T:         0.055,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("keys:", res.Keys)
	fmt.Println("ids: ", res.IDs)
	fmt.Println("sorted:", res.Report.Sorted)
	// Output:
	// keys: [1 6 33 35 96 168 528 928]
	// ids:  [2 7 4 5 3 0 1 6]
	// sorted: true
}

// The Section 4.3 cost model predicts when the hybrid execution wins.
func ExampleCostModel() {
	m := core.CostModel{P: 0.67, Alpha: core.AlphaRadix(3)}
	fmt.Printf("WR(16M, Rem~=2%%) = %.3f\n", m.WriteReduction(16_000_000, 320_000))
	fmt.Println("use hybrid:", m.UseHybrid(16_000_000, 320_000))
	// Output:
	// WR(16M, Rem~=2%) = 0.093
	// use hybrid: true
}
