package core

import (
	"encoding/binary"
	"testing"

	"approxsort/internal/sorts"
)

// FuzzRefinePrecision feeds arbitrary byte strings through the whole
// approx-refine pipeline at an aggressive precision and asserts the
// precision contract: the output is always the exact sorted multiset of
// the input with a valid ID permutation. Run `go test -fuzz
// FuzzRefinePrecision ./internal/core` for an open-ended session; the
// seed corpus runs in every ordinary `go test`.
func FuzzRefinePrecision(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4}, uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, uint8(2))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, algPick uint8) {
		n := len(data) / 4
		if n > 2000 {
			n = 2000
		}
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(data[i*4:])
		}
		var alg sorts.Algorithm
		switch algPick % 4 {
		case 0:
			alg = sorts.Quicksort{}
		case 1:
			alg = sorts.Mergesort{}
		case 2:
			alg = sorts.LSD{Bits: 5}
		default:
			alg = sorts.MSD{Bits: 4}
		}
		res, err := Run(keys, Config{
			Algorithm:    alg,
			T:            0.1,
			Seed:         uint64(algPick) + uint64(n),
			SkipBaseline: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Sorted {
			t.Fatal("report claims unsorted output")
		}
		seen := make([]bool, n)
		prev := uint32(0)
		for i, k := range res.Keys {
			if i > 0 && k < prev {
				t.Fatalf("output unsorted at %d", i)
			}
			prev = k
			id := res.IDs[i]
			if int(id) >= n || seen[id] {
				t.Fatalf("ID permutation broken at %d", i)
			}
			seen[id] = true
			if keys[id] != k {
				t.Fatalf("key detached from record at %d", i)
			}
		}
	})
}
