// Package core implements the paper's primary contribution: the
// approx-refine execution mechanism for precise sorting on a hybrid
// precise/approximate memory system (Sections 4 and 5).
//
// The mechanism runs in five stages (Figure 8):
//
//  1. Warm-up — the input <Key, ID> pairs live in precise memory (arrays
//     Key0 and ID).
//  2. Approx preparation — Key0 is copied into approximate memory; the
//     copy itself may already corrupt keys.
//  3. Approx stage — an ordinary sorting algorithm sorts the approximate
//     key array together with the precise ID array. Cheap approximate
//     writes make this fast; corruption makes the result only *nearly*
//     sorted.
//  4. Refine preparation — bookkeeping only: the nearly sorted key view is
//     reconstructed on demand as Key0[ID[i]], so no data moves.
//  5. Refine stage — three write-limited steps turn the nearly sorted
//     order into a fully sorted precise output: (a) a one-pass O(n)
//     heuristic extracts an approximate longest increasing subsequence and
//     collects the leftover record IDs (REMID); (b) REMID is sorted with
//     the approx-stage algorithm, writing only IDs; (c) the two sorted
//     sequences merge into finalKey/finalID with 2n+Rem precise writes.
//
// Run executes the whole pipeline with per-stage accounting and an
// optional precise-only baseline, from which it derives the paper's write
// reduction (Equation 2). The analytical cost model of Section 4.3
// (Equation 4) is implemented in costmodel.go.
package core

import (
	"errors"
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

// Space is the approximate-memory contract Run needs: the mem.Space
// allocation/accounting interface. mem.ApproxSpace satisfies it for the
// MLC PCM model, spintronic.Space for the Appendix A model.
type Space interface {
	mem.Space
}

// Config selects the algorithm and the approximate-memory model for a run.
type Config struct {
	// Algorithm is the sorting algorithm used in the approx stage and
	// (per Section 4.2, Step 2) to sort REMID in the refine stage.
	Algorithm sorts.Algorithm

	// T configures a table-driven MLC PCM model at this target
	// half-width when NewSpace is nil.
	T float64

	// NewSpace, when non-nil, overrides T and supplies the approximate
	// space (e.g. the spintronic model of Appendix A). It is called once
	// per run with a seed derived from Config.Seed.
	NewSpace func(seed uint64) Space

	// Seed makes the run reproducible. Both the approximate-memory
	// noise and quicksort's pivots derive from it.
	Seed uint64

	// SkipBaseline disables the precise-only reference run; the report's
	// reduction metrics are then unavailable (NaN-free: they return 0
	// and Baseline stays zero).
	SkipBaseline bool

	// MeasureSortedness enables post-approx-stage measurement of the
	// exact Rem ratio and error rate (Figures 4–7 quantities). The
	// measurement itself is uncharged (it uses Peek) but costs host CPU
	// time, so it is opt-in.
	MeasureSortedness bool

	// ExactLIS replaces the refine stage's O(n)/Rem~-write heuristic
	// (Listing 1) with an exact longest-non-decreasing-subsequence
	// computation. The remainder is minimal but the patience
	// bookkeeping costs Θ(n) extra precise writes — the trade-off the
	// paper's heuristic avoids. Intended for the ablation study.
	ExactLIS bool

	// PreciseSink and ApproxSink, when non-nil, are attached to the
	// run's spaces (which must support SetSink) so the access stream
	// can be traced or replayed through the cache + PCM pipeline. The
	// baseline run is never sinked; drive it separately when comparing
	// end-to-end access times.
	PreciseSink, ApproxSink mem.Sink
}

// sinkable is satisfied by spaces that can emit their access stream.
type sinkable interface{ SetSink(mem.Sink) }

func (c Config) validate() error {
	if c.Algorithm == nil {
		return errors.New("core: Config.Algorithm is required")
	}
	if c.NewSpace == nil && (c.T <= 0 || c.T > mlc.MaxT) {
		return fmt.Errorf("core: T = %v out of range (0, %v]", c.T, mlc.MaxT)
	}
	return nil
}

func (c Config) newSpace() Space {
	if c.NewSpace != nil {
		return c.NewSpace(c.Seed ^ 0x517cc1b727220a95)
	}
	return mem.NewApproxSpaceAt(c.T, c.Seed^0x517cc1b727220a95)
}

// StageBreakdown records the memory traffic one pipeline stage generated
// in each half of the hybrid system.
type StageBreakdown struct {
	Approx  mem.Stats
	Precise mem.Stats
}

// add accumulates o into b.
func (b *StageBreakdown) add(o StageBreakdown) {
	b.Approx.Add(o.Approx)
	b.Precise.Add(o.Precise)
}

// WriteNanos returns the stage's total memory write latency contribution.
func (b StageBreakdown) WriteNanos() float64 {
	return b.Approx.WriteNanos + b.Precise.WriteNanos
}

// WriteEnergy returns the stage's write energy in precise-write units.
func (b StageBreakdown) WriteEnergy() float64 {
	return b.Approx.WriteEnergy + b.Precise.WriteEnergy
}

// AccessNanos returns the stage's total device access time.
func (b StageBreakdown) AccessNanos() float64 {
	return b.Approx.AccessNanos() + b.Precise.AccessNanos()
}

// Writes returns the stage's total word-write count.
func (b StageBreakdown) Writes() int { return b.Approx.Writes + b.Precise.Writes }

// Report is the full accounting of one approx-refine run.
type Report struct {
	// Algorithm and N identify the run.
	Algorithm string
	N         int
	// T is the MLC target half-width, or 0 when a custom space was used.
	T float64

	// Per-stage breakdowns (Figure 8's stage names).
	Prep        StageBreakdown // approx preparation: Key0 → approximate memory
	ApproxSort  StageBreakdown // approx stage: sort on hybrid arrays
	RefineFind  StageBreakdown // refine step 1: find LIS / collect REMID
	RefineSort  StageBreakdown // refine step 2: sort REMID
	RefineMerge StageBreakdown // refine step 3: merge into finalKey/finalID

	// RemTilde is the size of REMID found by the heuristic (Rem~), or
	// the exact Rem when the run used the ExactLIS ablation.
	RemTilde int

	// ExactLIS records whether the refine stage ran the exact-LIS
	// ablation instead of the paper's heuristic. Verification needs it:
	// the find step's precise-write identity is Rem~ for the heuristic
	// but 2n+Rem for the patience bookkeeping (see internal/verify).
	ExactLIS bool

	// PostApproxRem and PostApproxErrorRate are the exact Rem of the
	// nearly sorted key view Key0[ID[i]] and the Figure 4(a) error rate
	// of the approximate key array. Only filled when
	// Config.MeasureSortedness is set; otherwise -1.
	PostApproxRem       int
	PostApproxErrorRate float64

	// Baseline is the aggregate traffic of the traditional precise-only
	// sort of the same input (zero when skipped).
	Baseline mem.Stats

	// Sorted confirms the final output passed the precision check.
	Sorted bool
}

// ApproxPhase returns the combined preparation + approx-stage breakdown —
// the "Approx" bar of Figure 11.
func (r *Report) ApproxPhase() StageBreakdown {
	var b StageBreakdown
	b.add(r.Prep)
	b.add(r.ApproxSort)
	return b
}

// RefinePhase returns the combined refine-stage breakdown — the "Refine"
// bar of Figure 11.
func (r *Report) RefinePhase() StageBreakdown {
	var b StageBreakdown
	b.add(r.RefineFind)
	b.add(r.RefineSort)
	b.add(r.RefineMerge)
	return b
}

// Total returns the whole hybrid run's breakdown.
func (r *Report) Total() StageBreakdown {
	b := r.ApproxPhase()
	b.add(r.RefinePhase())
	return b
}

// WriteReduction returns Equation 2: the fraction of total memory write
// latency saved versus the precise-only baseline. Zero when the baseline
// was skipped.
func (r *Report) WriteReduction() float64 {
	// A skipped baseline has zero writes; with any writes, WriteNanos is
	// a positive multiple of the per-write constant.
	if r.Baseline.Writes == 0 {
		return 0
	}
	return 1 - r.Total().WriteNanos()/r.Baseline.WriteNanos
}

// EnergySaving returns the write-energy analogue of Equation 2 used by the
// Appendix A study.
func (r *Report) EnergySaving() float64 {
	if r.Baseline.Writes == 0 {
		return 0
	}
	return 1 - r.Total().WriteEnergy()/r.Baseline.WriteEnergy
}

// AccessTimeReduction returns the reduction in total memory access time
// (reads + writes), the metric behind the abstract's "up to 11%".
func (r *Report) AccessTimeReduction() float64 {
	if r.Baseline.Reads == 0 && r.Baseline.Writes == 0 {
		return 0
	}
	return 1 - r.Total().AccessNanos()/r.Baseline.AccessNanos()
}

// RemTildeRatio returns Rem~/n.
func (r *Report) RemTildeRatio() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.RemTilde) / float64(r.N)
}

// String implements fmt.Stringer with a one-paragraph run summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"approx-refine %s n=%d T=%g: Rem~=%d (%.2f%%), hybrid writes %.3fms vs baseline %.3fms, WR=%.2f%%, sorted=%v",
		r.Algorithm, r.N, r.T, r.RemTilde, 100*r.RemTildeRatio(),
		r.Total().WriteNanos()/1e6, r.Baseline.WriteNanos/1e6,
		100*r.WriteReduction(), r.Sorted)
}

// Result bundles the report with the final precise output.
type Result struct {
	Report *Report
	// Keys is the fully sorted precise key sequence (finalKey).
	Keys []uint32
	// IDs is the corresponding record-ID permutation (finalID).
	IDs []uint32
}

// Run executes the approx-refine pipeline over the input keys and returns
// the precise sorted output with full accounting. The input slice is not
// modified. The front half (warm-up through refine step 2) lives in
// startPipeline (parts.go) and is shared with RunParts.
func Run(keys []uint32, cfg Config) (Result, error) {
	p, err := startPipeline(keys, cfg)
	if err != nil {
		return Result{}, err
	}
	n := len(keys)
	report := p.report

	// Refine step 3: merge LIS and REM into the final precise output
	// (Listing 2).
	finalKey := p.precise.Alloc(n)
	finalID := p.precise.Alloc(n)
	mergeRefine(p.key0, p.id, p.remID, p.remCount, p.precise, finalKey, finalID)
	report.RefineMerge = p.takeDelta()

	out := Result{
		Report: report,
		Keys:   mem.PeekAll(finalKey), //nolint:memescape // result extraction after the run; charging these reads would perturb Eq. 2
		IDs:    mem.PeekAll(finalID),  //nolint:memescape // result extraction after the run; charging these reads would perturb Eq. 2
	}
	report.Sorted = sortedness.IsSorted(out.Keys)

	if !cfg.SkipBaseline {
		report.Baseline = baseline(keys, cfg)
	}
	return out, nil
}

// measureSortedness fills the Figure 4/Table 3 quantities: the exact Rem
// of the nearly sorted precise key view Key0[ID[i]] and the error rate of
// the approximate array. Uses Peek, so charges nothing.
func measureSortedness(report *Report, original []uint32, keyA, id mem.Words) {
	n := len(original)
	view := make([]uint32, n)
	ids := make([]int, n)
	approxKeys := mem.PeekAll(keyA) //nolint:memescape // instrumentation documented above: Peek charges nothing
	idsRaw := mem.PeekAll(id)       //nolint:memescape // instrumentation documented above: Peek charges nothing
	for i := 0; i < n; i++ {
		ids[i] = int(idsRaw[i])
		view[i] = original[ids[i]]
	}
	report.PostApproxRem = sortedness.Rem(view)
	report.PostApproxErrorRate = sortedness.ErrorRate(approxKeys, ids, original)
}

// baseline runs the traditional sort — keys and IDs both in precise
// memory — and returns its traffic (2·αalg(n) writes in the cost model's
// terms).
func baseline(keys []uint32, cfg Config) mem.Stats {
	n := len(keys)
	space := mem.NewPreciseSpace()
	p := sorts.Pair{Keys: space.Alloc(n), IDs: space.Alloc(n)}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, iota32(n))
	space.ResetStats()
	env := sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15), Scratch: &sorts.Scratch{}}
	cfg.Algorithm.Sort(p, env)
	return space.Stats()
}

// iota32 returns [0, 1, ..., n-1] for bulk-loading identity ID arrays.
func iota32(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
