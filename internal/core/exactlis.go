package core

import (
	"sort"

	"approxsort/internal/mem"
)

// findREMExact is the exact alternative to findREM: it computes a true
// longest non-decreasing subsequence of the key view Key0[ID[i]] via
// patience sorting with predecessor links, and returns the complement as
// REMID. Rem is minimal by construction — never larger than findREM's
// Rem~ — but the bookkeeping costs Θ(n) intermediate precise writes (the
// predecessor and tail-index arrays) on top of the scan, which is exactly
// the overhead the paper's O(n)/Rem~-write heuristic exists to avoid
// (Section 4.2: "classical algorithms ... introduce at least 2n
// intermediate outputs"). Exposed for the DESIGN.md §7 ablation and for
// callers that want the smallest possible remainder sort.
func findREMExact(key0, id, remID mem.Words, precise mem.Space) int {
	n := id.Len()
	if n < 2 {
		return 0
	}
	// Patience state, charged to precise memory like any other refine
	// bookkeeping: parent[i] is the index (into the ID order) of the
	// element preceding i in the best subsequence ending at i; tailIdx[k]
	// is the index whose key currently ends the best length-(k+1)
	// subsequence.
	parent := precise.Alloc(n)
	tailIdx := precise.Alloc(n)
	// tailKeys mirrors the tail keys host-side to keep the binary search
	// from re-reading Key0 logarithmically per element; each value was
	// already read (and charged) once when its element was processed.
	tailKeys := make([]uint32, 0, 64)

	for i := 0; i < n; i++ {
		k := key0.Get(int(id.Get(i)))
		// First tail strictly greater than k (non-decreasing LIS).
		pos := sort.Search(len(tailKeys), func(j int) bool { return tailKeys[j] > k })
		if pos == len(tailKeys) {
			tailKeys = append(tailKeys, k)
		} else {
			tailKeys[pos] = k
		}
		tailIdx.Set(pos, uint32(i))
		if pos > 0 {
			parent.Set(i, tailIdx.Get(pos-1))
		} else {
			parent.Set(i, uint32(n)) // sentinel: no predecessor
		}
	}

	// Walk the predecessor chain to mark LIS membership.
	inLIS := make([]bool, n)
	cur := int(tailIdx.Get(len(tailKeys) - 1))
	for cur != n {
		inLIS[cur] = true
		cur = int(parent.Get(cur))
	}

	rem := 0
	for i := 0; i < n; i++ {
		if !inLIS[i] {
			remID.Set(rem, id.Get(i))
			rem++
		}
	}
	return rem
}
