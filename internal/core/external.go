package core

import (
	"errors"
	"fmt"
	"math"

	"approxsort/internal/sorts"
)

// This file extends the Equation 4 planner to out-of-core inputs with the
// (M, B, ω) asymmetric read/write cost model of Blelloch et al. ("Sorting
// with Asymmetric Read and Write Costs", PAPERS.md): M is the in-memory
// working set in records, B the I/O block size in records, and ω the
// approximate-vs-precise write cost ratio from the backend's
// ApproxWriteNanos device clock (memmodel.WriteCostRatio). The planner's
// verdict grows from "hybrid vs precise" to the full external geometry:
// run size, formation variant, merge fan-in and pass count — each chosen
// by predicted equivalent precise writes, not hardcoded defaults.

// ExtBlockDefault is the default I/O block size in records (32 KiB of
// uint32 keys), the granularity at which the merge stages output through
// simulated precise memory.
const ExtBlockDefault = 1 << 13

// ExtConfig parameterizes the out-of-core planner.
type ExtConfig struct {
	// N is the total number of records to sort (known from a dataset
	// spec, a Content-Length, or a caller-provided hint).
	N int64
	// MemBudget is M: the number of records the sorter may hold in
	// simulated memory at once (the extsort RunSize budget).
	MemBudget int
	// Block is B: records per I/O block (default ExtBlockDefault).
	Block int
	// MaxFanIn, when positive, caps the merge fan-in below M/B − 1
	// (e.g. an OS file-descriptor budget).
	MaxFanIn int
	// Omega is ω, the approximate write cost in precise-write units.
	// Non-positive means "use the pilot's measured p" — correct for
	// pcm-mlc where the device clock and the measured mean agree, and a
	// deliberate override point for backends where they do not.
	Omega float64
	// Replacement selects replacement-selection run formation, whose
	// expected run length is 2M on random input (snowplow argument);
	// false models load-sort-store chunk formation with runs of exactly M.
	Replacement bool
	// AllowRefineAtMerge lets the planner consider deferring each run's
	// refine step 3 into the external merge (core.RunParts): formation
	// saves 2L+Rem~ precise writes per run, the merge fans in two cursors
	// per run instead of one.
	AllowRefineAtMerge bool
}

func (e ExtConfig) withDefaults() ExtConfig {
	if e.Block == 0 {
		e.Block = ExtBlockDefault
	}
	return e
}

func (e ExtConfig) validate() error {
	if e.N <= 0 {
		return errors.New("core: ExtConfig.N must be positive")
	}
	if e.MemBudget < 2 {
		return fmt.Errorf("core: ExtConfig.MemBudget = %d; need at least 2 records", e.MemBudget)
	}
	if e.Block < 1 {
		return fmt.Errorf("core: ExtConfig.Block = %d; need at least 1 record", e.Block)
	}
	return nil
}

// ExternalPlan is the out-of-core half of a Plan: the chosen external
// geometry plus the predicted write budget that selected it. All write
// figures are equivalent precise word-writes (approximate writes weighted
// by ω).
type ExternalPlan struct {
	// Echoed model inputs.
	N         int64
	MemBudget int
	Block     int
	Omega     float64

	// Replacement records the formation discipline the geometry assumes.
	Replacement bool
	// UseHybrid is the external verdict: approx-refine run formation
	// (true) vs precise-only formation (false).
	UseHybrid bool
	// RefineAtMerge is set when runs should spill as LIS~/REM part pairs
	// (core.RunParts) and pay refine step 3 inside the external merge.
	RefineAtMerge bool
	// ExtraPass is set when refine-at-merge pays merge work beyond the
	// plain one-cursor-per-run geometry: either a single parts run still
	// needs one folding pass (MergePasses bumped from 0 to 1), or the part
	// pairs exceed the fan-in and the fragment-collapse term is charged
	// (CollapseWrites > 0). False means the LIS~/REM folds ride inside
	// merge passes the geometry pays anyway.
	ExtraPass bool

	// RunSize is the chosen per-run memory allotment in records (≤ M).
	RunSize int
	// RunLength is the expected emitted run length: 2·RunSize under
	// replacement selection, RunSize under chunk formation (capped at N).
	RunLength int
	// Runs, FanIn and MergePasses describe the merge tree: Runs initial
	// sorted runs, merged FanIn-at-a-time over MergePasses full passes.
	Runs        int64
	FanIn       int
	MergePasses int

	// FormationWrites, MergeWrites and TotalWrites are the predicted
	// equivalent precise writes of the chosen variant; PreciseWrites is
	// the all-precise alternative at its own best geometry, so
	// TotalWrites/PreciseWrites is the predicted external write ratio.
	// CollapseWrites is the refine-at-merge fragment-collapse term
	// already included in MergeWrites: the predicted REM volume the
	// fragment-aware fan-in allocator pre-folds when part pairs exceed
	// the fan-in (0 otherwise).
	FormationWrites float64
	MergeWrites     float64
	CollapseWrites  float64
	TotalWrites     float64
	PreciseWrites   float64
}

// extVariant is one candidate execution strategy at a fixed run size.
type extVariant struct {
	hybrid        bool
	refineAtMerge bool
}

// extGeometry derives the merge tree for a candidate: runs runs exposing
// cursorsPerRun cursors each, merged with fan-in min(M/B − 1, MaxFanIn).
func extGeometry(n int64, runLength int, cursorsPerRun int, ext ExtConfig) (runs int64, fanIn, passes int) {
	runs = (n + int64(runLength) - 1) / int64(runLength)
	fanIn = ext.MemBudget/ext.Block - 1
	if ext.MaxFanIn > 0 && fanIn > ext.MaxFanIn {
		fanIn = ext.MaxFanIn
	}
	if fanIn < 2 {
		fanIn = 2
	}
	cursors := runs * int64(cursorsPerRun)
	for c := cursors; c > 1; c = (c + int64(fanIn) - 1) / int64(fanIn) {
		passes++
	}
	return runs, fanIn, passes
}

// PlanExternal plans an out-of-core sort of ext.N records from a pilot
// over sample (typically the first buffered chunk of the stream). The
// classic Plan fields carry the pilot measurements and the per-run Eq. 4
// verdict at the chosen run length; Plan.External carries the geometry.
func (pl Planner) PlanExternal(sample []uint32, ext ExtConfig) (Plan, error) {
	ext = ext.withDefaults()
	if err := ext.validate(); err != nil {
		return Plan{}, err
	}
	cfg := pl.Config
	cfg.SkipBaseline = true
	cfg.MeasureSortedness = false
	cfg.PreciseSink, cfg.ApproxSink = nil, nil
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	alpha, err := AlphaFor(cfg.Algorithm)
	if err != nil {
		return Plan{}, fmt.Errorf("core: planner needs an analytic α: %w", err)
	}

	m := pl.PilotSize
	if m <= 0 {
		m = 4096
	}
	if m > len(sample) {
		m = len(sample)
	}

	p, pilotRatio := 1.0, 1.0
	if m >= 2 {
		pilot := pilotSample(sample, m)
		res, err := Run(pilot, cfg)
		if err != nil {
			return Plan{}, err
		}
		p = measuredPilotP(res.Report)
		pilotRatio = res.Report.RemTildeRatio()
	}
	omega := ext.Omega
	if omega <= 0 {
		omega = p
	}

	// remAt extrapolates the pilot remainder ratio to a run of L records:
	// corruption accumulates once per key write, so the ratio scales with
	// the algorithm's writes per element, α(L)/L (as in Plan).
	remAt := func(L int) int {
		ratio := pilotRatio
		if m >= 2 {
			if am := alpha(m); am > 0 {
				ratio *= (alpha(L) / float64(L)) / (am / float64(m))
			}
		}
		if ratio > 1 {
			ratio = 1
		}
		return int(ratio * float64(L))
	}

	model := CostModel{P: omega, Alpha: alpha}
	// formationPerRecord predicts the formation cost of a run of L
	// records, per record, in equivalent precise writes. Using a
	// per-record rate keeps the final partial run from skewing the total.
	formationPerRecord := func(L int, v extVariant) float64 {
		fl := float64(L)
		switch {
		case !v.hybrid:
			return 2 * alpha(L) / fl
		case v.refineAtMerge:
			rem := remAt(L)
			// Defer refine step 3's 2L+Rem~ precise writes to the merge.
			return (model.HybridWrites(L, rem) - float64(2*L+rem)) / fl
		default:
			return model.HybridWrites(L, remAt(L)) / fl
		}
	}

	// Candidate run sizes: M, M/2, M/4, … — comparison sorts trade
	// cheaper (smaller-α-per-element) formation against extra merge
	// passes; radix always prefers the largest run. The floor keeps runs
	// at least a block wide and the candidate list short.
	minRun := ext.Block
	if minRun < 1024 {
		minRun = 1024
	}
	var runSizes []int
	for rs := ext.MemBudget; rs >= minRun; rs /= 2 {
		runSizes = append(runSizes, rs)
	}
	if len(runSizes) == 0 {
		runSizes = []int{ext.MemBudget}
	}

	variants := []extVariant{{hybrid: true}}
	if ext.AllowRefineAtMerge {
		variants = append(variants, extVariant{hybrid: true, refineAtMerge: true})
	}
	variants = append(variants, extVariant{hybrid: false})

	var best ExternalPlan
	bestTotal := math.Inf(1)
	bestPrecise := math.Inf(1)
	for _, rs := range runSizes {
		runLength := rs
		if ext.Replacement {
			runLength = 2 * rs
		}
		if int64(runLength) > ext.N {
			runLength = int(ext.N)
		}
		for _, v := range variants {
			runs, fanIn, passes := extGeometry(ext.N, runLength, 1, ext)
			extraPass := false
			if v.refineAtMerge && passes == 0 {
				// A single parts run still needs one pass to fold its
				// LIS~/REM pair.
				passes = 1
				extraPass = true
			}
			formation := formationPerRecord(runLength, v) * float64(ext.N)
			merge := float64(passes) * float64(ext.N)
			collapse := 0.0
			if v.refineAtMerge && 2*runs > int64(fanIn) {
				// Fragment-aware fan-in: once part pairs exceed the
				// fan-in, the merge pre-folds the small REM fragments
				// instead of paying a full extra pass; the predicted
				// collapse cost is the REM volume.
				collapse = float64(remAt(runLength)) / float64(runLength) * float64(ext.N)
				extraPass = true
			}
			total := formation + merge + collapse
			if !v.hybrid && total < bestPrecise {
				bestPrecise = total
			}
			if total < bestTotal {
				bestTotal = total
				best = ExternalPlan{
					N:               ext.N,
					MemBudget:       ext.MemBudget,
					Block:           ext.Block,
					Omega:           omega,
					Replacement:     ext.Replacement,
					UseHybrid:       v.hybrid,
					RefineAtMerge:   v.refineAtMerge,
					ExtraPass:       extraPass,
					RunSize:         rs,
					RunLength:       runLength,
					Runs:            runs,
					FanIn:           fanIn,
					MergePasses:     passes,
					FormationWrites: formation,
					MergeWrites:     merge + collapse,
					CollapseWrites:  collapse,
					TotalWrites:     total,
				}
			}
		}
	}
	best.PreciseWrites = bestPrecise

	// The classic fields report the pilot measurement and the per-run
	// Eq. 4 verdict at the chosen run length, with the same finite-value
	// clamp Plan applies for JSON-bound service responses.
	predictedRem := remAt(best.RunLength)
	wr := CostModel{P: p, Alpha: alpha}.WriteReduction(best.RunLength, predictedRem)
	if math.IsInf(wr, 0) || math.IsNaN(wr) {
		wr = -1
	}
	return Plan{
		UseHybrid:     best.UseHybrid,
		PredictedWR:   wr,
		P:             p,
		PilotRemRatio: pilotRatio,
		PredictedRem:  predictedRem,
		PilotSize:     m,
		External:      &best,
	}, nil
}

// PlanExternalAuto runs the external planner for every candidate algorithm
// and returns the plan with the lowest predicted External.TotalWrites —
// each candidate already chose its own best run size and formation
// variant, so the contest compares whole geometries, not just α. Ties
// break to the earlier candidate (sorted-name rosters are deterministic).
func (pl Planner) PlanExternalAuto(sample []uint32, ext ExtConfig, candidates []sorts.Candidate) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, errors.New("core: PlanExternalAuto needs at least one candidate algorithm")
	}
	var best Plan
	bestCost := math.Inf(1)
	for _, c := range candidates {
		cpl := pl
		cpl.Config.Algorithm = c.Alg
		plan, err := cpl.PlanExternal(sample, ext)
		if err != nil {
			return Plan{}, fmt.Errorf("core: auto candidate %q: %w", c.Name, err)
		}
		if plan.External.TotalWrites < bestCost {
			bestCost = plan.External.TotalWrites
			plan.Algorithm = c.Name
			best = plan
		}
	}
	return best, nil
}
