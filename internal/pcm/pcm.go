// Package pcm is the main-memory timing simulator of the paper's Table 1:
// a PCM device with 4 ranks of 8 banks, a 32-entry write queue and an
// 8-entry read queue per bank, and read-priority scheduling. It models the
// CPU-visible cost of the access stream that misses (reads) or writes
// through (stores) the cache hierarchy:
//
//   - Stores are posted: the CPU deposits them in the owning bank's write
//     queue and continues, stalling only when the queue is full.
//   - Loads block the CPU. A load must wait for the operation currently
//     occupying its bank (writes are not preempted mid-flight) but jumps
//     ahead of all *queued* writes — read-priority scheduling — pushing
//     those writes back.
//
// Banks are interleaved at page granularity (Table 1: 4 KB pages). Write
// service time is supplied per request so precise and approximate regions
// can share one device.
package pcm

import "fmt"

// Config describes the device geometry and timing.
type Config struct {
	// Ranks and BanksPerRank give the bank-level parallelism.
	Ranks, BanksPerRank int
	// WriteQueueDepth and ReadQueueDepth are per-bank queue capacities.
	WriteQueueDepth, ReadQueueDepth int
	// PageBytes is the bank-interleaving granularity.
	PageBytes int
	// ReadNanos is the array-read service time.
	ReadNanos float64
	// SeqWriteFactor scales the service time of a write that lands on
	// the same page its bank last accessed (a row-buffer hit). 1 (and
	// 0) disable the effect — the paper's base model assumes random and
	// sequential writes cost the same, and its Section 5 names this
	// refinement as future work. (Measured outcome: both the hybrid and
	// the baseline execution benefit, so the discount does not by itself
	// raise the hybrid advantage; see EXPERIMENTS.md.)
	SeqWriteFactor float64
}

// DefaultConfig returns the Table 1 parameters: 4 ranks × 8 banks, 4 KB
// pages, 32-entry write and 8-entry read queues, 50 ns reads.
func DefaultConfig() Config {
	return Config{
		Ranks:           4,
		BanksPerRank:    8,
		WriteQueueDepth: 32,
		ReadQueueDepth:  8,
		PageBytes:       4096,
		ReadNanos:       50,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Ranks < 1 || c.BanksPerRank < 1 {
		return fmt.Errorf("pcm: need at least one bank, got %d×%d", c.Ranks, c.BanksPerRank)
	}
	if c.WriteQueueDepth < 1 || c.ReadQueueDepth < 1 {
		return fmt.Errorf("pcm: queue depths must be positive (%d, %d)", c.WriteQueueDepth, c.ReadQueueDepth)
	}
	if c.PageBytes < 64 {
		return fmt.Errorf("pcm: PageBytes = %d too small", c.PageBytes)
	}
	if c.ReadNanos <= 0 {
		return fmt.Errorf("pcm: ReadNanos must be positive, got %v", c.ReadNanos)
	}
	if c.SeqWriteFactor < 0 || c.SeqWriteFactor > 1 {
		return fmt.Errorf("pcm: SeqWriteFactor = %v out of [0, 1]", c.SeqWriteFactor)
	}
	return nil
}

// write is one queued store: its service duration, scheduled by [start,
// start+dur).
type write struct {
	start float64
	dur   float64
}

// bank holds the per-bank schedule: pending writes (FIFO, already laid out
// back-to-back in time) and the completion time of the most recently
// finished/scheduled operation.
type bank struct {
	queue []write // scheduled, not yet known-complete stores
	// lastPage tracks the open row for the sequential-write discount;
	// ^0 means no row open yet.
	lastPage uint64
}

// Stats summarizes a simulation.
type Stats struct {
	// Reads and Writes count serviced requests.
	Reads, Writes uint64
	// ReadStallNanos is CPU time spent blocked on loads.
	ReadStallNanos float64
	// WriteStallNanos is CPU time spent blocked on full write queues.
	WriteStallNanos float64
	// WriteQueueFullEvents counts stores that found their queue full.
	WriteQueueFullEvents uint64
	// ReadsDelayedByWrite counts loads that arrived while a write
	// occupied their bank.
	ReadsDelayedByWrite uint64
	// SeqWriteHits counts stores that received the row-buffer discount
	// (zero unless Config.SeqWriteFactor is set).
	SeqWriteHits uint64
}

// Sim is the device simulator. It is driven by a monotonically
// non-decreasing CPU clock supplied by the caller. Not safe for
// concurrent use.
type Sim struct {
	cfg   Config
	banks []bank
	stats Stats
}

// New returns a simulator for cfg. It panics on invalid configuration
// (programming error).
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sim{cfg: cfg, banks: make([]bank, cfg.Ranks*cfg.BanksPerRank)}
	for i := range s.banks {
		s.banks[i].lastPage = ^uint64(0)
	}
	return s
}

// Bank returns the bank index servicing addr.
func (s *Sim) Bank(addr uint64) int {
	return int(addr / uint64(s.cfg.PageBytes) % uint64(len(s.banks)))
}

// prune drops queue entries that completed at or before now.
func (b *bank) prune(now float64) {
	i := 0
	for i < len(b.queue) && b.queue[i].start+b.queue[i].dur <= now {
		i++
	}
	if i > 0 {
		b.queue = b.queue[:copy(b.queue, b.queue[i:])]
	}
}

// Write posts a store of the given service duration at CPU time now and
// returns the time at which the CPU may continue (== now unless the write
// queue was full).
func (s *Sim) Write(addr uint64, now, durNanos float64) float64 {
	b := &s.banks[s.Bank(addr)]
	b.prune(now)
	page := addr / uint64(s.cfg.PageBytes)
	if f := s.cfg.SeqWriteFactor; f > 0 && f < 1 && page == b.lastPage {
		durNanos *= f
		s.stats.SeqWriteHits++
	}
	b.lastPage = page
	if len(b.queue) >= s.cfg.WriteQueueDepth {
		// Stall until the oldest queued store drains.
		s.stats.WriteQueueFullEvents++
		oldest := b.queue[0]
		release := oldest.start + oldest.dur
		s.stats.WriteStallNanos += release - now
		now = release
		b.prune(now)
	}
	start := now
	if n := len(b.queue); n > 0 {
		if tail := b.queue[n-1].start + b.queue[n-1].dur; tail > start {
			start = tail
		}
	}
	b.queue = append(b.queue, write{start: start, dur: durNanos})
	s.stats.Writes++
	return now
}

// Read services a blocking load at CPU time now and returns its completion
// time. Read priority: the load waits only for the store currently in
// service (if any), then executes; every store scheduled after it is
// pushed back by the read's service time.
func (s *Sim) Read(addr uint64, now float64) float64 {
	b := &s.banks[s.Bank(addr)]
	b.prune(now)
	// Reads open the row too, closing any sequential write streak.
	b.lastPage = addr / uint64(s.cfg.PageBytes)
	start := now
	pending := 0 // index of the first store that has not begun service
	if len(b.queue) > 0 && b.queue[0].start < now {
		// A store is mid-service; it cannot be preempted.
		s.stats.ReadsDelayedByWrite++
		start = b.queue[0].start + b.queue[0].dur
		pending = 1
	}
	done := start + s.cfg.ReadNanos
	// The read jumps ahead of every not-yet-started store: push them
	// back (uniformly, preserving their back-to-back layout) so the
	// first resumes when the read finishes.
	if pending < len(b.queue) && b.queue[pending].start < done {
		shift := done - b.queue[pending].start
		for j := pending; j < len(b.queue); j++ {
			b.queue[j].start += shift
		}
	}
	s.stats.Reads++
	s.stats.ReadStallNanos += done - now
	return done
}

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// QueueDepth returns the number of stores pending in addr's bank at time
// now — exposed for tests.
func (s *Sim) QueueDepth(addr uint64, now float64) int {
	b := &s.banks[s.Bank(addr)]
	b.prune(now)
	return len(b.queue)
}
