package pcm

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Ranks: 0, BanksPerRank: 8, WriteQueueDepth: 1, ReadQueueDepth: 1, PageBytes: 4096, ReadNanos: 50},
		{Ranks: 4, BanksPerRank: 8, WriteQueueDepth: 0, ReadQueueDepth: 1, PageBytes: 4096, ReadNanos: 50},
		{Ranks: 4, BanksPerRank: 8, WriteQueueDepth: 1, ReadQueueDepth: 1, PageBytes: 1, ReadNanos: 50},
		{Ranks: 4, BanksPerRank: 8, WriteQueueDepth: 1, ReadQueueDepth: 1, PageBytes: 4096, ReadNanos: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBankInterleaving(t *testing.T) {
	s := New(DefaultConfig())
	if s.Bank(0) == s.Bank(4096) {
		t.Error("adjacent pages map to the same bank")
	}
	if s.Bank(0) != s.Bank(4095) {
		t.Error("same page split across banks")
	}
	if s.Bank(0) != s.Bank(4096*32) {
		t.Error("interleave period wrong: 32 banks expected")
	}
}

func TestPostedWritesDoNotBlock(t *testing.T) {
	s := New(DefaultConfig())
	now := s.Write(0, 0, 1000)
	if now != 0 {
		t.Errorf("first write stalled CPU to %v", now)
	}
	if s.QueueDepth(0, 0) != 1 {
		t.Errorf("queue depth = %d", s.QueueDepth(0, 0))
	}
	// After the service time the queue drains.
	if s.QueueDepth(0, 1000) != 0 {
		t.Error("write did not drain")
	}
}

func TestWriteQueueFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteQueueDepth = 4
	s := New(cfg)
	now := 0.0
	for i := 0; i < 4; i++ {
		now = s.Write(0, now, 1000)
	}
	if now != 0 {
		t.Fatalf("queue filled early: now=%v", now)
	}
	// Fifth write must stall until the first drains at t=1000.
	now = s.Write(0, now, 1000)
	if now != 1000 {
		t.Errorf("full-queue write resumed at %v, want 1000", now)
	}
	st := s.Stats()
	if st.WriteQueueFullEvents != 1 {
		t.Errorf("WriteQueueFullEvents = %d", st.WriteQueueFullEvents)
	}
	if st.WriteStallNanos != 1000 {
		t.Errorf("WriteStallNanos = %v", st.WriteStallNanos)
	}
}

func TestReadLatencyIdleBank(t *testing.T) {
	s := New(DefaultConfig())
	done := s.Read(0, 100)
	if done != 150 {
		t.Errorf("idle-bank read completed at %v, want 150", done)
	}
}

func TestReadPriorityJumpsQueue(t *testing.T) {
	s := New(DefaultConfig())
	// Queue 10 writes of 1 µs each at t=0: they occupy the bank until
	// t=10000.
	for i := 0; i < 10; i++ {
		s.Write(0, 0, 1000)
	}
	// A read at t=100 waits only for the in-service write (ends t=1000),
	// not the whole queue.
	done := s.Read(0, 100)
	if done != 1050 {
		t.Errorf("read completed at %v, want 1050 (in-service write + 50ns)", done)
	}
	if s.Stats().ReadsDelayedByWrite != 1 {
		t.Errorf("ReadsDelayedByWrite = %d", s.Stats().ReadsDelayedByWrite)
	}
	// The queued writes were pushed back by the read: 9 writes remain,
	// resuming at 1050, so the queue drains at 1050+9000.
	if got := s.QueueDepth(0, 10000); got != 1 {
		t.Errorf("queue depth at t=10000 = %d, want 1 (pushed back)", got)
	}
	if got := s.QueueDepth(0, 10051); got != 0 {
		t.Errorf("queue depth at t=10051 = %d, want 0", got)
	}
}

func TestReadOnIdleBankIgnoresOtherBanks(t *testing.T) {
	s := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		s.Write(0, 0, 1000) // bank of page 0
	}
	done := s.Read(4096, 100) // different bank
	if done != 150 {
		t.Errorf("read on idle bank completed at %v, want 150", done)
	}
}

func TestBankParallelismSpreadsWrites(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteQueueDepth = 2
	s := New(cfg)
	// Striping writes across pages uses all 32 banks: 64 writes fit
	// without a stall.
	now := 0.0
	for i := 0; i < 64; i++ {
		now = s.Write(uint64(i)*4096, now, 1000)
	}
	if now != 0 {
		t.Errorf("striped writes stalled: now=%v", now)
	}
	// The same 64 writes on one bank (queue depth 2) must stall.
	s2 := New(cfg)
	now = 0.0
	for i := 0; i < 64; i++ {
		now = s2.Write(0, now, 1000)
	}
	if now == 0 {
		t.Error("single-bank burst did not stall")
	}
}

func TestSeqWriteDiscount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqWriteFactor = 0.5
	cfg.WriteQueueDepth = 2
	s := New(cfg)
	// First write to a page: full price; the next to the same page is
	// discounted. Observe through queue drain times.
	s.Write(0, 0, 1000)  // full 1000, ends 1000
	s.Write(64, 0, 1000) // same page: 500, ends 1500
	if got := s.Stats().SeqWriteHits; got != 1 {
		t.Fatalf("SeqWriteHits = %d, want 1", got)
	}
	if s.QueueDepth(0, 1499) != 1 {
		t.Error("discounted write finished early")
	}
	if s.QueueDepth(0, 1500) != 0 {
		t.Error("discounted write did not finish at 1500")
	}
	// A read to a different page closes the row.
	s.Read(4096*32, 2000) // same bank (page 32 maps to bank 0), other row
	s.Write(0, 3000, 1000)
	if got := s.Stats().SeqWriteHits; got != 1 {
		t.Errorf("row not closed by read: SeqWriteHits = %d", got)
	}
}

func TestSeqWriteFactorValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeqWriteFactor = 1.5
	if cfg.Validate() == nil {
		t.Error("SeqWriteFactor > 1 accepted")
	}
}

func TestTimeMonotonicity(t *testing.T) {
	s := New(DefaultConfig())
	now := 0.0
	for i := 0; i < 1000; i++ {
		var next float64
		if i%3 == 0 {
			next = s.Read(uint64(i)*64, now)
		} else {
			next = s.Write(uint64(i)*64, now, 500)
		}
		if next < now {
			t.Fatalf("time went backwards at op %d: %v -> %v", i, now, next)
		}
		now = next
	}
	st := s.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Error("stats not accumulated")
	}
	if math.IsNaN(st.ReadStallNanos) || st.ReadStallNanos < 0 {
		t.Errorf("ReadStallNanos = %v", st.ReadStallNanos)
	}
}
