package extsort

import (
	"fmt"
	"io"

	"approxsort/internal/core"
)

// MergeStats summarizes one MergeReaders invocation.
type MergeStats struct {
	// Records is the number of records delivered to the output.
	Records int64
	// Writes and WriteNanos are the charged precise staging traffic:
	// every record passes through the block-sized precise window exactly
	// once (a single merge pass), so Writes == Records exactly.
	Writes     int64
	WriteNanos float64
}

// MergeReaders k-way merges sorted little-endian uint32 key streams into
// w through the same winner tournament and block-staging accountant the
// on-disk merge uses, so a cross-machine merge (e.g. a cluster
// coordinator folding shard outputs) is charged identically to a local
// pass: one precise write per record, block-granular, on a single
// accountant spanning all inputs. counts[i] >= 0 pins stream i's expected
// record count (a mismatch is corruption, not a silent truncation); a nil
// counts slice — or a -1 entry — skips that check. block is the staging
// window in records (<= 0 selects core.ExtBlockDefault). A stream that
// ever yields a decreasing key fails the merge with a typed message
// naming the offending input.
func MergeReaders(rs []io.Reader, counts []int64, w io.Writer, block int) (MergeStats, error) {
	if len(counts) != 0 && len(counts) != len(rs) {
		return MergeStats{}, fmt.Errorf("extsort: MergeReaders got %d counts for %d readers", len(counts), len(rs))
	}
	if block <= 0 {
		block = core.ExtBlockDefault
	}
	acct := newMergeAccountant(block)
	if len(rs) == 0 {
		return MergeStats{}, nil
	}
	curs := make([]*cursor, len(rs))
	keys := make([]uint64, len(rs))
	for i, r := range rs {
		expect := int64(-1)
		if len(counts) > 0 {
			expect = counts[i]
		}
		c := newCursor(r, fmt.Sprintf("stream %d", i), expect, block)
		if err := c.fill(); err != nil {
			return MergeStats{}, err
		}
		curs[i] = c
		if c.done {
			keys[i] = mergeSentinel
		} else {
			keys[i] = uint64(c.buf[0])<<32 | uint64(i)
		}
	}
	t := newTournamentTree(keys)
	mw := newMergeWriter(w, acct, nil, nil)
	if err := runMergeLoop(t, curs, mw); err != nil {
		return MergeStats{}, err
	}
	if err := mw.finish(); err != nil {
		return MergeStats{}, err
	}
	writes, nanos := acct.totals()
	return MergeStats{Records: mw.written, Writes: writes, WriteNanos: nanos}, nil
}
