package extsort

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func encode(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[i*4:], k)
	}
	return out
}

func decode(t *testing.T, data []byte) []uint32 {
	t.Helper()
	if len(data)%4 != 0 {
		t.Fatalf("output not word aligned: %d bytes", len(data))
	}
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

func testConfig(t *testing.T, runSize, fanIn int) Config {
	return Config{
		Core:    core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.07, Seed: 9},
		RunSize: runSize,
		FanIn:   fanIn,
		TempDir: t.TempDir(),
	}
}

// chunkConfig pins the original load-sort-store discipline, whose run
// counts are exact.
func chunkConfig(t *testing.T, runSize, fanIn int) Config {
	cfg := testConfig(t, runSize, fanIn)
	cfg.Formation = FormationChunk
	return cfg
}

func runSort(t *testing.T, keys []uint32, cfg Config) ([]uint32, Stats) {
	t.Helper()
	var out bytes.Buffer
	stats, err := SortStream(bytes.NewReader(encode(keys)), &out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return decode(t, out.Bytes()), stats
}

func checkSorted(t *testing.T, keys, got []uint32) {
	t.Helper()
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output wrong at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestSortStreamSingleRun(t *testing.T) {
	keys := dataset.Uniform(3000, 1)
	got, stats := runSort(t, keys, testConfig(t, 10000, 4))
	checkSorted(t, keys, got)
	if stats.Runs != 1 || stats.MergePasses != 0 {
		t.Errorf("runs=%d passes=%d, want 1/0", stats.Runs, stats.MergePasses)
	}
	if stats.Records != 3000 {
		t.Errorf("Records = %d", stats.Records)
	}
}

func TestSortStreamMultiRunChunk(t *testing.T) {
	keys := dataset.Uniform(25000, 2)
	got, stats := runSort(t, keys, chunkConfig(t, 4000, 16))
	checkSorted(t, keys, got)
	if stats.Runs != 7 {
		t.Errorf("Runs = %d, want 7", stats.Runs)
	}
	if stats.MergePasses != 1 {
		t.Errorf("MergePasses = %d, want 1", stats.MergePasses)
	}
	if stats.HybridWriteNanos <= 0 {
		t.Error("no hybrid write accounting")
	}
}

func TestSortStreamMultiPassMergeChunk(t *testing.T) {
	keys := dataset.Uniform(20000, 3)
	got, stats := runSort(t, keys, chunkConfig(t, 1000, 2)) // 20 runs, fan-in 2
	checkSorted(t, keys, got)
	if stats.Runs != 20 {
		t.Errorf("Runs = %d, want 20", stats.Runs)
	}
	if stats.MergePasses < 4 {
		t.Errorf("MergePasses = %d, want >= 4 for 20 runs at fan-in 2", stats.MergePasses)
	}
}

func TestSortStreamEmpty(t *testing.T) {
	got, stats := runSort(t, nil, testConfig(t, 1000, 4))
	if len(got) != 0 || stats.Records != 0 || stats.Runs != 0 {
		t.Errorf("empty input: got %d records, stats %+v", len(got), stats)
	}
}

func TestSortStreamPartialFinalRunChunk(t *testing.T) {
	keys := dataset.Uniform(4500, 4) // 4 full runs of 1000 + one of 500
	got, stats := runSort(t, keys, chunkConfig(t, 1000, 8))
	checkSorted(t, keys, got)
	if stats.Runs != 5 {
		t.Errorf("Runs = %d, want 5", stats.Runs)
	}
}

func TestSortStreamDuplicatesAcrossRuns(t *testing.T) {
	keys := dataset.FewDistinct(8000, 3, 5)
	got, _ := runSort(t, keys, testConfig(t, 1000, 3))
	checkSorted(t, keys, got)
}

func TestSortStreamTruncatedInput(t *testing.T) {
	data := encode(dataset.Uniform(10, 6))
	var out bytes.Buffer
	_, err := SortStream(bytes.NewReader(data[:len(data)-2]), &out, testConfig(t, 100, 4))
	if err == nil {
		t.Fatal("truncated input accepted")
	}
	// Truncation beyond the first run must also error, not flush a
	// silently shortened tail run.
	big := encode(dataset.Uniform(900, 6))
	_, err = SortStream(bytes.NewReader(big[:len(big)-3]), &out, chunkConfig(t, 100, 4))
	if err == nil {
		t.Fatal("mid-stream truncation accepted")
	}
}

func TestSortStreamConfigValidation(t *testing.T) {
	var out bytes.Buffer
	cfg := testConfig(t, 100, 4)
	cfg.Core.Algorithm = nil
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("missing algorithm accepted")
	}
	cfg = testConfig(t, 100, 1)
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("FanIn=1 accepted")
	}
	cfg = testConfig(t, 100, 4)
	cfg.Formation = "bogus"
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("unknown formation accepted")
	}
	cfg = testConfig(t, 100, 4)
	cfg.Precise = true
	cfg.RefineAtMerge = true
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("Precise+RefineAtMerge accepted")
	}
	cfg = testConfig(t, 100, 4)
	cfg.AutoPlan = true
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("AutoPlan without TotalRecords accepted")
	}
}

func TestSortStreamHighCorruption(t *testing.T) {
	// Even at near-zero guard bands the external sort must be exact,
	// because each run is refined before spilling.
	cfg := testConfig(t, 2000, 4)
	cfg.Core.T = 0.12
	keys := dataset.Uniform(9000, 7)
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if stats.RemTildeTotal == 0 {
		t.Error("expected nonzero refine remainders at T=0.12")
	}
}

func TestSortStreamQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 3000 {
			raw = raw[:3000]
		}
		cfg := testConfig(t, 700, 2)
		var out bytes.Buffer
		_, err := SortStream(bytes.NewReader(encode(raw)), &out, cfg)
		if err != nil {
			return false
		}
		got := make([]uint32, len(raw))
		for i := range got {
			got[i] = binary.LittleEndian.Uint32(out.Bytes()[i*4:])
		}
		want := append([]uint32(nil), raw...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// --- Replacement selection ---

func TestReplacementRunLengthOnUniform(t *testing.T) {
	// The snowplow argument: on uniform-random input replacement
	// selection emits runs of expected length 2×RunSize. The acceptance
	// floor is 1.8×.
	keys := dataset.Uniform(120000, 11)
	got, stats := runSort(t, keys, testConfig(t, 5000, 8))
	checkSorted(t, keys, got)
	if stats.Formation != FormationReplacement {
		t.Fatalf("default formation = %q", stats.Formation)
	}
	if mean := stats.MeanRunLength(); mean < 1.8*5000 {
		t.Errorf("mean run length %.0f < 1.8×RunSize %d", mean, 5000)
	}
	if stats.Runs >= 120000/5000 {
		t.Errorf("Runs = %d, expected fewer than chunking's %d", stats.Runs, 120000/5000)
	}
}

func TestReplacementSortedInputSingleRun(t *testing.T) {
	// Already-sorted input never terminates a run: one run regardless of
	// size (the discipline's best case).
	keys := dataset.Sorted(30000)
	got, stats := runSort(t, keys, testConfig(t, 1000, 4))
	checkSorted(t, keys, got)
	if stats.Runs != 1 {
		t.Errorf("Runs = %d on sorted input, want 1", stats.Runs)
	}
}

func TestReplacementReverseInputRunSize(t *testing.T) {
	// Reverse-sorted input is the adversarial case: every record starts
	// a fresh slot in the next run, so runs collapse to exactly RunSize.
	keys := dataset.Reverse(8000)
	got, stats := runSort(t, keys, testConfig(t, 1000, 16))
	checkSorted(t, keys, got)
	if stats.Runs != 8 {
		t.Errorf("Runs = %d on reverse input, want 8", stats.Runs)
	}
}

func TestReplacementPerRunFold(t *testing.T) {
	keys := dataset.Uniform(40000, 13)
	_, stats := runSort(t, keys, testConfig(t, 2000, 4))
	if len(stats.PerRun) != stats.Runs {
		t.Fatalf("PerRun has %d entries for %d runs", len(stats.PerRun), stats.Runs)
	}
	var recs int64
	var rem int
	var nanos float64
	for _, ri := range stats.PerRun {
		recs += int64(ri.Records)
		rem += ri.RemTilde
		nanos += ri.WriteNanos
	}
	if recs != stats.Records {
		t.Errorf("per-run records %d != total %d", recs, stats.Records)
	}
	if rem != stats.RemTildeTotal {
		t.Errorf("per-run Rem~ %d != total %d", rem, stats.RemTildeTotal)
	}
	if nanos != stats.HybridWriteNanos {
		t.Errorf("per-run write nanos %g != total %g", nanos, stats.HybridWriteNanos)
	}
}

// --- Determinism ---

func TestSortStreamDeterministic(t *testing.T) {
	keys := dataset.Uniform(30000, 5)
	for _, cfg := range []Config{
		testConfig(t, 2000, 4),
		chunkConfig(t, 2000, 4),
	} {
		var out1, out2 bytes.Buffer
		s1, err := SortStream(bytes.NewReader(encode(keys)), &out1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := SortStream(bytes.NewReader(encode(keys)), &out2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("%s: re-running SortStream changed the output bytes", cfg.Formation)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: re-running SortStream changed Stats:\n%+v\n%+v", cfg.Formation, s1, s2)
		}
	}
}

// --- Refine-at-merge ---

func TestRefineAtMerge(t *testing.T) {
	keys := dataset.Uniform(25000, 17)
	cfg := testConfig(t, 3000, 4)
	cfg.RefineAtMerge = true
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if !stats.RefineAtMerge {
		t.Error("stats does not record refine-at-merge")
	}
	if stats.RemTildeTotal == 0 {
		t.Error("expected nonzero remainders")
	}
	// Even a single run needs a merge pass (its two part files).
	single := testConfig(t, 100000, 4)
	single.RefineAtMerge = true
	got, stats = runSort(t, keys, single)
	checkSorted(t, keys, got)
	if stats.Runs != 1 || stats.MergePasses != 1 {
		t.Errorf("single parts run: runs=%d passes=%d, want 1/1", stats.Runs, stats.MergePasses)
	}
}

func TestRefineAtMergeCheaperFormation(t *testing.T) {
	// Deferring refine step 3 must save formation write latency (the
	// 2n+Rem~ merge writes move into the external merge).
	keys := dataset.Uniform(20000, 19)
	base := testConfig(t, 4000, 4)
	_, plain := runSort(t, keys, base)
	ram := base
	ram.RefineAtMerge = true
	_, deferred := runSort(t, keys, ram)
	if deferred.HybridWriteNanos >= plain.HybridWriteNanos {
		t.Errorf("refine-at-merge formation %.0fns not cheaper than plain %.0fns",
			deferred.HybridWriteNanos, plain.HybridWriteNanos)
	}
}

func TestFragmentCollapseAvoidsExtraPass(t *testing.T) {
	// Refine-at-merge spills two part files per run, so R runs expose 2R
	// fragments; with R <= fanIn < 2R the old allocator paid a full extra
	// merge pass (MergeWrites = 2×Records). The fragment-aware allocator
	// pre-folds only the smallest fragments — mostly the tiny REM files —
	// so the merge finishes in one pass plus the collapsed volume.
	keys := dataset.Uniform(25000, 17)
	cfg := testConfig(t, 3000, 6) // ~5 replacement runs: 5 <= 6 < 10 parts
	cfg.RefineAtMerge = true
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if stats.Runs > cfg.FanIn || 2*stats.Runs <= cfg.FanIn {
		t.Fatalf("runs=%d does not exercise runs <= fanIn=%d < 2×runs", stats.Runs, cfg.FanIn)
	}
	if stats.FragmentCollapses == 0 || stats.CollapsedRecords == 0 {
		t.Fatalf("collapses=%d collapsed=%d, want both nonzero",
			stats.FragmentCollapses, stats.CollapsedRecords)
	}
	if stats.MergePasses != 1 {
		t.Errorf("MergePasses = %d, want 1 after fragment collapse", stats.MergePasses)
	}
	// Before/after: the old two-full-pass cost is 2×Records; the collapse
	// path charges passes×Records + CollapsedRecords, which must be a
	// strict improvement (REM fragments are far smaller than full runs).
	oldCost := 2 * stats.Records
	newCost := int64(stats.MergePasses)*stats.Records + stats.CollapsedRecords
	if stats.MergeWrites != newCost {
		t.Errorf("MergeWrites = %d, want passes×records + collapsed = %d",
			stats.MergeWrites, newCost)
	}
	if newCost >= oldCost {
		t.Errorf("collapse cost %d not cheaper than extra full pass %d", newCost, oldCost)
	}
}

func TestFragmentCollapseOnlyInRefineAtMerge(t *testing.T) {
	// Whole-run merges keep the exact passes×records identity: the
	// collapse path must never trigger for plain (non-parts) spills even
	// when runs exceed the fan-in.
	keys := dataset.Uniform(20000, 29)
	_, stats := runSort(t, keys, chunkConfig(t, 1000, 2)) // 20 runs, fan-in 2
	if stats.FragmentCollapses != 0 || stats.CollapsedRecords != 0 {
		t.Errorf("plain merge collapsed fragments: collapses=%d collapsed=%d",
			stats.FragmentCollapses, stats.CollapsedRecords)
	}
	if stats.MergeWrites != int64(stats.MergePasses)*stats.Records {
		t.Errorf("MergeWrites = %d, want %d", stats.MergeWrites,
			int64(stats.MergePasses)*stats.Records)
	}
}

// --- Precise formation ---

func TestPreciseFormation(t *testing.T) {
	keys := dataset.Uniform(15000, 23)
	cfg := testConfig(t, 2000, 4)
	cfg.Precise = true
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if stats.Hybrid {
		t.Error("stats claims hybrid for precise formation")
	}
	if stats.RemTildeTotal != 0 {
		t.Errorf("precise formation reported Rem~ = %d", stats.RemTildeTotal)
	}
	if stats.HybridWriteNanos <= 0 {
		t.Error("precise formation charged no writes")
	}
}

// --- Merge accounting ---

func TestMergeWritesOnePreciseWritePerRecordPerPass(t *testing.T) {
	keys := dataset.Uniform(20000, 29)
	for _, cfg := range []Config{
		chunkConfig(t, 1000, 2), // 20 runs, multi-pass
		chunkConfig(t, 4000, 16),
		testConfig(t, 3000, 4),
	} {
		_, stats := runSort(t, keys, cfg)
		want := int64(stats.MergePasses) * stats.Records
		if stats.MergeWrites != want {
			t.Errorf("%s runs=%d passes=%d: MergeWrites = %d, want passes×records = %d",
				cfg.Formation, stats.Runs, stats.MergePasses, stats.MergeWrites, want)
		}
		if stats.MergePasses > 0 && stats.MergeWriteNanos <= 0 {
			t.Error("merge writes charged no latency")
		}
	}
}

// --- Disk lifecycle ---

func TestDiskHighWaterBounded(t *testing.T) {
	// Inputs are unlinked as the merge exhausts them, so the live spill
	// footprint must stay well below the 2× the old
	// keep-until-final-RemoveAll lifecycle produced, even across a
	// multi-pass merge.
	keys := dataset.Uniform(60000, 31)
	cfg := chunkConfig(t, 2000, 2) // 30 runs, ~5 passes at fan-in 2
	_, stats := runSort(t, keys, cfg)
	inputBytes := int64(4 * len(keys))
	if stats.DiskHighWater >= 2*inputBytes {
		t.Errorf("DiskHighWater = %d, not below 2×input %d", stats.DiskHighWater, 2*inputBytes)
	}
	if stats.DiskHighWater > inputBytes+inputBytes/2 {
		t.Errorf("DiskHighWater = %d > 1.5×input %d: inputs not reclaimed during merge",
			stats.DiskHighWater, inputBytes)
	}
	if stats.DiskBytesWritten < inputBytes {
		t.Errorf("DiskBytesWritten = %d < input %d", stats.DiskBytesWritten, inputBytes)
	}
}

func TestDiskQuota(t *testing.T) {
	keys := dataset.Uniform(20000, 37)
	cfg := chunkConfig(t, 1000, 2)
	cfg.MaxDiskBytes = 4 * 20000 / 2 // half the input can never fit
	var out bytes.Buffer
	_, err := SortStream(bytes.NewReader(encode(keys)), &out, cfg)
	if !errors.Is(err, ErrDiskQuota) {
		t.Fatalf("err = %v, want ErrDiskQuota", err)
	}
	// A generous quota must not trip.
	cfg.MaxDiskBytes = 4 * 20000 * 2
	out.Reset()
	if _, err := SortStream(bytes.NewReader(encode(keys)), &out, cfg); err != nil {
		t.Fatalf("generous quota tripped: %v", err)
	}
}

// --- Failure paths ---

type failingWriter struct {
	after int
	n     int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.after {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestOutputWriteError(t *testing.T) {
	keys := dataset.Uniform(20000, 41)
	for _, after := range []int{0, 1000, 40000} {
		_, err := SortStream(bytes.NewReader(encode(keys)), &failingWriter{after: after}, testConfig(t, 3000, 4))
		if err == nil {
			t.Fatalf("write error after %d bytes not surfaced", after)
		}
	}
}

func TestUnsortedRunDetected(t *testing.T) {
	// A run file that yields a decreasing key is corruption; the merge
	// must refuse it rather than emit unsorted output.
	dir := t.TempDir()
	st := &state{cfg: Config{Block: 8}, dir: dir}
	bad, err := writeRunFile(dir+"/bad.run", []uint32{5, 3, 9}, &st.disk)
	if err != nil {
		t.Fatal(err)
	}
	good, err := writeRunFile(dir+"/good.run", []uint32{1, 2, 3}, &st.disk)
	if err != nil {
		t.Fatal(err)
	}
	st.merge = newMergeAccountant(8)
	var out bytes.Buffer
	if _, err := st.mergeGroup([]runFile{bad, good}, &out, false, 1); err == nil {
		t.Fatal("unsorted run merged without error")
	}
}

func TestRunRecordCountMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	st := &state{cfg: Config{Block: 8}, dir: dir}
	rf, err := writeRunFile(dir+"/short.run", []uint32{1, 2, 3}, &st.disk)
	if err != nil {
		t.Fatal(err)
	}
	rf.records = 5 // claim more than the file holds
	st.merge = newMergeAccountant(8)
	var out bytes.Buffer
	if _, err := st.mergeGroup([]runFile{rf}, &out, false, 1); err == nil {
		t.Fatal("record-count mismatch not detected")
	}
}

// --- Verifier hooks ---

type countingVerifier struct {
	hybrid, parts, precise int
	fail                   bool
}

func (v *countingVerifier) VerifyHybridRun(input []uint32, res core.Result) error {
	v.hybrid++
	if v.fail {
		return errors.New("forced failure")
	}
	return nil
}
func (v *countingVerifier) VerifyPartsRun(input []uint32, parts core.Parts) error {
	v.parts++
	if v.fail {
		return errors.New("forced failure")
	}
	return nil
}
func (v *countingVerifier) VerifyPreciseRun(input, output []uint32) error {
	v.precise++
	if v.fail {
		return errors.New("forced failure")
	}
	return nil
}

func TestVerifierSeesEveryRun(t *testing.T) {
	keys := dataset.Uniform(20000, 43)
	v := &countingVerifier{}
	cfg := testConfig(t, 2000, 4)
	cfg.Verifier = v
	_, stats := runSort(t, keys, cfg)
	if v.hybrid != stats.Runs || v.parts != 0 || v.precise != 0 {
		t.Errorf("verifier calls hybrid=%d parts=%d precise=%d for %d runs", v.hybrid, v.parts, v.precise, stats.Runs)
	}

	v = &countingVerifier{}
	cfg = testConfig(t, 2000, 4)
	cfg.RefineAtMerge = true
	cfg.Verifier = v
	_, stats = runSort(t, keys, cfg)
	if v.parts != stats.Runs || v.hybrid != 0 {
		t.Errorf("parts verifier calls = %d for %d runs", v.parts, stats.Runs)
	}

	v = &countingVerifier{}
	cfg = testConfig(t, 2000, 4)
	cfg.Precise = true
	cfg.Verifier = v
	_, stats = runSort(t, keys, cfg)
	if v.precise != stats.Runs {
		t.Errorf("precise verifier calls = %d for %d runs", v.precise, stats.Runs)
	}
}

func TestVerifierFailureAborts(t *testing.T) {
	keys := dataset.Uniform(5000, 47)
	cfg := testConfig(t, 1000, 4)
	cfg.Verifier = &countingVerifier{fail: true}
	var out bytes.Buffer
	if _, err := SortStream(bytes.NewReader(encode(keys)), &out, cfg); err == nil {
		t.Fatal("verifier failure did not abort the sort")
	}
}

// --- Progress ---

func TestProgressCallback(t *testing.T) {
	keys := dataset.Uniform(30000, 53)
	cfg := testConfig(t, 2000, 4)
	var phases []string
	var lastRecords int64
	cfg.OnProgress = func(p Progress) {
		phases = append(phases, p.Phase)
		lastRecords = p.Records
	}
	_, stats := runSort(t, keys, cfg)
	var sawForm, sawMerge bool
	for _, ph := range phases {
		switch ph {
		case "form":
			sawForm = true
		case "merge":
			sawMerge = true
		}
	}
	if !sawForm || !sawMerge {
		t.Errorf("progress phases %v missing form/merge", phases)
	}
	if lastRecords != stats.Records {
		t.Errorf("final progress records %d != %d", lastRecords, stats.Records)
	}
}

// --- AutoPlan ---

func TestAutoPlanChoosesGeometry(t *testing.T) {
	keys := dataset.Uniform(60000, 59)
	cfg := testConfig(t, 4000, 8)
	cfg.AutoPlan = true
	cfg.TotalRecords = int64(len(keys))
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if stats.Plan == nil {
		t.Fatal("AutoPlan left Stats.Plan nil")
	}
	e := stats.Plan
	if stats.RunSize != e.RunSize || stats.FanIn != e.FanIn ||
		stats.Hybrid != e.UseHybrid || stats.RefineAtMerge != e.RefineAtMerge {
		t.Errorf("executed geometry %+v diverges from plan %+v", stats, e)
	}
	if e.RunSize > 4000 {
		t.Errorf("planner RunSize %d exceeds budget", e.RunSize)
	}
	// At the MLC sweet spot the verdict should be hybrid.
	if !e.UseHybrid {
		t.Errorf("expected hybrid verdict at T=0.07, got %+v", e)
	}
}

func TestAutoPlanDeterministic(t *testing.T) {
	keys := dataset.Uniform(40000, 61)
	cfg := testConfig(t, 3000, 8)
	cfg.AutoPlan = true
	cfg.TotalRecords = int64(len(keys))
	var out1, out2 bytes.Buffer
	s1, err := SortStream(bytes.NewReader(encode(keys)), &out1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SortStream(bytes.NewReader(encode(keys)), &out2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("AutoPlan sort not deterministic across reruns")
	}
}

// --- Tournament tree ---

func TestTournamentTreeSelectsMinimum(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 13, 64} {
		keys := make([]uint64, k)
		for i := range keys {
			keys[i] = uint64((i*2654435761 + 7) % 1000)
		}
		tree := newTournamentTree(keys)
		// Repeatedly pop the winner and replace it with ever-larger
		// keys; the popped sequence must be non-decreasing and cover
		// every replacement exactly once.
		var last uint64
		next := uint64(1000)
		for i := 0; i < 5*k; i++ {
			w := tree.winner()
			got := tree.key[w]
			if i > 0 && got < last {
				t.Fatalf("k=%d: winner key %d after %d", k, got, last)
			}
			last = got
			tree.update(w, next)
			next++
		}
	}
}

func TestTournamentTreeTieBreaksByLeafIndex(t *testing.T) {
	keys := []uint64{7, 3, 3, 9}
	tree := newTournamentTree(keys)
	if w := tree.winner(); w != 1 {
		t.Fatalf("tie broke to leaf %d, want the lower index 1", w)
	}
}

func ExampleSortStream() {
	keys := []uint32{5, 3, 1, 4, 2}
	var out bytes.Buffer
	stats, err := SortStream(bytes.NewReader(encode(keys)), &out, Config{
		Core:    core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 1},
		RunSize: 4,
		FanIn:   2,
	})
	if err != nil {
		panic(err)
	}
	sorted := make([]uint32, stats.Records)
	for i := range sorted {
		sorted[i] = binary.LittleEndian.Uint32(out.Bytes()[i*4:])
	}
	fmt.Println(stats.Records, stats.Runs, sorted)
	// Output: 5 1 [1 2 3 4 5]
}
