package extsort

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"testing/quick"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func encode(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[i*4:], k)
	}
	return out
}

func decode(t *testing.T, data []byte) []uint32 {
	t.Helper()
	if len(data)%4 != 0 {
		t.Fatalf("output not word aligned: %d bytes", len(data))
	}
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

func testConfig(t *testing.T, runSize, fanIn int) Config {
	return Config{
		Core:    core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.07, Seed: 9},
		RunSize: runSize,
		FanIn:   fanIn,
		TempDir: t.TempDir(),
	}
}

func runSort(t *testing.T, keys []uint32, cfg Config) ([]uint32, Stats) {
	t.Helper()
	var out bytes.Buffer
	stats, err := SortStream(bytes.NewReader(encode(keys)), &out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return decode(t, out.Bytes()), stats
}

func checkSorted(t *testing.T, keys, got []uint32) {
	t.Helper()
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output wrong at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestSortStreamSingleRun(t *testing.T) {
	keys := dataset.Uniform(3000, 1)
	got, stats := runSort(t, keys, testConfig(t, 10000, 4))
	checkSorted(t, keys, got)
	if stats.Runs != 1 || stats.MergePasses != 0 {
		t.Errorf("runs=%d passes=%d, want 1/0", stats.Runs, stats.MergePasses)
	}
	if stats.Records != 3000 {
		t.Errorf("Records = %d", stats.Records)
	}
}

func TestSortStreamMultiRun(t *testing.T) {
	keys := dataset.Uniform(25000, 2)
	got, stats := runSort(t, keys, testConfig(t, 4000, 16))
	checkSorted(t, keys, got)
	if stats.Runs != 7 {
		t.Errorf("Runs = %d, want 7", stats.Runs)
	}
	if stats.MergePasses != 1 {
		t.Errorf("MergePasses = %d, want 1", stats.MergePasses)
	}
	if stats.HybridWriteNanos <= 0 {
		t.Error("no hybrid write accounting")
	}
}

func TestSortStreamMultiPassMerge(t *testing.T) {
	keys := dataset.Uniform(20000, 3)
	got, stats := runSort(t, keys, testConfig(t, 1000, 2)) // 20 runs, fan-in 2
	checkSorted(t, keys, got)
	if stats.Runs != 20 {
		t.Errorf("Runs = %d, want 20", stats.Runs)
	}
	if stats.MergePasses < 4 {
		t.Errorf("MergePasses = %d, want >= 4 for 20 runs at fan-in 2", stats.MergePasses)
	}
}

func TestSortStreamEmpty(t *testing.T) {
	got, stats := runSort(t, nil, testConfig(t, 1000, 4))
	if len(got) != 0 || stats.Records != 0 || stats.Runs != 0 {
		t.Errorf("empty input: got %d records, stats %+v", len(got), stats)
	}
}

func TestSortStreamPartialFinalRun(t *testing.T) {
	keys := dataset.Uniform(4500, 4) // 4 full runs of 1000 + one of 500
	got, stats := runSort(t, keys, testConfig(t, 1000, 8))
	checkSorted(t, keys, got)
	if stats.Runs != 5 {
		t.Errorf("Runs = %d, want 5", stats.Runs)
	}
}

func TestSortStreamDuplicatesAcrossRuns(t *testing.T) {
	keys := dataset.FewDistinct(8000, 3, 5)
	got, _ := runSort(t, keys, testConfig(t, 1000, 3))
	checkSorted(t, keys, got)
}

func TestSortStreamTruncatedInput(t *testing.T) {
	data := encode(dataset.Uniform(10, 6))
	var out bytes.Buffer
	_, err := SortStream(bytes.NewReader(data[:len(data)-2]), &out, testConfig(t, 100, 4))
	if err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestSortStreamConfigValidation(t *testing.T) {
	var out bytes.Buffer
	cfg := testConfig(t, 100, 4)
	cfg.Core.Algorithm = nil
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("missing algorithm accepted")
	}
	cfg = testConfig(t, 100, 1)
	if _, err := SortStream(bytes.NewReader(nil), &out, cfg); err == nil {
		t.Error("FanIn=1 accepted")
	}
}

func TestSortStreamHighCorruption(t *testing.T) {
	// Even at near-zero guard bands the external sort must be exact,
	// because each run is refined before spilling.
	cfg := testConfig(t, 2000, 4)
	cfg.Core.T = 0.12
	keys := dataset.Uniform(9000, 7)
	got, stats := runSort(t, keys, cfg)
	checkSorted(t, keys, got)
	if stats.RemTildeTotal == 0 {
		t.Error("expected nonzero refine remainders at T=0.12")
	}
}

func TestSortStreamQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 3000 {
			raw = raw[:3000]
		}
		cfg := testConfig(t, 700, 2)
		var out bytes.Buffer
		_, err := SortStream(bytes.NewReader(encode(raw)), &out, cfg)
		if err != nil {
			return false
		}
		got := make([]uint32, len(raw))
		for i := range got {
			got[i] = binary.LittleEndian.Uint32(out.Bytes()[i*4:])
		}
		want := append([]uint32(nil), raw...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
