package extsort

// tournamentTree is an implicit binary winner tree over k uint64-keyed
// leaves — the selection structure behind both replacement-selection run
// formation (keys ordered by (run, key)) and the k-way merge (keys
// ordered by (key, cursor)). Selecting the minimum is O(1); replacing the
// winner's key and restoring the invariant is one leaf-to-root replay,
// O(log k) with no allocation — the property that makes replacement
// selection and wide merges affordable per record.
//
// Layout: the k leaves occupy implicit positions k..2k-1; node[1..k-1]
// are internal and store the winning (minimum) leaf index of their
// subtree, so node[1] is the overall winner. The shape works for any
// k ≥ 1, powers of two or not. Ties prefer the lower leaf index (the
// left child), which is what makes merge output deterministic for equal
// keys across fan-in groupings.
type tournamentTree struct {
	k    int
	key  []uint64 // per-leaf key, owned by the tree, written via update
	node []int32  // node[1..k-1]: winner leaf index of the subtree
}

// newTournamentTree builds a tree over the given leaf keys. The slice is
// retained and owned by the tree.
func newTournamentTree(key []uint64) *tournamentTree {
	k := len(key)
	t := &tournamentTree{k: k, key: key, node: make([]int32, k)}
	for n := k - 1; n >= 1; n-- {
		t.node[n] = t.winnerOf(t.child(2*n), t.child(2*n+1))
	}
	return t
}

// child resolves tree position c to the winning leaf of that subtree:
// positions ≥ k are leaves themselves, positions < k delegate to the
// stored subtree winner.
func (t *tournamentTree) child(c int) int32 {
	if c >= t.k {
		return int32(c - t.k)
	}
	return t.node[c]
}

func (t *tournamentTree) winnerOf(a, b int32) int32 {
	if t.key[a] <= t.key[b] {
		return a
	}
	return b
}

// winner returns the leaf index holding the minimum key.
func (t *tournamentTree) winner() int {
	if t.k == 1 {
		return 0
	}
	return int(t.node[1])
}

// update sets leaf's key and replays the path to the root.
//
//memlint:hotpath
func (t *tournamentTree) update(leaf int, key uint64) {
	t.key[leaf] = key
	for n := (leaf + t.k) >> 1; n >= 1; n >>= 1 {
		a, b := t.child(2*n), t.child(2*n+1)
		if t.key[a] <= t.key[b] {
			t.node[n] = a
		} else {
			t.node[n] = b
		}
	}
}
