package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"approxsort/internal/mem"
)

// mergeSentinel marks an exhausted cursor in the tournament tree. Live
// composites are key<<32|leaf with leaf bounded by the fan-in, so the
// all-ones value is unreachable by real records.
const mergeSentinel = ^uint64(0)

// mergeAccountant charges the merge passes' output traffic to simulated
// precise memory: every merged record is staged through a block-sized
// window of precise words before it is encoded to disk, so each full
// pass costs exactly one precise write per record — the merge term of
// the (M, B, ω) cost model. One accountant spans all passes of a sort.
type mergeAccountant struct {
	space *mem.PreciseSpace
	stage mem.Words
	block int
}

func newMergeAccountant(block int) *mergeAccountant {
	a := &mergeAccountant{space: mem.NewPreciseSpace(), block: block}
	a.stage = a.space.Alloc(block)
	a.space.ResetStats()
	return a
}

// charge stages one output block (or final partial block) through the
// precise window.
func (a *mergeAccountant) charge(buf []uint32) {
	mem.SetSlice(a.stage, 0, buf)
}

func (a *mergeAccountant) totals() (writes int64, writeNanos float64) {
	st := a.space.Stats()
	return int64(st.Writes), st.WriteNanos
}

// cursor streams one sorted record source in decoded blocks, verifying
// monotonicity as it goes (a source that ever yields a decreasing key is
// corruption, reported instead of silently merged). File-backed cursors
// (openCursor) are closed and unlinked the moment they are exhausted —
// the earliest point the bytes are dead — which keeps the live spill
// footprint near n instead of 2n; reader-backed cursors (MergeReaders,
// e.g. a remote shard's downloaded output) carry no disk state.
type cursor struct {
	src     io.Reader
	label   string // for error messages: a run path or a stream name
	expect  int64  // expected record count; -1 skips the check
	closeFn func() // idempotent close of the underlying source
	doneFn  func() // clean-exhaust hook: unlink + disk credit for files
	raw     []byte
	buf     []uint32
	i, n    int
	prev    uint32
	started bool
	got     int64
	done    bool
}

// newCursor wraps a sorted little-endian uint32 stream. expect < 0 skips
// the end-of-stream record-count check.
func newCursor(src io.Reader, label string, expect int64, blockRecords int) *cursor {
	return &cursor{
		src:    src,
		label:  label,
		expect: expect,
		raw:    make([]byte, 4*blockRecords),
		buf:    make([]uint32, blockRecords),
	}
}

func openCursor(rf runFile, blockRecords int, disk *diskTracker) (*cursor, error) {
	f, err := os.Open(rf.path)
	if err != nil {
		return nil, err
	}
	c := newCursor(f, rf.path, rf.records, blockRecords)
	c.closeFn = func() { f.Close() }
	c.doneFn = func() { rf.remove(disk) }
	if err := c.fill(); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// fill decodes the next block. On end of stream it validates the record
// count, closes the source, runs the exhaust hook, and marks the cursor
// done.
func (c *cursor) fill() error {
	if c.done {
		return nil
	}
	nb, err := io.ReadFull(c.src, c.raw)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		if nb%4 != 0 {
			return fmt.Errorf("extsort: run %s truncated mid-record", c.label)
		}
		if nb == 0 {
			if c.expect >= 0 && c.got != c.expect {
				return fmt.Errorf("extsort: run %s has %d records, expected %d", c.label, c.got, c.expect)
			}
			c.done = true
			c.close()
			if c.doneFn != nil {
				c.doneFn()
			}
			return nil
		}
	} else if err != nil {
		return fmt.Errorf("extsort: reading run: %w", err)
	}
	c.n = nb / 4
	c.i = 0
	for i := 0; i < c.n; i++ {
		k := binary.LittleEndian.Uint32(c.raw[4*i:])
		if c.started && k < c.prev {
			return fmt.Errorf("extsort: run %s not sorted at record %d (%d after %d)", c.label, c.got+int64(i), k, c.prev)
		}
		c.prev = k
		c.started = true
		c.buf[i] = k
	}
	c.got += int64(c.n)
	return nil
}

func (c *cursor) close() {
	if c.closeFn != nil {
		c.closeFn()
		c.closeFn = nil
	}
}

// mergeWriter assembles merge output in block-sized batches: each full
// block is charged to the accountant (one precise write per record),
// encoded, and flushed to the underlying writer. Write errors are sticky
// in err so the hot loop stays branch-light.
type mergeWriter struct {
	bw      *bufio.Writer
	acct    *mergeAccountant
	disk    *diskTracker // nil when writing the final output
	block   []uint32
	enc     []byte
	fill    int
	written int64
	blocks  int64
	onBlock func(written int64) // progress hook, called outside the hot path
	err     error
}

func newMergeWriter(w io.Writer, acct *mergeAccountant, disk *diskTracker, onBlock func(int64)) *mergeWriter {
	return &mergeWriter{
		bw:      bufio.NewWriterSize(w, 1<<16),
		acct:    acct,
		disk:    disk,
		block:   make([]uint32, acct.block),
		enc:     make([]byte, 4*acct.block),
		onBlock: onBlock,
	}
}

// push appends one record to the current block.
//
//memlint:hotpath
func (w *mergeWriter) push(k uint32) {
	w.block[w.fill] = k
	w.fill++
	if w.fill == len(w.block) {
		w.flushBlock()
	}
}

func (w *mergeWriter) flushBlock() {
	if w.err != nil || w.fill == 0 {
		return
	}
	blk := w.block[:w.fill]
	w.acct.charge(blk)
	for i, k := range blk {
		binary.LittleEndian.PutUint32(w.enc[4*i:], k)
	}
	if w.disk != nil {
		if err := w.disk.add(int64(4 * w.fill)); err != nil {
			w.err = err
			return
		}
	}
	if _, err := w.bw.Write(w.enc[:4*w.fill]); err != nil {
		w.err = fmt.Errorf("extsort: writing output: %w", err)
		return
	}
	w.written += int64(w.fill)
	w.fill = 0
	w.blocks++
	if w.onBlock != nil && w.blocks%256 == 0 {
		w.onBlock(w.written)
	}
}

func (w *mergeWriter) finish() error {
	w.flushBlock()
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("extsort: writing output: %w", err)
	}
	return nil
}

// runMergeLoop drains all cursors through the tournament tree into the
// writer. One tree replay plus one block-buffer store per record; block
// refills and block flushes happen in the (unannotated) concrete helpers.
//
//memlint:hotpath
func runMergeLoop(t *tournamentTree, curs []*cursor, w *mergeWriter) error {
	for {
		leaf := t.winner()
		key := t.key[leaf]
		if key == mergeSentinel {
			return nil
		}
		w.push(uint32(key >> 32))
		if w.err != nil {
			return w.err
		}
		c := curs[leaf]
		c.i++
		if c.i == c.n {
			if err := c.fill(); err != nil {
				return err
			}
		}
		if c.done {
			t.update(leaf, mergeSentinel)
		} else {
			t.update(leaf, uint64(c.buf[c.i])<<32|uint64(leaf))
		}
	}
}

// mergeGroup merges a group of sorted files into out. Inputs are
// unlinked as their cursors exhaust. toDisk charges the output bytes to
// the disk tracker (intermediate pass); the final merge into the
// caller's writer does not.
func (st *state) mergeGroup(files []runFile, out io.Writer, toDisk bool, pass int) (int64, error) {
	curs := make([]*cursor, len(files))
	keys := make([]uint64, len(files))
	defer func() {
		for _, c := range curs {
			if c != nil {
				c.close()
			}
		}
	}()
	var want int64
	for i, rf := range files {
		c, err := openCursor(rf, st.cfg.Block, &st.disk)
		if err != nil {
			return 0, err
		}
		curs[i] = c
		want += rf.records
		if c.done {
			keys[i] = mergeSentinel
		} else {
			keys[i] = uint64(c.buf[0])<<32 | uint64(i)
		}
	}
	t := newTournamentTree(keys)
	var disk *diskTracker
	if toDisk {
		disk = &st.disk
	}
	mw := newMergeWriter(out, st.merge, disk, func(written int64) {
		st.progress("merge", pass, written)
	})
	if err := runMergeLoop(t, curs, mw); err != nil {
		return 0, err
	}
	if err := mw.finish(); err != nil {
		return 0, err
	}
	if mw.written != want {
		return 0, fmt.Errorf("extsort: merge lost records: wrote %d of %d", mw.written, want)
	}
	st.progress("merge", pass, mw.written)
	return mw.written, nil
}

func (st *state) mergeGroupToFile(files []runFile, path string, pass int) (runFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return runFile{}, err
	}
	n, err := st.mergeGroup(files, f, true, pass)
	if err != nil {
		f.Close()
		return runFile{}, err
	}
	if err := f.Close(); err != nil {
		return runFile{}, err
	}
	return runFile{path: path, bytes: 4 * n, records: n}, nil
}

// collapseFragments is the fragment-aware fan-in allocator for
// refine-at-merge: part pairs double the cursor count, but the REM
// fragments carry only Rem~ records each, so once 2·runs exceeds the
// fan-in it is far cheaper to pre-fold the smallest files together
// (cost ≈ the REM volume) than to pay a full extra level pass over all
// records. Each group merges the min(fanIn, len−fanIn+1) smallest files
// — the greedy optimal-merge-pattern choice — until the survivors fit a
// single final pass. Collapse traffic is charged through the same
// accountant as the passes and ledgered separately in
// Stats.CollapsedRecords so MergeWrites stays exactly reconcilable.
func (st *state) collapseFragments(files []runFile) ([]runFile, error) {
	group := 0
	for len(files) > st.fanIn {
		sort.SliceStable(files, func(i, j int) bool { return files[i].records < files[j].records })
		k := len(files) - st.fanIn + 1
		if k > st.fanIn {
			k = st.fanIn
		}
		path := filepath.Join(st.dir, fmt.Sprintf("collapse-%d.run", group))
		rf, err := st.mergeGroupToFile(files[:k], path, 0)
		if err != nil {
			return nil, err
		}
		st.stats.FragmentCollapses++
		st.stats.CollapsedRecords += rf.records
		files = append(files[k:], rf)
		group++
	}
	return files, nil
}

// mergeAll merges the level-0 files down to the output writer,
// FanIn-wide per group, one level per pass. Every pass streams all
// records, matching the cost model's passes×n merge writes; under
// refine-at-merge a fragment collapse first folds excess small part
// files so the level structure never pays a full pass for them.
func (st *state) mergeAll(files []runFile, w io.Writer) error {
	switch len(files) {
	case 0:
		return nil
	case 1:
		// A single ordinary run needs no merge: stream it out. (A
		// refine-at-merge run always has two part files.)
		st.stats.MergePasses = 0
		return copyOut(files[0], w, &st.disk)
	}
	if st.refineAtMerge && len(files) > st.fanIn {
		var err error
		if files, err = st.collapseFragments(files); err != nil {
			return err
		}
	}
	level := 0
	for len(files) > st.fanIn {
		next := make([]runFile, 0, (len(files)+st.fanIn-1)/st.fanIn)
		for lo := 0; lo < len(files); lo += st.fanIn {
			hi := lo + st.fanIn
			if hi > len(files) {
				hi = len(files)
			}
			path := filepath.Join(st.dir, fmt.Sprintf("merge-%d-%d.run", level, lo))
			rf, err := st.mergeGroupToFile(files[lo:hi], path, st.stats.MergePasses+1)
			if err != nil {
				return err
			}
			next = append(next, rf)
		}
		files = next
		level++
		st.stats.MergePasses++
	}
	st.stats.MergePasses++
	n, err := st.mergeGroup(files, w, false, st.stats.MergePasses)
	if err != nil {
		return err
	}
	if n != st.stats.Records {
		return fmt.Errorf("extsort: record count not conserved: %d in, %d out", st.stats.Records, n)
	}
	return nil
}
