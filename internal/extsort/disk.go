package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ErrDiskQuota is wrapped by errors returned when a sort would exceed
// Config.MaxDiskBytes of simultaneously-live spill data.
var ErrDiskQuota = fmt.Errorf("extsort: disk quota exceeded")

// diskTracker accounts the spill footprint of one external sort: bytes
// currently on disk, the high-water mark, and the cumulative bytes ever
// written. Every run-file write goes through add, every unlink through
// sub, so the high-water mark is exact at write granularity — the number
// the run-file-lifecycle tests pin (inputs must be unlinked as their
// merge consumes them, not at the end of the sort).
type diskTracker struct {
	quota   int64 // 0 = unlimited
	cur     int64
	high    int64
	written int64
}

func (d *diskTracker) add(n int64) error {
	d.cur += n
	d.written += n
	if d.cur > d.high {
		d.high = d.cur
	}
	if d.quota > 0 && d.cur > d.quota {
		return fmt.Errorf("%w: %d bytes live > quota %d", ErrDiskQuota, d.cur, d.quota)
	}
	return nil
}

func (d *diskTracker) sub(n int64) { d.cur -= n }

// runFile is one spilled sorted sequence: a level-0 run (or one part of a
// refine-at-merge run pair) or an intermediate merge output.
type runFile struct {
	path    string
	bytes   int64
	records int64
}

// remove unlinks the file and returns its bytes to the tracker.
func (f runFile) remove(disk *diskTracker) {
	os.Remove(f.path)
	disk.sub(f.bytes)
}

// writeRunFile spills keys as little-endian uint32 words, charging the
// tracker before the data lands so a quota breach aborts the sort instead
// of overfilling the volume.
func writeRunFile(path string, keys []uint32, disk *diskTracker) (runFile, error) {
	rf := runFile{path: path, bytes: 4 * int64(len(keys)), records: int64(len(keys))}
	if err := disk.add(rf.bytes); err != nil {
		return rf, err
	}
	f, err := os.Create(path)
	if err != nil {
		return rf, fmt.Errorf("extsort: creating run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var word [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(word[:], k)
		if _, err := bw.Write(word[:]); err != nil {
			f.Close()
			return rf, fmt.Errorf("extsort: writing run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return rf, fmt.Errorf("extsort: writing run: %w", err)
	}
	if err := f.Close(); err != nil {
		return rf, fmt.Errorf("extsort: closing run: %w", err)
	}
	return rf, nil
}

// copyOut streams a single run file to the output (the no-merge case) and
// unlinks it.
func copyOut(rf runFile, w io.Writer, disk *diskTracker) error {
	f, err := os.Open(rf.path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, bufio.NewReaderSize(f, 1<<16)); err != nil {
		f.Close()
		return fmt.Errorf("extsort: writing output: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf.remove(disk)
	return nil
}

// recordSource decodes the little-endian uint32 input stream in bulk
// block reads, with a pushback buffer so the AutoPlan pilot can consume a
// prefix and hand it back to run formation untouched.
type recordSource struct {
	r       io.Reader
	buf     []byte
	n, i    int // valid bytes and cursor into buf
	eof     bool
	pending []uint32 // pushed-back records, drained before the stream
	pi      int
	records int64 // total records handed out
}

func newRecordSource(r io.Reader) *recordSource {
	return &recordSource{r: r, buf: make([]byte, 1<<16)}
}

// next returns the next record; ok=false means clean end of stream. A
// stream whose byte length is not a multiple of 4 errors — silent
// truncation would drop records.
func (s *recordSource) next() (uint32, bool, error) {
	if s.pi < len(s.pending) {
		k := s.pending[s.pi]
		s.pi++
		s.records++
		return k, true, nil
	}
	if s.n-s.i < 4 {
		if err := s.fill(); err != nil {
			return 0, false, err
		}
		if s.n-s.i < 4 {
			if s.n != s.i {
				return 0, false, fmt.Errorf("extsort: input truncated mid-record (%d trailing bytes)", s.n-s.i)
			}
			return 0, false, nil
		}
	}
	k := binary.LittleEndian.Uint32(s.buf[s.i:])
	s.i += 4
	s.records++
	return k, true, nil
}

// pushBack returns records to the source; they are re-delivered (in
// order) before any further stream bytes, without recounting.
func (s *recordSource) pushBack(keys []uint32) {
	s.pending = keys
	s.pi = 0
	s.records -= int64(len(keys))
}

func (s *recordSource) fill() error {
	if s.eof {
		return nil
	}
	// Keep the 0–3 undecoded tail bytes.
	copy(s.buf, s.buf[s.i:s.n])
	s.n -= s.i
	s.i = 0
	for s.n < 4 {
		n, err := s.r.Read(s.buf[s.n:])
		s.n += n
		if err == io.EOF {
			s.eof = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("extsort: reading input: %w", err)
		}
	}
	return nil
}
