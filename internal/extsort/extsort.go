// Package extsort implements out-of-core external merge sort with
// approx-refine run formation — the integration path the paper sketches
// in Section 4.1: "If the data is initially in the hard disk, we need to
// adopt more advanced external memory sorting algorithms, for which the
// proposed approx-refine scheme can be used in their in-memory sorting
// steps."
//
// SortStream reads a stream of little-endian uint32 keys, forms sorted
// runs on the hybrid precise/approximate system (internal/core), spills
// them to temporary files, and k-way-merges them into the output with a
// tournament tree. Three axes are independently configurable and — under
// AutoPlan — chosen by the (M, B, ω) cost model (core.PlanExternal,
// DESIGN.md §14):
//
//   - Run formation: replacement selection (the default; a tournament
//     tree over RunSize resident records assigns each incoming record to
//     the earliest run that can still accept it, yielding runs of ~2×
//     RunSize expected length on random input — the snowplow argument)
//     or plain load-sort-store chunking (runs of exactly RunSize).
//   - Run sorting: the approx-refine pipeline per run (hybrid, the point
//     of the study), its refine-at-merge variant (core.RunParts: each
//     run spills as a sorted LIS~ part and a sorted REM part, and refine
//     step 3's 2n+Rem~ precise writes are paid inside the external merge
//     that has to stream every record anyway), or a precise-only sort
//     when the device clock offers no write asymmetry worth exploiting.
//   - Merge: groups of FanIn cursors per pass, every pass charged at one
//     precise write per record through a block-sized staging window in
//     simulated precise memory. Input files are unlinked the moment the
//     merge exhausts them, so the live spill footprint stays near the
//     input size instead of 2× (diskTracker pins the high-water mark).
//
// Runs are bit-exact sorted — the refine stage guarantees it — so the
// merge needs no special handling; a run file that ever yields a
// decreasing key is reported as corruption, not silently merged.
package extsort

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"approxsort/internal/core"
	"approxsort/internal/rng"
)

// Formation disciplines for Config.Formation.
const (
	// FormationReplacement is replacement selection: runs of ~2×RunSize
	// expected length on random input.
	FormationReplacement = "replacement"
	// FormationChunk is load-sort-store: runs of exactly RunSize.
	FormationChunk = "chunk"
)

// Verifier receives every formed run for independent checking before it
// is spilled. internal/verify.Auditor implements it; the indirection
// keeps this package free of an import cycle (verify imports extsort for
// the Stats reconciliation checks).
type Verifier interface {
	// VerifyHybridRun audits one approx-refine run (input vs core.Run's
	// result, including the per-stage accounting identities).
	VerifyHybridRun(input []uint32, res core.Result) error
	// VerifyPartsRun audits one refine-at-merge run (input vs the
	// LIS~/REM parts of core.RunParts).
	VerifyPartsRun(input []uint32, parts core.Parts) error
	// VerifyPreciseRun audits one precise-only run (input vs output).
	VerifyPreciseRun(input, output []uint32) error
}

// Progress is a point-in-time snapshot delivered to Config.Progress.
type Progress struct {
	// Phase is "form" while reading input and forming runs, "merge"
	// afterwards.
	Phase string
	// Records is the number of input records consumed so far.
	Records int64
	// Runs is the number of level-0 runs formed so far.
	Runs int
	// Pass is the current merge pass (1-based; 0 during formation and
	// during the refine-at-merge fragment collapse).
	Pass int
	// MergedRecords counts records written during the current merge pass.
	MergedRecords int64
	// DiskBytes is the current live spill footprint.
	DiskBytes int64
}

// Config controls the external sort.
type Config struct {
	// Core configures the in-memory run sorting (algorithm, T or
	// backend space, seed). Baseline and sortedness measurement are
	// forced off; per-run seeds are split from Core.Seed by run index.
	Core core.Config

	// RunSize is the in-memory record budget M: the number of records
	// resident in the selection buffer (default 1<<20). Replacement
	// selection emits runs of ~2×RunSize; chunk formation of exactly
	// RunSize. Under AutoPlan it is the budget the planner divides.
	RunSize int

	// FanIn is the merge width (default 16, minimum 2). Under AutoPlan
	// it caps the planner's M/B−1 choice.
	FanIn int

	// TempDir receives the run files (default os.TempDir()). Files are
	// removed as soon as the merge exhausts them.
	TempDir string

	// Formation selects the run-formation discipline (default
	// FormationReplacement).
	Formation string

	// RefineAtMerge defers each run's refine step 3 into the external
	// merge: runs spill as sorted LIS~/REM part pairs (core.RunParts)
	// and the merge fans in two cursors per run. Incompatible with
	// Precise. Under AutoPlan the planner decides and this is ignored.
	RefineAtMerge bool

	// Precise forms runs with a precise-only sort instead of
	// approx-refine (the planner's verdict when ω offers no asymmetry).
	// Under AutoPlan the planner decides and this is ignored.
	Precise bool

	// AutoPlan runs the (M, B, ω) planner (core.PlanExternal) on a pilot
	// prefix of the stream and lets its verdict choose run size, fan-in,
	// hybrid vs precise, and refine-at-merge. Requires TotalRecords.
	AutoPlan bool

	// TotalRecords is the expected stream length in records — known from
	// a dataset spec or a Content-Length — required by AutoPlan (the
	// pass structure depends on N).
	TotalRecords int64

	// Block is the I/O block size in records (default
	// core.ExtBlockDefault): the planner's B and the granularity of the
	// merge's charged staging writes.
	Block int

	// Omega overrides ω for the planner; non-positive derives it from
	// the pilot (see core.ExtConfig.Omega).
	Omega float64

	// MaxDiskBytes bounds the live spill footprint; a sort that would
	// exceed it fails with an error wrapping ErrDiskQuota (0 =
	// unlimited).
	MaxDiskBytes int64

	// Verifier, when non-nil, audits every formed run before it spills.
	Verifier Verifier

	// OnProgress, when non-nil, is called after every formed run and
	// every merged group. It must be fast; it runs on the sorting
	// goroutine.
	OnProgress func(Progress)
}

func (c *Config) setDefaults() error {
	if c.RunSize <= 0 {
		c.RunSize = 1 << 20
	}
	if c.FanIn == 0 {
		c.FanIn = 16
	}
	if c.FanIn < 2 {
		return fmt.Errorf("extsort: FanIn must be >= 2, got %d", c.FanIn)
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	if c.Formation == "" {
		c.Formation = FormationReplacement
	}
	if c.Formation != FormationReplacement && c.Formation != FormationChunk {
		return fmt.Errorf("extsort: unknown Formation %q", c.Formation)
	}
	if c.Block <= 0 {
		c.Block = core.ExtBlockDefault
	}
	if c.Precise && c.RefineAtMerge {
		return errors.New("extsort: RefineAtMerge requires hybrid run formation (Precise=false)")
	}
	if c.AutoPlan && c.TotalRecords <= 0 {
		return errors.New("extsort: AutoPlan requires TotalRecords (the pass structure depends on N)")
	}
	return nil
}

// RunInfo is the per-run accounting fold the verifier reconciles against
// the Stats totals.
type RunInfo struct {
	// Records is the run's length; under replacement selection runs vary
	// around 2×RunSize.
	Records int
	// RemTilde is the run's refine remainder (0 for precise runs).
	RemTilde int
	// WriteNanos is the run's charged formation write latency.
	WriteNanos float64
	// Hybrid records whether the run used approx-refine.
	Hybrid bool
}

// Stats summarizes one external sort.
type Stats struct {
	// Records is the total number of keys sorted.
	Records int64
	// Runs is the number of level-0 runs formed.
	Runs int
	// MergePasses counts merge levels (1 when all cursors fit one group,
	// 0 for a single spilled run streamed out directly).
	MergePasses int
	// HybridWriteNanos aggregates the run-formation write latency over
	// all runs (hybrid or precise).
	HybridWriteNanos float64
	// RemTildeTotal sums the refine remainders over all runs.
	RemTildeTotal int

	// Formation, Hybrid and RefineAtMerge echo the executed strategy
	// (after AutoPlan, the planner's verdict).
	Formation     string
	Hybrid        bool
	RefineAtMerge bool
	// RunSize and FanIn echo the executed geometry.
	RunSize int
	FanIn   int

	// MergeWrites and MergeWriteNanos are the merge's charged precise
	// staging traffic: one write per record per full pass, plus the
	// fragment-collapse records below.
	MergeWrites     int64
	MergeWriteNanos float64

	// FragmentCollapses and CollapsedRecords ledger the fragment-aware
	// fan-in allocator (refine-at-merge only): when LIS~/REM part pairs
	// exceed the fan-in, the smallest files are pre-folded in
	// FragmentCollapses greedy groups totalling CollapsedRecords staged
	// records instead of paying a full extra level pass. The exact merge
	// identity is MergeWrites == MergePasses×Records + CollapsedRecords.
	FragmentCollapses int
	CollapsedRecords  int64

	// DiskBytesWritten is the cumulative spill volume; DiskHighWater the
	// peak simultaneously-live spill footprint.
	DiskBytesWritten int64
	DiskHighWater    int64

	// PerRun folds each run's length, remainder and write cost into the
	// job accounting (internal/verify.CheckExtsortStats reconciles the
	// totals above against it).
	PerRun []RunInfo

	// Plan is the (M, B, ω) verdict that chose the geometry (AutoPlan
	// only).
	Plan *core.ExternalPlan
}

// MeanRunLength returns the mean level-0 run length in records — ≈
// 2×RunSize under replacement selection on random input.
func (s Stats) MeanRunLength() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Runs)
}

// state carries one SortStream invocation.
type state struct {
	cfg   Config
	dir   string
	disk  diskTracker
	stats Stats
	// hybrid/refineAtMerge/runSize/fanIn are the executed strategy
	// (Config after the planner's verdict).
	hybrid        bool
	refineAtMerge bool
	runSize       int
	fanIn         int
	merge         *mergeAccountant
}

// SortStream sorts the uint32 stream from r into w and returns the sort
// statistics. The input need not fit in memory; only Config.RunSize
// records are resident in the selection buffer (plus the run being
// sorted and merge block buffers).
func SortStream(r io.Reader, w io.Writer, cfg Config) (Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return Stats{}, err
	}
	cfg.Core.SkipBaseline = true
	cfg.Core.MeasureSortedness = false
	if cfg.Core.Algorithm == nil {
		return Stats{}, errors.New("extsort: Config.Core.Algorithm is required")
	}

	dir, err := os.MkdirTemp(cfg.TempDir, "extsort-runs-")
	if err != nil {
		return Stats{}, fmt.Errorf("extsort: creating run directory: %w", err)
	}
	defer os.RemoveAll(dir)

	st := &state{
		cfg:           cfg,
		dir:           dir,
		disk:          diskTracker{quota: cfg.MaxDiskBytes},
		hybrid:        !cfg.Precise,
		refineAtMerge: cfg.RefineAtMerge,
		runSize:       cfg.RunSize,
		fanIn:         cfg.FanIn,
		merge:         newMergeAccountant(cfg.Block),
	}

	src := newRecordSource(r)
	if cfg.AutoPlan {
		if err := st.plan(src); err != nil {
			return st.finish(), err
		}
	}

	var files []runFile
	if cfg.Formation == FormationReplacement {
		files, err = st.formReplacement(src)
	} else {
		files, err = st.formChunk(src)
	}
	if err != nil {
		return st.finish(), err
	}

	if err := st.mergeAll(files, w); err != nil {
		return st.finish(), err
	}
	return st.finish(), nil
}

// finish folds the trackers into the returned Stats.
func (st *state) finish() Stats {
	s := st.stats
	s.Formation = st.cfg.Formation
	s.Hybrid = st.hybrid
	s.RefineAtMerge = st.refineAtMerge
	s.RunSize = st.runSize
	s.FanIn = st.fanIn
	s.DiskBytesWritten = st.disk.written
	s.DiskHighWater = st.disk.high
	s.MergeWrites, s.MergeWriteNanos = st.merge.totals()
	return s
}

// plan consumes a pilot prefix of the stream, runs the (M, B, ω) planner
// and adopts its verdict, then pushes the prefix back for run formation.
func (st *state) plan(src *recordSource) error {
	pilotMax := st.cfg.RunSize
	if pilotMax > 1<<15 {
		pilotMax = 1 << 15
	}
	sample := make([]uint32, 0, pilotMax)
	for len(sample) < pilotMax {
		k, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sample = append(sample, k)
	}
	src.pushBack(sample)

	pilotCfg := st.cfg.Core
	pilotCfg.Seed = rng.Split(st.cfg.Core.Seed, "extsort", "pilot")
	plan, err := core.Planner{Config: pilotCfg}.PlanExternal(sample, core.ExtConfig{
		N:                  st.cfg.TotalRecords,
		MemBudget:          st.cfg.RunSize,
		Block:              st.cfg.Block,
		MaxFanIn:           st.cfg.FanIn,
		Omega:              st.cfg.Omega,
		Replacement:        st.cfg.Formation == FormationReplacement,
		AllowRefineAtMerge: !st.cfg.Precise,
	})
	if err != nil {
		return fmt.Errorf("extsort: planning: %w", err)
	}
	e := plan.External
	st.runSize = e.RunSize
	st.fanIn = e.FanIn
	st.hybrid = e.UseHybrid
	st.refineAtMerge = e.RefineAtMerge
	st.stats.Plan = e
	return nil
}

// runSeed derives the per-run stream seed from the job seed, keyed by the
// stable run index (never by data content), so a re-run of the same
// stream reproduces every run bit-for-bit.
func (st *state) runSeed(runIndex int) uint64 {
	return rng.Split(st.cfg.Core.Seed, "extsort", "run", runIndex)
}

// flushRun sorts one formed run on the configured memory system, audits
// it, spills it, and folds its accounting into the stats. It returns the
// spilled file(s): one for ordinary runs, a LIS~/REM pair under
// refine-at-merge.
func (st *state) flushRun(buf []uint32) ([]runFile, error) {
	runIndex := st.stats.Runs
	info := RunInfo{Records: len(buf), Hybrid: st.hybrid}

	var files []runFile
	switch {
	case !st.hybrid:
		out, writeNanos, err := preciseSortRun(buf, st.cfg.Core, st.runSeed(runIndex))
		if err != nil {
			return nil, err
		}
		if v := st.cfg.Verifier; v != nil {
			if err := v.VerifyPreciseRun(buf, out); err != nil {
				return nil, fmt.Errorf("extsort: run %d failed verification: %w", runIndex, err)
			}
		}
		info.WriteNanos = writeNanos
		rf, err := writeRunFile(st.runPath(runIndex, "run"), out, &st.disk)
		if err != nil {
			return nil, err
		}
		files = []runFile{rf}

	case st.refineAtMerge:
		runCfg := st.cfg.Core
		runCfg.Seed = st.runSeed(runIndex)
		parts, err := core.RunParts(buf, runCfg)
		if err != nil {
			return nil, err
		}
		if !parts.Report.Sorted {
			return nil, fmt.Errorf("extsort: run %d formation produced unsorted parts", runIndex)
		}
		if v := st.cfg.Verifier; v != nil {
			if err := v.VerifyPartsRun(buf, parts); err != nil {
				return nil, fmt.Errorf("extsort: run %d failed verification: %w", runIndex, err)
			}
		}
		info.RemTilde = parts.Report.RemTilde
		info.WriteNanos = parts.Report.Total().WriteNanos()
		lis, err := writeRunFile(st.runPath(runIndex, "lis"), parts.LisKeys, &st.disk)
		if err != nil {
			return nil, err
		}
		rem, err := writeRunFile(st.runPath(runIndex, "rem"), parts.RemKeys, &st.disk)
		if err != nil {
			return nil, err
		}
		files = []runFile{lis, rem}

	default:
		runCfg := st.cfg.Core
		runCfg.Seed = st.runSeed(runIndex)
		res, err := core.Run(buf, runCfg)
		if err != nil {
			return nil, err
		}
		if !res.Report.Sorted {
			return nil, fmt.Errorf("extsort: run %d formation produced unsorted output", runIndex)
		}
		if v := st.cfg.Verifier; v != nil {
			if err := v.VerifyHybridRun(buf, res); err != nil {
				return nil, fmt.Errorf("extsort: run %d failed verification: %w", runIndex, err)
			}
		}
		info.RemTilde = res.Report.RemTilde
		info.WriteNanos = res.Report.Total().WriteNanos()
		rf, err := writeRunFile(st.runPath(runIndex, "run"), res.Keys, &st.disk)
		if err != nil {
			return nil, err
		}
		files = []runFile{rf}
	}

	st.stats.Runs++
	st.stats.RemTildeTotal += info.RemTilde
	st.stats.HybridWriteNanos += info.WriteNanos
	st.stats.PerRun = append(st.stats.PerRun, info)
	st.progress("form", 0, 0)
	return files, nil
}

func (st *state) runPath(runIndex int, kind string) string {
	return filepath.Join(st.dir, fmt.Sprintf("run-%d.%s", runIndex, kind))
}

func (st *state) progress(phase string, pass int, merged int64) {
	if st.cfg.OnProgress == nil {
		return
	}
	st.cfg.OnProgress(Progress{
		Phase:         phase,
		Records:       st.stats.Records,
		Runs:          st.stats.Runs,
		Pass:          pass,
		MergedRecords: merged,
		DiskBytes:     st.disk.cur,
	})
}
